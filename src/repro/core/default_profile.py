"""The consensus default profile (Leela on the Ivy-Bridge-like machine).

HashCore's widget generator is parameterised by a performance profile; the
paper uses the profile of SPEC CPU 2017's Leela measured on a Xeon E5-2430
v2.  Every miner must target the *same* profile — it is a consensus
parameter, like the difficulty rules — so the default profile ships as
baked constants rather than being re-measured at runtime (re-measuring
would also be needlessly slow in every process).

``measure_default_profile()`` regenerates the constants; the test suite
asserts the baked values still match a fresh measurement, so the constants
cannot silently drift from the simulator.
"""

from __future__ import annotations

from functools import lru_cache

from repro.profiling.profile import PerformanceProfile

#: Baked measurement of ``profile_workload(LeelaWorkload(), Machine())``.
#: Regenerate with ``measure_default_profile().to_dict()``.
DEFAULT_PROFILE_DICT: dict = {
    "schema": 1,
    "name": "leela",
    "machine": "ivy-bridge-like",
    "dynamic_instructions": 218634,
    "instruction_mix": {
        "int_alu": 0.6417940485011481,
        "int_mul": 0.053655881518885444,
        "fp_alu": 0.0030278913618192963,
        "load": 0.10195577997932619,
        "store": 0.053655881518885444,
        "branch": 0.14590594326591472,
        "vector": 0.0,
        "system": 4.57385402087507e-06
    },
    "branch_taken_rate": 0.6473667711598746,
    "branch_accuracy": 0.9212852664576803,
    "biased_branch_fraction": 0.75,
    "dep_distance_hist": [
        0.4514565337254181,
        0.18195184708693254,
        0.056612984745451206,
        0.060650615695644186,
        0.22231666972982908,
        0.027011349016724865,
        0.0,
        0.0
    ],
    "stride_hist": [
        0.002028397565922921,
        0.004968104183202517,
        0.004791721786165741,
        0.02769203633477379,
        0.2354705000440956,
        0.6577299585501367,
        0.06731928153570274
    ],
    "block_size_mean": 6.853484216795712,
    "working_set_bytes": 71936,
    "l1_hit_rate": 0.9654047381106343,
    "ipc": 1.0913910326168346,
    "extras": {
        "div_share": 0.900179012871878,
        "fdiv_share": 0.3323262839879154
    }
}


@lru_cache(maxsize=1)
def default_profile() -> PerformanceProfile:
    """The baked Leela consensus profile."""
    return PerformanceProfile.from_dict(DEFAULT_PROFILE_DICT)


def measure_default_profile() -> PerformanceProfile:
    """Re-measure the default profile from a live Leela run (slow path)."""
    from repro.machine.cpu import Machine
    from repro.profiling.profiler import profile_workload
    from repro.workloads.leela import LeelaWorkload

    return profile_workload(LeelaWorkload(), Machine())
