"""Baked consensus profiles for the whole workload suite.

:class:`~repro.core.rotation.RotatingHashCore` needs a consensus-fixed
*set* of profiles (the seed selects among them per hash).  Like the
default Leela profile, the suite ships as baked constants so every miner
targets identical generation parameters; a test asserts the constants
still match fresh measurements, so they cannot silently drift from the
simulator.

Regenerate with :func:`measure_suite_profiles`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.profiling.profile import PerformanceProfile

#: Baked measurements of every suite workload on the reference machine.
SUITE_PROFILE_DICTS: dict[str, dict] = {
    "compress": {
        "schema": 1,
        "name": "compress",
        "machine": "ivy-bridge-like",
        "dynamic_instructions": 449737,
        "instruction_mix": {
            "int_alu": 0.5928487093568019,
            "int_mul": 0.026682260965853376,
            "fp_alu": 0.0,
            "load": 0.1902334030777988,
            "store": 0.026682260965853376,
            "branch": 0.16355114211194544,
            "vector": 0.0,
            "system": 2.223521747154448e-06
        },
        "branch_taken_rate": 0.7015158724763783,
        "branch_accuracy": 0.8374821562096391,
        "biased_branch_fraction": 0.6666666666666666,
        "dep_distance_hist": [
            0.565902563060515,
            0.09604200190019056,
            0.10593287823952287,
            0.13607780895945346,
            0.03576037828071197,
            0.04138955554213096,
            0.018894814017475163,
            0.0
        ],
        "stride_hist": [
            0.005525371604305484,
            0.5187288569964121,
            0.0003485392106611994,
            0.0016401845207585854,
            0.015202460276781137,
            0.08856996412096362,
            0.3699846232701179
        ],
        "block_size_mean": 6.114281829923187,
        "working_set_bytes": 161536,
        "l1_hit_rate": 0.8582953205883861,
        "ipc": 0.682998613841012,
        "extras": {
            "div_share": 0.0,
            "fdiv_share": 0.0
        }
    },
    "graph": {
        "schema": 1,
        "name": "graph",
        "machine": "ivy-bridge-like",
        "dynamic_instructions": 299931,
        "instruction_mix": {
            "int_alu": 0.46654063767999976,
            "int_mul": 0.0,
            "fp_alu": 0.0,
            "load": 0.2667280141099119,
            "store": 0.0,
            "branch": 0.2667280141099119,
            "vector": 0.0,
            "system": 3.334100176373899e-06
        },
        "branch_taken_rate": 0.750925,
        "branch_accuracy": 0.7505,
        "biased_branch_fraction": 0.5,
        "dep_distance_hist": [
            0.5456405592815733,
            0.1818801864271911,
            0.09059906786404456,
            0.1818801864271911,
            0.0,
            0.0,
            0.0,
            0.0
        ],
        "stride_hist": [
            0.0,
            0.00017500437510937773,
            0.0,
            0.00045001125028125703,
            0.006275156878921973,
            0.054701367534188354,
            0.9383984599614991
        ],
        "block_size_mean": 3.749125,
        "working_set_bytes": 262144,
        "l1_hit_rate": 0.11085,
        "ipc": 0.1960226994221882,
        "extras": {
            "div_share": 0.0,
            "fdiv_share": 0.0
        }
    },
    "leela": {
        "schema": 1,
        "name": "leela",
        "machine": "ivy-bridge-like",
        "dynamic_instructions": 218634,
        "instruction_mix": {
            "int_alu": 0.6417940485011481,
            "int_mul": 0.053655881518885444,
            "fp_alu": 0.0030278913618192963,
            "load": 0.10195577997932619,
            "store": 0.053655881518885444,
            "branch": 0.14590594326591472,
            "vector": 0.0,
            "system": 4.57385402087507e-06
        },
        "branch_taken_rate": 0.6473667711598746,
        "branch_accuracy": 0.9212852664576803,
        "biased_branch_fraction": 0.75,
        "dep_distance_hist": [
            0.4514565337254181,
            0.18195184708693254,
            0.056612984745451206,
            0.060650615695644186,
            0.22231666972982908,
            0.027011349016724865,
            0.0,
            0.0
        ],
        "stride_hist": [
            0.002028397565922921,
            0.004968104183202517,
            0.004791721786165741,
            0.02769203633477379,
            0.2354705000440956,
            0.6577299585501367,
            0.06731928153570274
        ],
        "block_size_mean": 6.853484216795712,
        "working_set_bytes": 71936,
        "l1_hit_rate": 0.9654047381106343,
        "ipc": 1.0913910326168346,
        "extras": {
            "div_share": 0.900179012871878,
            "fdiv_share": 0.3323262839879154
        }
    },
    "matrix": {
        "schema": 1,
        "name": "matrix",
        "machine": "ivy-bridge-like",
        "dynamic_instructions": 245782,
        "instruction_mix": {
            "int_alu": 0.10004801002514423,
            "int_mul": 0.0,
            "fp_alu": 0.19998616660292454,
            "load": 0.09999104897836295,
            "store": 0.0,
            "branch": 0.10001546085555492,
            "vector": 0.4999552448918147,
            "system": 4.0686461986638565e-06
        },
        "branch_taken_rate": 0.9997152387926125,
        "branch_accuracy": 0.9997152387926125,
        "biased_branch_fraction": 0.5,
        "dep_distance_hist": [
            0.0,
            0.0,
            0.0,
            0.5,
            0.5,
            0.0,
            0.0,
            0.0
        ],
        "stride_hist": [
            0.0,
            0.0,
            0.0,
            0.999796541200407,
            0.0,
            0.0,
            0.0002034587995930824
        ],
        "block_size_mean": 9.998413473273127,
        "working_set_bytes": 393216,
        "l1_hit_rate": 0.7,
        "ipc": 2.3592335289106465,
        "extras": {
            "div_share": 0.0,
            "fdiv_share": 0.0
        }
    },
    "media": {
        "schema": 1,
        "name": "media",
        "machine": "ivy-bridge-like",
        "dynamic_instructions": 458892,
        "instruction_mix": {
            "int_alu": 0.76179798296767,
            "int_mul": 0.0,
            "fp_alu": 0.0,
            "load": 0.18861082782005353,
            "store": 0.0,
            "branch": 0.049589010050295056,
            "vector": 0.0,
            "system": 2.1791619814684065e-06
        },
        "branch_taken_rate": 0.5907892423976094,
        "branch_accuracy": 0.8951045878010195,
        "biased_branch_fraction": 0.8,
        "dep_distance_hist": [
            0.22518059323206202,
            0.42811088107926876,
            0.025366285980900845,
            0.019214041372907147,
            0.15219771588540507,
            0.10146514392360338,
            0.025366285980900845,
            0.023099052544951947
        ],
        "stride_hist": [
            0.0,
            0.0,
            0.0,
            0.7802736180440007,
            0.07616934738398964,
            0.003974856720281013,
            0.1395821778517286
        ],
        "block_size_mean": 20.16571453682545,
        "working_set_bytes": 163200,
        "l1_hit_rate": 0.9384647379609945,
        "ipc": 1.1247931878846706,
        "extras": {
            "div_share": 0.0,
            "fdiv_share": 0.0
        }
    }
}


@lru_cache(maxsize=1)
def suite_profiles() -> tuple[PerformanceProfile, ...]:
    """The baked suite profiles, in sorted-name order (consensus order)."""
    return tuple(
        PerformanceProfile.from_dict(SUITE_PROFILE_DICTS[name])
        for name in sorted(SUITE_PROFILE_DICTS)
    )


def measure_suite_profiles() -> dict[str, dict]:
    """Re-measure every profile from live runs (slow path)."""
    from repro.machine.cpu import Machine
    from repro.profiling.profiler import profile_workload
    from repro.workloads.suite import SUITE, get_workload

    machine = Machine()
    return {
        name: profile_workload(get_workload(name), machine).to_dict()
        for name in sorted(SUITE)
    }
