"""HashCore — the paper's primary contribution.

``H(x) = G(s || W(s))`` with ``s = G(x)``: a first hash gate produces the
256-bit hash seed, the seed drives widget generation + execution, and a
second hash gate binds the seed and the widget output into the final hash
(§IV, Figure 1).  Collision resistance of ``H`` reduces to that of the hash
gate ``G`` regardless of anything about the widget machinery (Theorem 1).

Public surface:

* :func:`~repro.core.hash_gate.hash_gate` — the SHA-256 hash gate ``G``.
* :class:`~repro.core.seed.HashSeed` — the Table I seed-field split.
* :class:`~repro.core.hashcore.HashCore` — the full PoW function.
* :class:`~repro.core.widget.Widget` — a generated, compiled widget.
* :mod:`~repro.core.pow` — target/difficulty arithmetic shared by HashCore
  and the baseline PoW functions.
"""

from repro.core.hash_gate import HASH_GATE_BYTES, HashGate, hash_gate
from repro.core.seed import HashSeed, SeedField
from repro.core.widget import Widget, WidgetResult
from repro.core.hashcore import HashCore, HashCoreTrace
from repro.core.rotation import RotatingHashCore
from repro.core.pow import (
    MAX_TARGET,
    PowFunction,
    compact_to_target,
    difficulty_to_target,
    meets_target,
    target_to_compact,
    target_to_difficulty,
)

__all__ = [
    "HASH_GATE_BYTES",
    "HashGate",
    "hash_gate",
    "HashSeed",
    "SeedField",
    "Widget",
    "WidgetResult",
    "HashCore",
    "HashCoreTrace",
    "RotatingHashCore",
    "MAX_TARGET",
    "PowFunction",
    "compact_to_target",
    "difficulty_to_target",
    "meets_target",
    "target_to_compact",
    "target_to_difficulty",
]
