"""Hash gates — the cryptographic glue of HashCore (§IV).

A hash gate maps arbitrary-length input to a fixed-size digest and provides
the pre-image / second-pre-image / collision resistance HashCore inherits
(Theorem 1).  The paper instantiates gates with SHA-256 and notes the choice
is modular; :class:`HashGate` keeps that modularity (the collision-resistance
reduction tests instantiate deliberately *weak* gates to exercise the proof's
reduction algorithm).
"""

from __future__ import annotations

import hashlib
from typing import Callable

#: Output size of the default (SHA-256) hash gate, in bytes.
HASH_GATE_BYTES = 32


def hash_gate(data: bytes) -> bytes:
    """The default hash gate ``G``: SHA-256."""
    return hashlib.sha256(data).digest()


class HashGate:
    """A pluggable hash gate.

    ``fn`` must be a deterministic function of its input bytes.  The default
    is SHA-256, matching the paper's implementation assumption of a 256-bit
    gate output.
    """

    def __init__(
        self,
        fn: Callable[[bytes], bytes] = hash_gate,
        digest_size: int = HASH_GATE_BYTES,
        name: str = "sha256",
    ) -> None:
        self._fn = fn
        self.digest_size = digest_size
        self.name = name

    def __call__(self, data: bytes) -> bytes:
        digest = self._fn(data)
        if len(digest) != self.digest_size:
            raise ValueError(
                f"hash gate {self.name!r} returned {len(digest)} bytes, "
                f"declared {self.digest_size}"
            )
        return digest

    def __repr__(self) -> str:
        return f"HashGate({self.name}, {self.digest_size * 8} bits)"
