"""HashCore: the complete PoW function (§IV, Figure 1).

::

    s = G(x)              # hash gate -> 256-bit hash seed
    w = W(s)              # generate widget from s, compile, execute,
                          #   collect register-snapshot output
    H(x) = G(s || w)      # hash gate over seed || widget output

The hash seed appears in the second gate's input, which is what makes the
collision-resistance reduction work no matter what ``W`` does (Theorem 1 —
implemented and machine-checked in :mod:`repro.analysis.reduction`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.hash_gate import HashGate
from repro.errors import ExecutionLimitExceeded
from repro.core.seed import HashSeed
from repro.core.widget import Widget, WidgetResult
from repro.machine.config import MachineConfig
from repro.machine.cpu import FASTEST_MODE, Machine, resolve_mode
from repro.machine.jit import template_cache_stats
from repro.profiling.profile import PerformanceProfile
from repro.widgetgen.generator import WidgetGenerator
from repro.widgetgen.params import GeneratorParams


@dataclass(slots=True)
class HashCoreTrace:
    """All intermediate artifacts of one HashCore evaluation — exposed for
    experiments and debugging; ``digest`` is what the chain consumes.

    ``widget``/``result`` are the first (often only) widget of the
    evaluation; with ``widgets_per_hash > 1`` (§IV: "multiple widgets could
    be generated for a given input string and executed sequentially"),
    ``widgets``/``results`` carry the full sequence.  Constructors always
    pass the full sequence explicitly (``[widget]``/``[result]`` in the
    single-widget case), so both lists are guaranteed non-empty.
    """

    seed: HashSeed
    widget: Widget
    result: WidgetResult
    digest: bytes
    widgets: list[Widget]
    results: list[WidgetResult]


class HashCore:
    """The HashCore PoW function.

    The consensus parameters are the profile, the generator parameters, the
    gate, and the machine's *memory size* (addresses wrap modulo it): two
    miners sharing those always compute the same ``hash(x)`` — verification
    *is* recomputation, as with any PoW function.  The machine's
    *microarchitecture* (width, caches, predictor) affects only how fast
    the hash is computed, never its value: the widget output is purely
    architectural state, which is what lets x86 desktops and ARM phones
    (§VI-B) participate in one network.

    Arguments default to the paper's setup: the Leela profile on the
    Ivy-Bridge-like machine with SHA-256 gates.

    Execution is tiered: ``mode`` selects the engine :meth:`hash` and
    :meth:`verify` run widgets on.  The default ``"auto"`` resolves to the
    fastest available functional tier (currently the tier-2 JIT — every
    tier is differential-tested bit-identical to the timing model, so
    digests are unaffected); ``"jit"``/``"fast"`` pin a functional tier
    and ``"timed"`` forces the full timing model.  :meth:`hash_with_trace`
    defaults to the timed path regardless, because callers of the trace API
    are usually after the performance counters.
    """

    name = "hashcore"

    #: Default compiled-widget LRU capacity.  Verifiers re-derive the same
    #: widget for every nonce attempt on a header and for every block
    #: re-validation, so a small cache skips generate+compile on those
    #: paths at negligible memory cost; pass ``widget_cache_size=0`` to
    #: disable caching entirely.
    DEFAULT_WIDGET_CACHE_SIZE = 16

    def __init__(
        self,
        profile: PerformanceProfile | None = None,
        machine: Machine | MachineConfig | None = None,
        params: GeneratorParams | None = None,
        gate: HashGate | None = None,
        widgets_per_hash: int = 1,
        widget_cache_size: int = DEFAULT_WIDGET_CACHE_SIZE,
        mode: str = "auto",
    ) -> None:
        if profile is None:
            from repro.core.default_profile import default_profile

            profile = default_profile()
        if machine is None:
            machine = Machine()
        elif isinstance(machine, MachineConfig):
            machine = Machine(machine)
        if widgets_per_hash < 1:
            raise ValueError("widgets_per_hash must be >= 1")
        if widget_cache_size < 0:
            raise ValueError("widget_cache_size must be >= 0")
        self.mode = resolve_mode(mode, ValueError)
        self.profile = profile
        self.machine = machine
        self.gate = gate or HashGate()
        self.generator = WidgetGenerator(profile, params)
        self.widgets_per_hash = widgets_per_hash
        # Verifiers re-derive the same widget for every nonce attempt on a
        # header and for every block re-validation; a small LRU of compiled
        # widgets keyed by seed skips the generate+compile step (it cannot
        # skip execution — that *is* the proof of work).
        self._cache_size = widget_cache_size
        self._widget_cache: dict[bytes, Widget] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        # hash_batch bookkeeping: how much of the batch API's traffic
        # actually rode the tier-3 lockstep engine vs the scalar ladder
        # (mining batches are nearly all singleton groups — see
        # hash_batch's docstring — so honest reporting matters here).
        self._batch_stats = {
            "calls": 0,
            "inputs": 0,
            "unique": 0,
            "lockstep_groups": 0,
            "lockstep_lanes": 0,
            "scalar_runs": 0,
        }

    # ------------------------------------------------------------------
    def seed_of(self, data: bytes) -> HashSeed:
        """First hash gate: derive the hash seed for an input."""
        return HashSeed(self.gate(data))

    def widget_for(self, seed: HashSeed) -> Widget:
        """Generate and compile the widget selected by ``seed`` (cached
        when ``widget_cache_size > 0``)."""
        if self._cache_size == 0:
            self._cache_misses += 1
            return self.generator.widget(seed)
        cached = self._widget_cache.get(seed.raw)
        if cached is not None:
            # Refresh LRU position (dict preserves insertion order).
            del self._widget_cache[seed.raw]
            self._widget_cache[seed.raw] = cached
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        widget = self.generator.widget(seed)
        self._widget_cache[seed.raw] = widget
        if len(self._widget_cache) > self._cache_size:
            del self._widget_cache[next(iter(self._widget_cache))]
            self._cache_evictions += 1
        return widget

    def cache_stats(self) -> dict:
        """Hit/miss/eviction counters for the compiled-widget LRU, plus the
        aggregated decode-tier counters of every currently cached program.

        The mining engine's per-worker stats channel and
        ``benchmarks/bench_hashrate.py`` both report this document.
        """
        programs = {
            "code_builds": 0, "code_hits": 0,
            "fast_builds": 0, "fast_hits": 0,
            "jit_builds": 0, "jit_hits": 0,
        }
        for widget in self._widget_cache.values():
            for key, value in widget.program.cache_stats().items():
                if key in programs:
                    programs[key] += value
        return {
            "widget_cache": {
                "capacity": self._cache_size,
                "size": len(self._widget_cache),
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "evictions": self._cache_evictions,
                "hit_rate": round(
                    self._cache_hits
                    / (self._cache_hits + self._cache_misses),
                    4,
                )
                if (self._cache_hits + self._cache_misses)
                else 0.0,
            },
            "programs": programs,
            # Tier-degradation counters from the machine's self-healing
            # ladder (all zeros on a healthy machine); the mining engine
            # folds these into EngineReport.health via the stats channel.
            "tiers": self.machine.tier_stats(),
            # Process-wide JIT shape-template cache: fresh widgets whose
            # IR shape matches a previously compiled program skip codegen
            # and only rebind constants (~90x cheaper than a full
            # compile).  Shared across HashCore instances by design —
            # templates key on code shape, not on seeds.
            "jit_templates": template_cache_stats(),
            "hash_batch": dict(self._batch_stats),
        }

    def hash(self, data: bytes) -> bytes:
        """Compute ``H(data) = G(s || W(s))`` on the configured mode's
        engine (fast path by default — the hot loop of mining)."""
        return self.hash_with_trace(data, mode=self.mode).digest

    def hash_batch(
        self, datas: list[bytes], *, mode: str | None = None
    ) -> list[bytes]:
        """Compute ``H(data)`` for a sequence of inputs in one call.

        Inputs are deduplicated, then the unique widgets are grouped by
        program fingerprint: a group whose members share byte-identical
        code (but generally distinct memory images) executes in lockstep
        on the tier-3 batch engine — one vectorised dispatch advances
        every member at once (:meth:`Machine.run_lockstep`).  Singleton
        groups run on the scalar tier ladder.  Digests are identical
        either way (every tier is differential-tested bit-identical) and
        are returned in input order.

        Fine print for miners: every seed byte feeds widget selection, so
        distinct nonces virtually always select distinct programs — a
        mining batch is nearly all singleton groups, and this method's
        win there is dedup plus one tight loop, *not* SIMD.  The lockstep
        path pays off for ensembles that genuinely share code:
        re-verifying one widget across candidate memory images,
        experiment sweeps, the multi-lane benchmarks.  ``cache_stats()
        ["hash_batch"]`` reports how traffic actually split.

        ``mode`` overrides the instance mode.  ``"timed"`` pins the
        timing model for every input and disables the lockstep path;
        ``"batch"`` resolves singletons to the fastest scalar tier (a
        one-lane lockstep run is strictly slower than the scalar JIT).
        A lockstep translation failure blocks the batch tier on that
        program and the group degrades to scalar execution.
        """
        datas = list(datas)
        mode = resolve_mode(mode if mode is not None else self.mode, ValueError)
        scalar_mode = FASTEST_MODE if mode == "batch" else mode
        stats = self._batch_stats
        stats["calls"] += 1
        stats["inputs"] += len(datas)

        unique: list[bytes] = []
        seen: set[bytes] = set()
        for data in datas:
            if data not in seen:
                seen.add(data)
                unique.append(data)
        stats["unique"] += len(unique)
        digests: dict[bytes, bytes] = {}

        if self.widgets_per_hash > 1 or mode == "timed":
            # Multi-widget evaluations chain sub-seeds (groups are even
            # less likely) and pinned-timed callers asked for the timing
            # model: scalar path for both.
            for data in unique:
                stats["scalar_runs"] += 1
                digests[data] = self.hash_with_trace(data, mode=mode).digest
            return [digests[data] for data in datas]

        seeds = {data: self.seed_of(data) for data in unique}
        widgets = {data: self.widget_for(seeds[data]) for data in unique}
        groups: dict[tuple, list[bytes]] = {}
        for data in unique:
            widget = widgets[data]
            key = (
                widget.fingerprint(),
                int(widget.spec.meta.get("fuse", 10_000_000)),
                widget.spec.snapshot_interval,
            )
            groups.setdefault(key, []).append(data)

        for (_, fuse, snapshot_interval), members in groups.items():
            program = widgets[members[0]].program
            if len(members) >= 2 and not program.tier_blocked("batch"):
                memories = []
                for data in members:
                    memory = self.machine.new_memory()
                    for directive in widgets[data].spec.plan.directives():
                        directive.apply(memory)
                    memories.append(memory)
                try:
                    program.batch_code()
                    results = self.machine.run_lockstep(
                        program,
                        memories,
                        max_instructions=fuse,
                        snapshot_interval=snapshot_interval,
                    )
                except ExecutionLimitExceeded:
                    raise  # architectural outcome, same on every tier
                except Exception:  # noqa: BLE001 — tier bug, degrade
                    program.block_tier("batch")
                else:
                    stats["lockstep_groups"] += 1
                    stats["lockstep_lanes"] += len(members)
                    for data, result in zip(members, results):
                        digests[data] = self.gate(
                            seeds[data].raw + result.output
                        )
                    continue
            for data in members:
                stats["scalar_runs"] += 1
                result = widgets[data].execute(self.machine, mode=scalar_mode)
                digests[data] = self.gate(seeds[data].raw + result.output)

        return [digests[data] for data in datas]

    def hash_with_trace(self, data: bytes, *, mode: str | None = None) -> HashCoreTrace:
        """Compute the hash and return every intermediate artifact.

        With ``widgets_per_hash > 1``, widget *i* (for i >= 1) derives its
        sub-seed as ``G(s || i)`` and the outputs are concatenated in
        sequence — the sequential multi-widget variant of §IV.

        ``mode`` defaults to ``"timed"`` (not the instance mode): trace
        callers usually want meaningful performance counters, which only
        the timing path collects.  Pass ``mode="fast"`` for a fast trace
        whose counters report only ``retired``.  The digest is identical
        either way.
        """
        if mode is None:
            mode = "timed"
        seed = self.seed_of(data)
        widgets = [self.widget_for(seed)]
        for index in range(1, self.widgets_per_hash):
            sub_seed = HashSeed(self.gate(seed.raw + struct.pack("<I", index)))
            widgets.append(self.widget_for(sub_seed))
        results = [widget.execute(self.machine, mode=mode) for widget in widgets]
        digest = self.gate(seed.raw + b"".join(result.output for result in results))
        return HashCoreTrace(
            seed=seed,
            widget=widgets[0],
            result=results[0],
            digest=digest,
            widgets=widgets,
            results=results,
        )

    def verify(self, data: bytes, digest: bytes) -> bool:
        """Check a claimed digest by full recomputation.

        HashCore is deliberately *not* a cheaply verifiable PoW: a verifier
        must run the widget too (§IV-B lists the three programs every
        evaluation runs).  The cost is one hash evaluation, the same as for
        the miner's single attempt.
        """
        return self.hash(data) == digest
