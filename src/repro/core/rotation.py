"""Profile-rotating HashCore — hardening the single-profile design.

The paper evaluates widgets generated against a single profile (Leela) and
notes "there is nothing unique about this workload, and similar widgets
could be produced for a variety of workload performance profiles" (§V).
Experiment E8 of this reproduction quantifies why variety matters: widgets
from an integer-only profile leave FP/vector units idle, so a
profile-specific ASIC can strip them.

:class:`RotatingHashCore` closes that gap: the hash seed *also* selects
which profile of a consensus-fixed suite the widget is generated against,
so an ASIC must provision for the union of all profiles' demands — the
§IV-A goal of stressing every structure in proportion to its importance.
The profile index is ``seed mod n`` over the full 256-bit seed, so a miner
cannot steer inputs toward a profile its hardware favours without breaking
the first gate's pre-image resistance (§IV's "select a particular widget
instantiation" argument applies unchanged).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.hash_gate import HashGate
from repro.core.hashcore import HashCoreTrace
from repro.core.seed import HashSeed
from repro.errors import ConfigError
from repro.machine.config import MachineConfig
from repro.machine.cpu import Machine, resolve_mode
from repro.profiling.profile import PerformanceProfile
from repro.widgetgen.generator import WidgetGenerator
from repro.widgetgen.params import GeneratorParams


class RotatingHashCore:
    """HashCore whose seed selects one of several consensus profiles."""

    name = "hashcore-rotating"

    def __init__(
        self,
        profiles: Sequence[PerformanceProfile],
        machine: Machine | MachineConfig | None = None,
        params: GeneratorParams | None = None,
        gate: HashGate | None = None,
        mode: str = "auto",
    ) -> None:
        if not profiles:
            raise ConfigError("need at least one profile")
        if machine is None:
            machine = Machine()
        elif isinstance(machine, MachineConfig):
            machine = Machine(machine)
        self.mode = resolve_mode(mode, ConfigError)
        self.profiles = list(profiles)
        self.machine = machine
        self.gate = gate or HashGate()
        self.generators = [WidgetGenerator(p, params) for p in self.profiles]

    # ------------------------------------------------------------------
    def seed_of(self, data: bytes) -> HashSeed:
        return HashSeed(self.gate(data))

    def profile_index(self, seed: HashSeed) -> int:
        """Which suite profile this seed selects."""
        return int.from_bytes(seed.raw, "little") % len(self.profiles)

    def hash(self, data: bytes) -> bytes:
        """PoW digest on the configured mode's engine (the fastest
        functional tier by default)."""
        return self.hash_with_trace(data, mode=self.mode).digest

    def hash_with_trace(self, data: bytes, *, mode: str | None = None) -> HashCoreTrace:
        """Hash plus intermediates; ``mode`` defaults to the timed engine
        so trace counters stay meaningful (see :class:`HashCore`)."""
        if mode is None:
            mode = "timed"
        seed = self.seed_of(data)
        generator = self.generators[self.profile_index(seed)]
        widget = generator.widget(seed)
        result = widget.execute(self.machine, mode=mode)
        digest = self.gate(seed.raw + result.output)
        return HashCoreTrace(
            seed=seed,
            widget=widget,
            result=result,
            digest=digest,
            widgets=[widget],
            results=[result],
        )

    def verify(self, data: bytes, digest: bytes) -> bool:
        return self.hash(data) == digest
