"""Proof-of-work target arithmetic and the PoW-function interface.

A hash meets a proof-of-work *target* when, interpreted as a 256-bit
big-endian integer, it is at most the target ("some statistically unlikely
structural requirement, such as some number of leading zeros", §I).
Difficulty is the conventional reciprocal measure.  Targets travel in block
headers in Bitcoin's compact "nBits" form, implemented here so the
blockchain substrate round-trips real-looking headers.

:class:`PowFunction` is the small interface HashCore and every baseline
implement, letting the miner, chain validation, and the ASIC-advantage
experiments treat them interchangeably.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import PowError

#: The easiest possible target (every 256-bit hash qualifies).
MAX_TARGET = (1 << 256) - 1

HASH_BITS = 256


@runtime_checkable
class PowFunction(Protocol):
    """A proof-of-work function: header bytes in, 32-byte digest out."""

    name: str

    def hash(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        """Compute the PoW digest of ``data``."""
        ...


def hash_to_int(digest: bytes) -> int:
    """Interpret a 32-byte digest as a big-endian 256-bit integer."""
    if len(digest) != 32:
        raise PowError(f"PoW digest must be 32 bytes, got {len(digest)}")
    return int.from_bytes(digest, "big")


def meets_target(digest: bytes, target: int) -> bool:
    """True when ``digest`` satisfies ``target``."""
    if not 0 < target <= MAX_TARGET:
        raise PowError(f"target {target:#x} out of range")
    return hash_to_int(digest) <= target


def difficulty_to_target(difficulty: float) -> int:
    """Target whose expected attempts-per-solution equal ``difficulty``."""
    if difficulty < 1.0:
        raise PowError(f"difficulty must be >= 1, got {difficulty}")
    return min(MAX_TARGET, int(MAX_TARGET / difficulty))


def target_to_difficulty(target: int) -> float:
    """Expected hash attempts needed to meet ``target``."""
    if not 0 < target <= MAX_TARGET:
        raise PowError(f"target {target:#x} out of range")
    return MAX_TARGET / target


def target_to_compact(target: int) -> int:
    """Encode a target in Bitcoin's compact 'nBits' representation.

    ``compact = (exponent << 24) | mantissa`` where
    ``target ≈ mantissa * 256**(exponent - 3)`` and the mantissa keeps its
    top bit clear (the sign convention of the original format).
    """
    if not 0 < target <= MAX_TARGET:
        raise PowError(f"target {target:#x} out of range")
    size = (target.bit_length() + 7) // 8
    if size <= 3:
        mantissa = target << (8 * (3 - size))
    else:
        mantissa = target >> (8 * (size - 3))
    if mantissa & 0x800000:
        mantissa >>= 8
        size += 1
    return (size << 24) | mantissa


def compact_to_target(compact: int) -> int:
    """Decode a compact 'nBits' value back to a full target."""
    size = compact >> 24
    mantissa = compact & 0x007FFFFF
    if compact & 0x00800000:
        raise PowError(f"negative compact target {compact:#x}")
    if mantissa == 0:
        raise PowError(f"zero mantissa in compact target {compact:#x}")
    if size <= 3:
        target = mantissa >> (8 * (3 - size))
    else:
        target = mantissa << (8 * (size - 3))
    if target == 0:
        raise PowError(f"compact target {compact:#x} decodes to zero")
    if target > MAX_TARGET:
        raise PowError(f"compact target {compact:#x} exceeds 2^256")
    return target


def leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits — the paper's example PoW criterion."""
    value = hash_to_int(digest)
    if value == 0:
        return HASH_BITS
    return HASH_BITS - value.bit_length()
