"""The widget object: a generated, compiled, executable code block (§IV).

A widget is the main computational task of a HashCore evaluation.  Its
output is the concatenated register snapshots taken throughout execution
("a series of snapshots of the computer's register contents captured every
few thousand instructions", §V) plus the final architectural state, so the
output commits to the *complete* execution — skipping any part of the
program changes some snapshot bit, which changes the final hash
(irreducibility, §IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program
from repro.machine.cpu import Machine
from repro.machine.perf_counters import PerfCounters
from repro.widgetgen.ir import WidgetSpec


@dataclass(slots=True)
class WidgetResult:
    """Outcome of executing one widget."""

    output: bytes
    counters: PerfCounters
    snapshots: int

    @property
    def output_size(self) -> int:
        return len(self.output)


@dataclass(slots=True)
class Widget:
    """A compiled widget: spec (provenance) + executable program."""

    spec: WidgetSpec
    program: Program

    @property
    def name(self) -> str:
        return self.spec.name

    def code_bytes(self) -> int:
        """Size of the encoded program (storage cost, used by the
        generation-vs-selection experiment E9)."""
        from repro.isa.encoding import encode_program

        return len(encode_program(self.program))

    def fingerprint(self) -> str:
        """SHA-256 of the program encoding — determinism checks key on it."""
        return self.program.fingerprint()

    def execute(self, machine: Machine, mode: str | None = None) -> WidgetResult:
        """Run the widget on ``machine`` and collect its output.

        Memory is freshly initialised from the widget's plan, so execution
        depends only on (widget, machine config) — a requirement for other
        miners to verify the hash.  ``mode`` picks the execution tier
        (``"timed"``, ``"fast"`` or ``"jit"``; default: the machine's own
        mode) — the output bytes are identical on every tier, only the
        counters differ.

        Execution rides the machine's degrading tier ladder
        (:meth:`~repro.machine.cpu.Machine.run_with_fallback`): a tier
        that fails on this widget falls back to the next one on a fresh
        memory image, so one bad JIT translation degrades the widget, not
        the miner.  A fuse trip (:class:`ExecutionLimitExceeded`) still
        propagates — it is an architectural outcome, the same on every
        tier.
        """

        def build_memory():
            memory = machine.new_memory()
            for directive in self.spec.plan.directives():
                directive.apply(memory)
            return memory

        result = machine.run_with_fallback(
            self.program,
            build_memory,
            max_instructions=int(self.spec.meta.get("fuse", 10_000_000)),
            snapshot_interval=self.spec.snapshot_interval,
            mode=mode,
        )
        return WidgetResult(
            output=result.output,
            counters=result.counters,
            snapshots=result.snapshots,
        )
