"""The 256-bit hash seed and its Table I field split.

The output of the first hash gate is used as the *hash seed*: it is split
into eight 32-bit integers that perturb the performance profile and seed the
generator's PRNGs (paper Table I):

====== ==========================
bits   usage
====== ==========================
0-31   Integer ALU
32-63  Integer Multiply
64-95  Floating Point ALU
96-127 Loads
128-159 Stores
160-191 Branch Behavior
192-223 Basic Block Vector Seed
224-255 Memory Seed
====== ==========================

Bit ``k`` of the seed is bit ``k % 8`` of byte ``k // 8`` of the gate
digest, so field *i* is the little-endian u32 at bytes ``4i..4i+4``.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import PowError

#: Seed length in bytes (one hash-gate digest).
SEED_BYTES = 32

_FIELDS = struct.Struct("<8I")


class SeedField(enum.IntEnum):
    """Index of each 32-bit seed field, in Table I order."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    LOADS = 3
    STORES = 4
    BRANCH_BEHAVIOR = 5
    BBV_SEED = 6
    MEMORY_SEED = 7


@dataclass(frozen=True, slots=True)
class HashSeed:
    """A parsed 256-bit hash seed."""

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != SEED_BYTES:
            raise PowError(f"hash seed must be {SEED_BYTES} bytes, got {len(self.raw)}")

    @classmethod
    def from_hex(cls, text: str) -> "HashSeed":
        return cls(bytes.fromhex(text))

    @classmethod
    def from_fields(cls, fields: list[int] | tuple[int, ...]) -> "HashSeed":
        """Build a seed from eight u32 field values (used by tests to vary
        one Table I field in isolation)."""
        if len(fields) != 8:
            raise PowError(f"need 8 fields, got {len(fields)}")
        return cls(_FIELDS.pack(*(f & 0xFFFFFFFF for f in fields)))

    # ------------------------------------------------------------------
    def fields(self) -> tuple[int, ...]:
        """All eight 32-bit fields, in Table I order."""
        return _FIELDS.unpack(self.raw)

    def field(self, which: SeedField) -> int:
        """One 32-bit field."""
        return struct.unpack_from("<I", self.raw, 4 * int(which))[0]

    def fraction(self, which: SeedField) -> float:
        """Field value scaled to ``[0, 1)`` — the noise magnitude."""
        return self.field(which) / 2**32

    def with_field(self, which: SeedField, value: int) -> "HashSeed":
        """Copy of this seed with one field replaced."""
        fields = list(self.fields())
        fields[int(which)] = value & 0xFFFFFFFF
        return HashSeed.from_fields(fields)

    @property
    def hex(self) -> str:
        return self.raw.hex()

    def __str__(self) -> str:
        return f"HashSeed({self.hex[:16]}…)"
