"""Program container: an ordered list of instructions plus metadata."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import EncodingError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import OpClass


@dataclass(slots=True)
class Program:
    """An executable program in the synthetic ISA.

    ``instructions`` execute from index 0; falling off the end or executing
    ``HALT`` terminates the program.  ``name`` is informational.  ``labels``
    maps symbolic names to instruction indices (kept by the assembler and
    builder for debugging and disassembly).
    """

    instructions: list[Instruction]
    name: str = "program"
    labels: dict[str, int] = field(default_factory=dict)
    #: Lazily cached (op, a, b, c, imm) tuples for the interpreter; rebuilt
    #: on first use after any mutation of ``instructions`` via
    #: :meth:`invalidate_code`.
    _code: list[tuple] | None = field(default=None, repr=False, compare=False)
    #: Lazily cached threaded-code handler list for the fast-path
    #: interpreter (one bound closure per instruction); invalidated
    #: together with ``_code``.
    _fast: list | None = field(default=None, repr=False, compare=False)
    #: Lazily cached tier-2 JIT artifact (segment functions compiled from
    #: generated Python source); invalidated together with ``_code``.
    _jit: object | None = field(default=None, repr=False, compare=False)
    #: Lazily cached tier-3 batch-lockstep artifact (vectorised step
    #: handlers over ``(N,)``-shaped register arrays); invalidated together
    #: with ``_code``.
    _batch: object | None = field(default=None, repr=False, compare=False)
    #: Build/hit counters for the decode caches, surfaced through
    #: :meth:`cache_stats` (and aggregated by HashCore / WidgetPool).
    _tier_stats: dict = field(
        default_factory=lambda: {
            "code_builds": 0,
            "code_hits": 0,
            "fast_builds": 0,
            "fast_hits": 0,
            "jit_builds": 0,
            "jit_hits": 0,
            "batch_builds": 0,
            "batch_hits": 0,
        },
        repr=False,
        compare=False,
    )
    #: Execution tiers that have failed on this program (compile bug, codegen
    #: fault, execution-time error) and must not be retried — the machine's
    #: degrading ladder (:meth:`repro.machine.cpu.Machine.run_with_fallback`)
    #: marks a tier here once and silently routes around it afterwards, which
    #: is what makes ``mode="auto"`` self-healing.
    _blocked_tiers: set = field(default_factory=set, repr=False, compare=False)

    def code_tuples(self) -> list[tuple]:
        """Decoded instruction tuples (cached; the interpreter's hot input)."""
        if self._code is None or len(self._code) != len(self.instructions):
            self._code = [
                (i.op, i.a, i.b, i.c, i.imm) for i in self.instructions
            ]
            self._tier_stats["code_builds"] += 1
        else:
            self._tier_stats["code_hits"] += 1
        return self._code

    def fast_handlers(self) -> list:
        """Threaded-code handlers for the fast-path interpreter (cached).

        Each program is decoded once into a list of bound closures — the
        fast path's analogue of :meth:`code_tuples` — so repeated runs
        (widget-cache hits, verification) skip per-run decode entirely.
        """
        if self._fast is None or len(self._fast) != len(self.instructions):
            from repro.machine.fastpath import compile_threaded

            self._fast = compile_threaded(self)
            self._tier_stats["fast_builds"] += 1
        else:
            self._tier_stats["fast_hits"] += 1
        return self._fast

    def jit_code(self):
        """Tier-2 JIT artifact for this program (cached).

        The program is translated once into specialized Python source —
        one function per straight-line segment, registers as locals — and
        the compiled :class:`~repro.machine.jit.JitCode` is cached here so
        widget-cache hits, verification and persistent mining workers pay
        the translation cost only once.
        """
        if self._jit is None or self._jit.length != len(self.instructions):
            from repro.machine.jit import compile_jit

            self._jit = compile_jit(self)
            self._tier_stats["jit_builds"] += 1
        else:
            self._tier_stats["jit_hits"] += 1
        return self._jit

    def batch_code(self):
        """Tier-3 batch-lockstep artifact for this program (cached).

        The program is compiled once into vectorised step handlers that
        advance all lanes of a :class:`~repro.machine.batch.BatchState`
        at each pc; cached like :meth:`jit_code` so repeated batch runs
        skip translation.
        """
        if self._batch is None or self._batch.length != len(self.instructions):
            from repro.machine.batch import compile_batch

            self._batch = compile_batch(self)
            self._tier_stats["batch_builds"] += 1
        else:
            self._tier_stats["batch_hits"] += 1
        return self._batch

    def cache_stats(self) -> dict:
        """Build/hit counters plus readiness flags for the decode caches."""
        stats = dict(self._tier_stats)
        stats["code_ready"] = self._code is not None
        stats["fast_ready"] = self._fast is not None
        stats["jit_ready"] = self._jit is not None
        stats["batch_ready"] = self._batch is not None
        stats["blocked_tiers"] = sorted(self._blocked_tiers)
        return stats

    def block_tier(self, tier: str) -> None:
        """Mark an execution tier as failed for this program.

        The degrading ladder skips blocked tiers on every later run instead
        of re-paying the failed compile/execute attempt.
        """
        self._blocked_tiers.add(tier)

    def tier_blocked(self, tier: str) -> bool:
        """Whether ``tier`` has been marked failed for this program."""
        return tier in self._blocked_tiers

    def invalidate_code(self) -> None:
        """Drop the decode caches after mutating ``instructions`` in place."""
        self._code = None
        self._fast = None
        self._jit = None
        self._batch = None
        # A recompile gets a fresh chance on every tier.
        self._blocked_tiers.clear()

    def __len__(self) -> int:
        return len(self.instructions)

    def validate(self) -> None:
        """Statically validate every instruction, including branch targets."""
        n = len(self.instructions)
        if n == 0:
            raise EncodingError("program has no instructions")
        for index, instr in enumerate(self.instructions):
            try:
                instr.validate(program_length=n)
            except EncodingError as exc:
                raise EncodingError(f"instruction {index}: {exc}") from exc

    def static_mix(self) -> dict[OpClass, int]:
        """Static (not dynamic) instruction count per resource class."""
        mix: dict[OpClass, int] = {cls: 0 for cls in OpClass}
        for instr in self.instructions:
            mix[instr.op_class()] += 1
        return mix

    def fingerprint(self) -> str:
        """Hex SHA-256 of the canonical binary encoding.

        Two programs with the same fingerprint are byte-identical; the widget
        generator's determinism tests rely on this.
        """
        from repro.isa.encoding import encode_program

        return hashlib.sha256(encode_program(self)).hexdigest()

    def __str__(self) -> str:
        from repro.isa.assembler import disassemble

        return disassemble(self)
