"""Structured program builder.

Hand-writing list-of-:class:`Instruction` programs is error-prone, so the
reference workloads (:mod:`repro.workloads`) and the widget code generator
(:mod:`repro.widgetgen.codegen`) construct programs through this builder.
It provides:

* one emit method per opcode (``b.add(1, 2, 3)`` emits ``ADD r1, r2, r3``),
* symbolic labels with forward-reference patching,
* ``with b.loop(reg, count):`` counted-loop blocks (``MOVI`` + ``LOOPNZ``),
* ``with b.if_*(ra, rb):`` conditional blocks (inverted branch over body).
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

# Branch inversions used by the if_* helpers: to execute the body when the
# condition holds, emit the *opposite* branch over the body.
_INVERSE = {
    Opcode.BEQ: Opcode.BNE,
    Opcode.BNE: Opcode.BEQ,
    Opcode.BLT: Opcode.BGE,
    Opcode.BGE: Opcode.BLT,
}


class ProgramBuilder:
    """Incrementally build a validated :class:`Program`."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []  # (instruction index, label)
        self._auto_label = 0

    # ------------------------------------------------------------------
    # label handling
    # ------------------------------------------------------------------
    def label(self, name: str | None = None) -> str:
        """Define a label at the current position; returns its name."""
        if name is None:
            name = f"__L{self._auto_label}"
            self._auto_label += 1
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions)
        return name

    def here(self) -> int:
        """Index of the next instruction to be emitted."""
        return len(self._instructions)

    def _target(self, target: str | int) -> int:
        """Resolve a branch target now, or record a fixup for later."""
        if isinstance(target, int):
            return target
        if target in self._labels:
            return self._labels[target]
        self._fixups.append((len(self._instructions), target))
        return 0  # patched in build()

    # ------------------------------------------------------------------
    # raw emit
    # ------------------------------------------------------------------
    def emit(self, op: Opcode, a: int = 0, b: int = 0, c: int = 0, imm: int = 0) -> None:
        """Append one instruction (no validation until :meth:`build`)."""
        self._instructions.append(Instruction(int(op), a, b, c, imm))

    # --- integer ALU ---------------------------------------------------
    def add(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.ADD, a, b, c)

    def sub(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.SUB, a, b, c)

    def and_(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.AND, a, b, c)

    def or_(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.OR, a, b, c)

    def xor(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.XOR, a, b, c)

    def shl(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.SHL, a, b, c)

    def shr(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.SHR, a, b, c)

    def addi(self, a: int, b: int, imm: int) -> None:
        self.emit(Opcode.ADDI, a, b, imm=imm)

    def andi(self, a: int, b: int, imm: int) -> None:
        self.emit(Opcode.ANDI, a, b, imm=imm)

    def ori(self, a: int, b: int, imm: int) -> None:
        self.emit(Opcode.ORI, a, b, imm=imm)

    def xori(self, a: int, b: int, imm: int) -> None:
        self.emit(Opcode.XORI, a, b, imm=imm)

    def shli(self, a: int, b: int, imm: int) -> None:
        self.emit(Opcode.SHLI, a, b, imm=imm)

    def shri(self, a: int, b: int, imm: int) -> None:
        self.emit(Opcode.SHRI, a, b, imm=imm)

    def mov(self, a: int, b: int) -> None:
        self.emit(Opcode.MOV, a, b)

    def movi(self, a: int, imm: int) -> None:
        self.emit(Opcode.MOVI, a, imm=imm)

    def not_(self, a: int, b: int) -> None:
        self.emit(Opcode.NOT, a, b)

    def cmplt(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.CMPLT, a, b, c)

    def cmpeq(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.CMPEQ, a, b, c)

    def min_(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.MIN, a, b, c)

    def max_(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.MAX, a, b, c)

    # --- integer multiply ------------------------------------------------
    def mul(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.MUL, a, b, c)

    def mulhi(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.MULHI, a, b, c)

    def div(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.DIV, a, b, c)

    def mod(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.MOD, a, b, c)

    # --- floating point --------------------------------------------------
    def fadd(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.FADD, a, b, c)

    def fsub(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.FSUB, a, b, c)

    def fmul(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.FMUL, a, b, c)

    def fdiv(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.FDIV, a, b, c)

    def fmin(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.FMIN, a, b, c)

    def fmax(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.FMAX, a, b, c)

    def fabs(self, a: int, b: int) -> None:
        self.emit(Opcode.FABS, a, b)

    def fneg(self, a: int, b: int) -> None:
        self.emit(Opcode.FNEG, a, b)

    def fma(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.FMA, a, b, c)

    def cvtif(self, a: int, b: int) -> None:
        self.emit(Opcode.CVTIF, a, b)

    def cvtfi(self, a: int, b: int) -> None:
        self.emit(Opcode.CVTFI, a, b)

    # --- memory ------------------------------------------------------------
    def load(self, a: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.LOAD, a, base, imm=offset)

    def fload(self, a: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.FLOAD, a, base, imm=offset)

    def store(self, a: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.STORE, a, base, imm=offset)

    def fstore(self, a: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.FSTORE, a, base, imm=offset)

    # --- control -------------------------------------------------------------
    def beq(self, a: int, b: int, target: str | int) -> None:
        self.emit(Opcode.BEQ, a, b, imm=self._target(target))

    def bne(self, a: int, b: int, target: str | int) -> None:
        self.emit(Opcode.BNE, a, b, imm=self._target(target))

    def blt(self, a: int, b: int, target: str | int) -> None:
        self.emit(Opcode.BLT, a, b, imm=self._target(target))

    def bge(self, a: int, b: int, target: str | int) -> None:
        self.emit(Opcode.BGE, a, b, imm=self._target(target))

    def jmp(self, target: str | int) -> None:
        self.emit(Opcode.JMP, imm=self._target(target))

    def loopnz(self, a: int, target: str | int) -> None:
        self.emit(Opcode.LOOPNZ, a, imm=self._target(target))

    # --- vector --------------------------------------------------------------
    def vadd(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.VADD, a, b, c)

    def vmul(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.VMUL, a, b, c)

    def vfma(self, a: int, b: int, c: int) -> None:
        self.emit(Opcode.VFMA, a, b, c)

    def vload(self, a: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.VLOAD, a, base, imm=offset)

    def vstore(self, a: int, base: int, offset: int = 0) -> None:
        self.emit(Opcode.VSTORE, a, base, imm=offset)

    def vbroadcast(self, a: int, b: int) -> None:
        self.emit(Opcode.VBROADCAST, a, b)

    def vreduce(self, a: int, b: int) -> None:
        self.emit(Opcode.VREDUCE, a, b)

    # --- system ----------------------------------------------------------------
    def nop(self) -> None:
        self.emit(Opcode.NOP)

    def halt(self) -> None:
        self.emit(Opcode.HALT)

    # ------------------------------------------------------------------
    # structured control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, counter: int, count: int | None = None) -> Iterator[None]:
        """Counted loop: optionally initialise ``r[counter] = count``, run the
        body, then ``LOOPNZ`` back to the top.

        The body executes ``count`` times (``count >= 1``).  Pass
        ``count=None`` when the counter register is already initialised.
        """
        if count is not None:
            if count < 1:
                raise AssemblyError(f"loop count must be >= 1, got {count}")
            self.movi(counter, count)
        top = self.label()
        yield
        self.loopnz(counter, top)

    @contextlib.contextmanager
    def _conditional(self, op: Opcode, a: int, b: int) -> Iterator[None]:
        skip = f"__skip{self._auto_label}"
        self._auto_label += 1
        self.emit(_INVERSE[op], a, b, imm=self._target(skip))
        yield
        self.label(skip)

    def if_eq(self, a: int, b: int):
        """Execute the body when ``r[a] == r[b]``."""
        return self._conditional(Opcode.BEQ, a, b)

    def if_ne(self, a: int, b: int):
        """Execute the body when ``r[a] != r[b]``."""
        return self._conditional(Opcode.BNE, a, b)

    def if_lt(self, a: int, b: int):
        """Execute the body when ``r[a] < r[b]`` (unsigned)."""
        return self._conditional(Opcode.BLT, a, b)

    def if_ge(self, a: int, b: int):
        """Execute the body when ``r[a] >= r[b]`` (unsigned)."""
        return self._conditional(Opcode.BGE, a, b)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self, auto_halt: bool = True) -> Program:
        """Patch forward references, validate, and return the program.

        With ``auto_halt`` (the default) a ``HALT`` is appended when the
        program does not already end in one; this also gives labels defined
        at the very end of the program a real instruction to land on.
        """
        if auto_halt and (
            not self._instructions
            or self._instructions[-1].op != int(Opcode.HALT)
            or any(index >= len(self._instructions) for index in self._labels.values())
        ):
            self.emit(Opcode.HALT)
        unresolved = [label for _, label in self._fixups if label not in self._labels]
        if unresolved:
            raise AssemblyError(f"unresolved labels: {sorted(set(unresolved))}")
        instructions = list(self._instructions)
        for index, label in self._fixups:
            old = instructions[index]
            instructions[index] = Instruction(old.op, old.a, old.b, old.c, self._labels[label])
        program = Program(instructions=instructions, name=self.name, labels=dict(self._labels))
        program.validate()
        return program
