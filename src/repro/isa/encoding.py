"""Deterministic binary encoding of instructions and programs.

Each instruction packs to exactly :data:`INSTRUCTION_SIZE` bytes
(``<BBBBq``: opcode, three register fields, signed 64-bit immediate).  The
encoding serves three purposes:

* program fingerprints (widget-generation determinism is asserted on bytes),
* storage accounting for the widget *selection* alternative (§VI-A), and
* shipping programs between simulated nodes in the blockchain substrate.
"""

from __future__ import annotations

import struct

from repro.errors import EncodingError
from repro.isa.instructions import Instruction
from repro.isa.program import Program

_STRUCT = struct.Struct("<BBBBq")

#: Size in bytes of one encoded instruction.
INSTRUCTION_SIZE = _STRUCT.size

_MAGIC = b"HCPR"
_VERSION = 1
_HEADER = struct.Struct("<4sHI")  # magic, version, instruction count


def encode_instruction(instr: Instruction) -> bytes:
    """Encode one instruction to its fixed-size binary form."""
    try:
        return _STRUCT.pack(instr.op, instr.a, instr.b, instr.c, instr.imm)
    except struct.error as exc:
        raise EncodingError(f"cannot encode {instr}: {exc}") from exc


def decode_instruction(data: bytes) -> Instruction:
    """Decode one instruction from exactly :data:`INSTRUCTION_SIZE` bytes."""
    if len(data) != INSTRUCTION_SIZE:
        raise EncodingError(
            f"expected {INSTRUCTION_SIZE} bytes, got {len(data)}"
        )
    op, a, b, c, imm = _STRUCT.unpack(data)
    instr = Instruction(op=op, a=a, b=b, c=c, imm=imm)
    instr.validate()
    return instr


def encode_program(program: Program) -> bytes:
    """Encode a whole program (header + instruction stream).

    Labels and the program name are intentionally *not* encoded: they are
    debugging metadata and must not affect fingerprints.
    """
    parts = [_HEADER.pack(_MAGIC, _VERSION, len(program.instructions))]
    for instr in program.instructions:
        parts.append(encode_instruction(instr))
    return b"".join(parts)


def decode_program(data: bytes, name: str = "decoded") -> Program:
    """Decode a program previously produced by :func:`encode_program`."""
    if len(data) < _HEADER.size:
        raise EncodingError("truncated program header")
    magic, version, count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise EncodingError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise EncodingError(f"unsupported program version {version}")
    expected = _HEADER.size + count * INSTRUCTION_SIZE
    if len(data) != expected:
        raise EncodingError(
            f"program length mismatch: header says {expected} bytes, got {len(data)}"
        )
    instructions = []
    offset = _HEADER.size
    for _ in range(count):
        instructions.append(decode_instruction(data[offset : offset + INSTRUCTION_SIZE]))
        offset += INSTRUCTION_SIZE
    program = Program(instructions=instructions, name=name)
    program.validate()
    return program
