"""Opcode definitions for the synthetic GPP ISA.

Opcodes are grouped into :class:`OpClass` resource classes.  The classes
mirror Table I of the paper (the resources a hash-seed field perturbs) plus
the vector and system classes the paper lists among the structures HashCore
must stress (§IV-A).
"""

from __future__ import annotations

import enum

#: Number of 64-bit integer registers (r0..r15).
NUM_INT_REGS = 16
#: Number of float64 registers (f0..f15).
NUM_FP_REGS = 16
#: Number of vector registers (v0..v7).
NUM_VEC_REGS = 8
#: Lanes per vector register.
VEC_LANES = 4


class OpClass(enum.IntEnum):
    """Resource class of an instruction — the unit that executes it."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    LOAD = 3
    STORE = 4
    BRANCH = 5
    VECTOR = 6
    SYSTEM = 7


class Opcode(enum.IntEnum):
    """Every instruction in the ISA.

    Operand conventions (fields ``a``, ``b``, ``c``, ``imm`` of
    :class:`~repro.isa.instructions.Instruction`):

    * ALU/FP three-register ops: ``a`` = destination, ``b``/``c`` = sources.
    * Immediate ops (``*I``): ``a`` = destination, ``b`` = source,
      ``imm`` = literal.
    * ``LOAD``/``FLOAD``: ``a`` = destination, ``b`` = base register,
      ``imm`` = offset (address is ``(reg[b] + imm) mod memory_words``).
    * ``STORE``/``FSTORE``: ``a`` = value register, ``b`` = base register,
      ``imm`` = offset.
    * Conditional branches: ``a``/``b`` = compared registers, ``imm`` =
      absolute target instruction index.
    * ``LOOPNZ``: decrement ``reg[a]``; branch to ``imm`` when non-zero.
    * Vector ops: ``a``/``b``/``c`` name vector registers, except
      ``VLOAD``/``VSTORE`` where ``b`` is an integer base register and
      ``VBROADCAST``/``VREDUCE`` which move between ``f`` and ``v`` files.
    """

    # --- integer ALU ------------------------------------------------------
    ADD = 0
    SUB = 1
    AND = 2
    OR = 3
    XOR = 4
    SHL = 5
    SHR = 6
    ADDI = 7
    ANDI = 8
    ORI = 9
    XORI = 10
    SHLI = 11
    SHRI = 12
    MOV = 13
    MOVI = 14
    NOT = 15
    CMPLT = 16
    CMPEQ = 17
    MIN = 18
    MAX = 19

    # --- integer multiply / divide ---------------------------------------
    MUL = 24
    MULHI = 25
    DIV = 26
    MOD = 27

    # --- floating point ---------------------------------------------------
    FADD = 32
    FSUB = 33
    FMUL = 34
    FDIV = 35
    FMIN = 36
    FMAX = 37
    FABS = 38
    FNEG = 39
    FMA = 40
    CVTIF = 41
    CVTFI = 42

    # --- memory -----------------------------------------------------------
    LOAD = 48
    FLOAD = 49
    STORE = 52
    FSTORE = 53

    # --- control ----------------------------------------------------------
    BEQ = 56
    BNE = 57
    BLT = 58
    BGE = 59
    JMP = 60
    LOOPNZ = 61

    # --- vector -----------------------------------------------------------
    VADD = 64
    VMUL = 65
    VFMA = 66
    VLOAD = 67
    VSTORE = 68
    VBROADCAST = 69
    VREDUCE = 70

    # --- system -----------------------------------------------------------
    NOP = 72
    HALT = 73


_CLASS_BY_OPCODE: dict[int, OpClass] = {}
for _op in Opcode:
    if _op < Opcode.MUL:
        _cls = OpClass.INT_ALU
    elif _op < Opcode.FADD:
        _cls = OpClass.INT_MUL
    elif _op < Opcode.LOAD:
        _cls = OpClass.FP_ALU
    elif _op < Opcode.STORE:
        _cls = OpClass.LOAD
    elif _op < Opcode.BEQ:
        _cls = OpClass.STORE
    elif _op < Opcode.VADD:
        _cls = OpClass.BRANCH
    elif _op < Opcode.NOP:
        _cls = OpClass.VECTOR
    else:
        _cls = OpClass.SYSTEM
    _CLASS_BY_OPCODE[int(_op)] = _cls

# Vector loads/stores occupy the memory pipeline as well as the vector unit;
# for mix accounting they count as VECTOR (their dominant resource), matching
# how the generator budgets them.

#: Branch opcodes that are conditional (predicted by the branch predictor).
CONDITIONAL_BRANCHES = frozenset(
    {int(Opcode.BEQ), int(Opcode.BNE), int(Opcode.BLT), int(Opcode.BGE), int(Opcode.LOOPNZ)}
)

#: Opcodes whose ``imm`` field is a branch target (absolute instruction index).
BRANCH_OPCODES = frozenset(CONDITIONAL_BRANCHES | {int(Opcode.JMP)})

#: Opcodes that read memory.
MEMORY_READ_OPCODES = frozenset({int(Opcode.LOAD), int(Opcode.FLOAD), int(Opcode.VLOAD)})

#: Opcodes that write memory.
MEMORY_WRITE_OPCODES = frozenset({int(Opcode.STORE), int(Opcode.FSTORE), int(Opcode.VSTORE)})


def opcode_class(op: int) -> OpClass:
    """Return the :class:`OpClass` that executes opcode ``op``."""
    try:
        return _CLASS_BY_OPCODE[int(op)]
    except KeyError:
        raise ValueError(f"unknown opcode {op!r}") from None


def opcode_name(op: int) -> str:
    """Return the mnemonic for opcode ``op``."""
    return Opcode(op).name


#: Opcodes with an integer destination register in field ``a``.
INT_DEST_OPCODES = frozenset(
    int(o)
    for o in Opcode
    if opcode_class(o) in (OpClass.INT_ALU, OpClass.INT_MUL)
) | {int(Opcode.LOAD), int(Opcode.CVTFI)}

#: Opcodes with a floating-point destination register in field ``a``.
FP_DEST_OPCODES = frozenset(
    {
        int(Opcode.FADD),
        int(Opcode.FSUB),
        int(Opcode.FMUL),
        int(Opcode.FDIV),
        int(Opcode.FMIN),
        int(Opcode.FMAX),
        int(Opcode.FABS),
        int(Opcode.FNEG),
        int(Opcode.FMA),
        int(Opcode.CVTIF),
        int(Opcode.FLOAD),
        int(Opcode.VREDUCE),
    }
)
