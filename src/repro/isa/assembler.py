"""Two-pass textual assembler and matching disassembler.

The assembly syntax is deliberately small::

    ; comments run to end of line
    start:
        MOVI   r1, 1000
    loop:
        ADD    r2, r2, r1
        LOAD   r3, [r4 + 8]
        FADD   f0, f1, f2
        BEQ    r2, r3, start
        LOOPNZ r1, loop
        HALT

Register operands are ``rN`` (integer), ``fN`` (floating point), ``vN``
(vector).  Memory operands are ``[rN + offset]`` (offset optional, may be
negative).  Branch targets are labels or literal instruction indices.
``assemble(disassemble(p))`` reproduces ``p`` exactly — a property the test
suite checks with hypothesis-generated programs.
"""

from __future__ import annotations

import re

from repro.errors import AssemblyError
from repro.isa.instructions import Instruction
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    Opcode,
    opcode_name,
)
from repro.isa.program import Program

_MEM_RE = re.compile(r"^\[\s*r(\d+)\s*(?:([+-])\s*(\d+)\s*)?\]$")
_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")

# Operand signatures: how each opcode's textual operands map to fields.
#   RRR   -> a, b, c registers
#   RRI   -> a, b registers + immediate
#   RR    -> a, b registers
#   RI    -> a register + immediate
#   MEM   -> a register + [b + imm]
#   BR2   -> a, b registers + branch target
#   BR1   -> a register + branch target
#   TGT   -> branch target only
#   NONE  -> no operands
_SIGNATURES: dict[int, str] = {}


def _sig(ops: list[Opcode], signature: str) -> None:
    for op in ops:
        _SIGNATURES[int(op)] = signature


_sig(
    [
        Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR,
        Opcode.SHL, Opcode.SHR, Opcode.CMPLT, Opcode.CMPEQ, Opcode.MIN,
        Opcode.MAX, Opcode.MUL, Opcode.MULHI, Opcode.DIV, Opcode.MOD,
        Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMIN,
        Opcode.FMAX, Opcode.FMA, Opcode.VADD, Opcode.VMUL, Opcode.VFMA,
    ],
    "RRR",
)
_sig([Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SHLI, Opcode.SHRI], "RRI")
_sig(
    [
        Opcode.MOV, Opcode.NOT, Opcode.FABS, Opcode.FNEG, Opcode.CVTIF,
        Opcode.CVTFI, Opcode.VBROADCAST, Opcode.VREDUCE,
    ],
    "RR",
)
_sig([Opcode.MOVI], "RI")
_sig([Opcode.LOAD, Opcode.FLOAD, Opcode.STORE, Opcode.FSTORE, Opcode.VLOAD, Opcode.VSTORE], "MEM")
_sig([Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE], "BR2")
_sig([Opcode.LOOPNZ], "BR1")
_sig([Opcode.JMP], "TGT")
_sig([Opcode.NOP, Opcode.HALT], "NONE")

_MNEMONICS = {opcode_name(op): int(op) for op in Opcode}

# Which register file each textual field uses, for rendering r/f/v prefixes.
_FIELD_FILES: dict[int, tuple[str, str, str]] = {}
for _op in Opcode:
    a = b = c = "r"
    name = _op.name
    if name.startswith("F") and name not in ("FSTORE", "FLOAD"):
        a = b = c = "f"
    if name in ("FLOAD",):
        a = "f"
    if name in ("FSTORE",):
        a = "f"
    if name.startswith("V"):
        a = b = c = "v"
        if name == "VBROADCAST":
            b = "f"
        if name == "VREDUCE":
            a, b = "f", "v"
        if name in ("VLOAD", "VSTORE"):
            b = "r"
    if name in ("CVTIF",):
        a, b = "f", "r"
    if name in ("CVTFI",):
        a, b = "r", "f"
    _FIELD_FILES[int(_op)] = (a, b, c)


def _parse_register(token: str, expected_file: str, line_no: int) -> int:
    token = token.strip()
    if not token or token[0].lower() != expected_file:
        raise AssemblyError(
            f"line {line_no}: expected {expected_file!r}-register, got {token!r}"
        )
    try:
        return int(token[1:])
    except ValueError:
        raise AssemblyError(f"line {line_no}: bad register {token!r}") from None


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AssemblyError(f"line {line_no}: bad integer {token!r}") from None


def assemble(source: str, name: str = "assembled") -> Program:
    """Assemble textual source into a validated :class:`Program`."""
    labels: dict[str, int] = {}
    pending: list[tuple[int, str, list[str]]] = []  # (line_no, mnemonic, operands)

    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            label = match.group(1)
            if label in labels:
                raise AssemblyError(f"line {line_no}: duplicate label {label!r}")
            labels[label] = len(pending)
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].upper()
        operands = [t.strip() for t in parts[1].split(",")] if len(parts) > 1 else []
        if mnemonic not in _MNEMONICS:
            raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")
        pending.append((line_no, mnemonic, operands))

    instructions: list[Instruction] = []
    for line_no, mnemonic, operands in pending:
        op = _MNEMONICS[mnemonic]
        instructions.append(_build(op, operands, labels, line_no))

    program = Program(instructions=instructions, name=name, labels=dict(labels))
    program.validate()
    return program


def _resolve_target(token: str, labels: dict[str, int], line_no: int) -> int:
    token = token.strip()
    if token in labels:
        return labels[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(f"line {line_no}: unknown label {token!r}") from None


def _expect(operands: list[str], count: int, mnemonic: str, line_no: int) -> None:
    if len(operands) != count:
        raise AssemblyError(
            f"line {line_no}: {mnemonic} takes {count} operand(s), got {len(operands)}"
        )


def _build(op: int, operands: list[str], labels: dict[str, int], line_no: int) -> Instruction:
    signature = _SIGNATURES[op]
    files = _FIELD_FILES[op]
    mnemonic = opcode_name(op)
    if signature == "RRR":
        _expect(operands, 3, mnemonic, line_no)
        return Instruction(
            op,
            _parse_register(operands[0], files[0], line_no),
            _parse_register(operands[1], files[1], line_no),
            _parse_register(operands[2], files[2], line_no),
        )
    if signature == "RRI":
        _expect(operands, 3, mnemonic, line_no)
        return Instruction(
            op,
            _parse_register(operands[0], files[0], line_no),
            _parse_register(operands[1], files[1], line_no),
            0,
            _parse_int(operands[2], line_no),
        )
    if signature == "RR":
        _expect(operands, 2, mnemonic, line_no)
        return Instruction(
            op,
            _parse_register(operands[0], files[0], line_no),
            _parse_register(operands[1], files[1], line_no),
        )
    if signature == "RI":
        _expect(operands, 2, mnemonic, line_no)
        return Instruction(
            op,
            _parse_register(operands[0], files[0], line_no),
            0,
            0,
            _parse_int(operands[1], line_no),
        )
    if signature == "MEM":
        _expect(operands, 2, mnemonic, line_no)
        match = _MEM_RE.match(operands[1])
        if not match:
            raise AssemblyError(f"line {line_no}: bad memory operand {operands[1]!r}")
        base = int(match.group(1))
        offset = int(match.group(3) or 0)
        if match.group(2) == "-":
            offset = -offset
        return Instruction(op, _parse_register(operands[0], files[0], line_no), base, 0, offset)
    if signature == "BR2":
        _expect(operands, 3, mnemonic, line_no)
        return Instruction(
            op,
            _parse_register(operands[0], "r", line_no),
            _parse_register(operands[1], "r", line_no),
            0,
            _resolve_target(operands[2], labels, line_no),
        )
    if signature == "BR1":
        _expect(operands, 2, mnemonic, line_no)
        return Instruction(
            op,
            _parse_register(operands[0], "r", line_no),
            0,
            0,
            _resolve_target(operands[1], labels, line_no),
        )
    if signature == "TGT":
        _expect(operands, 1, mnemonic, line_no)
        return Instruction(op, 0, 0, 0, _resolve_target(operands[0], labels, line_no))
    # NONE
    _expect(operands, 0, mnemonic, line_no)
    return Instruction(op)


def disassemble(program: Program) -> str:
    """Render a program to assembly text that re-assembles to the same bytes.

    Branch targets are emitted as synthetic ``L<index>`` labels.
    """
    targets = {
        instr.imm
        for instr in program.instructions
        if instr.op in BRANCH_OPCODES
    }
    lines: list[str] = []
    for index, instr in enumerate(program.instructions):
        if index in targets:
            lines.append(f"L{index}:")
        lines.append("    " + _render(instr))
    # A trailing branch may target one-past-the-end only if validation allowed
    # it; validate() forbids that, so all targets are covered above.
    return "\n".join(lines) + "\n"


def _render(instr: Instruction) -> str:
    signature = _SIGNATURES[instr.op]
    files = _FIELD_FILES[instr.op]
    mnemonic = opcode_name(instr.op)
    if signature == "RRR":
        return f"{mnemonic} {files[0]}{instr.a}, {files[1]}{instr.b}, {files[2]}{instr.c}"
    if signature == "RRI":
        return f"{mnemonic} {files[0]}{instr.a}, {files[1]}{instr.b}, {instr.imm}"
    if signature == "RR":
        return f"{mnemonic} {files[0]}{instr.a}, {files[1]}{instr.b}"
    if signature == "RI":
        return f"{mnemonic} {files[0]}{instr.a}, {instr.imm}"
    if signature == "MEM":
        sign = "+" if instr.imm >= 0 else "-"
        return f"{mnemonic} {files[0]}{instr.a}, [r{instr.b} {sign} {abs(instr.imm)}]"
    if signature == "BR2":
        return f"{mnemonic} r{instr.a}, r{instr.b}, L{instr.imm}"
    if signature == "BR1":
        return f"{mnemonic} r{instr.a}, L{instr.imm}"
    if signature == "TGT":
        return f"{mnemonic} L{instr.imm}"
    return mnemonic
