"""Control-flow graph, liveness analysis, and dead-code elimination.

This is the reproduction's *reduction adversary* for §IV-A's
irreducibility requirement: "the widget should also be irreducible in the
sense that certain code segments cannot be skipped and the output cannot
be predicted without full execution".  A would-be ASIC designer's first
move against generated code is classical compiler analysis — build the
CFG, run backward liveness, delete instructions whose results are never
observed.  The E12 bench runs exactly that attack on widgets and measures
how little survives deletion:

* with register snapshots (HashCore's output mechanism) every register is
  observable at every dynamic point, so nothing is removable;
* even if only the *final* architectural state were observed, the
  generator's dependency chaining leaves almost nothing dead.

The analyses are standard and conservative: stores, branches and ``HALT``
are always side-effecting; loads are removable only when their value is
dead (the architectural state, not timing, is what an attacker must
reproduce).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.isa.opcodes import BRANCH_OPCODES, Opcode
from repro.isa.program import Program

#: Register namespaces.
INT, FP, VEC = "r", "f", "v"

_ALL_INT = frozenset((INT, i) for i in range(16))
_ALL_FP = frozenset((FP, i) for i in range(16))
_ALL_VEC = frozenset((VEC, i) for i in range(8))

#: Every architectural register (the live-out set of a snapshotted widget;
#: vector registers are folded into FP state by the widget epilogue but an
#: attacker must still reproduce them mid-run, so they are included).
ALL_REGS = frozenset(_ALL_INT | _ALL_FP | _ALL_VEC)

#: Registers captured by output snapshots (int + fp files).
SNAPSHOT_REGS = frozenset(_ALL_INT | _ALL_FP)


def uses_defs(ins: Instruction) -> tuple[set, set]:
    """(uses, defs) register sets of one instruction."""
    op = Opcode(ins.op)
    name = op.name
    a, b, c = ins.a, ins.b, ins.c
    # Three-register integer ops.
    if name in ("ADD", "SUB", "AND", "OR", "XOR", "SHL", "SHR", "CMPLT",
                "CMPEQ", "MIN", "MAX", "MUL", "MULHI", "DIV", "MOD"):
        return {(INT, b), (INT, c)}, {(INT, a)}
    if name in ("ADDI", "ANDI", "ORI", "XORI", "SHLI", "SHRI", "MOV", "NOT"):
        return {(INT, b)}, {(INT, a)}
    if name == "MOVI":
        return set(), {(INT, a)}
    if name in ("FADD", "FSUB", "FMUL", "FDIV", "FMIN", "FMAX"):
        return {(FP, b), (FP, c)}, {(FP, a)}
    if name in ("FABS", "FNEG"):
        return {(FP, b)}, {(FP, a)}
    if name == "FMA":
        return {(FP, a), (FP, b), (FP, c)}, {(FP, a)}
    if name == "CVTIF":
        return {(INT, b)}, {(FP, a)}
    if name == "CVTFI":
        return {(FP, b)}, {(INT, a)}
    if name == "LOAD":
        return {(INT, b)}, {(INT, a)}
    if name == "FLOAD":
        return {(INT, b)}, {(FP, a)}
    if name == "STORE":
        return {(INT, a), (INT, b)}, set()
    if name == "FSTORE":
        return {(FP, a), (INT, b)}, set()
    if name in ("VADD", "VMUL"):
        return {(VEC, b), (VEC, c)}, {(VEC, a)}
    if name == "VFMA":
        return {(VEC, a), (VEC, b), (VEC, c)}, {(VEC, a)}
    if name == "VLOAD":
        return {(INT, b)}, {(VEC, a)}
    if name == "VSTORE":
        return {(VEC, a), (INT, b)}, set()
    if name == "VBROADCAST":
        return {(FP, b)}, {(VEC, a)}
    if name == "VREDUCE":
        return {(VEC, b)}, {(FP, a)}
    if name in ("BEQ", "BNE", "BLT", "BGE"):
        return {(INT, a), (INT, b)}, set()
    if name == "LOOPNZ":
        return {(INT, a)}, {(INT, a)}
    if name in ("JMP", "NOP", "HALT"):
        return set(), set()
    raise AssertionError(f"unhandled opcode {name}")  # pragma: no cover


def has_side_effect(ins: Instruction) -> bool:
    """Instructions an optimizer can never delete: memory writes, control
    flow, and termination."""
    return ins.op in BRANCH_OPCODES or Opcode(ins.op).name in (
        "STORE", "FSTORE", "VSTORE", "HALT",
    )


@dataclass(slots=True)
class BasicBlock:
    """Half-open instruction range [start, end) plus CFG edges."""

    start: int
    end: int
    successors: list[int]


def build_cfg(program: Program) -> list[BasicBlock]:
    """Partition a program into basic blocks with successor edges."""
    n = len(program.instructions)
    leaders = {0}
    for index, ins in enumerate(program.instructions):
        if ins.op in BRANCH_OPCODES:
            leaders.add(ins.imm)
            if index + 1 < n:
                leaders.add(index + 1)
        if ins.op == int(Opcode.HALT) and index + 1 < n:
            leaders.add(index + 1)
    ordered = sorted(leaders)
    block_of = {}
    blocks: list[BasicBlock] = []
    for i, start in enumerate(ordered):
        end = ordered[i + 1] if i + 1 < len(ordered) else n
        block_of[start] = len(blocks)
        blocks.append(BasicBlock(start=start, end=end, successors=[]))
    for block in blocks:
        last = program.instructions[block.end - 1]
        if last.op == int(Opcode.HALT):
            continue
        if last.op == int(Opcode.JMP):
            block.successors.append(block_of[last.imm])
            continue
        if last.op in BRANCH_OPCODES:  # conditional: target + fallthrough
            block.successors.append(block_of[last.imm])
        if block.end < n:
            block.successors.append(block_of[block.end])
    return blocks


def liveness(
    program: Program,
    live_out: frozenset = SNAPSHOT_REGS,
) -> list[set]:
    """Per-instruction live-after sets (backward dataflow to fixpoint).

    ``live_out`` is what an observer sees when the program terminates
    (defaults to the snapshot register files).
    """
    blocks = build_cfg(program)
    n_blocks = len(blocks)
    block_live_in: list[set] = [set() for _ in range(n_blocks)]
    block_live_out: list[set] = [set() for _ in range(n_blocks)]

    # Blocks that can terminate (HALT or fall off the end) see live_out.
    def terminal(block: BasicBlock) -> bool:
        last = program.instructions[block.end - 1]
        if last.op == int(Opcode.HALT):
            return True
        return not block.successors

    changed = True
    while changed:
        changed = False
        for index in range(n_blocks - 1, -1, -1):
            block = blocks[index]
            out = set(live_out) if terminal(block) else set()
            for successor in block.successors:
                out |= block_live_in[successor]
            live = set(out)
            for position in range(block.end - 1, block.start - 1, -1):
                ins = program.instructions[position]
                uses, defs = uses_defs(ins)
                live -= defs
                live |= uses
            if out != block_live_out[index] or live != block_live_in[index]:
                block_live_out[index] = out
                block_live_in[index] = live
                changed = True

    # Second pass: per-instruction live-after sets.
    live_after: list[set] = [set() for _ in range(len(program.instructions))]
    for index, block in enumerate(blocks):
        live = set(block_live_out[index])
        for position in range(block.end - 1, block.start - 1, -1):
            live_after[position] = set(live)
            uses, defs = uses_defs(program.instructions[position])
            live -= defs
            live |= uses
    return live_after


@dataclass(frozen=True, slots=True)
class DceReport:
    """Outcome of the dead-code-elimination attack."""

    original: int
    removed: int
    program: Program

    @property
    def removed_fraction(self) -> float:
        return self.removed / self.original if self.original else 0.0


def eliminate_dead_code(
    program: Program,
    live_out: frozenset = SNAPSHOT_REGS,
    observe_everywhere: bool = False,
) -> DceReport:
    """Delete instructions whose results are provably unobservable.

    ``observe_everywhere`` models HashCore's snapshot mechanism: register
    state is sampled at dynamic instruction counts the optimizer cannot
    align with static code, so every register write is observable — only
    literal ``NOP``s are removable.  Iterates to a fixpoint (removing one
    dead write can kill its feeders).
    """
    current = program
    total_removed = 0
    while True:
        removed_this_round = 0
        keep: list[Instruction] = []
        if observe_everywhere:
            for ins in current.instructions:
                if ins.op == int(Opcode.NOP):
                    removed_this_round += 1
                else:
                    keep.append(ins)
        else:
            live_after = liveness(current, live_out)
            index_map: dict[int, int] = {}
            for position, ins in enumerate(current.instructions):
                _, defs = uses_defs(ins)
                dead = (
                    not has_side_effect(ins)
                    and (
                        ins.op == int(Opcode.NOP)
                        or (defs and not (defs & live_after[position]))
                    )
                )
                if dead:
                    removed_this_round += 1
                else:
                    index_map[position] = len(keep)
                    keep.append(ins)
            # Re-target branches to the new indices (branch instructions
            # are never removed, and removing code between a branch and
            # its target shifts indices).
            retargeted = []
            for ins in keep:
                if ins.op in BRANCH_OPCODES:
                    target = ins.imm
                    while target not in index_map and target < len(current.instructions):
                        target += 1  # removed leader: fall to next kept
                    new_target = index_map.get(target, len(keep) - 1)
                    retargeted.append(
                        Instruction(ins.op, ins.a, ins.b, ins.c, new_target)
                    )
                else:
                    retargeted.append(ins)
            keep = retargeted
        total_removed += removed_this_round
        if not keep:
            keep = [Instruction(int(Opcode.HALT))]
        current = Program(instructions=keep, name=current.name + "-dce")
        current.validate()
        if removed_this_round == 0 or observe_everywhere:
            break
    return DceReport(
        original=len(program.instructions),
        removed=total_removed,
        program=current,
    )
