"""Synthetic GPP instruction-set architecture.

The paper's widgets are x86 programs produced by GCC.  A pure-Python
reproduction cannot execute native x86, so this subpackage defines a compact
x86-*like* register ISA with the same resource classes the paper targets
(Table I): integer ALU, integer multiply, floating point, loads, stores,
branch behaviour, plus a small vector extension.  Widgets, the reference
workloads, and the RandomX-like baseline are all programs in this ISA, and
the :mod:`repro.machine` simulator plays the role of the physical CPU.

Public surface:

* :class:`~repro.isa.opcodes.Opcode` / :class:`~repro.isa.opcodes.OpClass`
* :class:`~repro.isa.instructions.Instruction`
* :class:`~repro.isa.program.Program`
* :func:`~repro.isa.encoding.encode_program` / ``decode_program``
* :func:`~repro.isa.assembler.assemble` / ``disassemble``
* :class:`~repro.isa.builder.ProgramBuilder`
"""

from repro.isa.opcodes import (
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_VEC_REGS,
    VEC_LANES,
    OpClass,
    Opcode,
    opcode_class,
    opcode_name,
)
from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.isa.encoding import (
    INSTRUCTION_SIZE,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.assembler import assemble, disassemble
from repro.isa.builder import ProgramBuilder

__all__ = [
    "NUM_FP_REGS",
    "NUM_INT_REGS",
    "NUM_VEC_REGS",
    "VEC_LANES",
    "OpClass",
    "Opcode",
    "opcode_class",
    "opcode_name",
    "Instruction",
    "Program",
    "INSTRUCTION_SIZE",
    "encode_instruction",
    "decode_instruction",
    "encode_program",
    "decode_program",
    "assemble",
    "disassemble",
    "ProgramBuilder",
]
