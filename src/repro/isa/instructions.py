"""Instruction representation and static validation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingError
from repro.isa.opcodes import (
    BRANCH_OPCODES,
    FP_DEST_OPCODES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_VEC_REGS,
    OpClass,
    Opcode,
    opcode_class,
    opcode_name,
)

_IMM_MIN = -(1 << 63)
_IMM_MAX = (1 << 63) - 1


@dataclass(frozen=True, slots=True)
class Instruction:
    """A single decoded instruction.

    Fields ``a``, ``b``, ``c`` are register indices whose meaning depends on
    the opcode (see :class:`~repro.isa.opcodes.Opcode`); ``imm`` is a signed
    64-bit immediate / offset / branch target.
    """

    op: int
    a: int = 0
    b: int = 0
    c: int = 0
    imm: int = 0

    def op_class(self) -> OpClass:
        """Resource class executing this instruction."""
        return opcode_class(self.op)

    def is_branch(self) -> bool:
        """True when ``imm`` is a control-flow target."""
        return self.op in BRANCH_OPCODES

    def validate(self, program_length: int | None = None) -> None:
        """Raise :class:`EncodingError` if any field is out of range.

        When ``program_length`` is given, branch targets must fall inside
        ``[0, program_length)``.
        """
        try:
            Opcode(self.op)
        except ValueError:
            raise EncodingError(f"unknown opcode {self.op}") from None
        cls = opcode_class(self.op)
        # FP-destination check first: VREDUCE is VECTOR-class but writes an
        # FP register; CVTFI is FP-class but writes an integer register.
        if self.op in FP_DEST_OPCODES or cls == OpClass.FP_ALU:
            limit_a = NUM_FP_REGS
        elif cls == OpClass.VECTOR:
            limit_a = NUM_VEC_REGS
        else:
            limit_a = NUM_INT_REGS
        # Field-by-field bounds.  b/c can address either file depending on
        # the opcode; the widest applicable file bounds them.
        limit_bc = max(NUM_INT_REGS, NUM_FP_REGS)
        for name, value, limit in (
            ("a", self.a, limit_a),
            ("b", self.b, limit_bc),
            ("c", self.c, limit_bc),
        ):
            if not 0 <= value < max(limit, limit_bc if name != "a" else limit):
                raise EncodingError(
                    f"{opcode_name(self.op)}: field {name}={value} out of range"
                )
        if not _IMM_MIN <= self.imm <= _IMM_MAX:
            raise EncodingError(f"{opcode_name(self.op)}: imm {self.imm} out of i64 range")
        if program_length is not None and self.is_branch():
            if not 0 <= self.imm < program_length:
                raise EncodingError(
                    f"{opcode_name(self.op)}: branch target {self.imm} outside "
                    f"program of {program_length} instructions"
                )

    def __str__(self) -> str:
        return (
            f"{opcode_name(self.op):<10} a={self.a:<2} b={self.b:<2} "
            f"c={self.c:<2} imm={self.imm}"
        )
