"""Pointer-chasing workload: latency-bound sparse graph traversal.

Counterpart of SPEC CPU 2017 *605.mcf_s* (network simplex over huge sparse
graphs): long chains of dependent loads over a working set far larger than
L2, where the core spends most cycles waiting on the memory hierarchy and
IPC collapses well below 1.  The kernel walks a random pointer ring spanning
8 MiB (hits L3, frequently DRAM on cold lines) with a dependent per-node
weight lookup and a data-dependent accumulation branch.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.workloads.base import MemoryDirective, Workload, WorkloadImage

#: Memory layout (word addresses).
RING_BASE = 0
RING_WORDS = 1 << 14  # 128 KiB pointer ring — misses L1, lives in L2/L3
WEIGHT_BASE = 1 << 17
WEIGHT_WORDS = 1 << 15  # 256 KiB of node weights — pushes L2 into conflict
WEIGHT_MASK = WEIGHT_WORDS - 1

_HOPS_PER_SCALE = 40_000


class GraphWorkload(Workload):
    """Dependent-load pointer chase with per-node bookkeeping."""

    name = "graph"
    description = "pointer-chasing sparse traversal (mcf-like)"
    spec_counterpart = "605.mcf_s"

    def build(self, scale: int = 1) -> WorkloadImage:
        self._check_scale(scale)
        b = ProgramBuilder(self.name)

        # r2 hop counter, r5 current node pointer, r6 weight, r7 total cost,
        # r8 zero, r9 weight index, r10 scratch, r14 weight mask.
        b.movi(5, RING_BASE)
        b.movi(7, 0)
        b.movi(8, 0)
        b.movi(14, WEIGHT_MASK)

        with b.loop(2, _HOPS_PER_SCALE * scale):
            # The chase: each load's address depends on the previous load.
            b.load(5, 5, 0)
            # Dependent weight lookup for the visited node.
            b.and_(9, 5, 14)
            b.load(6, 9, WEIGHT_BASE)
            b.add(7, 7, 6)
            # Data-dependent branch on the node weight (~50/50).
            b.andi(10, 6, 1)
            with b.if_ne(10, 8):
                b.xor(7, 7, 5)

        return WorkloadImage(
            program=b.build(),
            memory_init=[
                MemoryDirective("ring", 0x6EAF, RING_BASE, RING_WORDS),
                MemoryDirective("random", 0x13C5, WEIGHT_BASE, WEIGHT_WORDS),
            ],
            instruction_budget=10_000_000 * scale,
        )
