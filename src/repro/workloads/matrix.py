"""Floating-point stencil workload: streaming FP/vector sweeps.

Counterpart of SPEC CPU 2017's FP-speed codes (*603.bwaves_s* /
*619.lbm_s*).  These spend their cycles in regular loop nests over large
arrays: fused multiply-adds, unit-stride streams, almost no unpredictable
control flow.  The kernel sweeps three arrays with a vector FMA stream plus
a scalar reduction tail, giving the high-ILP, high-branch-accuracy,
FP-dominated profile characteristic of that benchmark class.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.workloads.base import MemoryDirective, Workload, WorkloadImage

#: Memory layout (word addresses).
A_BASE = 0
B_BASE = 1 << 14
C_BASE = 1 << 15
ARRAY_WORDS = 1 << 14  # 128 KiB per array; 3 arrays stream through L2

_SWEEPS_PER_SCALE = 6
_STEPS_PER_SWEEP = ARRAY_WORDS // 4


class MatrixWorkload(Workload):
    """Streaming FP stencil with vector FMAs and a scalar reduction."""

    name = "matrix"
    description = "FP/vector stencil sweep (bwaves/lbm-like)"
    spec_counterpart = "603.bwaves_s"

    def build(self, scale: int = 1) -> WorkloadImage:
        self._check_scale(scale)
        b = ProgramBuilder(self.name)

        # r2 sweep counter, r3 element index, r4 step counter; f0 reduction
        # accumulator, f4 stencil coefficient; v0-v2 stream registers.
        b.movi(5, 3)
        b.cvtif(4, 5)       # f4 = 3.0 — stencil coefficient
        with b.loop(2, _SWEEPS_PER_SCALE * scale):
            b.movi(3, 0)
            with b.loop(4, _STEPS_PER_SWEEP):
                # Vector stream: C[i..i+3] += A * B (accumulate in v2).
                b.vload(0, 3, A_BASE)
                b.vload(1, 3, B_BASE)
                b.vload(2, 3, C_BASE)
                b.vfma(2, 0, 1)
                b.vstore(2, 3, C_BASE)
                # Scalar stencil tail: the multiply runs off the critical
                # path; only the 3-cycle add chains across iterations.
                b.fload(1, 3, A_BASE)
                b.fmul(2, 1, 4)
                b.fadd(0, 0, 2)
                b.addi(3, 3, 4)

        return WorkloadImage(
            program=b.build(),
            memory_init=[
                MemoryDirective("random", 0xB44E5, A_BASE, ARRAY_WORDS),
                MemoryDirective("random", 0x1B31, B_BASE, ARRAY_WORDS),
                MemoryDirective("value", 0, C_BASE, ARRAY_WORDS),
            ],
            instruction_budget=20_000_000 * scale,
        )
