"""Compression-like workload: LZ hash-chain match kernel.

Counterpart of SPEC CPU 2017 *657.xz_s*.  LZ-family compressors spend their
time hashing the input window, probing a hash table for match candidates,
and extending matches byte-by-byte.  The kernel reproduces that shape:

* sequential streaming reads of the input window (unit-stride loads),
* multiplicative hashing (integer multiply + shifts),
* scattered hash-table loads and stores (low-locality accesses over a
  256 KiB table),
* a rarely-taken match branch followed by a variable-length match-extension
  loop when it hits.

The mix is integer ALU + multiply with a high load/store share and mostly
predictable branches — IPC sits below the Leela kernel because the table
accesses miss L1 frequently.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.workloads.base import MemoryDirective, Workload, WorkloadImage

#: Memory layout (word addresses).
WINDOW_BASE = 0
WINDOW_WORDS = 1 << 16  # 512 KiB input window
WINDOW_MASK = WINDOW_WORDS - 1
HASH_BASE = 1 << 17
HASH_WORDS = 1 << 15  # 256 KiB hash table
HASH_MASK = HASH_WORDS - 1

_POSITIONS_PER_SCALE = 12_000


class CompressWorkload(Workload):
    """LZ-style hash-chain compressor kernel."""

    name = "compress"
    description = "LZ hash-chain match kernel (xz-like)"
    spec_counterpart = "657.xz_s"

    def build(self, scale: int = 1) -> WorkloadImage:
        self._check_scale(scale)
        b = ProgramBuilder(self.name)

        # r2 position loop counter, r3 current position, r6 current word,
        # r7 match count / checksum, r8 zero, r9 hash, r10 candidate pos,
        # r11 candidate word, r12 scratch, r13 window mask, r14 hash mask,
        # r15 hash multiplier.
        b.movi(3, 0)
        b.movi(7, 0)
        b.movi(8, 0)
        b.movi(13, WINDOW_MASK)
        b.movi(14, HASH_MASK)
        b.movi(15, 0x9E3779B1)

        with b.loop(2, _POSITIONS_PER_SCALE * scale):
            # Stream the window; reduce to 10 bits of entropy so that hash
            # collisions (and therefore matches) actually occur, as they do
            # on real compressible input.
            b.and_(12, 3, 13)
            b.load(6, 12, WINDOW_BASE)
            b.andi(6, 6, 1023)
            # Multiplicative hash of the current word.
            b.mul(9, 6, 15)
            b.shri(9, 9, 17)
            b.and_(9, 9, 14)
            # Probe and update the hash table.
            b.load(10, 9, HASH_BASE)
            b.store(3, 9, HASH_BASE)
            # Fetch the candidate's data and compare.
            b.and_(10, 10, 13)
            b.load(11, 10, WINDOW_BASE)
            b.andi(11, 11, 1023)
            with b.if_eq(11, 6):  # occasional match: extend it
                # Match length from low bits of the data (1..8 iterations).
                b.andi(12, 6, 7)
                b.addi(12, 12, 1)
                with b.loop(12, None):
                    b.addi(10, 10, 1)
                    b.and_(10, 10, 13)
                    b.load(11, 10, WINDOW_BASE)
                    b.add(7, 7, 11)
            # Literal path bookkeeping.
            b.xor(7, 7, 6)
            b.addi(3, 3, 1)

        return WorkloadImage(
            program=b.build(),
            memory_init=[
                MemoryDirective("random", 0xC0DEC, WINDOW_BASE, WINDOW_WORDS),
                MemoryDirective("value", 0, HASH_BASE, HASH_WORDS),
            ],
            instruction_budget=20_000_000 * scale,
        )
