"""Reference workloads — the reproduction's stand-in for SPEC CPU 2017.

The paper profiles the *Leela* integer-speed workload (a Go engine) from
SPEC CPU 2017 and generates widgets matching its execution profile.  SPEC
itself is proprietary and native, so this subpackage implements a small
suite of workloads *in the synthetic ISA*, one per major SPEC behaviour
class:

* :class:`~repro.workloads.leela.LeelaWorkload` — branchy integer MCTS-style
  Go-engine kernel (the paper's profiled workload).
* :class:`~repro.workloads.compress.CompressWorkload` — LZ-style hash-chain
  match kernel (xz-like): integer + hash-table loads/stores.
* :class:`~repro.workloads.matrix.MatrixWorkload` — FP/vector stencil sweep
  (bwaves/lbm-like): high ILP, streaming memory.
* :class:`~repro.workloads.graph.GraphWorkload` — pointer-chasing sparse
  traversal (mcf-like): latency-bound dependent loads.
* :class:`~repro.workloads.media.MediaWorkload` — motion-estimation SAD
  search (x264-like): integer/load heavy with early-exit branches.

Only the workloads' *performance profiles* feed the widget generator (as in
PerfProx), so behavioural similarity at the counter level — instruction mix,
branch behaviour, locality, dependency structure — is what matters, not
functional equivalence with SPEC sources.
"""

from repro.workloads.base import MemoryDirective, Workload, WorkloadImage
from repro.workloads.leela import LeelaWorkload
from repro.workloads.compress import CompressWorkload
from repro.workloads.matrix import MatrixWorkload
from repro.workloads.graph import GraphWorkload
from repro.workloads.media import MediaWorkload
from repro.workloads.suite import SUITE, get_workload

__all__ = [
    "MemoryDirective",
    "Workload",
    "WorkloadImage",
    "LeelaWorkload",
    "CompressWorkload",
    "MatrixWorkload",
    "GraphWorkload",
    "MediaWorkload",
    "SUITE",
    "get_workload",
]
