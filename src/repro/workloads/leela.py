"""Leela-like workload: branchy integer MCTS Go-engine kernel.

This is the reproduction's counterpart of SPEC CPU 2017 *641.leela_s*, the
workload the paper profiles (§V).  Leela spends its time in Monte-Carlo tree
search: pseudo-random move selection over a board, per-point state updates,
pattern lookups, and visit-count bookkeeping in tree nodes — integer-ALU
dominated, branch-heavy, with a working set that lives comfortably in the
cache hierarchy.  The kernel below reproduces those behaviours:

* an in-register xorshift64 PRNG drives move selection (int ALU + shifts),
* board reads/modifies/writes at random points (small hot array),
* a data-dependent ~25 %-taken branch gates tree-node updates
  (hard-to-predict, like Leela's in-tree decisions),
* a ~94 %-taken biased branch accumulates playout scores,
* a pattern-table lookup adds a second load stream,
* a short floating-point evaluation runs once per playout (Leela's
  winrate arithmetic is a small fraction of its mix).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.workloads.base import MemoryDirective, Workload, WorkloadImage

#: Memory layout (word addresses).
BOARD_BASE = 0
BOARD_WORDS = 512  # 19x19 = 361 points, rounded up
PATTERN_BASE = 512
PATTERN_WORDS = 512
TREE_BASE = 4096
TREE_WORDS = 32768  # 256 KiB of tree nodes
TREE_MASK = TREE_WORDS - 1

_MOVES_PER_PLAYOUT = 48
_PLAYOUTS_PER_SCALE = 220


class LeelaWorkload(Workload):
    """MCTS Go-engine kernel (the paper's profiled workload)."""

    name = "leela"
    description = "branchy integer MCTS kernel (Go engine)"
    spec_counterpart = "641.leela_s"

    def build(self, scale: int = 1) -> WorkloadImage:
        self._check_scale(scale)
        b = ProgramBuilder(self.name)

        # r1 PRNG state, r2 playout counter, r3 move counter, r5 position,
        # r6 board value, r7 integer score, r8 zero, r9 tree index,
        # r10-r12 scratch, r13 board size, r14 tree mask, r15 hash constant.
        b.movi(1, 0x9E3779B97F4A7C15 - (1 << 64))  # MOVI sign-extends; masked on write
        b.movi(7, 0)
        b.movi(8, 0)
        b.movi(13, 361)
        b.movi(14, TREE_MASK)
        b.movi(15, 2654435761)
        b.cvtif(3, 13)  # f3 = 361.0 — FP eval constant
        b.movi(4, 0)

        with b.loop(2, _PLAYOUTS_PER_SCALE * scale):
            with b.loop(3, _MOVES_PER_PLAYOUT):
                # xorshift64 step.
                b.shli(10, 1, 13)
                b.xor(1, 1, 10)
                b.shri(10, 1, 7)
                b.xor(1, 1, 10)
                b.shli(10, 1, 17)
                b.xor(1, 1, 10)
                # Random board point: read-modify-write.
                b.mod(5, 1, 13)
                b.load(6, 5, BOARD_BASE)
                b.addi(6, 6, 1)
                b.store(6, 5, BOARD_BASE)
                # Data-dependent tree update (~12% taken, hard to predict).
                b.andi(10, 6, 7)
                with b.if_eq(10, 8):
                    # Node index mixes the PRNG state so the whole tree is
                    # visited, not just 361 slots.
                    b.mul(9, 1, 15)
                    b.xor(9, 9, 5)
                    b.and_(9, 9, 14)
                    b.load(10, 9, TREE_BASE)
                    b.addi(10, 10, 1)
                    b.store(10, 9, TREE_BASE)
                # Biased score accumulation (~94% taken).
                b.andi(10, 1, 15)
                with b.if_ne(10, 8):
                    b.add(7, 7, 6)
                # Pattern-table lookup.
                b.shri(11, 1, 23)
                b.andi(11, 11, PATTERN_WORDS - 1)
                b.load(12, 11, PATTERN_BASE)
                b.xor(7, 7, 12)
            # Per-playout winrate evaluation (small FP tail).
            b.cvtif(1, 7)
            b.fdiv(2, 1, 3)
            b.fadd(0, 0, 2)
        # Fold the FP score back into the integer result.
        b.cvtfi(7, 0)

        return WorkloadImage(
            program=b.build(),
            memory_init=[
                MemoryDirective("value", 0, BOARD_BASE, BOARD_WORDS),
                MemoryDirective("random", 0x1EE1A, PATTERN_BASE, PATTERN_WORDS),
                MemoryDirective("random", 0x7EE7, TREE_BASE, TREE_WORDS),
            ],
            instruction_budget=40_000_000 * scale,
        )
