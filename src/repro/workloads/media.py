"""Media workload: motion-estimation SAD search (x264-like).

Counterpart of SPEC CPU 2017 *625.x264_s*.  Video encoders spend much of
their time in motion estimation: for each current block, compute the sum
of absolute differences (SAD) against many candidate blocks and keep the
best.  The kernel reproduces that shape:

* streaming reads of the current block (unit stride, L1-resident),
* scattered candidate reads across a reference frame (PRNG-driven motion
  vectors over a few hundred KB),
* abs-difference via the branchless MIN/MAX/SUB idiom (integer ALU),
* a data-dependent "new best?" branch per candidate (moderately biased —
  improvements get rarer as the search proceeds),
* an early-exit branch when the SAD is already worse than the best.

The mix lands between Leela and compress: integer-ALU heavy with a high
load share, moderate branch density, and mid-range locality.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.workloads.base import MemoryDirective, Workload, WorkloadImage

#: Memory layout (word addresses).
CURRENT_BASE = 0
BLOCK_WORDS = 16
FRAME_BASE = 1 << 10
FRAME_WORDS = 1 << 15  # 256 KiB reference frame
FRAME_MASK = FRAME_WORDS - BLOCK_WORDS - 1

_CANDIDATES_PER_BLOCK = 24
_BLOCKS_PER_SCALE = 130


class MediaWorkload(Workload):
    """Motion-estimation SAD search kernel."""

    name = "media"
    description = "motion-estimation SAD search (x264-like)"
    spec_counterpart = "625.x264_s"

    def build(self, scale: int = 1) -> WorkloadImage:
        self._check_scale(scale)
        b = ProgramBuilder(self.name)

        # r1 PRNG, r2 block counter, r3 candidate counter, r4 lane counter,
        # r5 candidate base, r6 SAD accumulator, r7 best SAD, r8 current
        # word, r9 candidate word, r10/r11 scratch, r12 lane index,
        # r13 frame mask, r14 best-motion-vector, r15 checksum.
        b.movi(1, 0x2545F4914F6CDD1D)
        b.movi(13, FRAME_MASK & ~7)  # 8-word-aligned candidates
        b.movi(15, 0)

        with b.loop(2, _BLOCKS_PER_SCALE * scale):
            b.movi(7, 1 << 30)  # best SAD so far: +inf
            with b.loop(3, _CANDIDATES_PER_BLOCK):
                # Motion vector from the PRNG (xorshift64).
                b.shli(10, 1, 13)
                b.xor(1, 1, 10)
                b.shri(10, 1, 7)
                b.xor(1, 1, 10)
                b.shli(10, 1, 17)
                b.xor(1, 1, 10)
                b.and_(5, 1, 13)
                # SAD over 4 lanes of 4 words (partially unrolled).
                b.movi(6, 0)
                b.movi(12, 0)
                with b.loop(4, 4):
                    for unroll in range(4):
                        b.add(11, 12, 5)
                        b.load(9, 11, FRAME_BASE + unroll)
                        b.load(8, 12, CURRENT_BASE + unroll)
                        # Pixel-like 8-bit samples, as in real SAD.
                        b.andi(9, 9, 255)
                        b.andi(8, 8, 255)
                        # |a-b| = max(a,b) - min(a,b), branchless.
                        b.max_(10, 8, 9)
                        b.min_(11, 8, 9)
                        b.sub(10, 10, 11)
                        b.add(6, 6, 10)
                    b.addi(12, 12, 4)
                    # Early exit when this candidate is already worse.
                    b.bge(6, 7, "reject")
                # New best? (data-dependent, gets rarer over the search)
                with b.if_lt(6, 7):
                    b.mov(7, 6)
                    b.mov(14, 5)
                b.label("reject")
                b.xor(15, 15, 6)
            # Fold the winning vector into the checksum.
            b.add(15, 15, 14)
            b.xor(15, 15, 7)

        return WorkloadImage(
            program=b.build(),
            memory_init=[
                MemoryDirective("random", 0xC0FFEE, CURRENT_BASE, BLOCK_WORDS),
                MemoryDirective("random", 0xF4A3E, FRAME_BASE, FRAME_WORDS),
            ],
            instruction_budget=40_000_000 * scale,
        )
