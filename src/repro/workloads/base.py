"""Workload interface: a program plus its deterministic memory image."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.isa.program import Program
from repro.machine.cpu import ExecutionResult, Machine
from repro.machine.memory import Memory


@dataclass(frozen=True, slots=True)
class MemoryDirective:
    """One deterministic memory-initialisation step.

    ``kind`` is one of ``"random"`` (SplitMix64 fill), ``"ring"``
    (pointer-chasing cycle), or ``"value"`` (constant fill); ``seed`` doubles
    as the constant for ``"value"``.
    """

    kind: str
    seed: int
    start: int
    count: int

    def apply(self, memory: Memory) -> None:
        if self.kind == "random":
            memory.fill_random(self.seed, self.start, self.count)
        elif self.kind == "ring":
            memory.fill_pointer_ring(self.seed, self.start, self.count)
        elif self.kind == "value":
            memory.fill_value(self.seed, self.start, self.count)
        else:
            raise ConfigError(f"unknown memory directive {self.kind!r}")


@dataclass(slots=True)
class WorkloadImage:
    """Everything needed to run a workload: program + memory recipe."""

    program: Program
    memory_init: list[MemoryDirective] = field(default_factory=list)
    #: Upper bound on dynamic instructions, used as the execution fuse.
    instruction_budget: int = 10_000_000

    def instantiate_memory(self, machine: Machine) -> Memory:
        """Build and initialise a memory image for ``machine``."""
        memory = machine.new_memory()
        for directive in self.memory_init:
            directive.apply(memory)
        return memory

    def run(
        self,
        machine: Machine,
        *,
        snapshot_interval: int = 0,
        collect_detail: bool = False,
    ) -> ExecutionResult:
        """Instantiate memory and execute the program on ``machine``."""
        memory = self.instantiate_memory(machine)
        return machine.run(
            self.program,
            memory,
            max_instructions=self.instruction_budget,
            snapshot_interval=snapshot_interval,
            collect_detail=collect_detail,
        )


class Workload(abc.ABC):
    """A named, scalable reference workload.

    ``scale`` multiplies the dynamic instruction count roughly linearly;
    ``scale=1`` targets a few hundred thousand instructions — large enough
    for stable counter statistics, small enough for an interpreted run.
    """

    #: Short identifier used by the suite registry and CLI examples.
    name: str = "workload"
    #: One-line description shown in reports.
    description: str = ""
    #: The SPEC CPU 2017 benchmark this workload stands in for.
    spec_counterpart: str = ""

    @abc.abstractmethod
    def build(self, scale: int = 1) -> WorkloadImage:
        """Construct the program and memory recipe for ``scale``."""

    def _check_scale(self, scale: int) -> None:
        if scale < 1:
            raise ConfigError(f"{self.name}: scale must be >= 1, got {scale}")
