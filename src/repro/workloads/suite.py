"""Workload suite registry."""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workloads.base import Workload
from repro.workloads.compress import CompressWorkload
from repro.workloads.graph import GraphWorkload
from repro.workloads.leela import LeelaWorkload
from repro.workloads.matrix import MatrixWorkload
from repro.workloads.media import MediaWorkload

#: All reference workloads, keyed by name.  ``leela`` is the paper's
#: profiled workload; the rest cover the other SPEC behaviour classes and
#: are used by the extension experiments.
SUITE: dict[str, type[Workload]] = {
    cls.name: cls
    for cls in (LeelaWorkload, CompressWorkload, MatrixWorkload, GraphWorkload, MediaWorkload)
}


def get_workload(name: str) -> Workload:
    """Instantiate a workload from the suite by name."""
    try:
        return SUITE[name]()
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; available: {sorted(SUITE)}"
        ) from None
