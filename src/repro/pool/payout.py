"""PPLNS payout accounting (pay-per-last-N-shares).

When the pool finds a block, the reward is split over the *last N units
of share difficulty* submitted before the find — not over everything ever
submitted (which would dilute long-gone miners) and not per-round (which
pool-hoppers exploit).  ``N`` is the window score: one unit equals one
difficulty-1 share, so a difficulty-8 share both contributes weight 8 and
pushes 8 units of older work toward the edge of the window.

Splits are exact integer allocations: each account gets
``floor(reward * weight / total)`` and the remainder goes to the largest
fractional parts (ties broken by account id), so the amounts always sum
to ``reward`` — conservation is asserted by the tests.
"""

from __future__ import annotations

from collections import deque

from repro.errors import PoolError


class PPLNSWindow:
    """Sliding window of the last N units of share difficulty."""

    def __init__(self, window_score: float) -> None:
        if window_score <= 0:
            raise PoolError("window_score must be positive")
        self.window_score = window_score
        self._shares: deque[tuple[str, float]] = deque()
        self._total = 0.0

    def __len__(self) -> int:
        return len(self._shares)

    @property
    def total_score(self) -> float:
        return self._total

    def record_share(self, account: str, difficulty: float) -> None:
        """Append one accepted share; evict the oldest past the window."""
        if difficulty <= 0:
            raise PoolError("share difficulty must be positive")
        self._shares.append((account, difficulty))
        self._total += difficulty
        # Evict whole shares while the window still overflows without the
        # oldest one (a share straddling the edge stays at full weight —
        # shares are atomic).
        while self._shares and self._total - self._shares[0][1] >= self.window_score:
            _, evicted = self._shares.popleft()
            self._total -= evicted

    def weights(self) -> dict[str, float]:
        """Per-account share-difficulty weight currently in the window."""
        weights: dict[str, float] = {}
        for account, difficulty in self._shares:
            weights[account] = weights.get(account, 0.0) + difficulty
        return weights

    def splits(self, reward: int) -> dict[str, int]:
        """Split an integer block reward over the window, exactly.

        Returns ``{account: amount}`` with ``sum(amounts) == reward``;
        empty when no shares are in the window (the pool keeps the
        reward — there is no work to credit).
        """
        if reward < 0:
            raise PoolError("reward must be >= 0")
        weights = self.weights()
        if not weights or reward == 0:
            return {}
        total = sum(weights.values())
        amounts: dict[str, int] = {}
        fractions: list[tuple[float, str]] = []
        allocated = 0
        for account in sorted(weights):
            exact = reward * weights[account] / total
            base = int(exact)
            amounts[account] = base
            allocated += base
            fractions.append((exact - base, account))
        # Largest remainder: biggest fractional part first, ties by
        # account id (reverse-sorted so pop order is deterministic).
        fractions.sort(key=lambda pair: (-pair[0], pair[1]))
        for _, account in fractions[: reward - allocated]:
            amounts[account] += 1
        return {account: amount for account, amount in amounts.items() if amount}
