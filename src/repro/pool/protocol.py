"""Stratum-like JSON-lines wire protocol.

One message per ``\\n``-terminated line, each line a single JSON object.
Requests carry ``id`` (client-chosen integer), ``method`` and ``params``;
responses echo the ``id`` with either ``result`` or ``error``; server →
client notifications carry ``method``/``params`` and ``id: null``.  All
server output is serialized with sorted keys and no whitespace, so a
scripted session produces a byte-identical transcript — the golden-session
test pins exactly that.

Methods (client → server)::

    mining.subscribe   {agent, session?}    -> {session, nonce_start, nonce_count, difficulty, protocol}
    mining.authorize   {account}            -> {authorized: true}
    mining.submit      {job, nonce}         -> {status: "accepted", difficulty}

Notifications (server → client)::

    mining.notify          {job, header, height, clean}
    mining.set_difficulty  {difficulty}

Error objects are ``{code, message}`` where ``code`` is a stable slug from
:data:`ERROR_CODES` — the same machine-readable contract
:class:`~repro.errors.ValidationError` gives consensus rejections.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import PoolError

#: Protocol revision advertised in the subscribe result.
PROTOCOL_VERSION = 1

#: Hard cap on one wire line (bytes, newline included).  A peer exceeding
#: it is disconnected — the cheap guard against memory-exhaustion floods.
MAX_LINE_BYTES = 16_384

#: Stable machine-readable rejection slugs.
ERROR_CODES = (
    "parse-error",      # line is not valid JSON / not an object
    "bad-request",      # missing or ill-typed id/method/params
    "unknown-method",   # method not in the table above
    "not-subscribed",   # submit/authorize before mining.subscribe
    "unauthorized",     # submit before mining.authorize
    "banned",           # ban score exceeded the threshold
    "stale-job",        # job id unknown or rotated out
    "bad-nonce",        # nonce outside the client's assigned range
    "duplicate-share",  # (job, nonce) already submitted by this client
    "low-difficulty",   # digest does not meet the share target
    "unverifiable",     # PoW evaluation itself failed (poisoned seed)
    "overloaded",       # verification queue full (backpressure)
)


class PoolProtocolError(PoolError):
    """A wire message violated the protocol.

    ``code`` is a slug from :data:`ERROR_CODES`; the server turns it into
    an error response (or a disconnect for unparseable peers).
    """

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown pool error code {code!r}")
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode(message: dict[str, Any]) -> bytes:
    """Serialize one message to a wire line (deterministic byte form)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()


def request(request_id: int, method: str, params: dict[str, Any]) -> dict:
    """A client->server request expecting a same-id response."""
    return {"id": request_id, "method": method, "params": params}


def response(request_id: int, result: dict[str, Any]) -> dict:
    """The success reply to the request carrying ``request_id``."""
    return {"id": request_id, "result": result, "error": None}


def error_response(request_id: int | None, code: str, message: str) -> dict:
    """The failure reply; ``code`` must be one of :data:`ERROR_CODES`."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown pool error code {code!r}")
    return {
        "id": request_id,
        "result": None,
        "error": {"code": code, "message": message},
    }


def notification(method: str, params: dict[str, Any]) -> dict:
    """A server->client push (``id: null``): notify / set_difficulty."""
    return {"id": None, "method": method, "params": params}


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def decode_line(line: bytes) -> dict:
    """Parse one wire line into a message dict.

    Raises :class:`PoolProtocolError` (``parse-error``) for oversize,
    non-JSON or non-object lines.
    """
    if len(line) > MAX_LINE_BYTES:
        raise PoolProtocolError(
            "parse-error", f"line exceeds {MAX_LINE_BYTES} bytes"
        )
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise PoolProtocolError("parse-error", f"bad JSON: {exc}") from None
    if not isinstance(message, dict):
        raise PoolProtocolError("parse-error", "message must be an object")
    return message


def parse_request(message: dict) -> tuple[int, str, dict]:
    """Validate an inbound request's frame; returns (id, method, params).

    Raises :class:`PoolProtocolError` (``bad-request``) on frame
    violations — a non-integer id, a missing method, ill-typed params.
    """
    request_id = message.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise PoolProtocolError("bad-request", "id must be an integer")
    method = message.get("method")
    if not isinstance(method, str) or not method:
        raise PoolProtocolError("bad-request", "method must be a string")
    params = message.get("params", {})
    if not isinstance(params, dict):
        raise PoolProtocolError("bad-request", "params must be an object")
    return request_id, method, params
