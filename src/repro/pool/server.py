"""The asyncio mining-pool server.

One TCP connection per client, JSON-lines framing
(:mod:`repro.pool.protocol`).  The handler is deliberately thin: frame
validation, session lookup, and dispatch into the pure components —
vardiff, PPLNS, jobs, sessions — with the only awaited work being the
batched verifier.  Everything else is synchronous bookkeeping, so a
single event loop sustains thousands of clients.

Share grading order (cheapest check first, so floods die early)::

    banned? -> subscribed? -> authorized? -> job live? -> nonce in range?
    -> duplicate? -> [batched PoW digest] -> share target? -> block target?

Backpressure is explicit at both edges: inbound, the verification queue
is bounded (``overloaded`` errors, never unbounded buffering); outbound,
every client has a bounded write queue drained by its own writer task —
a client that stops reading long enough to fill it is disconnected
(``slow_disconnects``) instead of stalling the broadcast path.

A block-solving share triggers the full tip rotation: submit to the
template source (chain validation, ledger application, mempool
``remove_included`` + ``revalidate``), compute the PPLNS payout split,
and broadcast a clean job so every client abandons the dead tip.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.pow import PowFunction, difficulty_to_target, meets_target
from repro.errors import PoolError, ReproError
from repro.pool import protocol
from repro.pool.jobs import Job, JobManager
from repro.pool.payout import PPLNSWindow
from repro.pool.session import ClientSession
from repro.pool.vardiff import VardiffConfig
from repro.pool.verifier import BatchVerifier


@dataclass(frozen=True, slots=True)
class PoolConfig:
    """Server policy knobs."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: ephemeral (read back from ``PoolServer.port``)
    #: Starting share difficulty for fresh sessions.
    share_difficulty: float = 1.0
    #: Vardiff retargeting policy; ``vardiff=False`` pins the share
    #: difficulty (load benches want a constant).
    vardiff: bool = True
    vardiff_config: VardiffConfig = field(default_factory=VardiffConfig)
    #: Work-unit size: each session owns a ``2**nonce_bits`` nonce range.
    nonce_bits: int = 40
    #: Ban policy: invalid-share weight accumulates; crossing the
    #: threshold bans the session and drops its connections.
    ban_threshold: float = 10.0
    invalid_weight: float = 1.0
    duplicate_weight: float = 0.25
    #: Outbound queue depth per client before a slow-client disconnect.
    write_queue_max: int = 256
    #: Batched verification (the per-share baseline sets this False).
    batched_verify: bool = True
    batch_max: int = 64
    verify_queue_max: int = 8192
    #: PPLNS window size in difficulty-1 share units.
    pplns_window: float = 512.0
    #: Live job generations kept grading-eligible.
    max_jobs: int = 4

    def __post_init__(self) -> None:
        if self.share_difficulty < 1.0:
            raise PoolError("share_difficulty must be >= 1")
        if not 1 <= self.nonce_bits <= 48:
            raise PoolError("nonce_bits must be in [1, 48]")
        if self.ban_threshold <= 0:
            raise PoolError("ban_threshold must be positive")
        if self.write_queue_max < 1:
            raise PoolError("write_queue_max must be >= 1")


@dataclass(slots=True)
class PoolStats:
    """Aggregate pool-lifetime counters."""

    connections: int = 0
    active_connections: int = 0
    sessions: int = 0
    accepted: int = 0
    stale: int = 0
    invalid: int = 0
    duplicate: int = 0
    blocks_found: int = 0
    bans: int = 0
    slow_disconnects: int = 0
    protocol_errors: int = 0
    #: Total share difficulty of every accepted share.
    score: float = 0.0


class _Connection:
    """Transport-side state: writer task + bounded outbound queue."""

    def __init__(self, writer: asyncio.StreamWriter, queue_max: int) -> None:
        self.writer = writer
        self.queue: asyncio.Queue[bytes | None] = asyncio.Queue(
            maxsize=queue_max
        )
        self.session: ClientSession | None = None
        self.slow = False
        self.task: asyncio.Task | None = None

    def send(self, message: dict) -> bool:
        """Queue one message; False (and mark slow) when the queue is
        full — the caller disconnects the client."""
        try:
            self.queue.put_nowait(protocol.encode(message))
        except asyncio.QueueFull:
            self.slow = True
            return False
        return True

    async def drain_writer(self) -> None:
        """Writer task: drain the queue to the socket until poisoned."""
        try:
            while True:
                item = await self.queue.get()
                if item is None:
                    break
                self.writer.write(item)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    async def close(self) -> None:
        # Give the writer a chance to flush already-queued replies (the
        # disconnect reason, typically) before the socket goes away; a
        # wedged peer gets cut off instead of stalling the close.
        if self.task is not None:
            if not self.slow:
                try:
                    self.queue.put_nowait(None)
                except asyncio.QueueFull:
                    self.slow = True
            if self.slow:
                self.task.cancel()
            try:
                await asyncio.wait_for(self.task, timeout=2.0)
            except asyncio.TimeoutError:
                # wait_for already cancelled it; reap the cancellation.
                try:
                    await self.task
                except asyncio.CancelledError:
                    pass
            except asyncio.CancelledError:
                pass
            self.task = None
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class PoolServer:
    """Stratum-style pool over a PoW function and a template source."""

    def __init__(
        self,
        pow_fn: PowFunction,
        source,
        config: PoolConfig | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or PoolConfig()
        self.pow_fn = pow_fn
        self.clock = clock
        self.jobs = JobManager(source, max_jobs=self.config.max_jobs)
        self.verifier = BatchVerifier(
            pow_fn,
            batch_max=self.config.batch_max,
            queue_max=self.config.verify_queue_max,
            batched=self.config.batched_verify,
        )
        self.payouts = PPLNSWindow(self.config.pplns_window)
        self.stats = PoolStats()
        self.sessions: dict[str, ClientSession] = {}
        #: Most recent PPLNS split per found block (block id hex -> split).
        self.payout_log: list[dict] = []
        self._connections: set[_Connection] = set()
        self._closers: set[asyncio.Task] = set()
        self._server: asyncio.AbstractServer | None = None
        self._session_counter = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.jobs.rotate(clean=True)
        self.verifier.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )

    @property
    def port(self) -> int:
        if self._server is None:
            raise PoolError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for connection in list(self._connections):
            await connection.close()
        self._connections.clear()
        if self._closers:
            await asyncio.gather(*self._closers, return_exceptions=True)
        await self.verifier.stop()

    async def __aenter__(self) -> "PoolServer":
        await self.start()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # job rotation
    # ------------------------------------------------------------------
    def rotate_job(self, *, clean: bool) -> Job:
        """Cut a new job and broadcast ``mining.notify`` to every client.

        ``clean=True`` is the new-tip path (stale everything); callers
        refresh timestamps with ``clean=False``.
        """
        job = self.jobs.rotate(clean=clean)
        live = self.jobs.live_ids()
        for session in self.sessions.values():
            session.prune_jobs(live)
        notify = protocol.notification("mining.notify", job.notify_params())
        for connection in list(self._connections):
            if connection.session is None:
                continue
            if not connection.send(notify):
                self.stats.slow_disconnects += 1
                self._disconnect_later(connection)
        return job

    def _disconnect_later(self, connection: _Connection) -> None:
        """Schedule a connection teardown without blocking the caller."""
        self._connections.discard(connection)
        task = asyncio.get_running_loop().create_task(connection.close())
        self._closers.add(task)
        task.add_done_callback(self._closers.discard)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer, self.config.write_queue_max)
        connection.task = asyncio.get_running_loop().create_task(
            connection.drain_writer()
        )
        self._connections.add(connection)
        self.stats.connections += 1
        self.stats.active_connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversize line: unframeable peer, drop it.
                    self.stats.protocol_errors += 1
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break  # EOF
                if not line.strip():
                    continue
                if not await self._handle_line(connection, line):
                    break
                if connection.slow:
                    self.stats.slow_disconnects += 1
                    break
        finally:
            self.stats.active_connections -= 1
            self._connections.discard(connection)
            await connection.close()

    async def _handle_line(self, connection: _Connection, line: bytes) -> bool:
        """Process one wire line; False ends the connection."""
        try:
            message = protocol.decode_line(line)
            request_id, method, params = protocol.parse_request(message)
        except protocol.PoolProtocolError as exc:
            self.stats.protocol_errors += 1
            connection.send(
                protocol.error_response(None, exc.code, str(exc))
            )
            # Unparseable peers are dropped; well-framed bad requests get
            # to try again.
            return exc.code != "parse-error"
        session = connection.session
        if session is not None and session.banned:
            connection.send(
                protocol.error_response(request_id, "banned", "session banned")
            )
            return False
        try:
            if method == "mining.subscribe":
                result = self._subscribe(connection, params)
            elif method == "mining.authorize":
                result = self._authorize(connection, params)
            elif method == "mining.submit":
                result = await self._submit(connection, params)
            else:
                raise protocol.PoolProtocolError(
                    "unknown-method", f"unknown method {method!r}"
                )
        except protocol.PoolProtocolError as exc:
            connection.send(
                protocol.error_response(request_id, exc.code, str(exc))
            )
            session = connection.session
            return not (session is not None and session.banned)
        connection.send(protocol.response(request_id, result))
        if method == "mining.subscribe":
            # The first notify follows the subscribe result.
            job = self.jobs.current
            connection.send(
                protocol.notification("mining.notify", job.notify_params())
            )
        return True

    # ------------------------------------------------------------------
    # methods
    # ------------------------------------------------------------------
    def _subscribe(self, connection: _Connection, params: dict) -> dict:
        requested = params.get("session")
        if requested is not None:
            session = self.sessions.get(requested)
            if session is None:
                raise protocol.PoolProtocolError(
                    "bad-request", f"unknown session {requested!r}"
                )
            if session.banned:
                raise protocol.PoolProtocolError("banned", "session banned")
        else:
            index = self._session_counter
            self._session_counter += 1
            session = ClientSession.create(
                session_id=f"s{index:06x}",
                index=index,
                config=self.config.vardiff_config,
                difficulty=self.config.share_difficulty,
                nonce_bits=self.config.nonce_bits,
            )
            self.sessions[session.session_id] = session
            self.stats.sessions += 1
        connection.session = session
        return {
            "session": session.session_id,
            "nonce_start": session.nonce_start,
            "nonce_count": session.nonce_count,
            "difficulty": session.difficulty,
            "protocol": protocol.PROTOCOL_VERSION,
        }

    def _authorize(self, connection: _Connection, params: dict) -> dict:
        session = self._require_session(connection)
        account = params.get("account")
        if not isinstance(account, str) or not account:
            raise protocol.PoolProtocolError(
                "bad-request", "account must be a non-empty string"
            )
        session.account = account
        session.authorized = True
        return {"authorized": True, "account": account}

    def _require_session(self, connection: _Connection) -> ClientSession:
        if connection.session is None:
            raise protocol.PoolProtocolError(
                "not-subscribed", "mining.subscribe first"
            )
        return connection.session

    def _punish(
        self, session: ClientSession, weight: float, code: str, message: str
    ) -> protocol.PoolProtocolError:
        """Score an invalid share; bans surface on the raised error."""
        self.stats.invalid += 1
        if session.record_invalid(weight, self.config.ban_threshold):
            self.stats.bans += 1
        return protocol.PoolProtocolError(code, message)

    async def _submit(self, connection: _Connection, params: dict) -> dict:
        session = self._require_session(connection)
        if not session.authorized:
            raise protocol.PoolProtocolError(
                "unauthorized", "mining.authorize first"
            )
        job_id = params.get("job")
        nonce = params.get("nonce")
        if not isinstance(job_id, str) or not isinstance(nonce, int) \
                or isinstance(nonce, bool) or not 0 <= nonce < 1 << 64:
            raise self._punish(
                session, self.config.invalid_weight,
                "bad-request", "submit wants {job: str, nonce: u64}",
            )
        job = self.jobs.get(job_id)
        if job is None:
            # Rotated-out work: no fault of the client's, no ban weight.
            session.counters.stale += 1
            self.stats.stale += 1
            raise protocol.PoolProtocolError(
                "stale-job", f"job {job_id!r} is no longer current"
            )
        if not session.owns_nonce(nonce):
            raise self._punish(
                session, self.config.invalid_weight, "bad-nonce",
                f"nonce {nonce} outside assigned range "
                f"[{session.nonce_start}, "
                f"{session.nonce_start + session.nonce_count})",
            )
        seen = session.seen_nonces.setdefault(job_id, set())
        if nonce in seen:
            session.counters.duplicate += 1
            self.stats.duplicate += 1
            raise self._punish(
                session, self.config.duplicate_weight,
                "duplicate-share", f"nonce {nonce} already submitted",
            )
        seen.add(nonce)
        header = job.header_for(nonce)
        try:
            digest = await self.verifier.digest(header.serialize())
        except protocol.PoolProtocolError:
            raise  # overloaded: backpressure, not the client's fault
        except ReproError as exc:
            raise self._punish(
                session, self.config.invalid_weight, "unverifiable",
                f"share cannot be verified: {exc}",
            )
        graded = session.grading_difficulties()
        if not any(
            meets_target(digest, difficulty_to_target(difficulty))
            for difficulty in graded
        ):
            raise self._punish(
                session, self.config.invalid_weight, "low-difficulty",
                f"digest does not meet share difficulty {min(graded)}",
            )
        difficulty = session.difficulty
        session.record_accepted(difficulty)
        self.stats.accepted += 1
        self.stats.score += difficulty
        self.payouts.record_share(session.account, difficulty)
        result: dict = {"status": "accepted", "difficulty": difficulty}
        if meets_target(digest, job.block_target):
            result["block"] = self._solve_block(session, job, nonce)
        self._maybe_retarget(connection, session)
        return result

    def _solve_block(
        self, session: ClientSession, job: Job, nonce: int
    ) -> dict:
        """A share met the block target: submit, pay out, rotate clean."""
        from repro.blockchain.block import Block

        block = Block(
            header=job.header_for(nonce), transactions=job.transactions
        )
        block_id, reward = self.jobs.source.submit_block(block)
        session.counters.blocks_found += 1
        self.stats.blocks_found += 1
        split = self.payouts.splits(reward)
        record = {
            "block": block_id.hex(),
            "height": job.height,
            "finder": session.account,
            "reward": reward,
            "split": split,
        }
        self.payout_log.append(record)
        self.rotate_job(clean=True)
        return {"id": block_id.hex(), "height": job.height, "reward": reward}

    def _maybe_retarget(
        self, connection: _Connection, session: ClientSession
    ) -> None:
        if not self.config.vardiff:
            return
        previous = session.difficulty
        updated = session.vardiff.record_share(self.clock())
        if updated is None:
            return
        session.previous_difficulty = previous
        connection.send(
            protocol.notification(
                "mining.set_difficulty", {"difficulty": updated}
            )
        )
