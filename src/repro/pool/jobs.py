"""Job templates and rotation.

A *job* is one header template the pool hands to every client: the chain
tip as parent, the mempool's current fee-ordered selection as the body,
and nonce 0 — each client searches its own assigned nonce range.  On a
new chain tip (a block found by this pool or announced externally) the
manager rotates with ``clean=True``: every outstanding job becomes stale
and clients must abandon in-flight work, exactly the stratum
``clean_jobs`` contract.  Timestamp refreshes rotate with ``clean=False``
— old shares stay grading-eligible until their job ages out of the
``max_jobs`` window.

Template building and block submission are behind the small
``TemplateSource`` duck type so the server can run against a real
:class:`~repro.blockchain.chain.Blockchain` + mempool + ledger
(:class:`ChainTemplateSource` — the sequence *select → mine → apply →
remove_included → revalidate* that the mempool rotation tests pin) or a
fixed header for load benches (:class:`StaticTemplateSource`).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import Blockchain
from repro.blockchain.ledger import BLOCK_REWARD
from repro.blockchain.mempool import Mempool
from repro.blockchain.transaction import TRANSACTION_BYTES, Transaction
from repro.core.pow import compact_to_target
from repro.errors import PoolError

#: Address credited with block rewards when none is configured.
DEFAULT_POOL_ADDRESS = b"pool".ljust(32, b"\x00")


@dataclass(frozen=True, slots=True)
class Job:
    """One notify-able work template."""

    job_id: str
    header: BlockHeader  # nonce-0 template; clients substitute their nonce
    height: int
    transactions: tuple[bytes, ...]
    clean: bool
    block_target: int

    def header_for(self, nonce: int) -> BlockHeader:
        return self.header.with_nonce(nonce)

    def notify_params(self) -> dict:
        """The ``mining.notify`` payload for this job."""
        return {
            "job": self.job_id,
            "header": self.header.serialize().hex(),
            "height": self.height,
            "clean": self.clean,
        }


class ChainTemplateSource:
    """Templates from a live chain + mempool; submission applies state.

    ``submit_block`` runs the full tip-rotation sequence the pool
    performs on every found block: chain validation/fork choice, ledger
    application (fees + subsidy to ``pool_address``), mempool
    ``remove_included`` and ``revalidate``.  Returns ``(block_id,
    reward)`` so the server can feed the PPLNS split.
    """

    def __init__(
        self,
        chain: Blockchain,
        mempool: Mempool | None = None,
        *,
        pool_address: bytes = DEFAULT_POOL_ADDRESS,
        max_transactions: int = 100,
        now_fn: Callable[[], int] | None = None,
    ) -> None:
        if max_transactions < 1:
            raise PoolError("max_transactions must be >= 1")
        self.chain = chain
        self.mempool = mempool
        self.pool_address = pool_address
        self.max_transactions = max_transactions
        self.now_fn = now_fn or (lambda: int(time.time()))

    def build_template(self) -> tuple[Block, int]:
        """Assemble a candidate block on the current tip."""
        tip = self.chain.tip()
        height = self.chain.height() + 1
        selected = (
            self.mempool.select(self.max_transactions)
            if self.mempool is not None and len(self.mempool)
            else []
        )
        transactions = [b"coinbase-%d" % height] + [
            tx.serialize() for tx in selected
        ]
        block = Block.build(
            prev_hash=self.chain.tip_id,
            transactions=transactions,
            timestamp=max(self.now_fn(), tip.header.timestamp),
            bits=self.chain.expected_bits(self.chain.tip_id),
        )
        return block, height

    def submit_block(self, block: Block) -> tuple[bytes, int]:
        """Validate, store, and apply a solved block."""
        block_id = self.chain.add_block(block)
        reward = BLOCK_REWARD
        if self.mempool is not None and self.chain.tip_id == block_id:
            included = [
                Transaction.deserialize(raw)
                for raw in block.transactions
                if len(raw) == TRANSACTION_BYTES
            ]
            reward = self.mempool.ledger.apply_block(
                included, self.pool_address
            )
            self.mempool.remove_included(included)
            self.mempool.revalidate()
        return block_id, reward


class StaticTemplateSource:
    """A fixed header template — load benches and protocol tests.

    The template never advances and submitted blocks are only counted,
    so a bench measures the share pipeline, not chain maintenance.
    """

    def __init__(self, header: BlockHeader, *, height: int = 1,
                 reward: int = BLOCK_REWARD) -> None:
        self.header = header.with_nonce(0)
        self.height = height
        self.reward = reward
        self.submitted: list[Block] = []

    def build_template(self) -> tuple[Block, int]:
        block = Block(header=self.header, transactions=(b"coinbase-static",))
        return block, self.height

    def submit_block(self, block: Block) -> tuple[bytes, int]:
        self.submitted.append(block)
        from repro.blockchain.chain import block_id

        return block_id(block), self.reward


class JobManager:
    """Issues jobs, tracks the live window, and rotates on new tips."""

    def __init__(self, source, *, max_jobs: int = 4) -> None:
        if max_jobs < 1:
            raise PoolError("max_jobs must be >= 1")
        self.source = source
        self.max_jobs = max_jobs
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._counter = 0

    @property
    def current(self) -> Job:
        if not self._jobs:
            raise PoolError("no job issued yet — call rotate() first")
        return next(reversed(self._jobs.values()))

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def live_ids(self) -> set[str]:
        return set(self._jobs)

    def rotate(self, *, clean: bool) -> Job:
        """Build a fresh job from the source.

        ``clean=True`` (new chain tip) invalidates every outstanding job;
        ``clean=False`` keeps the previous ``max_jobs - 1`` grading-
        eligible (timestamp refresh).
        """
        block, height = self.source.build_template()
        job_id = f"{self._counter:08x}"
        self._counter += 1
        if clean:
            self._jobs.clear()
        job = Job(
            job_id=job_id,
            header=block.header,
            height=height,
            transactions=block.transactions,
            clean=clean,
            block_target=compact_to_target(block.header.bits),
        )
        self._jobs[job_id] = job
        while len(self._jobs) > self.max_jobs:
            self._jobs.popitem(last=False)
        return job
