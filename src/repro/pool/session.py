"""Per-client session state and share accounting.

A *session* outlives its TCP connection: ``mining.subscribe`` with a
previously issued session id reattaches the same counters, vardiff state
and nonce range, so a flapping client neither resets its difficulty nor
collides with its own old work units.  Sessions also carry the ban score:
invalid shares (bad nonce, wrong difficulty, garbage frames) add to it,
accepted shares slowly work it off, and crossing ``ban_threshold`` flags
the session banned — every later request is refused and the connection
dropped, which is what turns an invalid-share flood into one cheap
comparison per line instead of a verification job.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pool.vardiff import Vardiff, VardiffConfig


@dataclass(slots=True)
class ShareCounters:
    """Lifetime share accounting for one session."""

    accepted: int = 0
    stale: int = 0
    invalid: int = 0
    duplicate: int = 0
    blocks_found: int = 0
    #: Total share difficulty of every accepted share (the session's
    #: contributed work, in difficulty-1 units).
    score: float = 0.0


@dataclass(slots=True)
class ClientSession:
    """One logical client, reconnect-safe across TCP connections."""

    session_id: str
    nonce_start: int
    nonce_count: int
    vardiff: Vardiff
    account: str | None = None
    authorized: bool = False
    banned: bool = False
    ban_score: float = 0.0
    counters: ShareCounters = field(default_factory=ShareCounters)
    #: Nonces already submitted per job id (duplicate-share detection);
    #: pruned when jobs rotate out.
    seen_nonces: dict[str, set[int]] = field(default_factory=dict)
    #: Difficulty in effect for the previous job generation — a share
    #: crossing a retarget is graded against the easier of the two, so an
    #: honest in-flight share is never punished for a set_difficulty race.
    previous_difficulty: float | None = None

    @classmethod
    def create(
        cls,
        session_id: str,
        index: int,
        config: VardiffConfig,
        difficulty: float,
        nonce_bits: int,
    ) -> "ClientSession":
        """Build a fresh session with the ``index``-th nonce work unit.

        The 64-bit nonce space is partitioned into ``2**nonce_bits``-sized
        work units by session index, so two clients can never submit the
        same (job, nonce) pair and a client's duplicate-share set stays
        meaningful across reconnects.
        """
        return cls(
            session_id=session_id,
            nonce_start=(index << nonce_bits) % (1 << 64),
            nonce_count=1 << nonce_bits,
            vardiff=Vardiff(config, difficulty),
        )

    # ------------------------------------------------------------------
    @property
    def difficulty(self) -> float:
        return self.vardiff.difficulty

    def owns_nonce(self, nonce: int) -> bool:
        return self.nonce_start <= nonce < self.nonce_start + self.nonce_count

    def grading_difficulties(self) -> tuple[float, ...]:
        """Difficulties a submitted share may be graded against."""
        if self.previous_difficulty is None:
            return (self.difficulty,)
        return (self.difficulty, self.previous_difficulty)

    # -- ban scoring ---------------------------------------------------
    def record_invalid(self, weight: float, threshold: float) -> bool:
        """Add ``weight`` to the ban score; returns True when the session
        just crossed ``threshold`` (caller drops the connection)."""
        self.counters.invalid += 1
        self.ban_score += weight
        if not self.banned and self.ban_score >= threshold:
            self.banned = True
            return True
        return False

    def record_accepted(self, difficulty: float) -> None:
        """Credit an accepted share and decay the ban score."""
        self.counters.accepted += 1
        self.counters.score += difficulty
        self.ban_score = max(0.0, self.ban_score - 0.25)

    def prune_jobs(self, live_job_ids: set[str]) -> None:
        """Drop duplicate-share bookkeeping for rotated-out jobs."""
        for job_id in [j for j in self.seen_nonces if j not in live_job_ids]:
            del self.seen_nonces[job_id]
