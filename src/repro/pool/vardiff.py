"""Per-client share-difficulty retargeting (vardiff).

A pool hands each client a *share* difficulty far below the block
difficulty so the client can prove steady progress; vardiff tunes that
difficulty per client so every client submits roughly one share per
``target_interval`` seconds regardless of its hash rate — fast rigs get
hard shares (less pool-side verification traffic), slow rigs get easy
ones (smooth payout accounting).

The estimator is an exponential moving average of observed inter-share
intervals.  Every ``retarget_shares`` shares (or after
``retarget_seconds`` of wall clock, whichever first) the difficulty is
rescaled by ``target_interval / ema`` — shares arriving twice as fast as
wanted double the difficulty.  Steps are clamped to ``max_step``× per
retarget, the result to ``[min_difficulty, max_difficulty]``, and changes
inside the ``deadband`` are suppressed so a well-tuned client is never
churned with `set_difficulty` spam.

Deterministic by construction: the clock is injected (the server passes
``time.monotonic``; tests pass a fake), and the hypothesis fuzz in
``tests/test_pool_server.py`` drives bursty arrival patterns through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PoolError


@dataclass(frozen=True, slots=True)
class VardiffConfig:
    """Retargeting policy knobs."""

    #: Wanted seconds between shares from one client.
    target_interval: float = 2.0
    #: Consider a retarget every this many shares …
    retarget_shares: int = 8
    #: … or after this much wall clock since the last retarget.
    retarget_seconds: float = 30.0
    #: Difficulty clamp (inclusive).
    min_difficulty: float = 1.0
    max_difficulty: float = float(1 << 48)
    #: Maximum factor one retarget may move the difficulty.
    max_step: float = 4.0
    #: EMA smoothing factor for the inter-share interval.
    ema_alpha: float = 0.3
    #: Suppress retargets that would move the difficulty by less than
    #: this fraction (|new/old - 1| <= deadband keeps the old value).
    deadband: float = 0.2

    def __post_init__(self) -> None:
        if self.target_interval <= 0:
            raise PoolError("target_interval must be positive")
        if self.retarget_shares < 1:
            raise PoolError("retarget_shares must be >= 1")
        if self.retarget_seconds <= 0:
            raise PoolError("retarget_seconds must be positive")
        if not 0 < self.min_difficulty <= self.max_difficulty:
            raise PoolError("need 0 < min_difficulty <= max_difficulty")
        if self.max_step <= 1.0:
            raise PoolError("max_step must be > 1")
        if not 0 < self.ema_alpha <= 1:
            raise PoolError("ema_alpha must be in (0, 1]")
        if self.deadband < 0:
            raise PoolError("deadband must be >= 0")


class Vardiff:
    """EMA-of-interval retargeter for one client."""

    def __init__(self, config: VardiffConfig, difficulty: float) -> None:
        self.config = config
        self.difficulty = self._clamp_global(difficulty)
        self._ema: float | None = None
        self._last_share: float | None = None
        self._last_retarget: float | None = None
        self._shares_since = 0
        self.retargets = 0

    def _clamp_global(self, difficulty: float) -> float:
        return min(
            self.config.max_difficulty,
            max(self.config.min_difficulty, difficulty),
        )

    def record_share(self, now: float) -> float | None:
        """Record one accepted share at monotonic time ``now``.

        Returns the new difficulty when a retarget fired, else ``None``.
        """
        config = self.config
        if self._last_retarget is None:
            self._last_retarget = now
        if self._last_share is not None:
            interval = max(0.0, now - self._last_share)
            self._ema = (
                interval
                if self._ema is None
                else (1 - config.ema_alpha) * self._ema
                + config.ema_alpha * interval
            )
        self._last_share = now
        self._shares_since += 1
        if self._ema is None:
            return None
        due = (
            self._shares_since >= config.retarget_shares
            or now - self._last_retarget >= config.retarget_seconds
        )
        if not due:
            return None
        self._shares_since = 0
        self._last_retarget = now
        # Shares arriving faster than wanted (small EMA) raise difficulty
        # proportionally; an idle client (large EMA) gets easier shares.
        # A zero EMA (bursts faster than the clock resolution) pins the
        # step to its clamp instead of dividing by zero.
        if self._ema <= 0.0:
            factor = config.max_step
        else:
            factor = config.target_interval / self._ema
        factor = min(config.max_step, max(1.0 / config.max_step, factor))
        proposed = self._clamp_global(self.difficulty * factor)
        if abs(proposed / self.difficulty - 1.0) <= config.deadband:
            return None
        self.difficulty = proposed
        self.retargets += 1
        return self.difficulty
