"""Batched share verification.

Every submitted share needs one PoW evaluation — for HashCore that is a
full widget execution (verification *is* recomputation, §IV), far too
expensive to pay per share with per-share event-loop and executor
round-trips on top.  The verifier funnels all clients' shares into one
bounded queue; a single drain task pulls whatever has accumulated (up to
``batch_max``), computes the digests in **one** executor dispatch through
``PowFunction.hash_batch`` (which deduplicates identical headers and
routes shared-program groups onto the tier-3 lockstep engine), and
resolves the per-share futures.  Under load the batch grows with the
backlog, so verification cost amortizes across clients exactly when it
matters; at idle every share still completes in one round trip.

``batched=False`` keeps the API but verifies each share individually —
the per-share baseline ``benchmarks/bench_poolserver.py`` races the
batched path against.

The queue is bounded: when verification cannot keep up, ``digest``
raises ``overloaded`` instead of buffering without limit, and the server
turns that into an error response — backpressure, not memory growth.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.core.pow import PowFunction
from repro.errors import PoolError
from repro.pool.protocol import PoolProtocolError


@dataclass(slots=True)
class VerifierStats:
    """Batching effectiveness counters."""

    shares: int = 0
    batches: int = 0
    max_batch: int = 0
    rejected_overload: int = 0

    @property
    def mean_batch(self) -> float:
        return self.shares / self.batches if self.batches else 0.0


class BatchVerifier:
    """Queue + drain task computing share digests in batches."""

    def __init__(
        self,
        pow_fn: PowFunction,
        *,
        batch_max: int = 64,
        queue_max: int = 8192,
        batched: bool = True,
    ) -> None:
        if batch_max < 1:
            raise PoolError("batch_max must be >= 1")
        if queue_max < 1:
            raise PoolError("queue_max must be >= 1")
        self.pow_fn = pow_fn
        self.batch_max = batch_max
        self.batched = batched
        self.stats = VerifierStats()
        self._queue: asyncio.Queue[tuple[bytes, asyncio.Future]] = (
            asyncio.Queue(maxsize=queue_max)
        )
        self._task: asyncio.Task | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the drain task (idempotent)."""
        self._closed = False
        if self.batched and self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain(), name="pool-verifier"
            )

    async def stop(self) -> None:
        """Cancel the drain task and fail any queued shares."""
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while not self._queue.empty():
            _, future = self._queue.get_nowait()
            if not future.done():
                future.set_exception(PoolError("verifier stopped"))

    # ------------------------------------------------------------------
    async def digest(self, data: bytes) -> bytes:
        """Compute the PoW digest of one share's header bytes.

        Batched mode enqueues and awaits the drain task; per-share mode
        dispatches immediately.  Raises ``overloaded`` when the queue is
        full (batched) — the caller's backpressure signal.
        """
        if self._closed:
            raise PoolError("verifier stopped")
        loop = asyncio.get_running_loop()
        if not self.batched:
            self.stats.shares += 1
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, 1)
            return await loop.run_in_executor(None, self.pow_fn.hash, data)
        future: asyncio.Future = loop.create_future()
        try:
            self._queue.put_nowait((data, future))
        except asyncio.QueueFull:
            self.stats.rejected_overload += 1
            raise PoolProtocolError(
                "overloaded", "verification queue is full"
            ) from None
        return await future

    # ------------------------------------------------------------------
    def _compute(self, datas: list[bytes]) -> list[bytes]:
        """One executor dispatch for a whole batch."""
        hash_batch = getattr(self.pow_fn, "hash_batch", None)
        if hash_batch is not None:
            return hash_batch(datas)
        return [self.pow_fn.hash(data) for data in datas]

    async def _drain(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            data, future = await self._queue.get()
            batch = [(data, future)]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            datas = [item[0] for item in batch]
            try:
                digests = await loop.run_in_executor(
                    None, self._compute, datas
                )
            except Exception as exc:  # noqa: BLE001 — fan the failure out
                # One poisoned share must not wedge its batch-mates:
                # replay each share alone so only the culprit fails.
                self.stats.shares += len(batch)
                self.stats.batches += 1
                for data, future in batch:
                    if future.done():
                        continue
                    try:
                        digest = await loop.run_in_executor(
                            None, self.pow_fn.hash, data
                        )
                    except Exception as solo_exc:  # noqa: BLE001
                        future.set_exception(solo_exc)
                    else:
                        future.set_result(digest)
                del exc
            else:
                self.stats.shares += len(batch)
                self.stats.batches += 1
                self.stats.max_batch = max(self.stats.max_batch, len(batch))
                for (data, future), digest in zip(batch, digests):
                    if not future.done():
                        future.set_result(digest)
