"""Asyncio pool client: a real miner and a load generator in one.

Two modes share the connection machinery:

* **mining mode** (``pow_fn`` given) — on every job the client grinds its
  assigned nonce range locally, submitting only nonces whose digest meets
  the current share target.  This is an honest stratum miner in
  miniature, used by the protocol tests against SHA-256d.
* **blind mode** (``pow_fn=None``) — the client submits sequential nonces
  from its range at a fixed pace without hashing.  With share difficulty
  1 every 256-bit digest qualifies, so all submissions are accepted and
  the *server's* verification pipeline is the only PoW work in the
  process — exactly what ``benchmarks/bench_poolserver.py`` wants to
  load-test with a thousand concurrent clients.

A single reader task owns the socket: responses resolve the pending
request future by id, ``mining.notify`` swaps the current job (clean
jobs reset the nonce cursor), ``mining.set_difficulty`` retunes the
local grind.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field

from repro.blockchain.block import BlockHeader
from repro.core.pow import PowFunction, difficulty_to_target, meets_target
from repro.errors import PoolError
from repro.pool import protocol


@dataclass(slots=True)
class ClientStats:
    """Submission outcomes as seen from the client side."""

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    stale: int = 0
    blocks: int = 0
    notifies: int = 0
    retargets: int = 0
    errors: dict[str, int] = field(default_factory=dict)


@dataclass(slots=True)
class _JobView:
    job_id: str
    header: BlockHeader
    clean: bool


class PoolClient:
    """One pool connection; usable as an async context manager."""

    def __init__(
        self,
        host: str,
        port: int,
        account: str,
        *,
        pow_fn: PowFunction | None = None,
        session: str | None = None,
        submit_interval: float = 0.0,
        resume_nonce: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.account = account
        self.pow_fn = pow_fn
        self.session = session
        self.submit_interval = submit_interval
        #: Where to pick the nonce scan back up when reattaching a
        #: session (``next_nonce`` of the previous connection) — without
        #: it a reconnect would re-submit its own earlier nonces and be
        #: rejected as duplicates while the job is unchanged.
        self._resume = resume_nonce
        self.stats = ClientStats()
        self.difficulty = 1.0
        self.nonce_start = 0
        self.nonce_count = 0
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._job: _JobView | None = None
        self._job_event = asyncio.Event()
        self._cursor = 0
        self._reader_task: asyncio.Task | None = None
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_LINE_BYTES
        )
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )
        result = await self.call(
            "mining.subscribe",
            {"agent": "repro-pool-client", "session": self.session},
        )
        self.session = result["session"]
        self.nonce_start = result["nonce_start"]
        self.nonce_count = result["nonce_count"]
        self.difficulty = result["difficulty"]
        # The first notify may already have been processed (with a stale
        # nonce_start) before this point; only ever raise the cursor so
        # neither ordering loses a pending resume position.
        self._cursor = max(self._cursor, self.nonce_start)
        await self.call("mining.authorize", {"account": self.account})

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        for future in self._pending.values():
            if not future.done():
                future.set_exception(PoolError("client closed"))
        self._pending.clear()

    async def __aenter__(self) -> "PoolClient":
        await self.connect()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # wire
    # ------------------------------------------------------------------
    async def call(self, method: str, params: dict) -> dict:
        """Send one request and await its response's ``result``.

        Protocol-level rejections surface as
        :class:`~repro.pool.protocol.PoolProtocolError`.
        """
        if self._writer is None:
            raise PoolError("client not connected")
        request_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        self._writer.write(
            protocol.encode(protocol.request(request_id, method, params))
        )
        await self._writer.drain()
        return await future

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                message = protocol.decode_line(line)
                if message.get("id") is None and "method" in message:
                    self._on_notification(message)
                    continue
                future = self._pending.pop(message.get("id"), None)
                if future is None or future.done():
                    continue
                error = message.get("error")
                if error:
                    future.set_exception(
                        protocol.PoolProtocolError(
                            error.get("code", "bad-request"),
                            error.get("message", "rejected"),
                        )
                    )
                else:
                    future.set_result(message.get("result") or {})
        except (ConnectionError, OSError, asyncio.CancelledError,
                protocol.PoolProtocolError):
            pass
        finally:
            disconnect = PoolError("server closed the connection")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(disconnect)
            self._pending.clear()

    def _on_notification(self, message: dict) -> None:
        method = message["method"]
        params = message.get("params") or {}
        if method == "mining.notify":
            self.stats.notifies += 1
            header = BlockHeader.deserialize(bytes.fromhex(params["header"]))
            clean = bool(params.get("clean"))
            self._job = _JobView(
                job_id=params["job"], header=header, clean=clean
            )
            if clean:
                self._cursor = self.nonce_start
            if self._resume is not None:
                # Reattach: skip past nonces submitted before the
                # reconnect (harmless when the job rotated meanwhile).
                self._cursor = max(self._cursor, self._resume)
                self._resume = None
            self._job_event.set()
        elif method == "mining.set_difficulty":
            self.stats.retargets += 1
            self.difficulty = float(params["difficulty"])

    # ------------------------------------------------------------------
    # mining / load generation
    # ------------------------------------------------------------------
    async def wait_for_job(self) -> _JobView:
        await self._job_event.wait()
        assert self._job is not None
        return self._job

    @property
    def next_nonce(self) -> int:
        """The next nonce the scan will try (pass as ``resume_nonce``
        when reattaching this session on a new connection)."""
        return self._cursor

    def _next_nonce(self) -> int:
        if self._cursor >= self.nonce_start + self.nonce_count:
            raise PoolError("nonce range exhausted")
        nonce = self._cursor
        self._cursor += 1
        return nonce

    async def _submit(self, job_id: str, nonce: int) -> bool:
        self.stats.submitted += 1
        try:
            result = await self.call(
                "mining.submit", {"job": job_id, "nonce": nonce}
            )
        except protocol.PoolProtocolError as exc:
            self.stats.rejected += 1
            if exc.code == "stale-job":
                self.stats.stale += 1
            self.stats.errors[exc.code] = self.stats.errors.get(exc.code, 0) + 1
            return False
        self.stats.accepted += 1
        if "block" in result:
            self.stats.blocks += 1
        return True

    async def submit_shares(self, count: int, *, lanes: int = 1) -> int:
        """Submit ``count`` shares from the current job; returns accepted.

        Mining mode grinds honestly against the share target; blind mode
        submits sequential nonces unhashed.  ``submit_interval`` paces
        consecutive submissions (the load knob).  ``lanes`` keeps that
        many submissions in flight concurrently — a real miner does not
        stop hashing while a share ack is on the wire, and a stop-and-wait
        load generator would starve the server's verification batching.
        """
        if lanes > 1:
            per, extra = divmod(count, lanes)
            counts = [per + (1 if i < extra else 0) for i in range(lanes)]
            results = await asyncio.gather(
                *(self.submit_shares(n) for n in counts if n)
            )
            return sum(results)
        job = await self.wait_for_job()
        accepted = 0
        for _ in range(count):
            if self._job is not None and self._job.job_id != job.job_id:
                job = self._job  # rotated mid-run: follow the new job
            nonce = self._find_share(job)
            if await self._submit(job.job_id, nonce):
                accepted += 1
            if self.submit_interval > 0:
                await asyncio.sleep(self.submit_interval)
        return accepted

    def _find_share(self, job: _JobView) -> int:
        """Next nonce to submit: ground honestly or blind-sequential."""
        if self.pow_fn is None:
            return self._next_nonce()
        target = difficulty_to_target(self.difficulty)
        while True:
            nonce = self._next_nonce()
            digest = self.pow_fn.hash(
                job.header.with_nonce(nonce).serialize()
            )
            if meets_target(digest, target):
                return nonce
