"""Stratum-style asyncio mining pool.

The pool layer is the first network entry point that exercises HashCore's
verify path under concurrent multi-client load (the paper's requirement
that verification stay cheap on commodity CPUs, §IV).  It splits into
small, separately testable pieces:

* :mod:`repro.pool.protocol` — the JSON-lines wire format (message
  builders, size limits, stable error codes).
* :mod:`repro.pool.vardiff` — per-client share-difficulty retargeting
  from an EMA of observed share intervals.
* :mod:`repro.pool.payout` — the PPLNS sliding-window payout split.
* :mod:`repro.pool.session` — per-client accounting (accepted / stale /
  invalid shares, ban score, reconnect-safe session ids).
* :mod:`repro.pool.jobs` — job templates from the chain tip + mempool,
  job rotation with clean-jobs flags, nonce-range work units.
* :mod:`repro.pool.verifier` — the batched share-verification queue
  drained through ``PowFunction.hash_batch``.
* :mod:`repro.pool.server` — the asyncio TCP server tying it together.
* :mod:`repro.pool.client` — an asyncio miner / load-generator client
  (used by ``benchmarks/bench_poolserver.py``).
"""

from repro.pool.client import ClientStats, PoolClient
from repro.pool.jobs import ChainTemplateSource, Job, JobManager, StaticTemplateSource
from repro.pool.payout import PPLNSWindow
from repro.pool.protocol import MAX_LINE_BYTES, PoolProtocolError
from repro.pool.server import PoolConfig, PoolServer, PoolStats
from repro.pool.session import ClientSession
from repro.pool.vardiff import Vardiff, VardiffConfig
from repro.pool.verifier import BatchVerifier, VerifierStats

__all__ = [
    "BatchVerifier",
    "ChainTemplateSource",
    "ClientSession",
    "ClientStats",
    "Job",
    "JobManager",
    "MAX_LINE_BYTES",
    "PPLNSWindow",
    "PoolClient",
    "PoolConfig",
    "PoolProtocolError",
    "PoolServer",
    "PoolStats",
    "StaticTemplateSource",
    "Vardiff",
    "VardiffConfig",
    "VerifierStats",
]
