"""Chaos-test harness: fault-injected gossip, invariants, replayable reports.

This is the execution half of the fault model in
:mod:`repro.blockchain.faults`.  A :class:`ChaosNetwork` runs real
:class:`~repro.blockchain.node.Node` replicas (full consensus validation)
under seeded link faults (drop / duplicate / latency jitter), scheduled
partitions, node crash/restart, and byzantine peers that forge invalid
blocks.  Recovery uses a batched backward block sync: a node that sees an
unknown tip (via gossip or periodic tip announcements) requests the
missing parent from a peer, which answers with the block plus a batch of
its ancestors; retries are capped, with linear backoff.

:class:`ChaosRunner` drives a :class:`~repro.blockchain.faults.Scenario`
tick by tick, checks invariants every tick —

1. no forged/invalid block ever enters any node's chain,
2. every node's tip cumulative work is monotone non-decreasing,
3. the orphan buffer never exceeds its cap,

— plus the end-of-run convergence invariant (all live honest nodes share
one tip after the quiet window), and emits a :class:`ChaosReport` whose
JSON rendering is byte-identical when the same scenario + seed is
replayed.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass, field

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.faults import Scenario
from repro.blockchain.miner import mine_block
from repro.blockchain.node import Node
from repro.core.pow import (
    MAX_TARGET,
    PowFunction,
    compact_to_target,
    difficulty_to_target,
    meets_target,
    target_to_compact,
)
from repro.errors import PowError
from repro.rng import Xoshiro256, splitmix64

#: Ancestors a peer sends along with a requested block (batched backward
#: sync — one round trip heals several blocks of lag).
SYNC_BATCH = 8

#: Nonce budget when forging/mining a chaos block, per unit of difficulty.
_ATTEMPTS_PER_DIFFICULTY = 64


def _stream(seed: int, salt: int) -> Xoshiro256:
    """Independent deterministic RNG stream for one chaos subsystem."""
    return Xoshiro256(splitmix64((seed & (2**64 - 1)) ^ salt))


@dataclass(slots=True)
class _Msg:
    deliver_at: int
    seq: int
    origin: int
    target: int
    kind: str  # "block" | "get" | "inv"
    block: Block | None = None
    ref: bytes | None = None


@dataclass(slots=True)
class _Request:
    attempts: int
    next_retry: int
    source: int


class ChaosNetwork:
    """Gossip fabric with seeded fault injection and resync.

    Message kinds: ``block`` (gossip/sync payload), ``inv`` (periodic tip
    announcement), ``get`` (request for a block by id, answered with the
    block plus up to :data:`SYNC_BATCH` ancestors).  All three ride the
    same faulty links.  Byzantine origins (index >= ``n_nodes``) bypass
    partitions — the adversary is assumed well connected.
    """

    def __init__(
        self,
        scenario: Scenario,
        pow_fn: PowFunction,
        node_factory=None,
    ) -> None:
        factory = node_factory or Node
        self.scenario = scenario
        self.genesis_bits = target_to_compact(
            difficulty_to_target(scenario.difficulty)
        )
        schedule = RetargetSchedule(
            block_time=float(scenario.block_time),
            interval=scenario.retarget_interval,
        )
        self.nodes: list[Node] = [
            factory(
                f"node{i}",
                pow_fn,
                schedule=schedule,
                genesis_bits=self.genesis_bits,
                max_orphans=scenario.max_orphans,
            )
            for i in range(scenario.n_nodes)
        ]
        self.counters: Counter[str] = Counter()
        self._queue: list[_Msg] = []
        self._requests: dict[tuple[int, bytes], _Request] = {}
        self._given_up: set[tuple[int, bytes]] = set()
        self._seq = 0
        self._tick = 0
        self._link_rng = _stream(scenario.seed, 0x11AC)
        self._peer_rng = _stream(scenario.seed, 0x4EEF)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _severed(self, a: int, b: int, tick: int) -> bool:
        return any(p.severed(a, b, tick) for p in self.scenario.partitions)

    def _post(
        self,
        origin: int,
        target: int,
        kind: str,
        block: Block | None = None,
        ref: bytes | None = None,
    ) -> None:
        link = self.scenario.link
        self.counters["sent"] += 1
        if self._severed(origin, target, self._tick):
            self.counters["cut_at_send"] += 1
            return
        if link.drop > 0.0 and self._link_rng.random() < link.drop:
            self.counters["dropped"] += 1
            return
        copies = 1
        if link.duplicate > 0.0 and self._link_rng.random() < link.duplicate:
            copies = 2
            self.counters["duplicated"] += 1
        for _ in range(copies):
            delay = link.delay
            if link.jitter > 0:
                delay += self._link_rng.randint(0, link.jitter)
            self._seq += 1
            self._queue.append(
                _Msg(deliver_at=self._tick + delay, seq=self._seq,
                     origin=origin, target=target, kind=kind,
                     block=block, ref=ref)
            )

    def broadcast_from(self, origin: int, block: Block) -> None:
        """Gossip an honest node's freshly mined block to all peers."""
        for target in range(len(self.nodes)):
            if target != origin:
                self._post(origin, target, "block", block=block)

    def inject(self, byz_origin: int, block: Block) -> None:
        """Byzantine broadcast of a forged block to every honest node."""
        for target in range(len(self.nodes)):
            self._post(byz_origin, target, "block", block=block)

    def crash_node(self, index: int) -> None:
        self.nodes[index].crash()

    # ------------------------------------------------------------------
    # per-tick phases
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Deliver due messages, announce tips, drive resync — one tick."""
        self._tick += 1
        due = [m for m in self._queue if m.deliver_at <= self._tick]
        self._queue = [m for m in self._queue if m.deliver_at > self._tick]
        due.sort(key=lambda m: (m.deliver_at, m.seq))
        for message in due:
            self._deliver(message)
        if self._tick % self.scenario.announce_every == 0:
            self._announce()
        self._resync()

    def _deliver(self, msg: _Msg) -> None:
        if self._severed(msg.origin, msg.target, self._tick):
            self.counters["cut_in_flight"] += 1
            return
        node = self.nodes[msg.target]
        if not node.alive:
            self.counters["dropped_offline"] += 1
            return
        if msg.kind == "block":
            self.counters["delivered"] += 1
            result = node.receive(msg.block)
            if result.status == "orphaned" and result.code == "unknown-parent":
                self._want(msg.target, msg.block.header.prev_hash, msg.origin)
            elif result.status == "rejected":
                self.counters["rejected_deliveries"] += 1
        elif msg.kind == "inv":
            self.counters["inv_delivered"] += 1
            if not node.knows(msg.ref):
                self._want(msg.target, msg.ref, msg.origin)
            elif (
                msg.ref in node.chain
                and self._honest_peer(msg.origin, msg.target)
                and node.chain.work_of(msg.ref) < node.chain.total_work()
            ):
                # The announcer's tip is a known, strictly lighter block:
                # answer with our heavier tip so laggards hear about newer
                # work from their *own* announcements too (bidirectional
                # tip gossip — no ping-pong once both sides agree).
                self.counters["inv_replies"] += 1
                self._post(msg.target, msg.origin, "inv", ref=node.tip_id())
        elif msg.kind == "get":
            self.counters["get_delivered"] += 1
            self._serve(msg.target, msg.origin, msg.ref)

    def _serve(self, server: int, requester: int, wanted: bytes) -> None:
        """Answer a block request with the block plus a batch of ancestors."""
        chain = self.nodes[server].chain
        if wanted not in chain:
            self.counters["get_unserved"] += 1
            return
        self.counters["resp_sent"] += 1
        cursor = wanted
        for _ in range(1 + SYNC_BATCH):
            block = chain.get(cursor)
            if chain.height_of(cursor) == 0:
                break  # everyone has genesis
            self._post(server, requester, "block", block=block)
            cursor = block.header.prev_hash

    def _announce(self) -> None:
        # Each announce round also re-arms given-up requests: periodic tip
        # gossip is the standing recovery signal, so retry caps bound each
        # burst rather than permanently abandoning a hole.
        self._given_up.clear()
        for i, node in enumerate(self.nodes):
            if not node.alive:
                continue
            self.counters["inv_sent"] += 1
            self._post(i, self._random_peer(i), "inv", ref=node.tip_id())

    def _want(self, node_index: int, wanted: bytes, source: int) -> None:
        key = (node_index, wanted)
        if key in self._requests or key in self._given_up:
            return
        if self.nodes[node_index].knows(wanted):
            return
        self._requests[key] = _Request(
            attempts=0, next_retry=self._tick, source=source
        )

    def _resync(self) -> None:
        scenario = self.scenario
        # Keep every orphan hole armed: the deepest missing parent of each
        # buffered chain always has an active (or recently given-up)
        # request, regardless of how the orphan got here.
        for i, node in enumerate(self.nodes):
            if node.alive:
                for parent in node.missing_parents():
                    self._want(i, parent, source=-1)
        for key in sorted(self._requests, key=lambda k: (k[0], k[1])):
            request = self._requests[key]
            node_index, wanted = key
            node = self.nodes[node_index]
            if not node.alive:
                del self._requests[key]  # crash wiped the orphan buffer
                continue
            if node.knows(wanted):
                del self._requests[key]
                self.counters["requests_satisfied"] += 1
                continue
            if self._tick < request.next_retry:
                continue
            if request.attempts >= scenario.request_retries:
                del self._requests[key]
                self._given_up.add(key)
                self.counters["requests_expired"] += 1
                continue
            # First attempt goes to whoever told us about the block; retries
            # fan out to seeded random peers (the source may be byzantine,
            # crashed, or behind a partition).
            if request.attempts == 0 and self._honest_peer(request.source, node_index):
                peer = request.source
            else:
                peer = self._random_peer(node_index)
            self.counters["get_sent"] += 1
            self._post(node_index, peer, "get", ref=wanted)
            request.attempts += 1
            # Linear backoff: request_backoff * attempts ticks until the
            # next try, so a full retry burst fits inside one quiet window.
            request.next_retry = self._tick + scenario.request_backoff * request.attempts

    def _honest_peer(self, peer: int, me: int) -> bool:
        return 0 <= peer < len(self.nodes) and peer != me

    def _random_peer(self, me: int) -> int:
        return self._peer_rng.choice(
            [i for i in range(len(self.nodes)) if i != me]
        )

    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """True when every live node agrees on the tip."""
        tips = {node.tip_id() for node in self.nodes if node.alive}
        return len(tips) <= 1


# ----------------------------------------------------------------------
# byzantine forgery
# ----------------------------------------------------------------------
def forge_block(
    kind: str,
    chain: Blockchain,
    pow_fn: PowFunction,
    rng: Xoshiro256,
    timestamp: int,
) -> tuple[Block, str] | None:
    """Craft an invalid block of ``kind`` on top of ``chain``'s tip.

    Returns ``(block, actual_kind)`` — the kind can degrade (e.g. to
    ``bad-merkle``) when the requested one is impossible in the current
    state: ``bad-pow``/``bad-bits`` cannot exist at the maximum target,
    ``bad-timestamp`` cannot undercut a genesis parent at time zero.
    Returns ``None`` when the nonce budget runs out.
    """
    tip = chain.tip_id
    bits = chain.expected_bits(tip)
    target = compact_to_target(bits)
    budget = max(64, int(_ATTEMPTS_PER_DIFFICULTY * (MAX_TARGET / target)))
    salt = rng.next_u64() >> 32
    transactions = [b"byz-" + rng.next_u64().to_bytes(8, "little")]

    if kind == "bad-timestamp" and chain.tip().header.timestamp == 0:
        kind = "bad-pow"
    if kind == "bad-bits":
        easy_bits = target_to_compact(min(MAX_TARGET, target * 4))
        if easy_bits == bits:
            kind = "bad-merkle"  # already at the floor: bad-bits impossible
    if kind == "bad-pow" and target * 2 > MAX_TARGET:
        # Near the maximum target almost every digest meets PoW (compact
        # encoding rounds MAX_TARGET down, so equality never triggers);
        # a failing nonce is not reliably findable — forge the body instead.
        kind = "bad-merkle"

    try:
        if kind == "bad-pow":
            template = Block.build(tip, transactions, timestamp, bits)
            for attempt in range(budget):
                candidate = template.with_nonce(salt + attempt)
                digest = pow_fn.hash(candidate.header.serialize())
                if not meets_target(digest, target):
                    return candidate, kind
            return None
        if kind == "bad-bits":
            template = Block.build(tip, transactions, timestamp, easy_bits)
            mined = mine_block(template, pow_fn, max_attempts=budget,
                               start_nonce=salt)
            return mined.block, kind
        if kind == "bad-timestamp":
            skewed = chain.tip().header.timestamp - 1
            template = Block.build(tip, transactions, skewed, bits)
            mined = mine_block(template, pow_fn, max_attempts=budget,
                               start_nonce=salt)
            return mined.block, kind
        # bad-merkle: a validly mined header over a swapped-out body.
        template = Block.build(tip, transactions, timestamp, bits)
        mined = mine_block(template, pow_fn, max_attempts=budget,
                           start_nonce=salt)
        forged = Block(header=mined.block.header,
                       transactions=(b"byz-forged-body",))
        return forged, "bad-merkle"
    except PowError:
        return None


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
class InvariantChecker:
    """Tick-by-tick consensus invariants over all node replicas."""

    def __init__(self) -> None:
        self.violations: list[str] = []
        self._last_work: dict[str, float] = {}
        self._flagged: set[tuple[str, bytes]] = set()

    def check_tick(
        self, tick: int, nodes: list[Node], invalid_ids: dict[bytes, str]
    ) -> None:
        for node in nodes:
            for bid, kind in invalid_ids.items():
                if bid in node.chain and (node.name, bid) not in self._flagged:
                    self._flagged.add((node.name, bid))
                    self.violations.append(
                        f"invalid-block: {kind} block {bid.hex()[:16]} entered "
                        f"chain of {node.name} at tick {tick}"
                    )
            work = node.chain.total_work()
            previous = self._last_work.get(node.name, 0.0)
            if work < previous - 1e-9:
                self.violations.append(
                    f"work-regression: {node.name} tip work fell "
                    f"{previous:.3f} -> {work:.3f} at tick {tick}"
                )
            self._last_work[node.name] = work
            if node.orphan_count() > node.max_orphans:
                self.violations.append(
                    f"orphan-overflow: {node.name} buffers "
                    f"{node.orphan_count()} > cap {node.max_orphans} "
                    f"at tick {tick}"
                )

    def check_final(self, nodes: list[Node]) -> bool:
        """Convergence invariant after the quiet window."""
        tips = {node.tip_id() for node in nodes if node.alive}
        if len(tips) > 1:
            self.violations.append(
                f"non-convergence: {len(tips)} distinct tips among live "
                "nodes after the quiet window"
            )
            return False
        return True


# ----------------------------------------------------------------------
# runner + report
# ----------------------------------------------------------------------
@dataclass(slots=True)
class ChaosReport:
    """Structured outcome of one chaos run.  ``to_json()`` is byte-stable:
    replaying the same scenario (same seed) yields identical bytes."""

    scenario: dict
    ticks: int
    blocks_mined: int
    resolution_blocks: int
    mining_failures: int
    forged: dict[str, int]
    messages: dict[str, int]
    nodes: list[dict]
    violations: list[str]
    converged: bool

    def ok(self) -> bool:
        return self.converged and not self.violations

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=indent)


class ChaosRunner:
    """Executes one :class:`Scenario` tick by tick and reports.

    ``pow_fn`` defaults to SHA-256d (chaos runs mine hundreds of real
    blocks; HashCore at ~0.1 s/hash would take hours).  ``node_factory``
    lets tests substitute doubles — e.g. a node whose chain skips PoW
    validation, to prove the invariant checker catches the forgery.
    """

    def __init__(
        self,
        scenario: Scenario,
        pow_fn: PowFunction | None = None,
        node_factory=None,
    ) -> None:
        self.scenario = scenario
        self.pow_fn = pow_fn or Sha256d()
        self.node_factory = node_factory

    def run(self) -> ChaosReport:
        scenario = self.scenario
        net = ChaosNetwork(scenario, self.pow_fn, self.node_factory)
        mine_rng = _stream(scenario.seed, 0x2B0B)
        byz_rng = _stream(scenario.seed, 0x3CDE)
        checker = InvariantChecker()
        invalid_ids: dict[bytes, str] = {}
        forged: Counter[str] = Counter()
        mined = 0
        resolution_blocks = 0
        mining_failures = 0
        mine_until = scenario.effective_mine_until()

        for tick in range(1, scenario.ticks + 1):
            # 1. scheduled crash / restart events
            for crash in scenario.crashes:
                if crash.at == tick:
                    net.crash_node(crash.node)
                elif crash.restart_at == tick:
                    net.nodes[crash.node].restart()
            # 2. byzantine injections
            for offset, byz in enumerate(scenario.byzantine):
                until = byz.until if byz.until is not None else scenario.ticks
                if byz.start <= tick <= until and (tick - byz.start) % byz.every == 0:
                    victim = net.nodes[byz_rng.randint(0, scenario.n_nodes - 1)]
                    wanted_kind = byz_rng.choice(list(byz.kinds))
                    result = forge_block(
                        wanted_kind, victim.chain, self.pow_fn, byz_rng,
                        tick * scenario.block_time,
                    )
                    if result is not None:
                        block, kind = result
                        invalid_ids[block_id(block)] = kind
                        forged[kind] += 1
                        net.inject(scenario.n_nodes + offset, block)
            # 3. honest mining (one seeded Bernoulli roll per tick)
            miner: int | None = None
            if tick <= mine_until and mine_rng.random() < scenario.mine_prob:
                weights = [
                    (scenario.hashrates[i] if scenario.hashrates else 1.0)
                    if node.alive else 0.0
                    for i, node in enumerate(net.nodes)
                ]
                if sum(weights) > 0.0:
                    miner = mine_rng.sample_weighted(weights)
            elif (
                tick > mine_until
                and tick <= scenario.ticks - 3 * scenario.announce_every
                and tick % (2 * scenario.announce_every) == 0
                and not net.converged()
            ):
                # Resolution mining: PoW convergence is a *liveness*
                # property — an equal-work fork persists until some miner
                # extends one branch.  During the quiet window the heaviest
                # live node mines at a slow cadence until tips agree,
                # exactly the mechanism that resolves ties in a real
                # network.  It stops three announce rounds before the end
                # so laggards chase a static tip, not a moving one.
                live = [
                    (node.chain.total_work(), -i)
                    for i, node in enumerate(net.nodes) if node.alive
                ]
                if live:
                    miner = -max(live)[1]
                    resolution_blocks += 1
            if miner is not None:
                node = net.nodes[miner]
                template = Block.build(
                    prev_hash=node.tip_id(),
                    transactions=[f"cb-{tick}-{miner}".encode()],
                    timestamp=tick * scenario.block_time,
                    bits=node.chain.expected_bits(node.tip_id()),
                )
                difficulty = max(
                    1.0,
                    MAX_TARGET / compact_to_target(template.header.bits),
                )
                try:
                    result = mine_block(
                        template,
                        self.pow_fn,
                        max_attempts=max(
                            64, int(_ATTEMPTS_PER_DIFFICULTY * difficulty)
                        ),
                        start_nonce=mine_rng.next_u64() >> 32,
                    )
                except PowError:
                    mining_failures += 1
                else:
                    mined += 1
                    node.receive(result.block)
                    net.broadcast_from(miner, result.block)
            # 4. network phases: delivery, announcements, resync
            net.tick()
            # 5. invariants
            checker.check_tick(tick, net.nodes, invalid_ids)

        converged = checker.check_final(net.nodes)
        return ChaosReport(
            scenario=scenario.to_dict(),
            ticks=scenario.ticks,
            blocks_mined=mined,
            resolution_blocks=resolution_blocks,
            mining_failures=mining_failures,
            forged=dict(sorted(forged.items())),
            messages=dict(sorted(net.counters.items())),
            nodes=[node.stats() for node in net.nodes],
            violations=list(checker.violations),
            converged=converged,
        )
