"""Chaos-test harness: fault-injected gossip, invariants, replayable reports.

This is the execution half of the fault model in
:mod:`repro.blockchain.faults`.  A :class:`ChaosNetwork` runs real
:class:`~repro.blockchain.node.Node` replicas (full consensus validation)
under seeded link faults (drop / duplicate / latency jitter), scheduled
partitions, node crash/restart, and byzantine peers that forge invalid
blocks.  Recovery uses a batched backward block sync: a node that sees an
unknown tip (via gossip or periodic tip announcements) requests the
missing parent from a peer, which answers with the block plus a batch of
its ancestors; retries are capped, with linear backoff.

Block propagation speaks one of three relay protocols
(:mod:`repro.blockchain.gossip`): ``flood`` — epidemic full-block
forwarding, every node re-broadcasts a newly accepted block to every
peer (O(n²) messages per block, the baseline the paper-scale experiments
cannot afford); ``gossip`` — header-first announcements to ~√N seeded
peers with the body pulled exactly once from the first announcer
(alternate announcers, then random peers, serve as fallbacks through the
standard retry machinery); ``compact`` — gossip whose bodies travel as
header + short tx ids and are reconstructed from the receiver's tx pool,
with a ``gettxn`` round trip for misses.  A per-node seen-inventory
(:meth:`Node.knows`) drops duplicate bodies and announcements at the
edge instead of re-flooding them, and every message kind is metered
(count and modelled wire bytes) so propagation efficiency is observable
per run.

:class:`ChaosRunner` drives a :class:`~repro.blockchain.faults.Scenario`
tick by tick, checks invariants every tick —

1. no forged/invalid block ever enters any node's chain,
2. every node's tip cumulative work is monotone non-decreasing,
3. the orphan buffer never exceeds its cap,

— plus the end-of-run convergence invariant (all live honest nodes share
one tip after the quiet window), and emits a :class:`ChaosReport` whose
JSON rendering is byte-identical when the same scenario + seed is
replayed.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Callable

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.faults import Scenario
from repro.blockchain.gossip import (
    BLOCK_RELAY_KINDS,
    CompactBlock,
    FanoutSampler,
    KIND_CATEGORY,
    message_wire_bytes,
    resolve_fanout,
)
from repro.blockchain.miner import mine_block
from repro.blockchain.node import Node
from repro.core.pow import (
    MAX_TARGET,
    PowFunction,
    compact_to_target,
    difficulty_to_target,
    meets_target,
    target_to_compact,
)
from repro.errors import ChainError, PowError
from repro.rng import Xoshiro256, splitmix64

#: Ancestors a peer sends along with a requested block (batched backward
#: sync — one round trip heals several blocks of lag).
SYNC_BATCH = 8

#: Nonce budget when forging/mining a chaos block, per unit of difficulty.
_ATTEMPTS_PER_DIFFICULTY = 64


def _stream(seed: int, salt: int) -> Xoshiro256:
    """Independent deterministic RNG stream for one chaos subsystem."""
    return Xoshiro256(splitmix64((seed & (2**64 - 1)) ^ salt))


@dataclass(slots=True)
class _Msg:
    deliver_at: int
    seq: int
    origin: int
    target: int
    #: "block" | "get" | "inv" | "ann" | "getblk" | "getfull" | "cmpct"
    #: | "gettxn" | "txn" | "tx" — see the schema table in
    #: :func:`repro.blockchain.gossip.message_wire_bytes`.
    kind: str
    block: Block | None = None
    ref: bytes | None = None
    header: BlockHeader | None = None
    compact: CompactBlock | None = None
    txs: tuple[bytes, ...] = ()
    indices: tuple[int, ...] = ()


@dataclass(slots=True)
class _Request:
    """One node's outstanding pull for a block id, with capped linear
    backoff.  ``kind`` is ``sync`` (batched backward ``get``) or ``body``
    (header-first single pull: ``getblk``, or ``getfull`` once ``full``
    is set after a failed compact reconstruction).  ``alternates`` are
    later announcers of the same block — the drop/timeout fallbacks."""

    attempts: int
    next_retry: int
    source: int
    kind: str = "sync"
    alternates: list[int] = field(default_factory=list)
    full: bool = False


@dataclass(slots=True)
class _PendingCompact:
    """Compact body awaiting a ``gettxn`` round trip."""

    compact: CompactBlock
    server: int


class ChaosNetwork:
    """Gossip fabric with seeded fault injection, relay protocols, resync.

    Sync kinds ``block`` / ``inv`` / ``get`` are joined by the relay
    kinds ``ann`` / ``getblk`` / ``getfull`` / ``cmpct`` / ``gettxn`` /
    ``txn`` / ``tx`` (schema table in
    :func:`repro.blockchain.gossip.message_wire_bytes`).  All of them
    ride the same faulty links.  Byzantine origins (index >=
    ``n_nodes``) bypass partitions — the adversary is assumed well
    connected.
    """

    def __init__(
        self,
        scenario: Scenario,
        pow_fn: PowFunction,
        node_factory=None,
        store_dir=None,
    ) -> None:
        factory = node_factory or Node
        self.scenario = scenario
        self.genesis_bits = target_to_compact(
            difficulty_to_target(scenario.difficulty)
        )
        schedule = RetargetSchedule(
            block_time=float(scenario.block_time),
            interval=scenario.retarget_interval,
        )
        # ``store_dir`` is harness configuration, not part of the fault
        # model: it lives here (and on ChaosRunner) rather than in
        # Scenario, so scenario dicts — and therefore report bytes — are
        # identical between in-memory and durable runs of the same seed.
        def _build(i: int) -> Node:
            kwargs = dict(
                schedule=schedule,
                genesis_bits=self.genesis_bits,
                max_orphans=scenario.max_orphans,
            )
            if store_dir is not None:
                from pathlib import Path

                from repro.blockchain.store import BlockStore

                kwargs["store"] = BlockStore(Path(store_dir) / f"node{i}.log")
            return factory(f"node{i}", pow_fn, **kwargs)

        self.nodes: list[Node] = [
            _build(i) for i in range(scenario.n_nodes)
        ]
        self.relay = scenario.relay
        self.fanout = resolve_fanout(scenario.fanout, scenario.n_nodes)
        self.counters: Counter[str] = Counter()
        #: Optional delivery observer ``(tick, msg, outcome)`` — the
        #: gossip determinism golden vector pins the trace through it.
        self.on_deliver: Callable[[int, _Msg, str], None] | None = None
        self._queue: list[_Msg] = []
        self._requests: dict[tuple[int, bytes], _Request] = {}
        self._given_up: set[tuple[int, bytes]] = set()
        self._pending_cmpct: dict[tuple[int, bytes], _PendingCompact] = {}
        self._seq = 0
        self._tick = 0
        self._link_rng = _stream(scenario.seed, 0x11AC)
        self._peer_rng = _stream(scenario.seed, 0x4EEF)
        #: Dedicated stream for relay-fanout sampling, so gossip target
        #: choice never perturbs link-fault or peer-choice replay.
        self._fanout_sampler = FanoutSampler(_stream(scenario.seed, 0x6A55))

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def _severed(self, a: int, b: int, tick: int) -> bool:
        return any(p.severed(a, b, tick) for p in self.scenario.partitions)

    def _post(
        self,
        origin: int,
        target: int,
        kind: str,
        block: Block | None = None,
        ref: bytes | None = None,
        header: BlockHeader | None = None,
        compact: CompactBlock | None = None,
        txs: tuple[bytes, ...] = (),
        indices: tuple[int, ...] = (),
    ) -> None:
        link = self.scenario.link
        size = message_wire_bytes(kind, block=block, compact=compact,
                                  txs=txs, indices=indices)
        self.counters["sent"] += 1
        self.counters["sent_" + kind] += 1
        self.counters["bytes_sent"] += size
        self.counters["bytes_" + kind] += size
        if self._severed(origin, target, self._tick):
            self.counters["cut_at_send"] += 1
            return
        if link.drop > 0.0 and self._link_rng.random() < link.drop:
            self.counters["dropped"] += 1
            return
        copies = 1
        if link.duplicate > 0.0 and self._link_rng.random() < link.duplicate:
            copies = 2
            self.counters["duplicated"] += 1
        for _ in range(copies):
            delay = link.delay
            if link.jitter > 0:
                delay += self._link_rng.randint(0, link.jitter)
            self._seq += 1
            self._queue.append(
                _Msg(deliver_at=self._tick + delay, seq=self._seq,
                     origin=origin, target=target, kind=kind,
                     block=block, ref=ref, header=header, compact=compact,
                     txs=txs, indices=indices)
            )

    # ------------------------------------------------------------------
    # relay protocols
    # ------------------------------------------------------------------
    def _relay_block(self, me: int, block: Block, exclude: int | None) -> None:
        """Forward a newly accepted block per the scenario's relay mode:
        full-body flood to every peer, or a header-first announce to a
        seeded ~√N sample (gossip/compact)."""
        if self.relay == "flood":
            for target in range(len(self.nodes)):
                if target != me and target != exclude:
                    self._post(me, target, "block", block=block)
            return
        bid = block_id(block)
        skip = (me,) if exclude is None else (me, exclude)
        for target in self._fanout_sampler.sample(
            len(self.nodes), self.fanout, exclude=skip
        ):
            self._post(me, target, "ann", ref=bid, header=block.header)

    def relay_tx(self, origin: int, tx: bytes, exclude: int | None = None) -> None:
        """Gossip one transaction.  Transaction relay is fanout-sampled
        in *every* mode — it exists so compact-block mempools warm up,
        and flooding it would drown the block-relay comparison the modes
        exist to make."""
        skip = (origin,) if exclude is None else (origin, exclude)
        for target in self._fanout_sampler.sample(
            len(self.nodes), self.fanout, exclude=skip
        ):
            self._post(origin, target, "tx", txs=(tx,))

    def broadcast_from(self, origin: int, block: Block, eager: bool = False) -> None:
        """Relay an honest node's freshly mined block to its peers.

        ``eager`` forces a full-block flood regardless of relay mode.
        The runner uses it for quiet-window *resolution* blocks: they
        exist to terminate the run by breaking an equal-work tie, they
        are rare by construction, and their multi-hop pull latency would
        otherwise have to fit inside the convergence margin.  Their
        traffic is still metered like everything else.
        """
        if eager:
            for target in range(len(self.nodes)):
                if target != origin:
                    self._post(origin, target, "block", block=block)
            return
        self._relay_block(origin, block, exclude=None)

    def accept_local(self, miner: int, block: Block, eager: bool = False) -> None:
        """A node mined ``block`` itself: accept, pool its transactions,
        and start the relay."""
        node = self.nodes[miner]
        if node.receive(block):
            node.txpool.mark_mined(block.transactions)
        self.broadcast_from(miner, block, eager=eager)

    def inject(self, byz_origin: int, block: Block) -> None:
        """Byzantine broadcast of a forged block to every honest node.

        Deliberately a full-block flood in every relay mode: the
        adversary does not cooperate with the bandwidth protocol, and
        honest nodes must refuse the forgery at *every* edge (a rejected
        block is never relayed onward, so gossip also contains it)."""
        for target in range(len(self.nodes)):
            self._post(byz_origin, target, "block", block=block)

    def crash_node(self, index: int) -> None:
        self.nodes[index].crash()
        # Partially reconstructed compact bodies are in-memory state.
        for key in [k for k in self._pending_cmpct if k[0] == index]:
            del self._pending_cmpct[key]

    # ------------------------------------------------------------------
    # per-tick phases
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Deliver due messages, announce tips, drive resync — one tick."""
        self._tick += 1
        due = [m for m in self._queue if m.deliver_at <= self._tick]
        self._queue = [m for m in self._queue if m.deliver_at > self._tick]
        due.sort(key=lambda m: (m.deliver_at, m.seq))
        for message in due:
            self._deliver(message)
        if self._tick % self.scenario.announce_every == 0:
            self._announce()
        self._resync()

    def _deliver(self, msg: _Msg) -> None:
        outcome = self._dispatch(msg)
        if self.on_deliver is not None:
            self.on_deliver(self._tick, msg, outcome)

    def _dispatch(self, msg: _Msg) -> str:
        if self._severed(msg.origin, msg.target, self._tick):
            self.counters["cut_in_flight"] += 1
            return "cut"
        node = self.nodes[msg.target]
        if not node.alive:
            self.counters["dropped_offline"] += 1
            return "offline"
        if msg.kind == "block":
            if node.knows(block_id(msg.block)):
                # Seen-inventory dedup at the edge: an epidemic re-flood
                # (or a duplicated link) re-delivers bodies constantly;
                # dropping them here keeps duplicates out of the consensus
                # layer and stops the relay from echoing forever.
                self.counters["block_duplicate"] += 1
                return "duplicate"
            return self._accept_body(msg.target, msg.block, msg.origin)
        if msg.kind == "ann":
            self.counters["ann_delivered"] += 1
            if node.knows(msg.ref):
                self.counters["ann_duplicate"] += 1
                return "duplicate"
            self._want(msg.target, msg.ref, msg.origin, kind="body")
            return "want-body"
        if msg.kind == "inv":
            self.counters["inv_delivered"] += 1
            if not node.knows(msg.ref):
                self._want(msg.target, msg.ref, msg.origin)
                return "want-sync"
            if (
                msg.ref in node.chain
                and self._honest_peer(msg.origin, msg.target)
                and node.chain.work_of(msg.ref) < node.chain.total_work()
            ):
                # The announcer's tip is a known, strictly lighter block:
                # answer with our heavier tip so laggards hear about newer
                # work from their *own* announcements too (bidirectional
                # tip gossip — no ping-pong once both sides agree).
                self.counters["inv_replies"] += 1
                self._post(msg.target, msg.origin, "inv", ref=node.tip_id())
                return "inv-reply"
            return "inv-known"
        if msg.kind == "get":
            self.counters["get_delivered"] += 1
            self._serve(msg.target, msg.origin, msg.ref)
            return "served"
        if msg.kind in ("getblk", "getfull"):
            self.counters["body_request_delivered"] += 1
            self._serve_body(msg.target, msg.origin, msg.ref,
                             full=msg.kind == "getfull")
            return "served"
        if msg.kind == "cmpct":
            return self._on_compact(msg)
        if msg.kind == "gettxn":
            return self._on_gettxn(msg)
        if msg.kind == "txn":
            return self._on_txn(msg)
        if msg.kind == "tx":
            if node.txpool.add(msg.txs[0]):
                # First sight: keep the epidemic going with our own fanout.
                self.relay_tx(msg.target, msg.txs[0], exclude=msg.origin)
                return "tx-pooled"
            self.counters["tx_duplicate"] += 1
            return "duplicate"
        raise ChainError(f"unroutable message kind {msg.kind!r}")

    def _accept_body(self, target: int, block: Block, origin: int) -> str:
        """A full body reached ``target`` for the first time: validate,
        and on acceptance continue the relay (the epidemic step)."""
        node = self.nodes[target]
        self.counters["delivered"] += 1
        result = node.receive(block)
        if result:
            node.txpool.mark_mined(block.transactions)
            self._pending_cmpct.pop((target, block_id(block)), None)
            self._relay_block(target, block, exclude=origin)
        elif result.status == "orphaned" and result.code == "unknown-parent":
            self._want(target, block.header.prev_hash, origin)
        elif result.status == "rejected":
            self.counters["rejected_deliveries"] += 1
        return result.status

    def _on_compact(self, msg: _Msg) -> str:
        node = self.nodes[msg.target]
        self.counters["cmpct_delivered"] += 1
        if node.knows(msg.ref):
            self.counters["cmpct_duplicate"] += 1
            return "duplicate"
        missing = msg.compact.missing_indices(node.txpool)
        if missing:
            # Pool misses cost one gettxn/txn round trip to the sender.
            self.counters["cmpct_miss"] += 1
            self._pending_cmpct[(msg.target, msg.ref)] = _PendingCompact(
                compact=msg.compact, server=msg.origin
            )
            self._post(msg.target, msg.origin, "gettxn", ref=msg.ref,
                       indices=tuple(missing))
            return "cmpct-roundtrip"
        block = node.reconstruct_compact(msg.compact)
        if block is None:
            # Short-id collision or stale pool: the merkle root disagreed.
            self.counters["cmpct_mismatch"] += 1
            self._fallback_full(msg.target, msg.ref, msg.origin)
            return "cmpct-mismatch"
        self.counters["cmpct_reconstructed"] += 1
        return self._accept_body(msg.target, block, msg.origin)

    def _on_gettxn(self, msg: _Msg) -> str:
        chain = self.nodes[msg.target].chain
        self.counters["gettxn_delivered"] += 1
        if msg.ref not in chain:
            self.counters["gettxn_unserved"] += 1
            return "unserved"
        block = chain.get(msg.ref)
        txs = tuple(
            block.transactions[i]
            for i in msg.indices
            if 0 <= i < len(block.transactions)
        )
        self._post(msg.target, msg.origin, "txn", ref=msg.ref,
                   indices=msg.indices, txs=txs)
        return "served"

    def _on_txn(self, msg: _Msg) -> str:
        node = self.nodes[msg.target]
        self.counters["txn_delivered"] += 1
        pending = self._pending_cmpct.pop((msg.target, msg.ref), None)
        if pending is None:
            # Duplicate/late response, or a crash wiped the pending slot.
            self.counters["txn_stale"] += 1
            return "stale"
        extra = dict(zip(msg.indices, msg.txs))
        block = node.reconstruct_compact(pending.compact, extra)
        if block is None:
            self.counters["cmpct_mismatch"] += 1
            self._fallback_full(msg.target, msg.ref, pending.server)
            return "cmpct-mismatch"
        self.counters["cmpct_reconstructed"] += 1
        return self._accept_body(msg.target, block, msg.origin)

    def _fallback_full(self, target: int, wanted: bytes, source: int) -> None:
        """Compact reconstruction failed: demote this body fetch to a full
        ``getfull`` pull with a fresh retry budget."""
        key = (target, wanted)
        self._given_up.discard(key)
        request = self._requests.get(key)
        if request is None:
            request = _Request(attempts=0, next_retry=self._tick,
                               source=source, kind="body")
            self._requests[key] = request
        request.kind = "body"
        request.full = True
        request.source = source
        request.attempts = 0
        request.next_retry = self._tick

    def _serve(self, server: int, requester: int, wanted: bytes) -> None:
        """Answer a sync request with the block plus a batch of ancestors.

        Sync responses are always full bodies, even in compact mode: a
        node this far behind has no pool state for old transactions, so
        compact bodies would only add a guaranteed round trip per block.
        """
        chain = self.nodes[server].chain
        if wanted not in chain:
            self.counters["get_unserved"] += 1
            return
        self.counters["resp_sent"] += 1
        cursor = wanted
        for _ in range(1 + SYNC_BATCH):
            block = chain.get(cursor)
            if chain.height_of(cursor) == 0:
                break  # everyone has genesis
            self._post(server, requester, "block", block=block)
            cursor = block.header.prev_hash

    def _serve_body(
        self, server: int, requester: int, wanted: bytes, full: bool
    ) -> None:
        """Answer a header-first body pull: one compact body in compact
        mode (unless the requester demanded ``full``), else one full
        block."""
        chain = self.nodes[server].chain
        if wanted not in chain:
            self.counters["body_unserved"] += 1
            return
        block = chain.get(wanted)
        if self.relay == "compact" and not full:
            self._post(server, requester, "cmpct", ref=wanted,
                       compact=CompactBlock.from_block(block))
        else:
            self._post(server, requester, "block", block=block)

    def _announce(self) -> None:
        # Each announce round also re-arms given-up requests: periodic tip
        # gossip is the standing recovery signal, so retry caps bound each
        # burst rather than permanently abandoning a hole.
        self._given_up.clear()
        for i, node in enumerate(self.nodes):
            if not node.alive:
                continue
            self.counters["inv_sent"] += 1
            self._post(i, self._random_peer(i), "inv", ref=node.tip_id())

    def _want(
        self, node_index: int, wanted: bytes, source: int, kind: str = "sync"
    ) -> None:
        key = (node_index, wanted)
        if key in self._given_up:
            if kind != "body":
                return
            # A fresh announce re-arms a given-up body fetch: someone new
            # is offering the block, so the retry budget starts over.
            self._given_up.discard(key)
        if key in self._requests:
            request = self._requests[key]
            if (
                kind == "body"
                and self._honest_peer(source, node_index)
                and source != request.source
                and source not in request.alternates
            ):
                # A later announcer of the same block becomes the
                # drop/timeout fallback for the single body pull.
                request.alternates.append(source)
            return
        if self.nodes[node_index].knows(wanted):
            return
        self._requests[key] = _Request(
            attempts=0, next_retry=self._tick, source=source, kind=kind
        )

    def _resync(self) -> None:
        scenario = self.scenario
        # Keep every orphan hole armed: the deepest missing parent of each
        # buffered chain always has an active (or recently given-up)
        # request, regardless of how the orphan got here.
        for i, node in enumerate(self.nodes):
            if node.alive:
                for parent in node.missing_parents():
                    self._want(i, parent, source=-1)
        for key in sorted(self._requests, key=lambda k: (k[0], k[1])):
            request = self._requests[key]
            node_index, wanted = key
            node = self.nodes[node_index]
            if not node.alive:
                del self._requests[key]  # crash wiped the orphan buffer
                continue
            if node.knows(wanted):
                del self._requests[key]
                self.counters["requests_satisfied"] += 1
                continue
            if self._tick < request.next_retry:
                continue
            if request.attempts >= scenario.request_retries:
                del self._requests[key]
                self._given_up.add(key)
                self.counters["requests_expired"] += 1
                continue
            # First attempt goes to whoever told us about the block; retries
            # drain alternate announcers (body fetches), then fan out to
            # seeded random peers (the source may be byzantine, crashed, or
            # behind a partition).
            if request.attempts == 0 and self._honest_peer(request.source, node_index):
                peer = request.source
            elif request.alternates:
                peer = request.alternates.pop(0)
            else:
                peer = self._random_peer(node_index)
            if request.kind == "body":
                self.counters["body_fetch_sent"] += 1
                self._post(node_index, peer,
                           "getfull" if request.full else "getblk", ref=wanted)
            else:
                self.counters["get_sent"] += 1
                self._post(node_index, peer, "get", ref=wanted)
            request.attempts += 1
            # Linear backoff: request_backoff * attempts ticks until the
            # next try, so a full retry burst fits inside one quiet window.
            request.next_retry = self._tick + scenario.request_backoff * request.attempts

    def _honest_peer(self, peer: int, me: int) -> bool:
        return 0 <= peer < len(self.nodes) and peer != me

    def _random_peer(self, me: int) -> int:
        return self._peer_rng.choice(
            [i for i in range(len(self.nodes)) if i != me]
        )

    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """True when every live node agrees on the tip."""
        tips = {node.tip_id() for node in self.nodes if node.alive}
        return len(tips) <= 1


# ----------------------------------------------------------------------
# byzantine forgery
# ----------------------------------------------------------------------
def forge_block(
    kind: str,
    chain: Blockchain,
    pow_fn: PowFunction,
    rng: Xoshiro256,
    timestamp: int,
) -> tuple[Block, str] | None:
    """Craft an invalid block of ``kind`` on top of ``chain``'s tip.

    Returns ``(block, actual_kind)`` — the kind can degrade (e.g. to
    ``bad-merkle``) when the requested one is impossible in the current
    state: ``bad-pow``/``bad-bits`` cannot exist at the maximum target,
    ``bad-timestamp`` cannot undercut a genesis parent at time zero.
    Returns ``None`` when the nonce budget runs out.
    """
    tip = chain.tip_id
    bits = chain.expected_bits(tip)
    target = compact_to_target(bits)
    budget = max(64, int(_ATTEMPTS_PER_DIFFICULTY * (MAX_TARGET / target)))
    salt = rng.next_u64() >> 32
    transactions = [b"byz-" + rng.next_u64().to_bytes(8, "little")]

    if kind == "bad-timestamp" and chain.tip().header.timestamp == 0:
        kind = "bad-pow"
    if kind == "bad-bits":
        easy_bits = target_to_compact(min(MAX_TARGET, target * 4))
        if easy_bits == bits:
            kind = "bad-merkle"  # already at the floor: bad-bits impossible
    if kind == "bad-pow" and target * 2 > MAX_TARGET:
        # Near the maximum target almost every digest meets PoW (compact
        # encoding rounds MAX_TARGET down, so equality never triggers);
        # a failing nonce is not reliably findable — forge the body instead.
        kind = "bad-merkle"

    try:
        if kind == "bad-pow":
            template = Block.build(tip, transactions, timestamp, bits)
            for attempt in range(budget):
                candidate = template.with_nonce(salt + attempt)
                digest = pow_fn.hash(candidate.header.serialize())
                if not meets_target(digest, target):
                    return candidate, kind
            return None
        if kind == "bad-bits":
            template = Block.build(tip, transactions, timestamp, easy_bits)
            mined = mine_block(template, pow_fn, max_attempts=budget,
                               start_nonce=salt)
            return mined.block, kind
        if kind == "bad-timestamp":
            skewed = chain.tip().header.timestamp - 1
            template = Block.build(tip, transactions, skewed, bits)
            mined = mine_block(template, pow_fn, max_attempts=budget,
                               start_nonce=salt)
            return mined.block, kind
        # bad-merkle: a validly mined header over a swapped-out body.
        template = Block.build(tip, transactions, timestamp, bits)
        mined = mine_block(template, pow_fn, max_attempts=budget,
                           start_nonce=salt)
        forged = Block(header=mined.block.header,
                       transactions=(b"byz-forged-body",))
        return forged, "bad-merkle"
    except PowError:
        return None


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
class InvariantChecker:
    """Tick-by-tick consensus invariants over all node replicas."""

    def __init__(self) -> None:
        self.violations: list[str] = []
        self._last_work: dict[str, float] = {}
        self._flagged: set[tuple[str, bytes]] = set()

    def check_tick(
        self, tick: int, nodes: list[Node], invalid_ids: dict[bytes, str]
    ) -> None:
        for node in nodes:
            for bid, kind in invalid_ids.items():
                if bid in node.chain and (node.name, bid) not in self._flagged:
                    self._flagged.add((node.name, bid))
                    self.violations.append(
                        f"invalid-block: {kind} block {bid.hex()[:16]} entered "
                        f"chain of {node.name} at tick {tick}"
                    )
            work = node.chain.total_work()
            previous = self._last_work.get(node.name, 0.0)
            if work < previous - 1e-9:
                self.violations.append(
                    f"work-regression: {node.name} tip work fell "
                    f"{previous:.3f} -> {work:.3f} at tick {tick}"
                )
            self._last_work[node.name] = work
            if node.orphan_count() > node.max_orphans:
                self.violations.append(
                    f"orphan-overflow: {node.name} buffers "
                    f"{node.orphan_count()} > cap {node.max_orphans} "
                    f"at tick {tick}"
                )

    def check_final(self, nodes: list[Node]) -> bool:
        """Convergence invariant after the quiet window."""
        tips = {node.tip_id() for node in nodes if node.alive}
        if len(tips) > 1:
            self.violations.append(
                f"non-convergence: {len(tips)} distinct tips among live "
                "nodes after the quiet window"
            )
            return False
        return True


# ----------------------------------------------------------------------
# runner + report
# ----------------------------------------------------------------------
def _padded_tx(tick: int, origin: int, size: int, rng: Xoshiro256) -> bytes:
    """One deterministic synthetic transaction, padded to ``size`` bytes."""
    body = bytearray(f"tx-{tick}-{origin}-".encode())
    while len(body) < size:
        body += rng.next_u64().to_bytes(8, "little")
    return bytes(body[:size])


def traffic_summary(
    counters: Counter[str], relay: str, fanout: int, blocks_mined: int
) -> dict:
    """Per-run propagation-efficiency rollup from the message counters.

    ``messages_per_block`` / ``bytes_per_block`` cover only the
    block-relay kinds (:data:`~repro.blockchain.gossip.BLOCK_RELAY_KINDS`)
    — transaction gossip exists in every relay mode and is reported under
    its own category instead of diluting the comparison.
    """
    relay_msgs = sum(counters.get("sent_" + k, 0) for k in BLOCK_RELAY_KINDS)
    relay_bytes = sum(counters.get("bytes_" + k, 0) for k in BLOCK_RELAY_KINDS)
    by_category: dict[str, dict[str, int]] = {}
    for kind, category in KIND_CATEGORY.items():
        count = counters.get("sent_" + kind, 0)
        if not count:
            continue
        entry = by_category.setdefault(category, {"messages": 0, "bytes": 0})
        entry["messages"] += count
        entry["bytes"] += counters.get("bytes_" + kind, 0)
    blocks = max(1, blocks_mined)
    return {
        "relay": relay,
        "fanout": fanout,
        "block_relay_messages": relay_msgs,
        "block_relay_bytes": relay_bytes,
        "messages_per_block": round(relay_msgs / blocks, 3),
        "bytes_per_block": round(relay_bytes / blocks, 3),
        "by_category": {k: by_category[k] for k in sorted(by_category)},
    }


@dataclass(slots=True)
class ChaosReport:
    """Structured outcome of one chaos run.  ``to_json()`` is byte-stable:
    replaying the same scenario (same seed) yields identical bytes."""

    scenario: dict
    ticks: int
    blocks_mined: int
    resolution_blocks: int
    mining_failures: int
    forged: dict[str, int]
    messages: dict[str, int]
    #: Propagation-efficiency rollup (see :func:`traffic_summary`).
    traffic: dict
    #: First tick from which every live tip stayed in agreement through
    #: the end of the run (None when the run did not converge).
    converged_tick: int | None
    nodes: list[dict]
    violations: list[str]
    converged: bool

    def ok(self) -> bool:
        return self.converged and not self.violations

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(asdict(self), sort_keys=True, indent=indent)


class ChaosRunner:
    """Executes one :class:`Scenario` tick by tick and reports.

    ``pow_fn`` defaults to SHA-256d (chaos runs mine hundreds of real
    blocks; HashCore at ~0.1 s/hash would take hours).  ``node_factory``
    lets tests substitute doubles — e.g. a node whose chain skips PoW
    validation, to prove the invariant checker catches the forgery.
    """

    def __init__(
        self,
        scenario: Scenario,
        pow_fn: PowFunction | None = None,
        node_factory=None,
        on_deliver: Callable[[int, _Msg, str], None] | None = None,
        store_dir=None,
    ) -> None:
        self.scenario = scenario
        self.pow_fn = pow_fn or Sha256d()
        self.node_factory = node_factory
        #: Forwarded to :attr:`ChaosNetwork.on_deliver` — the gossip
        #: determinism golden test pins the delivery trace through it.
        self.on_deliver = on_deliver
        #: When set, every node persists its chain to
        #: ``store_dir/node{i}.log`` and scheduled crash/restart faults
        #: exercise the real close-handle → rescan → replay recovery path
        #: instead of the in-memory fiction.
        self.store_dir = store_dir

    def run(self) -> ChaosReport:
        scenario = self.scenario
        net = ChaosNetwork(
            scenario, self.pow_fn, self.node_factory, store_dir=self.store_dir
        )
        net.on_deliver = self.on_deliver
        mine_rng = _stream(scenario.seed, 0x2B0B)
        byz_rng = _stream(scenario.seed, 0x3CDE)
        tx_rng = _stream(scenario.seed, 0x7A57)
        checker = InvariantChecker()
        invalid_ids: dict[bytes, str] = {}
        forged: Counter[str] = Counter()
        mined = 0
        resolution_blocks = 0
        mining_failures = 0
        last_diverged = 0
        mine_until = scenario.effective_mine_until()

        for tick in range(1, scenario.ticks + 1):
            # 0. transaction load (feeds block templates + compact pools)
            if scenario.txs_per_block > 0 and tick % scenario.tx_every == 0:
                alive = [i for i, n in enumerate(net.nodes) if n.alive]
                if alive:
                    origin = alive[tx_rng.randint(0, len(alive) - 1)]
                    tx = _padded_tx(tick, origin, scenario.tx_size, tx_rng)
                    if net.nodes[origin].txpool.add(tx):
                        net.relay_tx(origin, tx)
            # 1. scheduled crash / restart events
            for crash in scenario.crashes:
                if crash.at == tick:
                    net.crash_node(crash.node)
                elif crash.restart_at == tick:
                    net.nodes[crash.node].restart()
            # 2. byzantine injections
            for offset, byz in enumerate(scenario.byzantine):
                until = byz.until if byz.until is not None else scenario.ticks
                if byz.start <= tick <= until and (tick - byz.start) % byz.every == 0:
                    victim = net.nodes[byz_rng.randint(0, scenario.n_nodes - 1)]
                    wanted_kind = byz_rng.choice(list(byz.kinds))
                    result = forge_block(
                        wanted_kind, victim.chain, self.pow_fn, byz_rng,
                        tick * scenario.block_time,
                    )
                    if result is not None:
                        block, kind = result
                        invalid_ids[block_id(block)] = kind
                        forged[kind] += 1
                        net.inject(scenario.n_nodes + offset, block)
            # 3. honest mining (one seeded Bernoulli roll per tick)
            miner: int | None = None
            resolution = False
            if tick <= mine_until and mine_rng.random() < scenario.mine_prob:
                weights = [
                    (scenario.hashrates[i] if scenario.hashrates else 1.0)
                    if node.alive else 0.0
                    for i, node in enumerate(net.nodes)
                ]
                if sum(weights) > 0.0:
                    miner = mine_rng.sample_weighted(weights)
            elif (
                tick > mine_until
                and tick <= scenario.ticks - 3 * scenario.announce_every
                and tick % (2 * scenario.announce_every) == 0
                and not net.converged()
            ):
                # Resolution mining: PoW convergence is a *liveness*
                # property — an equal-work fork persists until some miner
                # extends one branch.  During the quiet window the heaviest
                # live node mines at a slow cadence until tips agree,
                # exactly the mechanism that resolves ties in a real
                # network.  It stops three announce rounds before the end
                # so laggards chase a static tip, not a moving one.
                live = [
                    (node.chain.total_work(), -i)
                    for i, node in enumerate(net.nodes) if node.alive
                ]
                if live:
                    miner = -max(live)[1]
                    resolution = True
                    resolution_blocks += 1
            if miner is not None:
                node = net.nodes[miner]
                template = Block.build(
                    prev_hash=node.tip_id(),
                    transactions=[f"cb-{tick}-{miner}".encode()]
                    + node.txpool.pending(scenario.txs_per_block),
                    timestamp=tick * scenario.block_time,
                    bits=node.chain.expected_bits(node.tip_id()),
                )
                difficulty = max(
                    1.0,
                    MAX_TARGET / compact_to_target(template.header.bits),
                )
                try:
                    result = mine_block(
                        template,
                        self.pow_fn,
                        max_attempts=max(
                            64, int(_ATTEMPTS_PER_DIFFICULTY * difficulty)
                        ),
                        start_nonce=mine_rng.next_u64() >> 32,
                    )
                except PowError:
                    mining_failures += 1
                else:
                    mined += 1
                    net.accept_local(miner, result.block, eager=resolution)
            # 4. network phases: delivery, announcements, resync
            net.tick()
            # 5. invariants
            checker.check_tick(tick, net.nodes, invalid_ids)
            if not net.converged():
                last_diverged = tick

        converged = checker.check_final(net.nodes)
        return ChaosReport(
            scenario=scenario.to_dict(),
            ticks=scenario.ticks,
            blocks_mined=mined,
            resolution_blocks=resolution_blocks,
            mining_failures=mining_failures,
            forged=dict(sorted(forged.items())),
            messages=dict(sorted(net.counters.items())),
            traffic=traffic_summary(net.counters, net.relay, net.fanout, mined),
            converged_tick=min(last_diverged + 1, scenario.ticks)
            if converged else None,
            nodes=[node.stats() for node in net.nodes],
            violations=list(checker.violations),
            converged=converged,
        )
