"""Lamport one-time signatures (pure SHA-256).

The transaction layer needs signatures, and this reproduction has no
dependency on an ECC library — so it uses the classic hash-based scheme,
which is real cryptography built from the same primitive as the hash
gates:

* secret key: 256 pairs of 32-byte secrets ``s[i][b]`` (one pair per
  message-digest bit), derived deterministically from a 32-byte seed;
* public key: the 256 pairs of hashes ``H(s[i][b])``; the *address* is the
  SHA-256 of their concatenation;
* signature: for each bit ``m_i`` of ``H(message)``, reveal ``s[i][m_i]``
  and include the sibling hash ``H(s[i][1-m_i])`` so the verifier can
  recompute the address.

Signatures are ~16 KB and **one-time**: signing two different messages
with one key reveals both secrets of differing bit positions, letting a
forger mix and match.  :class:`Wallet` tracks usage and refuses to sign
twice, deriving a fresh keypair per nonce instead.
"""

from __future__ import annotations

import hashlib
import struct

from repro.errors import ChainError

_BITS = 256
_SECRET_BYTES = 32

#: Serialized signature size: per bit, the revealed secret + sibling hash.
SIGNATURE_BYTES = _BITS * 2 * _SECRET_BYTES
#: Address size (SHA-256 of the public key).
ADDRESS_BYTES = 32


def _sha(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


class LamportKeyPair:
    """A one-time keypair derived deterministically from a seed."""

    def __init__(self, seed: bytes) -> None:
        if len(seed) != 32:
            raise ChainError("keypair seed must be 32 bytes")
        self._secrets: list[tuple[bytes, bytes]] = []
        hashes: list[bytes] = []
        for index in range(_BITS):
            s0 = _sha(seed + struct.pack("<HB", index, 0))
            s1 = _sha(seed + struct.pack("<HB", index, 1))
            self._secrets.append((s0, s1))
            hashes.append(_sha(s0))
            hashes.append(_sha(s1))
        self.address: bytes = _sha(b"".join(hashes))

    def sign(self, message: bytes) -> bytes:
        """Sign ``message``; returns the serialized signature.

        Remember the one-time property — key management belongs in
        :class:`Wallet`.
        """
        digest = int.from_bytes(_sha(message), "big")
        parts = []
        for index in range(_BITS):
            bit = (digest >> (_BITS - 1 - index)) & 1
            revealed = self._secrets[index][bit]
            sibling_hash = _sha(self._secrets[index][1 - bit])
            parts.append(revealed)
            parts.append(sibling_hash)
        return b"".join(parts)


def verify(address: bytes, message: bytes, signature: bytes) -> bool:
    """Check a Lamport signature against an address."""
    if len(address) != ADDRESS_BYTES or len(signature) != SIGNATURE_BYTES:
        return False
    digest = int.from_bytes(_sha(message), "big")
    hashes = []
    offset = 0
    for index in range(_BITS):
        revealed = signature[offset : offset + _SECRET_BYTES]
        sibling = signature[offset + _SECRET_BYTES : offset + 2 * _SECRET_BYTES]
        offset += 2 * _SECRET_BYTES
        bit = (digest >> (_BITS - 1 - index)) & 1
        revealed_hash = _sha(revealed)
        if bit == 0:
            hashes.append(revealed_hash)
            hashes.append(sibling)
        else:
            hashes.append(sibling)
            hashes.append(revealed_hash)
    return _sha(b"".join(hashes)) == address


class Wallet:
    """Per-nonce one-time keys under a single master seed.

    The account's *identity* is the address of key 0; every transaction
    nonce ``n`` is signed with the keypair derived for ``n``, whose
    address is announced inside the signed payload (transactions commit to
    the next key, hash-ladder style).  The wallet enforces the one-time
    property.
    """

    def __init__(self, master_seed: bytes) -> None:
        if len(master_seed) != 32:
            raise ChainError("master seed must be 32 bytes")
        self._master = master_seed
        self._used: set[int] = set()

    def keypair(self, nonce: int) -> LamportKeyPair:
        """The one-time keypair for transaction ``nonce``."""
        if nonce < 0:
            raise ChainError("nonce must be non-negative")
        return LamportKeyPair(_sha(self._master + struct.pack("<Q", nonce)))

    @property
    def address(self) -> bytes:
        """The account identity (address of the nonce-0 key)."""
        return self.keypair(0).address

    def address_for(self, nonce: int) -> bytes:
        """The announced one-time address for ``nonce``."""
        return self.keypair(nonce).address

    def sign(self, nonce: int, message: bytes) -> bytes:
        """Sign with the ``nonce`` key, enforcing one-time use."""
        if nonce in self._used:
            raise ChainError(f"one-time key for nonce {nonce} already used")
        self._used.add(nonce)
        return self.keypair(nonce).sign(message)
