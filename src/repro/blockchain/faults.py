"""Fault model for the chaos-test harness: scenario schedules as data.

The paper's decentralization argument (§VI) assumes HashCore sits inside a
PoW network that behaves like a real one — lossy links, partitions, node
crashes, adversarial peers.  This module describes those faults as plain,
JSON-serializable data so a chaos run is *replayable*: a
:class:`Scenario` plus its single seed fully determines every drop,
duplicate, jitter roll, partition, crash and forged block, and therefore
the byte-identical :class:`~repro.blockchain.sim.ChaosReport`.

Nothing here executes; :mod:`repro.blockchain.sim` interprets these
schedules over the gossip :class:`~repro.blockchain.node.Node` layer.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.blockchain.gossip import RELAY_MODES
from repro.errors import ChainError
from repro.rng import Xoshiro256, splitmix64

#: Forgery kinds a byzantine peer can produce.
BYZANTINE_KINDS = ("bad-pow", "bad-merkle", "bad-bits", "bad-timestamp")


@dataclass(frozen=True, slots=True)
class LinkFaults:
    """Per-link delivery faults, applied independently to every message."""

    #: Base delivery delay in ticks.
    delay: int = 1
    #: Extra delay drawn uniformly from ``[0, jitter]`` per delivery —
    #: nonzero jitter reorders messages between the same pair of nodes.
    jitter: int = 0
    #: Probability a message is silently lost.
    drop: float = 0.0
    #: Probability a message is delivered twice (second copy re-jittered).
    duplicate: float = 0.0

    def __post_init__(self) -> None:
        if self.delay < 1 or self.jitter < 0:
            raise ChainError("delay must be >= 1 and jitter >= 0")
        if not 0.0 <= self.drop <= 0.9:
            raise ChainError("drop probability must be in [0, 0.9]")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ChainError("duplicate probability must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class Partition:
    """Network split: nodes in different groups cannot exchange messages
    while ``start <= tick < end`` (messages in flight across the cut are
    lost at delivery time).  Heals at ``end``."""

    start: int
    end: int
    groups: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end:
            raise ChainError("partition needs 0 <= start < end")
        if len(self.groups) < 2:
            raise ChainError("partition needs at least two groups")
        members = [n for group in self.groups for n in group]
        if len(members) != len(set(members)):
            raise ChainError("partition groups must be disjoint")

    def severed(self, a: int, b: int, tick: int) -> bool:
        if not self.start <= tick < self.end:
            return False
        group_a = group_b = None
        for i, group in enumerate(self.groups):
            if a in group:
                group_a = i
            if b in group:
                group_b = i
        return group_a is not None and group_b is not None and group_a != group_b


@dataclass(frozen=True, slots=True)
class Crash:
    """Node ``node`` crashes at tick ``at`` (losing its in-memory orphan
    buffer, keeping its on-disk chain) and restarts at ``restart_at``.
    ``restart_at`` past the scenario end means it never comes back."""

    node: int
    at: int
    restart_at: int

    def __post_init__(self) -> None:
        if not 0 < self.at < self.restart_at:
            raise ChainError("crash needs 0 < at < restart_at")


@dataclass(frozen=True, slots=True)
class ByzantinePeer:
    """An adversarial peer (outside the honest node set) that periodically
    forges invalid blocks on top of honest tips and broadcasts them.
    Byzantine traffic rides the faulty links but ignores partitions (a
    worst-case adversary is assumed well connected)."""

    #: Forge one block every ``every`` ticks.
    every: int = 7
    #: Forgery kinds to rotate through (seeded choice per injection).
    kinds: tuple[str, ...] = BYZANTINE_KINDS
    #: Active window; ``until`` of ``None`` means the whole run.
    start: int = 1
    until: int | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ChainError("byzantine 'every' must be >= 1")
        bad = set(self.kinds) - set(BYZANTINE_KINDS)
        if bad or not self.kinds:
            raise ChainError(f"unknown byzantine kinds: {sorted(bad)}")
        if self.until is not None and self.until <= self.start:
            raise ChainError("byzantine window needs until > start")


@dataclass(frozen=True, slots=True)
class Scenario:
    """A complete, replayable chaos schedule.

    The runner mines honest blocks (Poisson-ish: one seeded Bernoulli roll
    per tick) until ``mine_until``, then runs the remaining quiet ticks so
    the convergence invariant — all honest live nodes on one tip — can be
    asserted at the end.  Construction validates that the schedule leaves
    at least ``convergence_ticks`` of quiet time after the last fault
    heals.
    """

    n_nodes: int = 4
    seed: int = 1
    ticks: int = 200
    link: LinkFaults = field(default_factory=LinkFaults)
    partitions: tuple[Partition, ...] = ()
    crashes: tuple[Crash, ...] = ()
    byzantine: tuple[ByzantinePeer, ...] = ()
    #: Relative mining power per node; ``None`` means uniform.
    hashrates: tuple[float, ...] | None = None
    #: Per-tick probability that one honest block is mined.
    mine_prob: float = 0.25
    #: Last tick at which honest mining may occur; ``None`` derives
    #: ``ticks - convergence_ticks``.
    mine_until: int | None = None
    #: Quiet ticks required after the last fault heals (and mining stops)
    #: for honest nodes to converge.
    convergence_ticks: int = 80
    #: PoW difficulty of the genesis target (kept low: chaos runs mine
    #: thousands of real SHA-256d blocks).
    difficulty: float = 8.0
    block_time: int = 30
    retarget_interval: int = 10_000
    max_orphans: int = 128
    #: Every node announces its tip to one seeded peer every N ticks —
    #: the recovery signal that drives crash/partition resync.
    announce_every: int = 8
    #: Parent re-request budget and linear backoff step (the Nth retry
    #: waits ``N * request_backoff`` ticks).
    request_retries: int = 6
    request_backoff: int = 2
    #: Block relay protocol: ``flood`` (epidemic full-block forwarding,
    #: O(n²) messages per block), ``gossip`` (header-first announce to
    #: ~√N seeded peers, body pulled once), or ``compact`` (gossip with
    #: short-tx-id bodies reconstructed from the receiver's tx pool).
    relay: str = "flood"
    #: Relay fanout for gossip/compact; 0 derives ~√N from ``n_nodes``.
    fanout: int = 0
    #: Pool transactions a miner packs per block (beyond the coinbase).
    #: 0 disables transaction traffic entirely (coinbase-only bodies).
    txs_per_block: int = 0
    #: Payload bytes per generated transaction.
    tx_size: int = 96
    #: A new transaction enters the network every ``tx_every`` ticks
    #: (at a seeded origin node) while mining is active.
    tx_every: int = 4

    def __post_init__(self) -> None:
        if self.relay not in RELAY_MODES:
            raise ChainError(f"relay must be one of {RELAY_MODES}")
        if self.fanout < 0:
            raise ChainError("fanout must be >= 0 (0 = auto ~sqrt(N))")
        if self.txs_per_block < 0 or self.tx_size < 8 or self.tx_every < 1:
            raise ChainError(
                "txs_per_block must be >= 0, tx_size >= 8, tx_every >= 1"
            )
        if self.n_nodes < 2:
            raise ChainError("chaos scenarios need >= 2 honest nodes")
        if not 0.0 <= self.mine_prob <= 1.0:
            raise ChainError("mine_prob must be in [0, 1]")
        if self.hashrates is not None and (
            len(self.hashrates) != self.n_nodes
            or min(self.hashrates) < 0
            or sum(self.hashrates) <= 0
        ):
            raise ChainError("hashrates must be n_nodes non-negative values "
                             "with positive total")
        for crash in self.crashes:
            if crash.node >= self.n_nodes:
                raise ChainError("crash.node out of range")
        for partition in self.partitions:
            for group in partition.groups:
                for member in group:
                    if member >= self.n_nodes:
                        raise ChainError("partition member out of range")
        if self.effective_mine_until() + self.convergence_ticks > self.ticks:
            raise ChainError(
                "schedule leaves no convergence window: need ticks >= "
                f"{self.effective_mine_until() + self.convergence_ticks}"
            )

    # ------------------------------------------------------------------
    def heal_tick(self) -> int:
        """Tick by which every healing fault has healed (partitions ended,
        restarting crashes restarted).  Crashes that never restart within
        the run do not count — a permanently dead node is simply excluded
        from the convergence invariant."""
        heal = 0
        for partition in self.partitions:
            heal = max(heal, partition.end)
        for crash in self.crashes:
            if crash.restart_at <= self.ticks:
                heal = max(heal, crash.restart_at)
        return heal

    def effective_mine_until(self) -> int:
        if self.mine_until is not None:
            return max(self.mine_until, self.heal_tick())
        return max(self.heal_tick(), self.ticks - self.convergence_ticks)

    # ------------------------------------------------------------------
    # JSON round-trip (schedules are data)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        data = asdict(self)
        data["link"] = asdict(self.link)
        data["partitions"] = [
            {"start": p.start, "end": p.end, "groups": [list(g) for g in p.groups]}
            for p in self.partitions
        ]
        data["crashes"] = [asdict(c) for c in self.crashes]
        data["byzantine"] = [
            {"every": b.every, "kinds": list(b.kinds), "start": b.start,
             "until": b.until}
            for b in self.byzantine
        ]
        data["hashrates"] = list(self.hashrates) if self.hashrates else None
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        kwargs = dict(data)
        kwargs["link"] = LinkFaults(**kwargs.get("link", {}))
        kwargs["partitions"] = tuple(
            Partition(start=p["start"], end=p["end"],
                      groups=tuple(tuple(g) for g in p["groups"]))
            for p in kwargs.get("partitions", ())
        )
        kwargs["crashes"] = tuple(
            Crash(**c) for c in kwargs.get("crashes", ())
        )
        kwargs["byzantine"] = tuple(
            ByzantinePeer(every=b.get("every", 7),
                          kinds=tuple(b.get("kinds", BYZANTINE_KINDS)),
                          start=b.get("start", 1), until=b.get("until"))
            for b in kwargs.get("byzantine", ())
        )
        if kwargs.get("hashrates") is not None:
            kwargs["hashrates"] = tuple(kwargs["hashrates"])
        return cls(**kwargs)

    def with_seed(self, seed: int) -> "Scenario":
        return replace(self, seed=seed)

    def with_relay(self, relay: str, fanout: int | None = None) -> "Scenario":
        """Same schedule under a different propagation protocol — the
        apples-to-apples comparison the propagation benchmark runs."""
        return replace(
            self, relay=relay,
            fanout=self.fanout if fanout is None else fanout,
        )


def random_scenario(seed: int) -> Scenario:
    """Fuzz a bounded random scenario from one seed (soak-suite driver).

    Every structural choice comes from a :class:`Xoshiro256` stream, so a
    given seed always yields the same schedule; the scenario itself embeds
    the same seed for its runtime randomness.
    """
    rng = Xoshiro256(splitmix64(seed ^ 0xC4A05))
    n_nodes = rng.randint(3, 6)
    link = LinkFaults(
        delay=rng.randint(1, 2),
        jitter=rng.randint(0, 3),
        drop=rng.randint(0, 20) / 100.0,
        duplicate=rng.randint(0, 15) / 100.0,
    )
    partitions: tuple[Partition, ...] = ()
    if rng.random() < 0.5:
        start = rng.randint(15, 40)
        cut = rng.randint(1, n_nodes - 1)
        indices = list(range(n_nodes))
        rng.shuffle(indices)
        partitions = (
            Partition(
                start=start,
                end=start + rng.randint(20, 40),
                groups=(tuple(sorted(indices[:cut])),
                        tuple(sorted(indices[cut:]))),
            ),
        )
    crashes: tuple[Crash, ...] = ()
    if rng.random() < 0.4:
        at = rng.randint(15, 50)
        crashes = (
            Crash(node=rng.randint(0, n_nodes - 1), at=at,
                  restart_at=at + rng.randint(10, 40)),
        )
    byzantine: tuple[ByzantinePeer, ...] = ()
    if rng.random() < 0.5:
        byzantine = (ByzantinePeer(every=rng.randint(5, 9)),)
    # Propagation corners: every relay protocol under every fault mix,
    # fanouts from degenerate (1) past √N, with and without tx traffic.
    relay = rng.choice(RELAY_MODES)
    fanout = rng.randint(0, 3)  # 0 = auto ~sqrt(N)
    txs_per_block = rng.randint(1, 3) if rng.random() < 0.5 else 0
    heal = max(
        [p.end for p in partitions] + [c.restart_at for c in crashes] + [0]
    )
    mine_until = max(heal, 60)
    return Scenario(
        n_nodes=n_nodes,
        seed=seed,
        ticks=mine_until + 96,
        link=link,
        partitions=partitions,
        crashes=crashes,
        byzantine=byzantine,
        mine_prob=rng.randint(20, 35) / 100.0,
        mine_until=mine_until,
        convergence_ticks=96,
        retarget_interval=16 if rng.random() < 0.3 else 10_000,
        relay=relay,
        fanout=fanout,
        txs_per_block=txs_per_block,
    )
