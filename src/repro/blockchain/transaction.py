"""Signed account-model transactions.

A transaction moves ``amount`` from ``sender`` to ``recipient`` paying
``fee`` to the miner.  Authentication is hash-ladder style over the
one-time Lamport keys of :mod:`repro.blockchain.lamport`:

* an account's identity is the address of its nonce-0 key;
* the ledger stores the account's *expected key address*; transaction
  ``n`` must be signed by exactly that key;
* each transaction announces ``next_key`` (the nonce ``n+1`` address),
  which becomes the new expected key once applied — so every one-time key
  signs exactly once, enforced by consensus, not just by wallets.

Serialized transactions are ordinary byte strings, so they drop into the
existing merkle-committed :class:`~repro.blockchain.block.Block` unchanged.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass

from repro.blockchain.lamport import ADDRESS_BYTES, SIGNATURE_BYTES, Wallet, verify
from repro.errors import ChainError

_HEADER = struct.Struct("<32s32sQQQ32s")

#: Serialized transaction size (payload + signature).
TRANSACTION_BYTES = _HEADER.size + SIGNATURE_BYTES


@dataclass(frozen=True, slots=True)
class Transaction:
    """A signed transfer."""

    sender: bytes
    recipient: bytes
    amount: int
    fee: int
    nonce: int
    next_key: bytes
    signature: bytes

    def __post_init__(self) -> None:
        for label, value in (("sender", self.sender), ("recipient", self.recipient),
                             ("next_key", self.next_key)):
            if len(value) != ADDRESS_BYTES:
                raise ChainError(f"{label} must be {ADDRESS_BYTES} bytes")
        for label, value in (("amount", self.amount), ("fee", self.fee),
                             ("nonce", self.nonce)):
            if not 0 <= value < 2**64:
                raise ChainError(f"{label} out of u64 range")
        if len(self.signature) != SIGNATURE_BYTES:
            raise ChainError("bad signature length")

    # ------------------------------------------------------------------
    def payload(self) -> bytes:
        """The signed portion."""
        return _HEADER.pack(
            self.sender, self.recipient, self.amount, self.fee, self.nonce,
            self.next_key,
        )

    def tx_id(self) -> bytes:
        """Identity hash (over the payload; signatures are malleable-free
        here but excluding them matches convention)."""
        return hashlib.sha256(hashlib.sha256(self.payload()).digest()).digest()

    def serialize(self) -> bytes:
        return self.payload() + self.signature

    @classmethod
    def deserialize(cls, data: bytes) -> "Transaction":
        if len(data) != TRANSACTION_BYTES:
            raise ChainError(
                f"transaction must be {TRANSACTION_BYTES} bytes, got {len(data)}"
            )
        sender, recipient, amount, fee, nonce, next_key = _HEADER.unpack(
            data[: _HEADER.size]
        )
        return cls(
            sender=sender,
            recipient=recipient,
            amount=amount,
            fee=fee,
            nonce=nonce,
            next_key=next_key,
            signature=data[_HEADER.size :],
        )

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        wallet: Wallet,
        recipient: bytes,
        amount: int,
        fee: int,
        nonce: int,
    ) -> "Transaction":
        """Build and sign a transfer from ``wallet`` at ``nonce``."""
        unsigned = _HEADER.pack(
            wallet.address, recipient, amount, fee, nonce,
            wallet.address_for(nonce + 1),
        )
        signature = wallet.sign(nonce, unsigned)
        return cls(
            sender=wallet.address,
            recipient=recipient,
            amount=amount,
            fee=fee,
            nonce=nonce,
            next_key=wallet.address_for(nonce + 1),
            signature=signature,
        )

    def verify_signature(self, expected_key: bytes) -> bool:
        """Check the signature against the ledger's expected key address."""
        return verify(expected_key, self.payload(), self.signature)
