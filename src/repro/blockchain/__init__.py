"""Proof-of-work blockchain substrate.

HashCore replaces only the PoW function of a blockchain ("All other hashing
and other functionality within the blockchain will remain unchanged", §I).
This subpackage provides that surrounding machinery — block headers with
compact difficulty bits, merkle-committed transactions, retargeting, chain
validation with accumulated-work fork choice, a nonce-searching miner, a
statistical multi-miner network simulator, and a fault-injection chaos
harness (seeded drops/partitions/crashes/byzantine peers over the gossip
layer) — so HashCore (and every baseline PoW function) can be exercised
as an actual consensus primitive, on and off the happy path.
"""

from repro.blockchain.merkle import merkle_proof, merkle_root, verify_proof
from repro.blockchain.block import Block, BlockHeader, GENESIS_PREV_HASH
from repro.blockchain.difficulty import RetargetSchedule, next_compact_target
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.miner import MinedBlock, mine_block, mine_header
from repro.blockchain.network import NetworkResult, simulate_network
from repro.blockchain.node import Node, P2PNetwork, ReceiveResult
from repro.blockchain.faults import (
    ByzantinePeer,
    Crash,
    LinkFaults,
    Partition,
    Scenario,
    random_scenario,
)
from repro.blockchain.sim import (
    ChaosNetwork,
    ChaosReport,
    ChaosRunner,
    InvariantChecker,
)
from repro.blockchain.lamport import LamportKeyPair, Wallet
from repro.blockchain.transaction import Transaction
from repro.blockchain.ledger import BLOCK_REWARD, Account, Ledger
from repro.blockchain.mempool import Mempool, fee_rate
from repro.blockchain.store import BlockStore, UtxoIndex, decode_block, encode_block

__all__ = [
    "merkle_root",
    "merkle_proof",
    "verify_proof",
    "Block",
    "BlockHeader",
    "GENESIS_PREV_HASH",
    "RetargetSchedule",
    "next_compact_target",
    "Blockchain",
    "block_id",
    "MinedBlock",
    "mine_block",
    "mine_header",
    "NetworkResult",
    "simulate_network",
    "Node",
    "P2PNetwork",
    "ReceiveResult",
    "LinkFaults",
    "Partition",
    "Crash",
    "ByzantinePeer",
    "Scenario",
    "random_scenario",
    "ChaosNetwork",
    "ChaosReport",
    "ChaosRunner",
    "InvariantChecker",
    "LamportKeyPair",
    "Wallet",
    "Transaction",
    "BLOCK_REWARD",
    "Account",
    "Ledger",
    "Mempool",
    "fee_rate",
    "BlockStore",
    "UtxoIndex",
    "encode_block",
    "decode_block",
]
