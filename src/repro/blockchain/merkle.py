"""Merkle tree commitments over block transactions.

Standard Bitcoin-style construction: leaves are double-SHA-256 of the
transaction payloads, odd levels duplicate their last node, and the root
commits to the ordered transaction list.  Proofs are (sibling, is_right)
paths verified against the root.
"""

from __future__ import annotations

import hashlib

from repro.errors import ChainError


def _sha256d(data: bytes) -> bytes:
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def _leaf_hashes(transactions: list[bytes]) -> list[bytes]:
    if not transactions:
        raise ChainError("merkle tree needs at least one transaction")
    return [_sha256d(tx) for tx in transactions]


def merkle_root(transactions: list[bytes]) -> bytes:
    """Root hash committing to the ordered transaction list."""
    level = _leaf_hashes(transactions)
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            _sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
    return level[0]


def merkle_proof(transactions: list[bytes], index: int) -> list[tuple[bytes, bool]]:
    """Inclusion proof for ``transactions[index]``.

    Each element is ``(sibling_hash, sibling_is_right)``, leaf-to-root.
    """
    if not 0 <= index < len(transactions):
        raise ChainError(f"transaction index {index} out of range")
    level = _leaf_hashes(transactions)
    proof: list[tuple[bytes, bool]] = []
    position = index
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        sibling = position ^ 1
        proof.append((level[sibling], bool(sibling > position)))
        level = [
            _sha256d(level[i] + level[i + 1]) for i in range(0, len(level), 2)
        ]
        position //= 2
    return proof


def verify_proof(
    transaction: bytes, proof: list[tuple[bytes, bool]], root: bytes
) -> bool:
    """Check an inclusion proof against a merkle root."""
    node = _sha256d(transaction)
    for sibling, sibling_is_right in proof:
        if sibling_is_right:
            node = _sha256d(node + sibling)
        else:
            node = _sha256d(sibling + node)
    return node == root
