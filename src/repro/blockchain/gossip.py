"""Gossip-scale block propagation: fanout policy, compact blocks, wire cost.

The chaos harness originally *flooded*: every node forwards every full
block to every peer, so one block costs O(n²) messages — fine at ten
nodes, hopeless at a thousand.  This module holds the data structures and
policy behind the three relay protocols :class:`~repro.blockchain.sim.
ChaosNetwork` can speak:

``flood``
    Epidemic full-block relay.  On first acceptance a node forwards the
    whole block to every peer except the one it came from.  O(n²)
    messages and O(n² · body) bytes per block — the baseline.

``gossip``
    Header-first probabilistic relay.  On first acceptance a node sends
    an 88-byte *announce* (header only) to a seeded random sample of
    ~√n peers; each receiver pulls the body exactly once from the first
    announcer, falling back to later announcers (then random peers) on
    drop or timeout via the harness's standard retry machinery.  A
    per-node seen-inventory drops duplicate announcements at the edge
    instead of re-flooding them.  O(n·√n) messages, bodies travel once
    per node.

``compact``
    Gossip plus compact-block bodies (BIP 152 shaped): the body response
    is the header, the prefilled coinbase, and a 6-byte *short id* per
    remaining transaction.  The receiver reconstructs the block from its
    own :class:`TxPool`; misses cost one ``gettxn``/``txn`` round trip.
    Same message complexity as gossip, but bodies shrink to a few bytes
    per transaction once the mempools are warm.

Everything here is deterministic: fanout sampling draws from a dedicated
seeded stream (see :class:`FanoutSampler`), short ids are SHA-256
prefixes, and reconstruction is a pure function of pool state — so a
chaos replay with the same seed stays byte-identical.
"""

from __future__ import annotations

import hashlib
import math
from collections import deque
from dataclasses import dataclass, field

from repro.blockchain.block import Block, BlockHeader, HEADER_BYTES
from repro.blockchain.merkle import merkle_root
from repro.errors import ChainError
from repro.rng import Xoshiro256

#: Relay protocols the chaos network can speak.
RELAY_MODES = ("flood", "gossip", "compact")

#: Bytes of a compact-block short transaction id (SHA-256 prefix; Bitcoin
#: uses 6-byte SipHash ids — the width is what matters for wire cost).
SHORT_ID_BYTES = 6

#: Fixed per-message envelope (kind tag, lengths, checksums) charged by
#: the wire-cost model on top of the payload.
MESSAGE_OVERHEAD = 16

#: A 32-byte block-id reference (inv, get, getblk payloads).
HASH_BYTES = 32

#: Default bound on a node's transaction pool (known + pending).
DEFAULT_TXPOOL_CAP = 4096


def default_fanout(n_nodes: int) -> int:
    """The ~√N relay fanout for an ``n_nodes`` network, clamped to the
    peer count.  Never below 2 (a fanout of 1 builds chains, not trees,
    and one dropped link stalls the epidemic)."""
    peers = max(1, n_nodes - 1)
    return min(peers, max(2, math.isqrt(peers)))


def resolve_fanout(configured: int, n_nodes: int) -> int:
    """Effective fanout: ``configured`` clamped to ``[2, peers]``, or the
    √N default when ``configured`` is 0 (auto).

    An explicit fanout of 1 is *not* honored (except in two-node
    networks, where there is only one peer): it degenerates the relay
    tree into a chain whose per-hop announce + body-pull latency defeats
    the convergence window — a liveness hazard, not a configuration.
    """
    peers = max(1, n_nodes - 1)
    if configured <= 0:
        return default_fanout(n_nodes)
    return min(peers, max(2, configured))


def short_tx_id(tx: bytes) -> bytes:
    """Deterministic :data:`SHORT_ID_BYTES`-byte transaction id."""
    return hashlib.sha256(tx).digest()[:SHORT_ID_BYTES]


class FanoutSampler:
    """Seeded sampling of relay targets without replacement.

    Uses a partial Fisher-Yates shuffle so a sample of k peers costs k
    RNG draws, not n — at 1000 nodes a full shuffle per relay would burn
    a thousand draws to pick thirty-two targets.
    """

    def __init__(self, rng: Xoshiro256) -> None:
        self._rng = rng

    def sample(self, n_nodes: int, k: int, exclude: tuple[int, ...] = ()) -> list[int]:
        """``k`` distinct node indices from ``range(n_nodes)`` minus
        ``exclude``, in seeded order (fewer when the pool is small)."""
        pool = [i for i in range(n_nodes) if i not in exclude]
        k = min(k, len(pool))
        for i in range(k):
            j = self._rng.randint(i, len(pool) - 1)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:k]


@dataclass(slots=True)
class TxPool:
    """Bounded per-node transaction inventory for compact-block relay.

    Two tiers share one FIFO-bounded store: *pending* transactions are
    candidates for the node's next block template; *known* transactions
    (already seen in an accepted block) are kept only so compact blocks
    referencing them still reconstruct without a round trip.  The whole
    pool is in-memory state — a node crash wipes it.
    """

    capacity: int = DEFAULT_TXPOOL_CAP
    _txs: dict[bytes, bytes] = field(default_factory=dict)
    _pending: dict[bytes, bytes] = field(default_factory=dict)
    _fifo: deque = field(default_factory=deque)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ChainError("txpool capacity must be >= 1")

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, sid: bytes) -> bool:
        return sid in self._txs

    def add(self, tx: bytes, pending: bool = True) -> bool:
        """Insert ``tx``; returns False when it was already pooled."""
        sid = short_tx_id(tx)
        if sid in self._txs:
            if not pending:
                self._pending.pop(sid, None)
            return False
        self._txs[sid] = tx
        if pending:
            self._pending[sid] = tx
        self._fifo.append(sid)
        while len(self._txs) > self.capacity:
            old = self._fifo.popleft()
            self._txs.pop(old, None)
            self._pending.pop(old, None)
        return True

    def get(self, sid: bytes) -> bytes | None:
        return self._txs.get(sid)

    def pending(self, limit: int) -> list[bytes]:
        """Up to ``limit`` pending transactions in arrival order (the
        deterministic block-template selection)."""
        out = []
        for sid in self._fifo:
            if sid in self._pending:
                out.append(self._pending[sid])
                if len(out) >= limit:
                    break
        return out

    def mark_mined(self, txs: tuple[bytes, ...]) -> None:
        """Transactions landed in an accepted block: no longer pending,
        but kept known for compact reconstruction."""
        for tx in txs:
            sid = short_tx_id(tx)
            if sid in self._txs:
                self._pending.pop(sid, None)
            else:
                self.add(tx, pending=False)

    def clear(self) -> None:
        self._txs.clear()
        self._pending.clear()
        self._fifo.clear()


@dataclass(frozen=True, slots=True)
class CompactBlock:
    """Header + short tx ids + prefilled transactions (BIP 152 shaped).

    ``prefilled`` maps body indices to full transactions the sender knows
    the receiver cannot have (always index 0 — the coinbase is unique to
    this block).  Every other slot is a :data:`SHORT_ID_BYTES`-byte id
    the receiver resolves from its own :class:`TxPool`.
    """

    header: BlockHeader
    short_ids: tuple[bytes, ...]  #: one per body index; b"" where prefilled
    prefilled: tuple[tuple[int, bytes], ...]

    @classmethod
    def from_block(cls, block: Block, prefill: tuple[int, ...] = (0,)) -> "CompactBlock":
        prefill_set = set(prefill)
        short_ids = tuple(
            b"" if i in prefill_set else short_tx_id(tx)
            for i, tx in enumerate(block.transactions)
        )
        prefilled = tuple(
            (i, block.transactions[i])
            for i in sorted(prefill_set)
            if i < len(block.transactions)
        )
        return cls(header=block.header, short_ids=short_ids, prefilled=prefilled)

    def missing_indices(self, pool: TxPool) -> list[int]:
        """Body indices whose short id is not in ``pool``."""
        prefilled = {i for i, _ in self.prefilled}
        return [
            i for i, sid in enumerate(self.short_ids)
            if i not in prefilled and pool.get(sid) is None
        ]

    def reconstruct(
        self, pool: TxPool, extra: dict[int, bytes] | None = None
    ) -> Block | None:
        """Assemble the full block from pool + ``extra`` (a ``gettxn``
        response), or None when a slot is still unresolved or the merkle
        root does not match (short-id collision — caller falls back to a
        full-body fetch)."""
        extra = extra or {}
        prefilled = dict(self.prefilled)
        txs: list[bytes] = []
        for i, sid in enumerate(self.short_ids):
            if i in prefilled:
                txs.append(prefilled[i])
            elif i in extra:
                txs.append(extra[i])
            else:
                tx = pool.get(sid)
                if tx is None:
                    return None
                txs.append(tx)
        if merkle_root(txs) != self.header.merkle_root:
            return None  # short-id collision or stale pool: wrong body
        return Block(header=self.header, transactions=tuple(txs))

    def wire_bytes(self) -> int:
        """Modelled wire size of this compact body."""
        n_short = sum(1 for s in self.short_ids if s)
        return (
            HEADER_BYTES
            + n_short * SHORT_ID_BYTES
            + sum(len(tx) + 2 for _, tx in self.prefilled)
        )


def block_wire_bytes(block: Block) -> int:
    """Modelled wire size of a full block message payload."""
    return HEADER_BYTES + sum(len(tx) + 2 for tx in block.transactions)


def message_wire_bytes(kind: str, *, block: Block | None = None,
                       compact: CompactBlock | None = None,
                       txs: tuple[bytes, ...] = (),
                       indices: tuple[int, ...] = ()) -> int:
    """Deterministic wire-cost model for one chaos-network message.

    ======== ======================================================
    kind     payload
    ======== ======================================================
    inv      32-byte tip id
    ann      88-byte header (header-first announce)
    get      32-byte id (batched backward-sync request)
    getblk   32-byte id (single body pull)
    getfull  32-byte id (compact fallback: full body pull)
    block    header + transactions
    cmpct    header + short ids + prefilled transactions
    gettxn   32-byte id + 4 bytes per requested index
    txn      32-byte id + requested transactions
    tx       one transaction
    ======== ======================================================
    """
    if kind in ("inv", "get", "getblk", "getfull"):
        payload = HASH_BYTES
    elif kind == "ann":
        payload = HEADER_BYTES
    elif kind == "block":
        payload = block_wire_bytes(block) if block is not None else HEADER_BYTES
    elif kind == "cmpct":
        payload = compact.wire_bytes() if compact is not None else HEADER_BYTES
    elif kind == "gettxn":
        payload = HASH_BYTES + 4 * len(indices)
    elif kind == "txn":
        payload = HASH_BYTES + sum(len(tx) + 2 for tx in txs)
    elif kind == "tx":
        payload = sum(len(tx) + 2 for tx in txs)
    else:
        raise ChainError(f"unknown message kind {kind!r}")
    return MESSAGE_OVERHEAD + payload


#: Message kinds that carry *block propagation* (used for the
#: messages-per-block efficiency metric; ``tx`` gossip is accounted
#: separately — transaction relay exists in every mode and would drown
#: the block-relay signal).
BLOCK_RELAY_KINDS = (
    "block", "ann", "inv", "get", "getblk", "getfull", "cmpct", "gettxn", "txn",
)

#: Coarse categories for the per-run traffic summary.
KIND_CATEGORY = {
    "inv": "announce",
    "ann": "header",
    "block": "body",
    "cmpct": "body",
    "txn": "body",
    "get": "request",
    "getblk": "request",
    "getfull": "request",
    "gettxn": "request",
    "tx": "tx",
}
