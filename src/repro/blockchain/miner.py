"""Nonce-searching miner.

"The process of searching for hashes is referred to as 'mining'" (§I): the
miner iterates nonces over the serialized header until the PoW digest meets
the target.  Works with any :class:`~repro.core.pow.PowFunction` — SHA-256d
mines ~1M nonces per second, HashCore ~60/s on its accelerated tiers (each
attempt generates, compiles and executes a fresh widget; with the widget
cache warm, verification reaches ~130/s on the JIT tier — see
``BENCH_hashrate.json``).
"""

from __future__ import annotations

from dataclasses import dataclass

import concurrent.futures
from typing import Callable

from repro.blockchain.block import Block, BlockHeader
from repro.core.pow import PowFunction, compact_to_target, meets_target
from repro.errors import PowError


@dataclass(frozen=True, slots=True)
class MinedBlock:
    """A successfully mined block plus mining statistics."""

    block: Block
    digest: bytes
    attempts: int


def mine_header(
    header: BlockHeader,
    pow_fn: PowFunction,
    *,
    max_attempts: int = 1_000_000,
    start_nonce: int = 0,
) -> tuple[BlockHeader, bytes, int]:
    """Search nonces for ``header`` until its PoW meets the header's target.

    Returns ``(solved_header, digest, attempts)``.  Raises
    :class:`PowError` when ``max_attempts`` nonces fail — callers with a
    real-time loop should retry with a fresh timestamp.
    """
    target = compact_to_target(header.bits)
    for attempt in range(max_attempts):
        candidate = header.with_nonce(start_nonce + attempt)
        digest = pow_fn.hash(candidate.serialize())
        if meets_target(digest, target):
            return candidate, digest, attempt + 1
    raise PowError(
        f"no solution in {max_attempts} attempts for target {target:#066x}"
    )


def mine_block(
    block: Block,
    pow_fn: PowFunction,
    *,
    max_attempts: int = 1_000_000,
    start_nonce: int = 0,
) -> MinedBlock:
    """Mine a fully assembled block (header nonce search)."""
    header, digest, attempts = mine_header(
        block.header, pow_fn, max_attempts=max_attempts, start_nonce=start_nonce
    )
    return MinedBlock(
        block=Block(header=header, transactions=block.transactions),
        digest=digest,
        attempts=attempts,
    )


#: Per-process PoW function, constructed once by :func:`_pool_init` when a
#: worker starts instead of once per chunk — widget/JIT caches inside the
#: PoW object stay warm across every chunk the worker scans.
_POOL_POW: PowFunction | None = None


def _pool_init(factory: Callable[[], PowFunction]) -> None:
    """Pool initializer: build this worker's PoW function exactly once."""
    global _POOL_POW
    _POOL_POW = factory()


#: Nonces per ``hash_batch`` dispatch in :func:`_search_range` when the
#: PoW function exposes a batch API (HashCore does).
_SEARCH_BATCH = 16


def _search_range(args) -> tuple[int, bytes] | None:
    """Worker: scan one nonce range (module-level for pickling).

    PoW functions exposing ``hash_batch`` get the range in
    ``_SEARCH_BATCH``-nonce slices — one dispatch per slice amortises
    call overhead and lets the batch API group nonces sharing a widget
    program onto the tier-3 lockstep engine."""
    header_bytes, start, count, target = args
    pow_fn = _POOL_POW
    header = BlockHeader.deserialize(header_bytes)
    hash_batch = getattr(pow_fn, "hash_batch", None)
    nonce = start
    end = start + count
    while nonce < end:
        sub = range(nonce, min(nonce + _SEARCH_BATCH, end))
        nonce = sub.stop
        datas = [header.with_nonce(n).serialize() for n in sub]
        if hash_batch is not None:
            digests = hash_batch(datas)
        else:
            digests = [pow_fn.hash(data) for data in datas]
        for n, digest in zip(sub, digests):
            if meets_target(digest, target):
                return n, digest
    return None


def mine_header_parallel(
    header: BlockHeader,
    pow_factory: Callable[[], PowFunction],
    *,
    workers: int = 2,
    chunk: int = 2048,
    max_attempts: int = 1_000_000,
) -> tuple[BlockHeader, bytes, int]:
    """Multi-process nonce search.

    ``pow_factory`` must be a picklable zero-argument callable constructing
    the PoW function inside each worker (PoW objects themselves may hold
    unpicklable state).  It runs once per worker *process* — in the pool
    initializer, not per chunk — so compiled-widget and JIT caches inside
    the PoW object survive across every chunk a worker scans.  Returns the
    same triple as :func:`mine_header`; ``attempts`` counts whole completed
    ranges at their actual size, so it never exceeds ``max_attempts``.
    For long-lived mining across many headers, prefer
    :class:`repro.blockchain.mining_engine.MiningEngine`, which keeps the
    pool (and those warm caches) alive between calls, sizes chunks
    adaptively and cancels in-flight ranges once a solution appears.
    """
    if workers < 1 or chunk < 1:
        raise PowError("workers and chunk must be >= 1")
    target = compact_to_target(header.bits)
    header_bytes = header.serialize()
    scanned = 0
    with concurrent.futures.ProcessPoolExecutor(
        max_workers=workers, initializer=_pool_init, initargs=(pow_factory,)
    ) as pool:
        next_start = 0
        # Each in-flight future maps to the size of its range: the final
        # range is usually a partial chunk, and crediting a full ``chunk``
        # for it would let ``attempts`` exceed ``max_attempts``.
        pending: dict[concurrent.futures.Future, int] = {}
        try:
            while scanned < max_attempts:
                while len(pending) < workers and next_start < max_attempts:
                    count = min(chunk, max_attempts - next_start)
                    future = pool.submit(
                        _search_range,
                        (header_bytes, next_start, count, target),
                    )
                    pending[future] = count
                    next_start += count
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    scanned += pending.pop(future)
                    result = future.result()
                    if result is not None:
                        nonce, digest = result
                        return header.with_nonce(nonce), digest, scanned
        finally:
            for future in pending:
                future.cancel()
    raise PowError(f"no solution in {max_attempts} attempts (parallel)")
