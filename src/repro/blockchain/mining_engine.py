"""Persistent-worker mining engine.

:func:`repro.blockchain.miner.mine_header_parallel` tears its process pool
down after every header, so each call re-pays worker spawn and PoW-function
construction, and a fixed chunk size either starves workers (too small) or
serializes the search (too large — a 2048-nonce chunk of HashCore takes
most of a minute).  This engine keeps the miner's machinery alive:

* **Persistent workers** — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose initializer constructs the PoW function exactly once per worker
  process; HashCore's compiled-widget LRU and the per-program fast/JIT
  code caches stay warm across chunks *and across headers*.
* **Adaptive chunk sizing** — per-worker hash rate is tracked as an
  exponential moving average and each batch is sized to take roughly
  ``target_batch_seconds``, so cheap PoWs get big ranges and HashCore gets
  small ones without manual tuning.
* **Early cancellation** — a shared :class:`multiprocessing` event is set
  the moment any worker reports a solution; in-flight workers poll it (at
  most every ``_CANCEL_POLL_SECONDS``) and abandon their ranges instead of
  scanning to the end.
* **Stats channel** — every batch reports hashes done, wall time, worker
  pid and the PoW object's ``cache_stats()`` (when it has one); the
  aggregate is available as :meth:`MiningEngine.report`.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.blockchain.block import BlockHeader
from repro.core.pow import PowFunction, compact_to_target, meets_target
from repro.errors import PowError

#: Per-process state installed by :func:`_engine_init`.
_WORKER_POW: PowFunction | None = None
_WORKER_CANCEL = None

#: Workers look at the cancel event at most once per this many hashes and
#: at most once per this many seconds — the event is a manager proxy, so a
#: check is an IPC round trip and must stay off the per-hash path.
_CANCEL_POLL_HASHES = 16
_CANCEL_POLL_SECONDS = 0.02


def _engine_init(factory: Callable[[], PowFunction], cancel_event) -> None:
    """Pool initializer: construct this worker's PoW function once and
    remember the shared cancellation event."""
    global _WORKER_POW, _WORKER_CANCEL
    _WORKER_POW = factory()
    _WORKER_CANCEL = cancel_event


def _engine_search(args) -> tuple:
    """Worker: scan one nonce range, honouring early cancellation.

    Returns ``(found_nonce_or_None, digest_or_None, hashes_done,
    elapsed_seconds, pid, cancelled, cache_stats_or_None)`` — the per-batch
    record the engine aggregates into its hashrate report.
    """
    header_bytes, start, count, target = args
    pow_fn = _WORKER_POW
    cancel = _WORKER_CANCEL
    header = BlockHeader.deserialize(header_bytes)
    began = time.perf_counter()
    last_poll = began
    hashes = 0
    found = None
    digest = None
    cancelled = False
    for nonce in range(start, start + count):
        if cancel is not None and hashes % _CANCEL_POLL_HASHES == 0:
            now = time.perf_counter()
            if now - last_poll >= _CANCEL_POLL_SECONDS:
                last_poll = now
                if cancel.is_set():
                    cancelled = True
                    break
        candidate = pow_fn.hash(header.with_nonce(nonce).serialize())
        hashes += 1
        if meets_target(candidate, target):
            found = nonce
            digest = candidate
            break
    stats_fn = getattr(pow_fn, "cache_stats", None)
    stats = stats_fn() if callable(stats_fn) else None
    elapsed = time.perf_counter() - began
    return (found, digest, hashes, elapsed, os.getpid(), cancelled, stats)


@dataclass(slots=True)
class WorkerStats:
    """Accumulated per-worker counters from the stats channel."""

    pid: int
    batches: int = 0
    hashes: int = 0
    busy_seconds: float = 0.0
    cancelled_batches: int = 0
    #: Latest ``cache_stats()`` document the worker's PoW object reported
    #: (None when the PoW function exposes no cache statistics).
    cache_stats: dict | None = None

    @property
    def hashrate(self) -> float:
        """This worker's busy-time hash rate."""
        return self.hashes / self.busy_seconds if self.busy_seconds > 0 else 0.0


@dataclass(slots=True)
class EngineReport:
    """Aggregate hashrate report across everything the engine has mined."""

    workers: int
    batches: int
    hashes: int
    wall_seconds: float
    busy_seconds: float
    chunk: int
    per_worker: dict[int, WorkerStats] = field(default_factory=dict)

    @property
    def hashrate(self) -> float:
        """Aggregate hashes per wall-clock second."""
        return self.hashes / self.wall_seconds if self.wall_seconds > 0 else 0.0


class MiningEngine:
    """A long-lived multi-process nonce-search engine.

    ``pow_factory`` must be picklable and is invoked once per worker
    process (see :func:`_engine_init`).  The engine may be used for many
    headers; workers — and the warm caches inside their PoW functions —
    persist until :meth:`close`.  Usable as a context manager.
    """

    def __init__(
        self,
        pow_factory: Callable[[], PowFunction],
        *,
        workers: int = 2,
        target_batch_seconds: float = 0.5,
        initial_chunk: int = 32,
        min_chunk: int = 8,
        max_chunk: int = 1 << 20,
    ) -> None:
        if workers < 1:
            raise PowError("workers must be >= 1")
        if target_batch_seconds <= 0:
            raise PowError("target_batch_seconds must be positive")
        if not 1 <= min_chunk <= initial_chunk <= max_chunk:
            raise PowError("need 1 <= min_chunk <= initial_chunk <= max_chunk")
        self.pow_factory = pow_factory
        self.workers = workers
        self.target_batch_seconds = target_batch_seconds
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self._chunk = float(initial_chunk)
        self._rate_ema: float | None = None  # per-worker hashes/second
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._manager = None
        self._cancel = None
        self._stats: dict[int, WorkerStats] = {}
        self._batches = 0
        self._hashes = 0
        self._busy = 0.0
        self._wall = 0.0

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        # A Manager-backed event survives pickling through the executor's
        # initargs (raw multiprocessing primitives do not).
        self._manager = multiprocessing.Manager()
        self._cancel = self._manager.Event()
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_engine_init,
            initargs=(self.pow_factory, self._cancel),
        )

    def _chunk_size(self) -> int:
        return max(self.min_chunk, min(self.max_chunk, int(self._chunk)))

    def _record(
        self,
        pid: int,
        hashes: int,
        elapsed: float,
        cancelled: bool,
        cache_stats: dict | None,
    ) -> None:
        stats = self._stats.get(pid)
        if stats is None:
            stats = self._stats[pid] = WorkerStats(pid=pid)
        stats.batches += 1
        stats.hashes += hashes
        stats.busy_seconds += elapsed
        stats.cancelled_batches += 1 if cancelled else 0
        if cache_stats is not None:
            stats.cache_stats = cache_stats
        self._batches += 1
        self._hashes += hashes
        self._busy += elapsed
        if hashes and elapsed > 0:
            rate = hashes / elapsed
            self._rate_ema = (
                rate
                if self._rate_ema is None
                else 0.7 * self._rate_ema + 0.3 * rate
            )
            self._chunk = max(
                1.0, self._rate_ema * self.target_batch_seconds
            )

    # ------------------------------------------------------------------
    def mine_header(
        self,
        header: BlockHeader,
        *,
        max_attempts: int = 1_000_000,
        start_nonce: int = 0,
    ) -> tuple[BlockHeader, bytes, int]:
        """Search nonces for ``header``; same triple as ``mine_header``.

        ``attempts`` counts hashes actually computed (cancelled ranges
        credit only what they scanned), so it never exceeds
        ``max_attempts``.  Raises :class:`PowError` when the nonce budget
        is exhausted without a solution.
        """
        if max_attempts < 1:
            raise PowError("max_attempts must be >= 1")
        self._ensure_pool()
        self._cancel.clear()
        target = compact_to_target(header.bits)
        header_bytes = header.serialize()
        end_nonce = start_nonce + max_attempts
        next_nonce = start_nonce
        attempts = 0
        best: tuple[int, bytes] | None = None
        pending: dict[concurrent.futures.Future, int] = {}
        began = time.perf_counter()
        try:
            while True:
                while (
                    best is None
                    and len(pending) < self.workers
                    and next_nonce < end_nonce
                ):
                    count = min(self._chunk_size(), end_nonce - next_nonce)
                    future = self._pool.submit(
                        _engine_search,
                        (header_bytes, next_nonce, count, target),
                    )
                    pending[future] = count
                    next_nonce += count
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    pending.pop(future)
                    found, digest, hashes, elapsed, pid, cancelled, stats = (
                        future.result()
                    )
                    attempts += hashes
                    self._record(pid, hashes, elapsed, cancelled, stats)
                    if found is not None and (best is None or found < best[0]):
                        best = (found, digest)
                        # Broadcast: in-flight workers drop their ranges.
                        self._cancel.set()
        finally:
            self._wall += time.perf_counter() - began
        if best is not None:
            return header.with_nonce(best[0]), best[1], attempts
        raise PowError(
            f"no solution in {max_attempts} attempts (mining engine)"
        )

    def report(self) -> EngineReport:
        """Aggregate hashrate/stats report over the engine's lifetime."""
        return EngineReport(
            workers=self.workers,
            batches=self._batches,
            hashes=self._hashes,
            wall_seconds=self._wall,
            busy_seconds=self._busy,
            chunk=self._chunk_size(),
            per_worker=dict(self._stats),
        )

    def close(self) -> None:
        """Shut the pool down.  Safe to call twice; the engine rebuilds its
        pool lazily if mined again afterwards."""
        if self._cancel is not None:
            try:
                self._cancel.set()  # unstick any straggling workers
            except Exception:
                pass  # manager may already be gone
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None
        self._cancel = None

    def __enter__(self) -> "MiningEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def mine_header_engine(
    header: BlockHeader,
    pow_factory: Callable[[], PowFunction],
    *,
    workers: int = 2,
    max_attempts: int = 1_000_000,
    start_nonce: int = 0,
    **engine_kwargs,
) -> tuple[BlockHeader, bytes, int]:
    """One-shot convenience: mine a single header on a fresh engine.

    Prefer holding a :class:`MiningEngine` open when mining several
    headers — that is the whole point of the persistent pool.
    """
    with MiningEngine(pow_factory, workers=workers, **engine_kwargs) as engine:
        return engine.mine_header(
            header, max_attempts=max_attempts, start_nonce=start_nonce
        )
