"""Supervised persistent-worker mining engine.

:func:`repro.blockchain.miner.mine_header_parallel` tears its process pool
down after every header, so each call re-pays worker spawn and PoW-function
construction, and a fixed chunk size either starves workers (too small) or
serializes the search (too large — a 2048-nonce chunk of HashCore takes
most of a minute).  This engine keeps the miner's machinery alive:

* **Persistent workers** — a :class:`~concurrent.futures.ProcessPoolExecutor`
  whose initializer constructs the PoW function exactly once per worker
  process; HashCore's compiled-widget LRU and the per-program fast/JIT
  code caches stay warm across chunks *and across headers*.
* **Adaptive chunk sizing** — per-worker hash rate is tracked as an
  exponential moving average and each batch is sized to take roughly
  ``target_batch_seconds``, so cheap PoWs get big ranges and HashCore gets
  small ones without manual tuning.
* **Early cancellation** — a shared :class:`multiprocessing` event is set
  the moment any worker reports a solution; still-queued chunks are
  cancelled before they launch, and in-flight workers poll the event (at
  most every ``_CANCEL_POLL_SECONDS``) and abandon their ranges instead of
  scanning to the end.
* **Stats channel** — every batch reports hashes done, wall time, worker
  pid and the PoW object's ``cache_stats()`` (when it has one); the
  aggregate is available as :meth:`MiningEngine.report`.

On top of that sits the **supervision layer** — the engine assumes workers
die, widgets hang and seeds are poisonous, and degrades instead of dying:

* **Worker-crash recovery** — a dead worker breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor`
  (:class:`~concurrent.futures.process.BrokenProcessPool`); the engine
  sweeps every in-flight nonce chunk onto a requeue list, rebuilds the
  pool with exponential backoff, and resumes the search.  More than
  ``max_respawns`` pool deaths while mining one header raise a structured
  :class:`~repro.errors.EngineFault` with code ``worker-crash``.
* **Hung-chunk watchdog** — each submitted chunk carries a deadline
  (explicit ``chunk_timeout``, or derived from the EMA chunk timing); a
  chunk that outlives it has its workers killed, the pool rebuilt and the
  chunk requeued.  A chunk that times out on every allowed retry raises
  ``EngineFault("chunk-timeout")``.
* **Wall-clock budget** — ``mine_header(deadline=…)`` bounds the whole
  search; on expiry the engine broadcasts cancel, drains cleanly and
  raises ``EngineFault("deadline-exceeded")``.
* **Poisoned seeds** — a nonce whose widget trips its fuse or whose
  generator fails inside a worker is counted and skipped; it poisons that
  seed only, never the batch or the engine.
* **Health report** — respawns, chunk timeouts, requeues, poisoned seeds
  and the workers' tier-degradation counters are aggregated into
  :class:`HealthReport`, folded into :class:`EngineReport` (and printed
  by ``repro mine --workers N``).

Every recovery path is deterministically testable: a test-only
:class:`_FaultPlan` kills the worker executing chunk *N* or stalls chunk
*K*, exactly once each (``tests/test_engine_faults.py``).
"""

from __future__ import annotations

import concurrent.futures
import math
import multiprocessing
import os
import time
from collections import deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.blockchain.block import BlockHeader
from repro.core.pow import PowFunction, compact_to_target, meets_target
from repro.errors import EngineFault, PowError, ReproError

#: Per-process state installed by :func:`_engine_init`.
_WORKER_POW: PowFunction | None = None
_WORKER_CANCEL = None
_WORKER_FAULTS = None

#: Workers look at the cancel event at most once per this many hashes and
#: at most once per this many seconds — the event is a manager proxy, so a
#: check is an IPC round trip and must stay off the per-hash path.
_CANCEL_POLL_HASHES = 16
_CANCEL_POLL_SECONDS = 0.02

#: Nonces handed to ``PowFunction.hash_batch`` per dispatch when the PoW
#: function exposes a batch API.  Matches the cancel-poll cadence so
#: batching never lengthens the cancellation latency.
_BATCH_NONCES = 16

#: Derived watchdog deadline: never below the floor (covers pool re-init,
#: PoW construction in the initializer and first-chunk jitter), otherwise
#: this many times the EMA-predicted chunk duration.
_WATCHDOG_FLOOR_SECONDS = 30.0
_WATCHDOG_GRACE = 8.0

#: Upper bound on the exponential crash-respawn backoff sleep.
_MAX_RESPAWN_BACKOFF = 2.0


@dataclass(slots=True)
class _FaultPlan:
    """Test-only deterministic fault injection for the supervision paths.

    ``kill_chunk``: the worker that picks up that chunk sequence number
    dies with ``os._exit`` (a hard crash the pool cannot absorb).
    ``stall_chunk``: the worker sleeps ``stall_seconds`` before scanning —
    long enough to trip the watchdog when ``chunk_timeout`` is shorter.

    One-shot semantics live on the *engine* side: when the engine observes
    the crash / hang it clears the corresponding field before rebuilding
    the pool, so the requeued chunk runs clean and the injected counts are
    exact on replay.  Set ``one_shot=False`` to keep re-injecting (used to
    exercise the ``max_respawns`` / ``max_chunk_retries`` limits).
    """

    kill_chunk: int | None = None
    stall_chunk: int | None = None
    stall_seconds: float = 30.0
    one_shot: bool = True

    def apply(self, seq: int) -> None:
        """Executed inside the worker before scanning chunk ``seq``."""
        if self.kill_chunk is not None and seq == self.kill_chunk:
            os._exit(1)  # simulate a hard worker crash (OOM kill, segfault)
        if self.stall_chunk is not None and seq == self.stall_chunk:
            end = time.perf_counter() + self.stall_seconds
            while time.perf_counter() < end:
                time.sleep(0.05)


def _engine_init(
    factory: Callable[[], PowFunction], cancel_event, fault_plan
) -> None:
    """Pool initializer: construct this worker's PoW function once and
    remember the shared cancellation event and (test-only) fault plan."""
    global _WORKER_POW, _WORKER_CANCEL, _WORKER_FAULTS
    _WORKER_POW = factory()
    _WORKER_CANCEL = cancel_event
    _WORKER_FAULTS = fault_plan


def _engine_search(args) -> tuple:
    """Worker: scan one nonce range, honouring early cancellation.

    Returns ``(found_nonce_or_None, digest_or_None, hashes_done,
    poisoned_seeds, elapsed_seconds, pid, cancelled,
    cache_stats_or_None)`` — the per-batch record the engine aggregates
    into its hashrate/health report.  A nonce whose hash evaluation raises
    a library error (fuse trip, generator failure) is counted as poisoned
    and skipped; it never takes the batch down.

    When the PoW function exposes ``hash_batch`` (HashCore does), the
    range is scanned ``_BATCH_NONCES`` nonces per dispatch — one call
    amortises dispatch overhead and lets the batch API group any nonces
    that share a widget program onto the tier-3 lockstep engine.  A batch
    that raises is replayed nonce-by-nonce so a single poisoned seed
    still poisons only itself.
    """
    header_bytes, start, count, target, seq = args
    pow_fn = _WORKER_POW
    cancel = _WORKER_CANCEL
    began = time.perf_counter()
    if _WORKER_FAULTS is not None:
        _WORKER_FAULTS.apply(seq)
    pid = os.getpid()
    if cancel is not None and cancel.is_set():
        # A solution was broadcast while this chunk sat in the queue:
        # don't launch the scan at all.
        return (None, None, 0, 0, time.perf_counter() - began, pid, True,
                None)
    header = BlockHeader.deserialize(header_bytes)
    hash_batch = getattr(pow_fn, "hash_batch", None)
    last_poll = began
    hashes = 0
    poisoned = 0
    found = None
    digest = None
    cancelled = False
    nonce = start
    end = start + count
    while nonce < end and found is None:
        if cancel is not None:
            now = time.perf_counter()
            if now - last_poll >= _CANCEL_POLL_SECONDS:
                last_poll = now
                if cancel.is_set():
                    cancelled = True
                    break
        sub = range(nonce, min(nonce + _BATCH_NONCES, end))
        nonce = sub.stop
        datas = [header.with_nonce(n).serialize() for n in sub]
        candidates: list[bytes | None] | None = None
        if hash_batch is not None:
            try:
                candidates = hash_batch(datas)
            except ReproError:
                candidates = None  # replay below to isolate the bad seed
        if candidates is None:
            candidates = []
            for data in datas:
                try:
                    candidates.append(pow_fn.hash(data))
                except ReproError:
                    # Poisoned seed: this nonce's widget cannot be
                    # evaluated (fuse trip, generator failure).  Skip the
                    # seed, keep the batch — and the engine — alive.
                    candidates.append(None)
        for n, candidate in zip(sub, candidates):
            if candidate is None:
                poisoned += 1
                continue
            hashes += 1
            if meets_target(candidate, target):
                found = n
                digest = candidate
                break
    stats_fn = getattr(pow_fn, "cache_stats", None)
    stats = stats_fn() if callable(stats_fn) else None
    elapsed = time.perf_counter() - began
    return (found, digest, hashes, poisoned, elapsed, pid, cancelled, stats)


@dataclass(slots=True)
class _Chunk:
    """One submitted nonce range and its supervision bookkeeping."""

    seq: int
    start: int
    count: int
    attempt: int = 0
    deadline: float = math.inf  # absolute perf_counter watchdog deadline


@dataclass(slots=True)
class WorkerStats:
    """Accumulated per-worker counters from the stats channel."""

    pid: int
    batches: int = 0
    hashes: int = 0
    busy_seconds: float = 0.0
    cancelled_batches: int = 0
    #: Latest ``cache_stats()`` document the worker's PoW object reported
    #: (None when the PoW function exposes no cache statistics).
    cache_stats: dict | None = None

    @property
    def hashrate(self) -> float:
        """This worker's busy-time hash rate.

        0.0 — never a raise or ``inf`` — before the first batch lands or
        when the measured busy time is still zero (a report generated
        before any chunk completes); regression-tested in
        ``tests/test_mining_engine.py``.
        """
        return self.hashes / self.busy_seconds if self.busy_seconds > 0 else 0.0


@dataclass(slots=True)
class HealthReport:
    """Supervision counters over the engine's lifetime.

    All zeros on a healthy run — that is the assertion the happy-path
    tests make.  ``degradations`` aggregates the workers' execution-tier
    fall-back counters (``{"jit->fast": n, …}``) from the stats channel;
    ``close_errors`` records unexpected shutdown exceptions that
    :meth:`MiningEngine.close` used to swallow.
    """

    respawns: int = 0
    chunk_timeouts: int = 0
    requeues: int = 0
    deadline_exceeded: int = 0
    poisoned_seeds: int = 0
    degradations: dict[str, int] = field(default_factory=dict)
    close_errors: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when no fault of any kind has been observed."""
        return (
            self.respawns == 0
            and self.chunk_timeouts == 0
            and self.requeues == 0
            and self.deadline_exceeded == 0
            and self.poisoned_seeds == 0
            and not self.degradations
            and not self.close_errors
        )


@dataclass(slots=True)
class EngineReport:
    """Aggregate hashrate report across everything the engine has mined."""

    workers: int
    batches: int
    hashes: int
    wall_seconds: float
    busy_seconds: float
    chunk: int
    per_worker: dict[int, WorkerStats] = field(default_factory=dict)
    health: HealthReport = field(default_factory=HealthReport)
    #: Aggregate widget executions per machine tier across all workers
    #: (``{"batch": n, "jit": n, "fast": n, "timed": n}``) — shows where
    #: attempts actually ran after any tier degradations.  Empty when the
    #: PoW function reports no tier counters (e.g. SHA-256d).
    tier_runs: dict[str, int] = field(default_factory=dict)

    @property
    def hashrate(self) -> float:
        """Aggregate hashes per wall-clock second.

        0.0 before any mining has happened (zero wall time) — the same
        no-raise contract as :attr:`WorkerStats.hashrate`.
        """
        return self.hashes / self.wall_seconds if self.wall_seconds > 0 else 0.0


class MiningEngine:
    """A long-lived, supervised multi-process nonce-search engine.

    ``pow_factory`` must be picklable and is invoked once per worker
    process (see :func:`_engine_init`).  The engine may be used for many
    headers; workers — and the warm caches inside their PoW functions —
    persist until :meth:`close`.  Usable as a context manager.

    Supervision knobs: ``chunk_timeout`` is the per-chunk watchdog
    deadline in seconds (``None``: derived from the EMA chunk timing,
    ``0``: watchdog disabled); ``max_respawns`` bounds pool rebuilds after
    worker crashes *per mined header*; ``max_chunk_retries`` bounds how
    often one chunk may be requeued after timing out;
    ``respawn_backoff`` seeds the exponential post-crash backoff sleep.
    """

    def __init__(
        self,
        pow_factory: Callable[[], PowFunction],
        *,
        workers: int = 2,
        target_batch_seconds: float = 0.5,
        initial_chunk: int = 32,
        min_chunk: int = 8,
        max_chunk: int = 1 << 20,
        chunk_timeout: float | None = None,
        max_respawns: int = 3,
        max_chunk_retries: int = 3,
        respawn_backoff: float = 0.05,
        _fault_plan: _FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise PowError("workers must be >= 1")
        if target_batch_seconds <= 0:
            raise PowError("target_batch_seconds must be positive")
        if not 1 <= min_chunk <= initial_chunk <= max_chunk:
            raise PowError("need 1 <= min_chunk <= initial_chunk <= max_chunk")
        if chunk_timeout is not None and chunk_timeout < 0:
            raise PowError("chunk_timeout must be >= 0 (0 disables)")
        if max_respawns < 0 or max_chunk_retries < 0:
            raise PowError("max_respawns/max_chunk_retries must be >= 0")
        self.pow_factory = pow_factory
        self.workers = workers
        self.target_batch_seconds = target_batch_seconds
        self.min_chunk = min_chunk
        self.max_chunk = max_chunk
        self.chunk_timeout = chunk_timeout
        self.max_respawns = max_respawns
        self.max_chunk_retries = max_chunk_retries
        self.respawn_backoff = respawn_backoff
        self._fault_plan = _fault_plan
        self._chunk = float(initial_chunk)
        self._rate_ema: float | None = None  # per-worker hashes/second
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None
        self._manager = None
        self._cancel = None
        self._stats: dict[int, WorkerStats] = {}
        self._batches = 0
        self._hashes = 0
        self._busy = 0.0
        self._wall = 0.0
        self._seq = 0  # global chunk sequence number (fault-plan anchor)
        self._health = HealthReport()

    # ------------------------------------------------------------------
    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        # A Manager-backed event survives pickling through the executor's
        # initargs (raw multiprocessing primitives do not).  The manager —
        # and with it the cancel event — survives pool rebuilds.
        if self._manager is None:
            self._manager = multiprocessing.Manager()
            self._cancel = self._manager.Event()
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_engine_init,
            initargs=(self.pow_factory, self._cancel, self._fault_plan),
        )

    def _teardown_pool(self, kill: bool = False) -> None:
        """Drop the worker pool; ``kill`` terminates worker processes first
        (the only way to reclaim a pool slot from a hung widget)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if kill:
            for process in list(getattr(pool, "_processes", {}).values()):
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001 — already-dead process
                    pass
        pool.shutdown(wait=not kill, cancel_futures=True)

    def _chunk_size(self) -> int:
        return max(self.min_chunk, min(self.max_chunk, int(self._chunk)))

    def _watchdog_deadline(self, count: int, now: float) -> float:
        """Absolute deadline for a chunk of ``count`` nonces submitted now."""
        if self.chunk_timeout is not None:
            if self.chunk_timeout == 0:
                return math.inf  # watchdog disabled
            return now + self.chunk_timeout
        estimate = count / self._rate_ema if self._rate_ema else 0.0
        return now + max(_WATCHDOG_FLOOR_SECONDS, _WATCHDOG_GRACE * estimate)

    def _record(
        self,
        pid: int,
        hashes: int,
        elapsed: float,
        cancelled: bool,
        cache_stats: dict | None,
    ) -> None:
        stats = self._stats.get(pid)
        if stats is None:
            stats = self._stats[pid] = WorkerStats(pid=pid)
        stats.batches += 1
        stats.hashes += hashes
        stats.busy_seconds += elapsed
        stats.cancelled_batches += 1 if cancelled else 0
        if cache_stats is not None:
            stats.cache_stats = cache_stats
        self._batches += 1
        self._hashes += hashes
        self._busy += elapsed
        if hashes and elapsed > 0:
            rate = hashes / elapsed
            self._rate_ema = (
                rate
                if self._rate_ema is None
                else 0.7 * self._rate_ema + 0.3 * rate
            )
            self._chunk = max(
                1.0, self._rate_ema * self.target_batch_seconds
            )

    # -- supervision ---------------------------------------------------
    def _recover_from_crash(
        self,
        pending: dict,
        requeue: deque,
        crashes: int,
    ) -> None:
        """A worker died and broke the pool: requeue every in-flight chunk,
        rebuild the pool (with backoff) and keep mining."""
        for chunk in pending.values():
            chunk.attempt += 1
            requeue.append(chunk)
        self._health.requeues += len(pending)
        pending.clear()
        self._health.respawns += 1
        if self._fault_plan is not None and self._fault_plan.one_shot:
            # The injected kill has fired; the rebuilt pool runs clean.
            self._fault_plan = replace(self._fault_plan, kill_chunk=None)
        self._teardown_pool(kill=True)
        time.sleep(
            min(
                self.respawn_backoff * (2 ** (crashes - 1)),
                _MAX_RESPAWN_BACKOFF,
            )
        )
        self._ensure_pool()

    def _expire_hung_chunks(
        self, pending: dict, requeue: deque, now: float, fatal: bool
    ) -> None:
        """Watchdog tick: if any in-flight chunk outlived its deadline,
        kill the pool (the hung worker cannot be reclaimed any other way),
        requeue everything in flight and rebuild.

        ``fatal`` is False once a solution is in hand — a straggling hung
        chunk is then discarded, never escalated to an
        ``EngineFault("chunk-timeout")``.
        """
        expired = [c for c in pending.values() if now >= c.deadline]
        if not expired:
            return
        self._health.chunk_timeouts += len(expired)
        exhausted = [c for c in expired if c.attempt >= self.max_chunk_retries]
        for chunk in pending.values():
            chunk.attempt += 1
            requeue.append(chunk)
        self._health.requeues += len(pending)
        pending.clear()
        if self._fault_plan is not None and self._fault_plan.one_shot:
            self._fault_plan = replace(self._fault_plan, stall_chunk=None)
        self._teardown_pool(kill=True)
        if exhausted and fatal:
            chunk = exhausted[0]
            raise EngineFault(
                "chunk-timeout",
                f"chunk {chunk.seq} (nonces {chunk.start}.."
                f"{chunk.start + chunk.count - 1}) timed out on attempt "
                f"{chunk.attempt + 1} (max_chunk_retries="
                f"{self.max_chunk_retries})",
            )
        if fatal:
            self._ensure_pool()

    def _abandon_inflight(self, pending: dict) -> None:
        """Deadline expiry: broadcast cancel, give running workers one poll
        interval to bail, then kill whatever is still stuck."""
        try:
            self._cancel.set()
        except Exception:  # noqa: BLE001 — manager may be gone
            pass
        for future in pending:
            future.cancel()
        _done, not_done = concurrent.futures.wait(pending, timeout=1.0)
        if not_done:
            self._teardown_pool(kill=True)  # rebuilt lazily on next use
        pending.clear()

    def _wait_timeout(
        self, pending: dict, budget: float | None, now: float
    ) -> float | None:
        """How long the next ``wait`` may block before a watchdog or
        deadline check is due (None: nothing to watch)."""
        soonest = min(chunk.deadline for chunk in pending.values())
        if budget is not None:
            soonest = min(soonest, budget)
        if soonest == math.inf:
            return None
        return max(0.01, soonest - now)

    # ------------------------------------------------------------------
    def mine_header(
        self,
        header: BlockHeader,
        *,
        max_attempts: int = 1_000_000,
        start_nonce: int = 0,
        deadline: float | None = None,
    ) -> tuple[BlockHeader, bytes, int]:
        """Search nonces for ``header``; same triple as ``mine_header``.

        ``attempts`` counts nonces actually consumed — hashes computed
        plus poisoned seeds skipped; cancelled ranges credit only what
        they scanned — so it never exceeds ``max_attempts``.
        ``deadline`` bounds the search in wall-clock seconds.

        Raises :class:`PowError` when the nonce budget is exhausted
        without a solution, and :class:`~repro.errors.EngineFault` when
        supervision gives up (codes ``worker-crash``, ``chunk-timeout``,
        ``deadline-exceeded``).
        """
        if max_attempts < 1:
            raise PowError("max_attempts must be >= 1")
        if deadline is not None and deadline <= 0:
            raise PowError("deadline must be positive")
        self._ensure_pool()
        self._cancel.clear()
        target = compact_to_target(header.bits)
        header_bytes = header.serialize()
        end_nonce = start_nonce + max_attempts
        next_nonce = start_nonce
        attempts = 0
        crashes = 0
        best: tuple[int, bytes] | None = None
        pending: dict[concurrent.futures.Future, _Chunk] = {}
        requeue: deque[_Chunk] = deque()
        began = time.perf_counter()
        budget = None if deadline is None else began + deadline
        try:
            while True:
                now = time.perf_counter()
                submit_failed = False
                while (
                    best is None
                    and len(pending) < self.workers
                    and (requeue or next_nonce < end_nonce)
                ):
                    if requeue:
                        chunk = requeue.popleft()
                    else:
                        count = min(self._chunk_size(), end_nonce - next_nonce)
                        chunk = _Chunk(
                            seq=self._seq, start=next_nonce, count=count
                        )
                        self._seq += 1
                        next_nonce += count
                    chunk.deadline = self._watchdog_deadline(chunk.count, now)
                    try:
                        future = self._pool.submit(
                            _engine_search,
                            (header_bytes, chunk.start, chunk.count, target,
                             chunk.seq),
                        )
                    except BrokenProcessPool:
                        # A worker died between waits; recover below.
                        requeue.appendleft(chunk)
                        submit_failed = True
                        break
                    pending[future] = chunk
                if submit_failed:
                    crashes += 1
                    if crashes > self.max_respawns:
                        raise EngineFault(
                            "worker-crash",
                            f"worker pool died {crashes} times mining one "
                            f"header (max_respawns={self.max_respawns})",
                        )
                    self._recover_from_crash(pending, requeue, crashes)
                    continue
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending,
                    timeout=self._wait_timeout(pending, budget, now),
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                now = time.perf_counter()
                if budget is not None and now >= budget and best is None:
                    self._abandon_inflight(pending)
                    self._health.deadline_exceeded += 1
                    raise EngineFault(
                        "deadline-exceeded",
                        f"no solution within the {deadline}s wall-clock "
                        f"budget ({attempts} attempts)",
                    )
                if not done:
                    self._expire_hung_chunks(
                        pending, requeue, now, fatal=best is None
                    )
                    continue
                broken = False
                for future in done:
                    chunk = pending.pop(future)
                    if future.cancelled():
                        continue  # never launched: nonces never scanned
                    try:
                        (found, digest, hashes, poisoned, elapsed, pid,
                         cancelled, stats) = future.result()
                    except BrokenProcessPool:
                        requeue.appendleft(chunk)
                        chunk.attempt += 1
                        self._health.requeues += 1
                        broken = True
                        continue
                    attempts += hashes + poisoned
                    self._health.poisoned_seeds += poisoned
                    self._record(pid, hashes, elapsed, cancelled, stats)
                    if found is not None and (best is None or found < best[0]):
                        best = (found, digest)
                        # Broadcast: in-flight workers drop their ranges,
                        # still-queued chunks are cancelled before launch.
                        self._cancel.set()
                        for other in pending:
                            other.cancel()
                if broken:
                    if best is not None:
                        # The search is already won; drop the broken
                        # remains instead of rebuilding mid-drain.
                        pending.clear()
                        self._teardown_pool(kill=True)
                        continue
                    crashes += 1
                    if crashes > self.max_respawns:
                        raise EngineFault(
                            "worker-crash",
                            f"worker pool died {crashes} times mining one "
                            f"header (max_respawns={self.max_respawns})",
                        )
                    self._recover_from_crash(pending, requeue, crashes)
        finally:
            self._wall += time.perf_counter() - began
        if best is not None:
            return header.with_nonce(best[0]), best[1], attempts
        raise PowError(
            f"no solution in {max_attempts} attempts (mining engine)"
        )

    def _aggregate_degradations(self) -> dict[str, int]:
        """Sum the workers' latest tier-degradation counters per pid."""
        aggregate: dict[str, int] = {}
        for stats in self._stats.values():
            tiers = (stats.cache_stats or {}).get("tiers") or {}
            for edge, count in tiers.get("degradations", {}).items():
                aggregate[edge] = aggregate.get(edge, 0) + count
        return aggregate

    def _aggregate_tier_runs(self) -> dict[str, int]:
        """Sum the workers' latest per-tier execution counters per pid.

        Each worker's ``cache_stats()["tiers"]["runs"]`` is cumulative
        over the worker process's lifetime, so summing the latest
        snapshot per pid counts every widget execution exactly once."""
        aggregate: dict[str, int] = {}
        for stats in self._stats.values():
            tiers = (stats.cache_stats or {}).get("tiers") or {}
            for tier, count in tiers.get("runs", {}).items():
                aggregate[tier] = aggregate.get(tier, 0) + count
        return aggregate

    def health(self) -> HealthReport:
        """Current supervision counters (lifetime of the engine)."""
        return replace(
            self._health,
            degradations=self._aggregate_degradations(),
            close_errors=list(self._health.close_errors),
        )

    def report(self) -> EngineReport:
        """Aggregate hashrate/stats report over the engine's lifetime."""
        return EngineReport(
            workers=self.workers,
            batches=self._batches,
            hashes=self._hashes,
            wall_seconds=self._wall,
            busy_seconds=self._busy,
            chunk=self._chunk_size(),
            per_worker=dict(self._stats),
            health=self.health(),
            tier_runs=self._aggregate_tier_runs(),
        )

    def close(self) -> None:
        """Shut the pool down.  Safe to call twice; the engine rebuilds its
        pool lazily if mined again afterwards.

        Expected shutdown races (the manager process already gone when the
        cancel event is poked) are tolerated silently; anything *else* is
        recorded on ``health().close_errors`` instead of being swallowed.
        """
        if self._cancel is not None:
            try:
                self._cancel.set()  # unstick any straggling workers
            except (BrokenPipeError, EOFError, ConnectionResetError,
                    OSError):
                pass  # manager already gone — the expected teardown race
            except Exception as exc:  # noqa: BLE001
                self._health.close_errors.append(f"cancel: {exc!r}")
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=True, cancel_futures=True)
            except Exception as exc:  # noqa: BLE001
                self._health.close_errors.append(f"pool: {exc!r}")
            self._pool = None
        if self._manager is not None:
            try:
                self._manager.shutdown()
            except (BrokenPipeError, EOFError, ConnectionResetError,
                    OSError):
                pass
            except Exception as exc:  # noqa: BLE001
                self._health.close_errors.append(f"manager: {exc!r}")
            self._manager = None
        self._cancel = None

    def __enter__(self) -> "MiningEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def mine_header_engine(
    header: BlockHeader,
    pow_factory: Callable[[], PowFunction],
    *,
    workers: int = 2,
    max_attempts: int = 1_000_000,
    start_nonce: int = 0,
    **engine_kwargs,
) -> tuple[BlockHeader, bytes, int]:
    """One-shot convenience: mine a single header on a fresh engine.

    Prefer holding a :class:`MiningEngine` open when mining several
    headers — that is the whole point of the persistent pool.
    """
    with MiningEngine(pow_factory, workers=workers, **engine_kwargs) as engine:
        return engine.mine_header(
            header, max_attempts=max_attempts, start_nonce=start_nonce
        )
