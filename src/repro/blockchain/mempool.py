"""Fee-priority mempool.

Holds pending transactions, validates them against a ledger view on
admission, and assembles block candidates greedily by fee — highest fee
first, respecting per-account nonce order (a later-nonce transaction is
only eligible once its predecessor is selected).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockchain.ledger import Ledger
from repro.blockchain.transaction import Transaction
from repro.errors import ChainError


@dataclass(slots=True)
class Mempool:
    """Pending-transaction pool bound to a ledger view."""

    ledger: Ledger
    max_size: int = 10_000
    _by_id: dict[bytes, Transaction] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._by_id)

    # ------------------------------------------------------------------
    def add(self, tx: Transaction) -> bytes:
        """Admit a transaction; returns its id.

        Admission checks signature/balance/nonce against the current
        ledger, allowing nonce *gaps above* pending transactions of the
        same sender (chained spends), and rejects duplicates and overflow.
        """
        if len(self._by_id) >= self.max_size:
            raise ChainError("mempool full")
        txid = tx.tx_id()
        if txid in self._by_id:
            raise ChainError("duplicate transaction")
        pending_nonces = [
            p.nonce for p in self._by_id.values() if p.sender == tx.sender
        ]
        base_nonce = self.ledger.nonce(tx.sender)
        expected = base_nonce + len(pending_nonces)
        if tx.nonce != expected:
            raise ChainError(
                f"mempool nonce mismatch: expected {expected}, got {tx.nonce}"
            )
        if tx.nonce == base_nonce:
            # First pending spend: fully verifiable against the ledger now.
            self.ledger.validate_transaction(tx)
        self._by_id[txid] = tx
        return txid

    def select(self, max_transactions: int) -> list[Transaction]:
        """Block-candidate selection: greedy by fee, nonce-ordered per
        sender."""
        if max_transactions < 1:
            raise ChainError("max_transactions must be >= 1")
        remaining = sorted(
            self._by_id.values(), key=lambda tx: (-tx.fee, tx.tx_id())
        )
        next_nonce = {}
        chosen: list[Transaction] = []
        progress = True
        while remaining and len(chosen) < max_transactions and progress:
            progress = False
            deferred = []
            for tx in remaining:
                if len(chosen) >= max_transactions:
                    deferred.append(tx)
                    continue
                expected = next_nonce.get(tx.sender, self.ledger.nonce(tx.sender))
                if tx.nonce == expected:
                    chosen.append(tx)
                    next_nonce[tx.sender] = expected + 1
                    progress = True
                else:
                    deferred.append(tx)
            remaining = deferred
        return chosen

    def remove_included(self, transactions: list[Transaction]) -> None:
        """Drop transactions that made it into a block."""
        for tx in transactions:
            self._by_id.pop(tx.tx_id(), None)

    def revalidate(self) -> int:
        """Drop transactions no longer valid against the ledger (stale
        nonces after a block applied, spent balances).  Returns how many
        were evicted."""
        evicted = 0
        for txid, tx in list(self._by_id.items()):
            if tx.nonce < self.ledger.nonce(tx.sender):
                del self._by_id[txid]
                evicted += 1
        return evicted
