"""Fee-market mempool.

Holds pending transactions, validates them against a ledger view on
admission, and assembles block candidates greedily by fee rate — highest
first, respecting per-account nonce order (a later-nonce transaction is
only eligible once its predecessor is selected).

Market mechanics (all admission rejections carry stable
:class:`~repro.errors.ValidationError` codes from
:data:`~repro.errors.MEMPOOL_REJECT_CODES`):

* **Fee floor** — ``min_fee_rate`` (units per byte) rejects dust outright
  (``fee-too-low``) before it can occupy a slot.
* **Replace-by-fee** — a transaction for an occupied ``(sender, nonce)``
  slot replaces the incumbent iff it pays at least ``rbf_min_bump`` more
  fee (``rbf-bump-too-small`` otherwise).  Note that the Lamport wallet
  burns a one-time key per signature, so producing a replacement requires
  re-deriving the wallet from its seed — the mempool only checks the
  economics.
* **Bounded eviction** — at capacity, the incoming transaction must
  strictly outbid the cheapest *evictable* entry or be rejected
  (``mempool-full``).  Only per-sender chain *tails* (highest pending
  nonce) are evictable — evicting mid-chain would strand every later
  nonce — and the incoming sender's own tail never is, because the
  incoming transaction chains on top of it.

Transactions are fixed-size (:data:`TRANSACTION_BYTES`), so ordering by
fee and by fee *rate* coincide; selection keeps the historical
``(-fee, tx_id)`` key so block candidates are byte-stable across PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockchain.ledger import Ledger
from repro.blockchain.transaction import TRANSACTION_BYTES, Transaction
from repro.errors import (
    FEE_TOO_LOW,
    MEMPOOL_FULL,
    RBF_BUMP_TOO_SMALL,
    ChainError,
    ValidationError,
)


def fee_rate(tx: Transaction) -> float:
    """Fee per serialized byte (transactions are fixed-size)."""
    return tx.fee / TRANSACTION_BYTES


@dataclass(slots=True)
class Mempool:
    """Pending-transaction pool bound to a ledger view."""

    ledger: Ledger
    max_size: int = 10_000
    #: Admission floor in fee-per-byte; 0.0 disables the floor.
    min_fee_rate: float = 0.0
    #: Minimum absolute fee increase a replace-by-fee must pay.
    rbf_min_bump: int = 1
    _by_id: dict[bytes, Transaction] = field(default_factory=dict)
    #: ``sender -> {nonce -> txid}``; per-sender nonces are contiguous
    #: from the ledger's base nonce, so ``max(keys)`` is the chain tail.
    _by_sender: dict[bytes, dict[int, bytes]] = field(default_factory=dict)
    #: Lifetime counters + the victims of the most recent ``add`` call.
    evictions: int = 0
    replacements: int = 0
    last_evicted: list[Transaction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._by_id

    # ------------------------------------------------------------------
    def _insert(self, txid: bytes, tx: Transaction) -> None:
        self._by_id[txid] = tx
        self._by_sender.setdefault(tx.sender, {})[tx.nonce] = txid

    def _remove(self, txid: bytes) -> Transaction | None:
        tx = self._by_id.pop(txid, None)
        if tx is None:
            return None
        slots = self._by_sender.get(tx.sender)
        if slots is not None and slots.get(tx.nonce) == txid:
            del slots[tx.nonce]
            if not slots:
                del self._by_sender[tx.sender]
        return tx

    def _evictable(self, protect: bytes) -> list[Transaction]:
        """Chain-tail transactions of every sender except ``protect``."""
        return [
            self._by_id[slots[max(slots)]]
            for sender, slots in self._by_sender.items()
            if sender != protect and slots
        ]

    # ------------------------------------------------------------------
    def add(self, tx: Transaction) -> bytes:
        """Admit a transaction; returns its id.

        Admission checks signature/balance/nonce against the current
        ledger, allowing nonce *gaps above* pending transactions of the
        same sender (chained spends).  Duplicates and nonce gaps raise
        plain :class:`ChainError`; market rejections (fee floor, failed
        RBF, full pool) raise :class:`ValidationError` with a code from
        :data:`~repro.errors.MEMPOOL_REJECT_CODES`.  Capacity victims of
        this call are left in :attr:`last_evicted`.
        """
        self.last_evicted = []
        txid = tx.tx_id()
        if txid in self._by_id:
            raise ChainError("duplicate transaction")
        if self.min_fee_rate > 0.0 and fee_rate(tx) < self.min_fee_rate:
            raise ValidationError(
                FEE_TOO_LOW,
                f"fee rate {fee_rate(tx):.6f}/byte under floor "
                f"{self.min_fee_rate:.6f}/byte",
            )
        slots = self._by_sender.get(tx.sender, {})
        base_nonce = self.ledger.nonce(tx.sender)
        if tx.nonce in slots:
            return self._replace(txid, tx, slots[tx.nonce], base_nonce)
        expected = base_nonce + len(slots)
        if tx.nonce != expected:
            raise ChainError(
                f"mempool nonce mismatch: expected {expected}, got {tx.nonce}"
            )
        if tx.nonce == base_nonce:
            # First pending spend: fully verifiable against the ledger now.
            self.ledger.validate_transaction(tx)
        while len(self._by_id) >= self.max_size:
            candidates = self._evictable(tx.sender)
            if not candidates:
                raise ValidationError(
                    MEMPOOL_FULL, "mempool full and nothing is evictable"
                )
            victim = min(candidates, key=lambda v: (v.fee, v.tx_id()))
            if tx.fee <= victim.fee:
                raise ValidationError(
                    MEMPOOL_FULL,
                    f"mempool full; fee {tx.fee} does not outbid cheapest "
                    f"evictable entry paying {victim.fee}",
                )
            self._remove(victim.tx_id())
            self.last_evicted.append(victim)
            self.evictions += 1
        self._insert(txid, tx)
        return txid

    def _replace(
        self, txid: bytes, tx: Transaction, old_id: bytes, base_nonce: int
    ) -> bytes:
        """Replace-by-fee: ``tx`` targets an occupied (sender, nonce) slot."""
        old = self._by_id[old_id]
        if tx.fee < old.fee + self.rbf_min_bump:
            raise ValidationError(
                RBF_BUMP_TOO_SMALL,
                f"replacement fee {tx.fee} must be >= incumbent {old.fee} "
                f"+ bump {self.rbf_min_bump}",
            )
        if tx.nonce == base_nonce:
            self.ledger.validate_transaction(tx)
        self._remove(old_id)
        self._insert(txid, tx)
        self.replacements += 1
        return txid

    # ------------------------------------------------------------------
    def select(self, max_transactions: int) -> list[Transaction]:
        """Block-candidate selection: greedy by fee (≡ fee rate — fixed
        size), nonce-ordered per sender.  Pure: never mutates the pool."""
        if max_transactions < 1:
            raise ChainError("max_transactions must be >= 1")
        remaining = sorted(
            self._by_id.values(), key=lambda tx: (-tx.fee, tx.tx_id())
        )
        next_nonce = {}
        chosen: list[Transaction] = []
        progress = True
        while remaining and len(chosen) < max_transactions and progress:
            progress = False
            deferred = []
            for tx in remaining:
                if len(chosen) >= max_transactions:
                    deferred.append(tx)
                    continue
                expected = next_nonce.get(tx.sender, self.ledger.nonce(tx.sender))
                if tx.nonce == expected:
                    chosen.append(tx)
                    next_nonce[tx.sender] = expected + 1
                    progress = True
                else:
                    deferred.append(tx)
            remaining = deferred
        return chosen

    def remove_included(self, transactions: list[Transaction]) -> None:
        """Drop transactions that made it into a block."""
        for tx in transactions:
            self._remove(tx.tx_id())

    def revalidate(self) -> int:
        """Drop transactions no longer valid against the ledger (stale
        nonces after a block applied, spent balances).  Returns how many
        were evicted."""
        evicted = 0
        for txid, tx in list(self._by_id.items()):
            if tx.nonce < self.ledger.nonce(tx.sender):
                self._remove(txid)
                evicted += 1
        return evicted

    def stats(self) -> dict:
        return {
            "pending": len(self._by_id),
            "senders": len(self._by_sender),
            "evictions": self.evictions,
            "replacements": self.replacements,
        }
