"""Difficulty retargeting.

"Most PoW systems vary the difficulty of the PoW protocol with the total
hashing power of the network" (§I).  The schedule here is Bitcoin's: every
``interval`` blocks, scale the target by actual-elapsed / expected-elapsed,
clamped to a 4x swing per adjustment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pow import MAX_TARGET, compact_to_target, target_to_compact
from repro.errors import ChainError


@dataclass(frozen=True, slots=True)
class RetargetSchedule:
    """Consensus retargeting parameters."""

    #: Desired seconds between blocks.
    block_time: float = 30.0
    #: Blocks between adjustments.
    interval: int = 16
    #: Maximum factor the target may move per adjustment.
    clamp: float = 4.0

    def __post_init__(self) -> None:
        if self.block_time <= 0:
            raise ChainError("block_time must be positive")
        if self.interval < 1:
            raise ChainError("interval must be >= 1")
        if self.clamp < 1.0:
            raise ChainError("clamp must be >= 1")

    @property
    def expected_span(self) -> float:
        """Expected seconds per retarget window."""
        return self.block_time * self.interval


def next_compact_target(
    schedule: RetargetSchedule,
    current_bits: int,
    window_start_time: int,
    window_end_time: int,
) -> int:
    """Compute the next window's compact target from the last window's span.

    Slower-than-expected windows (``actual > expected``) raise the target
    (lower difficulty) and vice versa, clamped to ``schedule.clamp``.
    """
    if window_end_time < window_start_time:
        raise ChainError("retarget window has negative duration")
    actual = float(window_end_time - window_start_time)
    expected = schedule.expected_span
    ratio = actual / expected if expected > 0 else 1.0
    ratio = min(schedule.clamp, max(1.0 / schedule.clamp, ratio))
    target = compact_to_target(current_bits)
    new_target = min(MAX_TARGET, max(1, int(target * ratio)))
    return target_to_compact(new_target)
