"""Block headers and blocks.

The 88-byte header is what the PoW function hashes: version, previous block
hash, merkle root, timestamp, compact difficulty bits, and a 64-bit nonce
(widened from Bitcoin's 32 bits — HashCore's ~10 hash/s rate never wraps
it, and neither do the fast baselines in long simulations).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.blockchain.merkle import merkle_root
from repro.errors import ChainError, ValidationError

GENESIS_PREV_HASH = bytes(32)

_HEADER = struct.Struct("<I32s32sQIQ")

#: Serialized header size in bytes.
HEADER_BYTES = _HEADER.size


@dataclass(frozen=True, slots=True)
class BlockHeader:
    """The hashed portion of a block."""

    version: int
    prev_hash: bytes
    merkle_root: bytes
    timestamp: int
    bits: int
    nonce: int

    def __post_init__(self) -> None:
        if len(self.prev_hash) != 32 or len(self.merkle_root) != 32:
            raise ChainError("prev_hash and merkle_root must be 32 bytes")
        if not 0 <= self.version < 2**32 or not 0 <= self.bits < 2**32:
            raise ChainError("version/bits out of u32 range")
        if not 0 <= self.timestamp < 2**64 or not 0 <= self.nonce < 2**64:
            raise ChainError("timestamp/nonce out of u64 range")

    def serialize(self) -> bytes:
        """Canonical header bytes — the PoW function's input."""
        return _HEADER.pack(
            self.version,
            self.prev_hash,
            self.merkle_root,
            self.timestamp,
            self.bits,
            self.nonce,
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "BlockHeader":
        if len(data) != HEADER_BYTES:
            raise ChainError(f"header must be {HEADER_BYTES} bytes, got {len(data)}")
        version, prev_hash, root, timestamp, bits, nonce = _HEADER.unpack(data)
        return cls(version, prev_hash, root, timestamp, bits, nonce)

    def with_nonce(self, nonce: int) -> "BlockHeader":
        return replace(self, nonce=nonce)


@dataclass(frozen=True, slots=True)
class Block:
    """A header plus the transactions its merkle root commits to."""

    header: BlockHeader
    transactions: tuple[bytes, ...]

    @classmethod
    def build(
        cls,
        prev_hash: bytes,
        transactions: list[bytes],
        timestamp: int,
        bits: int,
        nonce: int = 0,
        version: int = 1,
    ) -> "Block":
        """Assemble a block whose header commits to ``transactions``."""
        header = BlockHeader(
            version=version,
            prev_hash=prev_hash,
            merkle_root=merkle_root(transactions),
            timestamp=timestamp,
            bits=bits,
            nonce=nonce,
        )
        return cls(header=header, transactions=tuple(transactions))

    def validate_merkle(self) -> None:
        """Raise :class:`ChainError` if the root doesn't match the body.

        Duplicate transactions are rejected outright: the odd-leaf
        duplication rule makes ``[a, b, c]`` and ``[a, b, c, c]`` share a
        root (Bitcoin's CVE-2012-2459), so allowing duplicates would let
        two different bodies validate against one header.
        """
        if len(set(self.transactions)) != len(self.transactions):
            raise ValidationError("duplicate-tx", "duplicate transactions in block")
        expected = merkle_root(list(self.transactions))
        if expected != self.header.merkle_root:
            raise ValidationError(
                "bad-merkle", "merkle root does not commit to transactions"
            )

    def with_nonce(self, nonce: int) -> "Block":
        return Block(header=self.header.with_nonce(nonce), transactions=self.transactions)
