"""Multi-node propagation: nodes, delayed gossip, reorgs.

A small deterministic P2P harness over the validating
:class:`~repro.blockchain.chain.Blockchain`: each node holds its own chain
replica, mined blocks gossip to peers with a configurable tick delay, and
out-of-order arrivals park in an orphan buffer until their parent shows
up.  It exists to exercise the consensus machinery the way a real
deployment would — concurrent mining, temporary forks, and work-based
reorgs — which the single-chain unit tests cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.miner import mine_block
from repro.core.pow import PowFunction
from repro.errors import ChainError


class Node:
    """One network participant: a chain replica plus an orphan buffer."""

    def __init__(
        self,
        name: str,
        pow_fn: PowFunction,
        schedule: RetargetSchedule | None = None,
        genesis_bits: int = 0x207FFFFF,
    ) -> None:
        self.name = name
        self.chain = Blockchain(pow_fn, schedule=schedule, genesis_bits=genesis_bits)
        self._orphans: dict[bytes, list[Block]] = {}  # parent id -> children
        #: Number of times the tip switched to a block that does not extend
        #: the previous tip (observable reorgs).
        self.reorgs = 0

    def tip_id(self) -> bytes:
        return self.chain.tip_id

    def receive(self, block: Block) -> bool:
        """Accept a gossiped block; returns True when it (eventually)
        entered the chain.  Unknown-parent blocks are buffered."""
        parent = block.header.prev_hash
        try:
            self.chain.get(parent)
        except ChainError:
            self._orphans.setdefault(parent, []).append(block)
            return False
        accepted = self._add(block)
        if accepted:
            self._drain_orphans(block_id(block))
        return accepted

    def _add(self, block: Block) -> bool:
        old_tip = self.chain.tip_id
        try:
            bid = self.chain.add_block(block)
        except ChainError:
            return False
        if self.chain.tip_id == bid and block.header.prev_hash != old_tip:
            self.reorgs += 1
        return True

    def _drain_orphans(self, parent_id: bytes) -> None:
        pending = self._orphans.pop(parent_id, [])
        for child in pending:
            if self._add(child):
                self._drain_orphans(block_id(child))

    def orphan_count(self) -> int:
        return sum(len(children) for children in self._orphans.values())


@dataclass(slots=True)
class _InFlight:
    deliver_at: int
    target: int
    block: Block


@dataclass
class P2PNetwork:
    """Fully connected gossip network with a fixed tick delay."""

    nodes: list[Node]
    delay: int = 1
    _queue: list[_InFlight] = field(default_factory=list)
    _tick: int = 0

    @classmethod
    def create(
        cls,
        n_nodes: int,
        pow_fn: PowFunction,
        schedule: RetargetSchedule | None = None,
        genesis_bits: int = 0x207FFFFF,
        delay: int = 1,
    ) -> "P2PNetwork":
        if n_nodes < 1:
            raise ChainError("need at least one node")
        nodes = [
            Node(f"node{i}", pow_fn, schedule=schedule, genesis_bits=genesis_bits)
            for i in range(n_nodes)
        ]
        return cls(nodes=nodes, delay=delay)

    # ------------------------------------------------------------------
    def mine_on(
        self,
        node_index: int,
        transactions: list[bytes],
        timestamp: int,
        max_attempts: int = 500_000,
        nonce_salt: int = 0,
    ) -> Block:
        """Mine a block on one node's current tip and gossip it."""
        node = self.nodes[node_index]
        template = Block.build(
            prev_hash=node.tip_id(),
            transactions=transactions,
            timestamp=timestamp,
            bits=node.chain.expected_bits(node.tip_id()),
        )
        mined = mine_block(
            template,
            node.chain.pow_fn,
            max_attempts=max_attempts,
            start_nonce=nonce_salt,
        )
        node.receive(mined.block)
        self.broadcast(node_index, mined.block)
        return mined.block

    def broadcast(self, origin: int, block: Block) -> None:
        """Queue delivery of ``block`` to every other node."""
        for target in range(len(self.nodes)):
            if target != origin:
                self._queue.append(
                    _InFlight(deliver_at=self._tick + self.delay, target=target,
                              block=block)
                )

    def tick(self, count: int = 1) -> None:
        """Advance time, delivering due messages in deterministic order."""
        for _ in range(count):
            self._tick += 1
            due = [m for m in self._queue if m.deliver_at <= self._tick]
            self._queue = [m for m in self._queue if m.deliver_at > self._tick]
            for message in due:
                self.nodes[message.target].receive(message.block)

    def settle(self) -> None:
        """Deliver everything in flight."""
        while self._queue:
            self.tick()

    def converged(self) -> bool:
        """True when every node agrees on the tip."""
        tips = {node.tip_id() for node in self.nodes}
        return len(tips) == 1

    def heights(self) -> list[int]:
        return [node.chain.height() for node in self.nodes]
