"""Multi-node propagation: nodes, delayed gossip, reorgs.

A small deterministic P2P harness over the validating
:class:`~repro.blockchain.chain.Blockchain`: each node holds its own chain
replica, mined blocks gossip to peers with a configurable tick delay, and
out-of-order arrivals park in a bounded orphan buffer until their parent
shows up.  It exists to exercise the consensus machinery the way a real
deployment would — concurrent mining, temporary forks, and work-based
reorgs — which the single-chain unit tests cannot.

The fault-injection chaos layer (:mod:`repro.blockchain.sim`) builds on
these same :class:`Node` objects, so everything a node records here —
rejection reasons, orphan evictions, crash counts — feeds directly into
chaos reports.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Callable

from repro.blockchain.block import Block
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.gossip import CompactBlock, TxPool
from repro.blockchain.miner import mine_block
from repro.core.pow import PowFunction
from repro.errors import ChainError, ValidationError

#: Default orphan-buffer capacity.  Bounded so a peer spamming unconnectable
#: blocks (a trivial memory DoS) evicts old orphans instead of growing RAM.
DEFAULT_MAX_ORPHANS = 512


@dataclass(frozen=True, slots=True)
class ReceiveResult:
    """Outcome of :meth:`Node.receive`, truthy iff the block entered the chain.

    ``status`` is one of ``accepted``, ``orphaned``, ``rejected`` or
    ``offline``; for rejections ``code`` carries the
    :class:`~repro.errors.ValidationError` slug (``bad-pow``,
    ``bad-merkle``, …) so callers can tell *why* consensus refused the
    block.
    """

    accepted: bool
    status: str
    code: str | None = None

    def __bool__(self) -> bool:
        return self.accepted


class Node:
    """One network participant: a chain replica plus a bounded orphan buffer."""

    def __init__(
        self,
        name: str,
        pow_fn: PowFunction,
        schedule: RetargetSchedule | None = None,
        genesis_bits: int = 0x207FFFFF,
        max_orphans: int = DEFAULT_MAX_ORPHANS,
        store=None,
    ) -> None:
        if max_orphans < 1:
            raise ChainError("max_orphans must be >= 1")
        self.name = name
        # Chain construction parameters are kept so restart() can rebuild
        # the replica from the durable log with identical consensus rules.
        self._pow_fn = pow_fn
        self._schedule = schedule
        self._genesis_bits = genesis_bits
        self.store = store
        self.chain = Blockchain(
            pow_fn, schedule=schedule, genesis_bits=genesis_bits, store=store
        )
        self.max_orphans = max_orphans
        self._orphans: dict[bytes, list[Block]] = {}  # parent id -> children
        self._orphan_fifo: deque[tuple[bytes, Block]] = deque()
        self._orphan_ids: set[bytes] = set()
        self._orphan_total = 0
        #: Number of times the tip switched to a block that does not extend
        #: the previous tip (observable reorgs).
        self.reorgs = 0
        #: Blocks that entered the chain (including drained orphans).
        self.accepted = 0
        #: Orphans discarded because the buffer was full (FIFO eviction).
        self.orphans_evicted = 0
        #: Rejection counts keyed by :class:`ValidationError` code.
        self.rejections: Counter[str] = Counter()
        #: False while the node is crashed; a crashed node drops all traffic.
        self.alive = True
        self.crashes = 0
        #: Transaction inventory for compact-block relay (in-memory: a
        #: crash wipes it and reconstruction falls back to ``gettxn``).
        self.txpool = TxPool()

    def tip_id(self) -> bytes:
        return self.chain.tip_id

    # ------------------------------------------------------------------
    # block intake
    # ------------------------------------------------------------------
    def receive(self, block: Block) -> ReceiveResult:
        """Accept a gossiped block; truthy when it (eventually) entered the
        chain.  Unknown-parent blocks are buffered (bounded, FIFO-evicted)."""
        if not self.alive:
            return ReceiveResult(False, "offline")
        parent = block.header.prev_hash
        if parent not in self.chain:
            bucket = self._orphans.setdefault(parent, [])
            if block in bucket:
                return ReceiveResult(False, "orphaned", "already-buffered")
            bucket.append(block)
            self._orphan_fifo.append((parent, block))
            self._orphan_ids.add(block_id(block))
            self._orphan_total += 1
            self._evict_orphans()
            return ReceiveResult(False, "orphaned", "unknown-parent")
        code = self._add(block)
        if code is None:
            self._drain_orphans(block_id(block))
            return ReceiveResult(True, "accepted")
        return ReceiveResult(False, "rejected", code)

    def _add(self, block: Block) -> str | None:
        """Try to append ``block``; returns ``None`` on success or the
        rejection code."""
        old_tip = self.chain.tip_id
        try:
            bid = self.chain.add_block(block)
        except ValidationError as exc:
            self.rejections[exc.code] += 1
            return exc.code
        except ChainError:
            self.rejections["invalid"] += 1
            return "invalid"
        self.accepted += 1
        if self.chain.tip_id == bid and block.header.prev_hash != old_tip:
            self.reorgs += 1
        return None

    def _drain_orphans(self, parent_id: bytes) -> None:
        """Connect buffered descendants of ``parent_id``.

        Iterative worklist rather than recursion: a long-buffered orphan
        chain (thousands of blocks) must not hit the interpreter's
        recursion limit.
        """
        worklist = deque([parent_id])
        while worklist:
            pid = worklist.popleft()
            for child in self._orphans.pop(pid, []):
                cid = block_id(child)
                self._orphan_total -= 1
                self._orphan_ids.discard(cid)
                if self._add(child) is None:
                    worklist.append(cid)

    def _evict_orphans(self) -> None:
        while self._orphan_total > self.max_orphans and self._orphan_fifo:
            parent, block = self._orphan_fifo.popleft()
            bucket = self._orphans.get(parent)
            if bucket is None or block not in bucket:
                continue  # stale FIFO entry: already drained
            bucket.remove(block)
            if not bucket:
                del self._orphans[parent]
            self._orphan_ids.discard(block_id(block))
            self._orphan_total -= 1
            self.orphans_evicted += 1

    # ------------------------------------------------------------------
    # crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the node offline; volatile state is lost.

        Without a store the chain object survives as a *fiction* ('it is
        on disk') so amnesia-free restart stays available to the legacy
        chaos scenarios.  With a store attached the fiction becomes fact:
        the log's file handle is closed (as a dead process would), the
        chain object is kept only as a post-mortem view for stats — a
        subsequent :meth:`restart` discards it entirely and replays the
        log from disk.  Orphan buffer and tx inventory — in-memory state
        either way — are lost in both modes."""
        self.alive = False
        self.crashes += 1
        self._orphans.clear()
        self._orphan_fifo.clear()
        self._orphan_ids.clear()
        self._orphan_total = 0
        self.txpool.clear()
        if self.store is not None:
            self.store.close()

    def restart(self, store=None) -> None:
        """Bring a crashed node back; it resyncs via normal gossip plus the
        chaos layer's parent-request protocol.

        With a store (the argument, or the one the node was built with)
        this is the real recovery path: the log is rescanned from disk —
        torn tail truncated — and a fresh :class:`Blockchain` replays it
        (full consensus checks minus per-block PoW, tip PoW verified).
        Replay does not count toward :attr:`accepted`/:attr:`reorgs`:
        those meter *network* events, and recovering your own blocks is
        not one."""
        store = store if store is not None else self.store
        if store is not None:
            store.reopen()
            self.chain = Blockchain(
                self._pow_fn,
                schedule=self._schedule,
                genesis_bits=self._genesis_bits,
                store=store,
            )
            self.store = store
        self.alive = True

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def orphan_count(self) -> int:
        return self._orphan_total

    def knows(self, bid: bytes) -> bool:
        """True when ``bid`` is in the chain or already orphan-buffered —
        i.e. re-requesting it from a peer would be wasted bandwidth."""
        return bid in self.chain or bid in self._orphan_ids

    def missing_parents(self) -> list[bytes]:
        """Parent ids the orphan buffer is waiting on (resync targets)."""
        return [p for p in self._orphans if p not in self.chain]

    def reconstruct_compact(
        self, compact: CompactBlock, extra: dict[int, bytes] | None = None
    ) -> Block | None:
        """Rebuild a compact body from this node's transaction pool (plus
        a ``gettxn`` response); None when a slot is unresolved or the
        merkle root disagrees (short-id collision)."""
        return compact.reconstruct(self.txpool, extra)

    def stats(self) -> dict:
        """Structured per-node counters (chaos reports, debugging)."""
        return {
            "name": self.name,
            "alive": self.alive,
            "height": self.chain.height(),
            "tip": self.chain.tip_id.hex()[:16],
            "total_work": self.chain.total_work(),
            "reorgs": self.reorgs,
            "accepted": self.accepted,
            "orphans": self._orphan_total,
            "orphans_evicted": self.orphans_evicted,
            "rejections": dict(sorted(self.rejections.items())),
            "crashes": self.crashes,
        }


@dataclass(slots=True)
class _InFlight:
    deliver_at: int
    origin: int
    target: int
    block: Block


@dataclass
class P2PNetwork:
    """Fully connected gossip network with a fixed tick delay."""

    nodes: list[Node]
    delay: int = 1
    #: Optional observer called as ``(tick, origin, target, block, result)``
    #: for every delivery — golden-vector tests pin gossip determinism
    #: through it.
    on_deliver: Callable[[int, int, int, Block, ReceiveResult], None] | None = None
    _queue: list[_InFlight] = field(default_factory=list)
    _tick: int = 0
    #: Deliveries actually scheduled by :meth:`broadcast`.
    sends: int = 0
    #: Sends short-circuited because the target already ``knows()`` the
    #: block (it would only have revalidated and rejected a duplicate).
    suppressed_sends: int = 0

    @classmethod
    def create(
        cls,
        n_nodes: int,
        pow_fn: PowFunction,
        schedule: RetargetSchedule | None = None,
        genesis_bits: int = 0x207FFFFF,
        delay: int = 1,
    ) -> "P2PNetwork":
        if n_nodes < 1:
            raise ChainError("need at least one node")
        nodes = [
            Node(f"node{i}", pow_fn, schedule=schedule, genesis_bits=genesis_bits)
            for i in range(n_nodes)
        ]
        return cls(nodes=nodes, delay=delay)

    # ------------------------------------------------------------------
    def mine_on(
        self,
        node_index: int,
        transactions: list[bytes],
        timestamp: int,
        max_attempts: int = 500_000,
        nonce_salt: int = 0,
    ) -> Block:
        """Mine a block on one node's current tip and gossip it."""
        node = self.nodes[node_index]
        template = Block.build(
            prev_hash=node.tip_id(),
            transactions=transactions,
            timestamp=timestamp,
            bits=node.chain.expected_bits(node.tip_id()),
        )
        mined = mine_block(
            template,
            node.chain.pow_fn,
            max_attempts=max_attempts,
            start_nonce=nonce_salt,
        )
        node.receive(mined.block)
        self.broadcast(node_index, mined.block)
        return mined.block

    def broadcast(self, origin: int, block: Block) -> None:
        """Queue delivery of ``block`` to every other node.

        Sender-side suppression: a target that already ``knows()`` the
        block (in chain or orphan-buffered) is skipped instead of being
        made to revalidate and reject a duplicate; skips are counted in
        :attr:`suppressed_sends` / :meth:`stats`.
        """
        bid = block_id(block)
        for target in range(len(self.nodes)):
            if target == origin:
                continue
            if self.nodes[target].knows(bid):
                self.suppressed_sends += 1
                continue
            self.sends += 1
            self._schedule(origin, target, block)

    def _schedule(self, origin: int, target: int, block: Block) -> None:
        self._queue.append(
            _InFlight(deliver_at=self._tick + self.delay, origin=origin,
                      target=target, block=block)
        )

    def tick(self, count: int = 1) -> None:
        """Advance time, delivering due messages in deterministic order."""
        for _ in range(count):
            self._tick += 1
            due = [m for m in self._queue if m.deliver_at <= self._tick]
            self._queue = [m for m in self._queue if m.deliver_at > self._tick]
            for message in due:
                result = self.nodes[message.target].receive(message.block)
                if self.on_deliver is not None:
                    self.on_deliver(
                        self._tick, message.origin, message.target,
                        message.block, result,
                    )

    def settle(self) -> None:
        """Deliver everything in flight."""
        while self._queue:
            self.tick()

    def converged(self) -> bool:
        """True when every node agrees on the tip."""
        tips = {node.tip_id() for node in self.nodes}
        return len(tips) == 1

    def heights(self) -> list[int]:
        return [node.chain.height() for node in self.nodes]

    def stats(self) -> dict:
        """Network-level delivery counters."""
        return {
            "sends": self.sends,
            "suppressed_sends": self.suppressed_sends,
            "in_flight": len(self._queue),
        }
