"""Chain state: validation, storage, and accumulated-work fork choice.

Design notes:

* The *block id* is double-SHA-256 of the header — cheap, unique, and
  independent of the PoW function, so chains secured by HashCore (whose
  evaluation costs ~0.1 s) can still be indexed instantly.
* The *PoW check* runs the chain's PoW function over the same header bytes
  and compares against the target encoded in ``bits``.
* ``bits`` itself is consensus-checked against the retarget schedule, so a
  miner cannot grant itself an easy target.
* Fork choice is accumulated expected work (Σ difficulty), ties broken by
  arrival order.
* With a :class:`~repro.blockchain.store.BlockStore` attached, the chain
  is durable: every accepted block is appended to the log, opening over a
  non-empty log replays it (full consensus checks minus per-block PoW,
  tip PoW verified), and entries keep only the 88-byte *header* in RAM —
  bodies are fetched lazily from disk — so chain memory stays O(headers)
  no matter how many transactions the blocks carry.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.blockchain.block import GENESIS_PREV_HASH, Block, BlockHeader
from repro.blockchain.difficulty import RetargetSchedule, next_compact_target
from repro.core.pow import PowFunction, compact_to_target, meets_target, target_to_difficulty
from repro.errors import ChainError, StoreError, ValidationError


def block_id(block: Block) -> bytes:
    """Identity hash of a block (double SHA-256 of the header)."""
    return header_id(block.header)


def header_id(header: BlockHeader) -> bytes:
    """Identity hash of a header (double SHA-256 of its 88 bytes)."""
    data = header.serialize()
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


@dataclass(slots=True)
class _Entry:
    """Per-block chain state.  ``block`` is ``None`` for store-backed
    entries — the body lives on disk and :meth:`Blockchain.get` reads it
    back on demand; only the header stays resident."""

    header: BlockHeader
    height: int
    total_work: float
    arrival: int
    block: Block | None = None


class Blockchain:
    """A validating block store with fork choice.

    ``store`` (optional) makes the chain durable: an empty log is bound to
    this chain's genesis, a non-empty one is replayed into memory before
    the constructor returns.  ``verify`` controls replay paranoia —
    ``"tip"`` (default) re-runs PoW on the replayed tip only, ``"full"``
    on every replayed block, ``"none"`` trusts the log's checksums.
    """

    def __init__(
        self,
        pow_fn: PowFunction,
        schedule: RetargetSchedule | None = None,
        genesis_bits: int = 0x207FFFFF,
        genesis_time: int = 0,
        store=None,
        verify: str = "tip",
    ) -> None:
        if verify not in ("tip", "full", "none"):
            raise ChainError(f"unknown replay verify mode {verify!r}")
        self.pow_fn = pow_fn
        self.schedule = schedule or RetargetSchedule()
        genesis = Block.build(
            prev_hash=GENESIS_PREV_HASH,
            transactions=[b"genesis"],
            timestamp=genesis_time,
            bits=genesis_bits,
        )
        self._entries: dict[bytes, _Entry] = {}
        self._arrivals = 0
        gid = block_id(genesis)
        self._entries[gid] = _Entry(
            header=genesis.header, height=0, total_work=0.0, arrival=0, block=genesis
        )
        self._tip = gid
        self.genesis_id = gid
        self.store = store
        self.replayed = 0
        if store is not None:
            store.bind(gid)
            self._replay(verify)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _replay(self, verify: str) -> None:
        """Rebuild in-memory chain state from the attached store's log.

        The log is in acceptance order, so parents always precede
        children; every consensus rule re-runs except per-block PoW
        (``verify="full"`` re-runs that too).  The tip's PoW is always
        checked under ``verify="tip"`` — a log that replays to an unmined
        tip is corrupt in a way checksums can't see."""
        check_pow = verify == "full"
        for bid, block in self.store.iter_blocks():
            entry = self.validate_block(block, check_pow=check_pow)
            self._arrivals += 1
            entry.arrival = self._arrivals
            entry.block = None  # body stays on disk
            self._entries[bid] = entry
            if entry.total_work > self._entries[self._tip].total_work:
                self._tip = bid
            self.replayed += 1
        if verify == "tip" and self._tip != self.genesis_id:
            header = self._entries[self._tip].header
            target = compact_to_target(header.bits)
            if not meets_target(self.pow_fn.hash(header.serialize()), target):
                raise StoreError("replayed tip fails proof-of-work verification")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def tip_id(self) -> bytes:
        return self._tip

    def tip(self) -> Block:
        return self.get(self._tip)

    def tip_header(self) -> BlockHeader:
        return self._entries[self._tip].header

    def height(self) -> int:
        return self._entries[self._tip].height

    def total_work(self) -> float:
        return self._entries[self._tip].total_work

    def get(self, bid: bytes) -> Block:
        """Full block by id — from memory, or lazily from the store for
        durable chains (checksum re-verified on every disk read)."""
        try:
            entry = self._entries[bid]
        except KeyError:
            raise ChainError(f"unknown block {bid.hex()[:16]}") from None
        if entry.block is not None:
            return entry.block
        return self.store.get(bid)

    def header_of(self, bid: bytes) -> BlockHeader:
        try:
            return self._entries[bid].header
        except KeyError:
            raise ChainError(f"unknown block {bid.hex()[:16]}") from None

    def height_of(self, bid: bytes) -> int:
        return self._entries[bid].height

    def work_of(self, bid: bytes) -> float:
        """Accumulated work at a known block (raises ``KeyError`` if absent)."""
        return self._entries[bid].total_work

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bid: bytes) -> bool:
        return bid in self._entries

    def main_chain(self) -> list[Block]:
        """Blocks from genesis to tip, inclusive."""
        out = []
        cursor = self._tip
        while True:
            entry = self._entries[cursor]
            out.append(self.get(cursor))
            if entry.height == 0:
                break
            cursor = entry.header.prev_hash
        out.reverse()
        return out

    # ------------------------------------------------------------------
    # consensus rules
    # ------------------------------------------------------------------
    def expected_bits(self, parent_id: bytes) -> int:
        """Compact target a child of ``parent_id`` must carry."""
        parent = self._entries[parent_id]
        child_height = parent.height + 1
        if child_height % self.schedule.interval != 0:
            return parent.header.bits
        # Walk back to the start of the parent's window.
        cursor = parent_id
        for _ in range(self.schedule.interval - 1):
            entry = self._entries[cursor]
            if entry.height == 0:
                break
            cursor = entry.header.prev_hash
        window_start = self._entries[cursor].header.timestamp
        return next_compact_target(
            self.schedule,
            parent.header.bits,
            window_start,
            parent.header.timestamp,
        )

    def validate_block(self, block: Block, *, check_pow: bool = True) -> _Entry:
        """Run all consensus checks; returns the prospective entry.

        ``check_pow=False`` skips only the PoW evaluation (for replaying a
        log this process already validated) — the work *credit* is still
        computed from ``bits``, so fork choice is identical either way."""
        header = block.header
        parent = self._entries.get(header.prev_hash)
        if parent is None:
            raise ValidationError("unknown-parent", "unknown parent block")
        if header.timestamp < parent.header.timestamp:
            raise ValidationError("bad-timestamp", "timestamp precedes parent")
        expected = self.expected_bits(header.prev_hash)
        if header.bits != expected:
            raise ValidationError(
                "bad-bits",
                f"wrong difficulty bits {header.bits:#x}, expected {expected:#x}",
            )
        block.validate_merkle()
        target = compact_to_target(header.bits)
        if check_pow:
            digest = self.pow_fn.hash(header.serialize())
            if not meets_target(digest, target):
                raise ValidationError("bad-pow", "proof of work does not meet target")
        work = target_to_difficulty(target)
        return _Entry(
            header=header,
            height=parent.height + 1,
            total_work=parent.total_work + work,
            arrival=0,
            block=block,
        )

    def add_block(self, block: Block) -> bytes:
        """Validate and store a block; returns its id.

        Fork choice moves the tip only when the new block's accumulated
        work strictly exceeds the current tip's.  On a durable chain the
        block is logged *after* validation and indexed before the tip
        moves, and the in-memory entry drops the body (disk is the copy
        of record).
        """
        entry = self.validate_block(block)
        bid = block_id(block)
        if bid in self._entries:
            raise ValidationError("duplicate-block", "duplicate block")
        self._arrivals += 1
        entry.arrival = self._arrivals
        if self.store is not None:
            self.store.append(block)
            entry.block = None
        self._entries[bid] = entry
        if entry.total_work > self._entries[self._tip].total_work:
            self._tip = bid
        return bid
