"""Chain state: validation, storage, and accumulated-work fork choice.

Design notes:

* The *block id* is double-SHA-256 of the header — cheap, unique, and
  independent of the PoW function, so chains secured by HashCore (whose
  evaluation costs ~0.1 s) can still be indexed instantly.
* The *PoW check* runs the chain's PoW function over the same header bytes
  and compares against the target encoded in ``bits``.
* ``bits`` itself is consensus-checked against the retarget schedule, so a
  miner cannot grant itself an easy target.
* Fork choice is accumulated expected work (Σ difficulty), ties broken by
  arrival order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.blockchain.block import GENESIS_PREV_HASH, Block
from repro.blockchain.difficulty import RetargetSchedule, next_compact_target
from repro.core.pow import PowFunction, compact_to_target, meets_target, target_to_difficulty
from repro.errors import ChainError, ValidationError


def block_id(block: Block) -> bytes:
    """Identity hash of a block (double SHA-256 of the header)."""
    data = block.header.serialize()
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


@dataclass(slots=True)
class _Entry:
    block: Block
    height: int
    total_work: float
    arrival: int


class Blockchain:
    """A validating block store with fork choice."""

    def __init__(
        self,
        pow_fn: PowFunction,
        schedule: RetargetSchedule | None = None,
        genesis_bits: int = 0x207FFFFF,
        genesis_time: int = 0,
    ) -> None:
        self.pow_fn = pow_fn
        self.schedule = schedule or RetargetSchedule()
        genesis = Block.build(
            prev_hash=GENESIS_PREV_HASH,
            transactions=[b"genesis"],
            timestamp=genesis_time,
            bits=genesis_bits,
        )
        self._entries: dict[bytes, _Entry] = {}
        self._arrivals = 0
        gid = block_id(genesis)
        self._entries[gid] = _Entry(block=genesis, height=0, total_work=0.0, arrival=0)
        self._tip = gid
        self.genesis_id = gid

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def tip_id(self) -> bytes:
        return self._tip

    def tip(self) -> Block:
        return self._entries[self._tip].block

    def height(self) -> int:
        return self._entries[self._tip].height

    def total_work(self) -> float:
        return self._entries[self._tip].total_work

    def get(self, bid: bytes) -> Block:
        try:
            return self._entries[bid].block
        except KeyError:
            raise ChainError(f"unknown block {bid.hex()[:16]}") from None

    def height_of(self, bid: bytes) -> int:
        return self._entries[bid].height

    def work_of(self, bid: bytes) -> float:
        """Accumulated work at a known block (raises ``KeyError`` if absent)."""
        return self._entries[bid].total_work

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bid: bytes) -> bool:
        return bid in self._entries

    def main_chain(self) -> list[Block]:
        """Blocks from genesis to tip, inclusive."""
        out = []
        cursor = self._tip
        while True:
            entry = self._entries[cursor]
            out.append(entry.block)
            if entry.height == 0:
                break
            cursor = entry.block.header.prev_hash
        out.reverse()
        return out

    # ------------------------------------------------------------------
    # consensus rules
    # ------------------------------------------------------------------
    def expected_bits(self, parent_id: bytes) -> int:
        """Compact target a child of ``parent_id`` must carry."""
        parent = self._entries[parent_id]
        child_height = parent.height + 1
        if child_height % self.schedule.interval != 0:
            return parent.block.header.bits
        # Walk back to the start of the parent's window.
        cursor = parent_id
        for _ in range(self.schedule.interval - 1):
            entry = self._entries[cursor]
            if entry.height == 0:
                break
            cursor = entry.block.header.prev_hash
        window_start = self._entries[cursor].block.header.timestamp
        return next_compact_target(
            self.schedule,
            parent.block.header.bits,
            window_start,
            parent.block.header.timestamp,
        )

    def validate_block(self, block: Block) -> _Entry:
        """Run all consensus checks; returns the prospective entry."""
        header = block.header
        parent = self._entries.get(header.prev_hash)
        if parent is None:
            raise ValidationError("unknown-parent", "unknown parent block")
        if header.timestamp < parent.block.header.timestamp:
            raise ValidationError("bad-timestamp", "timestamp precedes parent")
        expected = self.expected_bits(header.prev_hash)
        if header.bits != expected:
            raise ValidationError(
                "bad-bits",
                f"wrong difficulty bits {header.bits:#x}, expected {expected:#x}",
            )
        block.validate_merkle()
        target = compact_to_target(header.bits)
        digest = self.pow_fn.hash(header.serialize())
        if not meets_target(digest, target):
            raise ValidationError("bad-pow", "proof of work does not meet target")
        work = target_to_difficulty(target)
        return _Entry(
            block=block,
            height=parent.height + 1,
            total_work=parent.total_work + work,
            arrival=0,
        )

    def add_block(self, block: Block) -> bytes:
        """Validate and store a block; returns its id.

        Fork choice moves the tip only when the new block's accumulated
        work strictly exceeds the current tip's.
        """
        entry = self.validate_block(block)
        bid = block_id(block)
        if bid in self._entries:
            raise ValidationError("duplicate-block", "duplicate block")
        self._arrivals += 1
        entry.arrival = self._arrivals
        self._entries[bid] = entry
        if entry.total_work > self._entries[self._tip].total_work:
            self._tip = bid
        return bid
