"""Statistical multi-miner network simulation.

Real mining with HashCore costs ~0.1 s per attempt, so long-horizon
consensus dynamics (retargeting behaviour, miner revenue shares,
orphan rates) are simulated statistically: block inter-arrival times are
exponential with rate ``total_hashrate / difficulty`` and the winner of
each block is drawn proportionally to hashrate — the standard Poisson
model of PoW mining.  Difficulty evolves through the *same*
:func:`~repro.blockchain.difficulty.next_compact_target` consensus rule the
validating chain uses, so the simulation exercises real consensus code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.blockchain.difficulty import RetargetSchedule, next_compact_target
from repro.core.pow import compact_to_target, target_to_compact, target_to_difficulty, MAX_TARGET
from repro.errors import ChainError
from repro.rng import Xoshiro256


@dataclass(slots=True)
class NetworkResult:
    """Outcome of a simulated mining network run."""

    block_times: list[float] = field(default_factory=list)
    difficulties: list[float] = field(default_factory=list)
    winners: list[int] = field(default_factory=list)
    orphan_candidates: int = 0

    def miner_shares(self, n_miners: int) -> list[float]:
        """Fraction of blocks won by each miner."""
        counts = [0] * n_miners
        for winner in self.winners:
            counts[winner] += 1
        total = len(self.winners) or 1
        return [c / total for c in counts]

    def mean_block_time(self) -> float:
        return sum(self.block_times) / len(self.block_times) if self.block_times else 0.0


def simulate_network(
    hashrates: Sequence[float] | Callable[[float, int], Sequence[float]],
    n_blocks: int,
    schedule: RetargetSchedule | None = None,
    *,
    initial_difficulty: float = 100.0,
    propagation_delay: float = 0.0,
    seed: int = 1,
) -> NetworkResult:
    """Simulate ``n_blocks`` of mining.

    ``hashrates`` is either a fixed per-miner hash/s vector or a callable
    ``(time_seconds, height) -> vector`` for time-varying scenarios (e.g.
    the hardware-repurposing discussion of §VI-D).  ``propagation_delay``
    counts near-simultaneous solutions (inter-arrival below the delay) as
    orphan candidates.
    """
    schedule = schedule or RetargetSchedule()
    if initial_difficulty < 1.0:
        raise ChainError("initial_difficulty must be >= 1")
    rng = Xoshiro256(seed)
    result = NetworkResult()

    bits = target_to_compact(max(1, int(MAX_TARGET / initial_difficulty)))
    now = 0.0
    window_start = 0.0
    for height in range(1, n_blocks + 1):
        rates = list(hashrates(now, height)) if callable(hashrates) else list(hashrates)
        if not rates or min(rates) < 0 or sum(rates) <= 0:
            raise ChainError("hashrates must be non-negative with positive total")
        difficulty = target_to_difficulty(compact_to_target(bits))
        total_rate = sum(rates)
        # Exponential inter-arrival: -ln(U) * difficulty / total_hashrate.
        u = max(rng.random(), 1e-12)
        dt = -math.log(u) * difficulty / total_rate
        now += dt
        result.block_times.append(dt)
        result.difficulties.append(difficulty)
        # Winner proportional to hashrate.
        result.winners.append(rng.sample_weighted(rates))
        if propagation_delay > 0.0 and dt < propagation_delay:
            result.orphan_candidates += 1
        # Retarget through the real consensus rule.
        if height % schedule.interval == 0:
            bits = next_compact_target(
                schedule, bits, int(window_start), int(now)
            )
            window_start = now
    return result
