"""Statistical multi-miner network simulation.

Real mining with HashCore costs ~0.1 s per attempt, so long-horizon
consensus dynamics (retargeting behaviour, miner revenue shares,
orphan rates) are simulated statistically: block inter-arrival times are
exponential with rate ``total_hashrate / difficulty`` and the winner of
each block is drawn proportionally to hashrate — the standard Poisson
model of PoW mining.  Difficulty evolves through the *same*
:func:`~repro.blockchain.difficulty.next_compact_target` consensus rule the
validating chain uses, so the simulation exercises real consensus code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.blockchain.difficulty import RetargetSchedule, next_compact_target
from repro.core.pow import compact_to_target, target_to_compact, target_to_difficulty, MAX_TARGET
from repro.errors import ChainError
from repro.rng import Xoshiro256


@dataclass(slots=True)
class NetworkResult:
    """Outcome of a simulated mining network run."""

    block_times: list[float] = field(default_factory=list)
    difficulties: list[float] = field(default_factory=list)
    winners: list[int] = field(default_factory=list)
    orphan_candidates: int = 0

    def miner_shares(self, n_miners: int) -> list[float]:
        """Fraction of blocks won by each miner."""
        counts = [0] * n_miners
        for winner in self.winners:
            counts[winner] += 1
        total = len(self.winners) or 1
        return [c / total for c in counts]

    def mean_block_time(self) -> float:
        return sum(self.block_times) / len(self.block_times) if self.block_times else 0.0


@dataclass(slots=True)
class RelayTraffic:
    """Closed-form per-block propagation cost of one relay protocol.

    The chaos harness (:mod:`repro.blockchain.sim`) *measures* these
    quantities; this model predicts them, so benchmark results can be
    sanity-checked against the expected complexity class and the
    statistical simulator can price propagation latency without running
    a message-level simulation.
    """

    relay: str
    fanout: int
    #: Expected block-relay messages per block (announces + pulls +
    #: bodies; transaction gossip excluded, as in the measured metric).
    messages_per_block: int
    #: Relay-tree depth — how many store-and-forward generations a block
    #: crosses before the last node has it.
    hops: int


def relay_traffic_model(
    n_nodes: int, relay: str = "flood", fanout: int = 0
) -> RelayTraffic:
    """Expected propagation cost for one block over ``n_nodes``.

    ``flood``: every node forwards the full body to every peer on first
    acceptance — n·(n-1) messages, one hop of useful latency (everyone
    hears directly from the origin's generation).  ``gossip`` /
    ``compact``: each node announces to ``fanout`` peers (n·f) and every
    non-origin node pulls the body exactly once (2·(n-1) for the
    request/response pair); the epidemic reaches the whole network in
    ~log_f(n) generations.  Compact's ``gettxn`` round trips vanish once
    mempools are warm, so the model prices them at zero.
    """
    if relay not in ("flood", "gossip", "compact"):
        raise ChainError(f"unknown relay mode {relay!r}")
    if n_nodes < 2:
        return RelayTraffic(relay=relay, fanout=0, messages_per_block=0, hops=0)
    if relay == "flood":
        return RelayTraffic(
            relay=relay, fanout=n_nodes - 1,
            messages_per_block=n_nodes * (n_nodes - 1), hops=1,
        )
    from repro.blockchain.gossip import resolve_fanout

    f = resolve_fanout(fanout, n_nodes)
    return RelayTraffic(
        relay=relay, fanout=f,
        messages_per_block=n_nodes * f + 2 * (n_nodes - 1),
        hops=max(1, math.ceil(math.log(n_nodes, f)) if f > 1 else n_nodes - 1),
    )


def simulate_network(
    hashrates: Sequence[float] | Callable[[float, int], Sequence[float]],
    n_blocks: int,
    schedule: RetargetSchedule | None = None,
    *,
    initial_difficulty: float = 100.0,
    propagation_delay: float = 0.0,
    relay: str | None = None,
    fanout: int = 0,
    hop_delay: float = 0.0,
    seed: int = 1,
) -> NetworkResult:
    """Simulate ``n_blocks`` of mining.

    ``hashrates`` is either a fixed per-miner hash/s vector or a callable
    ``(time_seconds, height) -> vector`` for time-varying scenarios (e.g.
    the hardware-repurposing discussion of §VI-D).  ``propagation_delay``
    counts near-simultaneous solutions (inter-arrival below the delay) as
    orphan candidates.

    Alternatively pass ``relay`` (+ optional ``fanout``) and a per-hop
    ``hop_delay``: the effective propagation delay is then derived from
    :func:`relay_traffic_model` — ``hops × hop_delay`` — so the orphan
    rate reflects the relay protocol's latency profile (header-first
    gossip trades bandwidth for extra store-and-forward generations).
    """
    schedule = schedule or RetargetSchedule()
    if initial_difficulty < 1.0:
        raise ChainError("initial_difficulty must be >= 1")
    rng = Xoshiro256(seed)
    result = NetworkResult()

    bits = target_to_compact(max(1, int(MAX_TARGET / initial_difficulty)))
    now = 0.0
    window_start = 0.0
    for height in range(1, n_blocks + 1):
        rates = list(hashrates(now, height)) if callable(hashrates) else list(hashrates)
        if not rates or min(rates) < 0 or sum(rates) <= 0:
            raise ChainError("hashrates must be non-negative with positive total")
        delay = propagation_delay
        if relay is not None and hop_delay > 0.0:
            # Derived per-block (the miner population may be time-varying).
            delay = max(
                delay,
                relay_traffic_model(len(rates), relay, fanout).hops * hop_delay,
            )
        difficulty = target_to_difficulty(compact_to_target(bits))
        total_rate = sum(rates)
        # Exponential inter-arrival: -ln(U) * difficulty / total_hashrate.
        u = max(rng.random(), 1e-12)
        dt = -math.log(u) * difficulty / total_rate
        now += dt
        result.block_times.append(dt)
        result.difficulties.append(difficulty)
        # Winner proportional to hashrate.
        result.winners.append(rng.sample_weighted(rates))
        if delay > 0.0 and dt < delay:
            result.orphan_candidates += 1
        # Retarget through the real consensus rule.
        if height % schedule.interval == 0:
            bits = next_compact_target(
                schedule, bits, int(window_start), int(now)
            )
            window_start = now
    return result
