"""Account ledger: balances, nonces, expected one-time keys.

The state machine the transactions of
:mod:`repro.blockchain.transaction` drive.  Validation rules:

* the sender account exists and its nonce matches the transaction's;
* the signature verifies against the account's *expected key address*
  (hash-ladder: nonce 0 uses the identity key, later nonces the key the
  previous transaction announced);
* balance covers ``amount + fee``.

``apply_block`` processes a block's transactions in order and credits the
miner with fees plus the block subsidy.  Application records *undo
pre-images* — the prior state of only the accounts a block touched — so a
failed block rolls back in O(touched) instead of O(accounts), and
:meth:`Ledger.apply_block_with_undo` hands the same pre-images to callers
(the durable :class:`~repro.blockchain.store.UtxoIndex`) that need to
rewind blocks during a reorg.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockchain.transaction import Transaction
from repro.errors import ChainError

#: Block subsidy credited to the miner per applied block.
BLOCK_REWARD = 50


@dataclass(slots=True)
class Account:
    """Ledger state of one account."""

    balance: int
    nonce: int
    expected_key: bytes


@dataclass(slots=True)
class Ledger:
    """Mutable account state with transactional application."""

    accounts: dict[bytes, Account] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def register(self, address: bytes, balance: int) -> None:
        """Genesis allocation: identity key = ``address`` itself."""
        if address in self.accounts:
            raise ChainError("account already registered")
        if balance < 0:
            raise ChainError("negative genesis balance")
        self.accounts[address] = Account(
            balance=balance, nonce=0, expected_key=address
        )

    def balance(self, address: bytes) -> int:
        account = self.accounts.get(address)
        return account.balance if account else 0

    def nonce(self, address: bytes) -> int:
        account = self.accounts.get(address)
        return account.nonce if account else 0

    # ------------------------------------------------------------------
    def validate_transaction(
        self, tx: Transaction, *, verify_signatures: bool = True
    ) -> None:
        """Raise :class:`ChainError` when ``tx`` cannot apply to the
        current state.  ``verify_signatures=False`` skips the (expensive)
        Lamport check — for state that trails consensus, where admission
        already verified the signature once."""
        account = self.accounts.get(tx.sender)
        if account is None:
            raise ChainError("unknown sender account")
        if tx.nonce != account.nonce:
            raise ChainError(
                f"nonce mismatch: expected {account.nonce}, got {tx.nonce}"
            )
        if verify_signatures and not tx.verify_signature(account.expected_key):
            raise ChainError("signature does not verify against expected key")
        if account.balance < tx.amount + tx.fee:
            raise ChainError("insufficient balance")

    def _touch(
        self,
        address: bytes,
        touched: dict[bytes, Account | None],
    ) -> None:
        """Record ``address``'s pre-image the first time a block touches it."""
        if address not in touched:
            account = self.accounts.get(address)
            touched[address] = (
                None
                if account is None
                else Account(account.balance, account.nonce, account.expected_key)
            )

    def apply_transaction(
        self,
        tx: Transaction,
        *,
        verify_signatures: bool = True,
        touched: dict[bytes, Account | None] | None = None,
    ) -> None:
        """Validate and apply one transaction (fees escrowed to the block
        application; see :meth:`apply_block`)."""
        self.validate_transaction(tx, verify_signatures=verify_signatures)
        if touched is not None:
            self._touch(tx.sender, touched)
            self._touch(tx.recipient, touched)
        sender = self.accounts[tx.sender]
        sender.balance -= tx.amount + tx.fee
        sender.nonce += 1
        sender.expected_key = tx.next_key
        recipient = self.accounts.get(tx.recipient)
        if recipient is None:
            # Receiving creates the account; its identity key is its
            # address (the recipient's wallet key 0).
            self.accounts[tx.recipient] = Account(
                balance=tx.amount, nonce=0, expected_key=tx.recipient
            )
        else:
            recipient.balance += tx.amount

    def apply_block(
        self,
        transactions: list[Transaction],
        miner: bytes,
        *,
        verify_signatures: bool = True,
    ) -> int:
        """Apply a block's transactions in order; credit subsidy + fees to
        ``miner``.  Returns the miner's total credit.  All-or-nothing: on
        any invalid transaction the ledger is left unchanged."""
        reward, _ = self.apply_block_with_undo(
            transactions, miner, verify_signatures=verify_signatures
        )
        return reward

    def apply_block_with_undo(
        self,
        transactions: list[Transaction],
        miner: bytes,
        *,
        verify_signatures: bool = True,
    ) -> tuple[int, list[tuple[bytes, Account | None]]]:
        """Like :meth:`apply_block`, but also return the undo record: the
        pre-image of every account the block touched (``None`` = did not
        exist), in first-touch order.  Feeding that record to
        :meth:`revert` restores the exact pre-block state — the primitive
        the durable index's reorg path is built on."""
        touched: dict[bytes, Account | None] = {}
        try:
            fees = 0
            for tx in transactions:
                self.apply_transaction(
                    tx, verify_signatures=verify_signatures, touched=touched
                )
                fees += tx.fee
        except ChainError:
            self.revert(list(touched.items()))
            raise
        self._touch(miner, touched)
        reward = BLOCK_REWARD + fees
        miner_account = self.accounts.get(miner)
        if miner_account is None:
            self.accounts[miner] = Account(
                balance=reward, nonce=0, expected_key=miner
            )
        else:
            miner_account.balance += reward
        return reward, list(touched.items())

    def revert(self, undo: list[tuple[bytes, Account | None]]) -> None:
        """Restore the pre-images in ``undo`` (from
        :meth:`apply_block_with_undo`), deleting accounts the block
        created.  Pre-images are first-touch snapshots, so restoring them
        in any order yields the same state."""
        for address, prior in undo:
            if prior is None:
                self.accounts.pop(address, None)
            else:
                self.accounts[address] = Account(
                    prior.balance, prior.nonce, prior.expected_key
                )

    def total_supply(self) -> int:
        """Sum of all balances (conservation checks)."""
        return sum(account.balance for account in self.accounts.values())
