"""Account ledger: balances, nonces, expected one-time keys.

The state machine the transactions of
:mod:`repro.blockchain.transaction` drive.  Validation rules:

* the sender account exists and its nonce matches the transaction's;
* the signature verifies against the account's *expected key address*
  (hash-ladder: nonce 0 uses the identity key, later nonces the key the
  previous transaction announced);
* balance covers ``amount + fee``.

``apply_block`` processes a block's transactions in order and credits the
miner with fees plus the block subsidy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blockchain.transaction import Transaction
from repro.errors import ChainError

#: Block subsidy credited to the miner per applied block.
BLOCK_REWARD = 50


@dataclass(slots=True)
class Account:
    """Ledger state of one account."""

    balance: int
    nonce: int
    expected_key: bytes


@dataclass(slots=True)
class Ledger:
    """Mutable account state with transactional application."""

    accounts: dict[bytes, Account] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def register(self, address: bytes, balance: int) -> None:
        """Genesis allocation: identity key = ``address`` itself."""
        if address in self.accounts:
            raise ChainError("account already registered")
        if balance < 0:
            raise ChainError("negative genesis balance")
        self.accounts[address] = Account(
            balance=balance, nonce=0, expected_key=address
        )

    def balance(self, address: bytes) -> int:
        account = self.accounts.get(address)
        return account.balance if account else 0

    def nonce(self, address: bytes) -> int:
        account = self.accounts.get(address)
        return account.nonce if account else 0

    # ------------------------------------------------------------------
    def validate_transaction(self, tx: Transaction) -> None:
        """Raise :class:`ChainError` when ``tx`` cannot apply to the
        current state."""
        account = self.accounts.get(tx.sender)
        if account is None:
            raise ChainError("unknown sender account")
        if tx.nonce != account.nonce:
            raise ChainError(
                f"nonce mismatch: expected {account.nonce}, got {tx.nonce}"
            )
        if not tx.verify_signature(account.expected_key):
            raise ChainError("signature does not verify against expected key")
        if account.balance < tx.amount + tx.fee:
            raise ChainError("insufficient balance")

    def apply_transaction(self, tx: Transaction) -> None:
        """Validate and apply one transaction (fees escrowed to the block
        application; see :meth:`apply_block`)."""
        self.validate_transaction(tx)
        sender = self.accounts[tx.sender]
        sender.balance -= tx.amount + tx.fee
        sender.nonce += 1
        sender.expected_key = tx.next_key
        recipient = self.accounts.get(tx.recipient)
        if recipient is None:
            # Receiving creates the account; its identity key is its
            # address (the recipient's wallet key 0).
            self.accounts[tx.recipient] = Account(
                balance=tx.amount, nonce=0, expected_key=tx.recipient
            )
        else:
            recipient.balance += tx.amount

    def apply_block(self, transactions: list[Transaction], miner: bytes) -> int:
        """Apply a block's transactions in order; credit subsidy + fees to
        ``miner``.  Returns the miner's total credit.  All-or-nothing: on
        any invalid transaction the ledger is left unchanged."""
        snapshot = {
            address: Account(acc.balance, acc.nonce, acc.expected_key)
            for address, acc in self.accounts.items()
        }
        try:
            fees = 0
            for tx in transactions:
                self.apply_transaction(tx)
                fees += tx.fee
        except ChainError:
            self.accounts = snapshot
            raise
        reward = BLOCK_REWARD + fees
        miner_account = self.accounts.get(miner)
        if miner_account is None:
            self.accounts[miner] = Account(
                balance=reward, nonce=0, expected_key=miner
            )
        else:
            miner_account.balance += reward
        return reward

    def total_supply(self) -> int:
        """Sum of all balances (conservation checks)."""
        return sum(account.balance for account in self.accounts.values())
