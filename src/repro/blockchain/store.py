"""Durable chain state: append-only block log + account-state index.

Everything above this module (chain, node, chaos simulator, pool) used to
live entirely in process memory, so no scenario could outlive a process or
exceed RAM.  This module is the persistence layer underneath:

* :class:`BlockStore` — an append-only log of length-prefixed, checksummed
  block records with an in-memory index (file offset + height + hash)
  rebuilt on open.  Recovery truncates a torn tail: the first record that
  is incomplete, fails its checksum, or does not connect to an indexed
  parent invalidates itself and everything after it (record boundaries
  cannot be trusted past a bad length prefix), so a reopened store is
  always the longest verifiable prefix of what was written.  Nothing
  partial is ever accepted, and nothing dropped is silent — see
  :attr:`BlockStore.recovery`.

* :class:`UtxoIndex` — the account-state index at a chain position, with
  per-block *undo records* (pre-images of every touched account) so a
  reorg rewinds exactly the displaced blocks and applies the new branch,
  instead of rescanning the chain from genesis.  ``save``/``load``
  checkpoint the whole index (accounts + undo window) as a checksummed
  snapshot written atomically, so a restart replays only the blocks past
  the snapshot.

On-disk record format (all integers little-endian)::

    file      := header record*
    header    := magic[8]="HCSTORE1" genesis_id[32]
    record    := len:u32 payload[len] checksum[8]
    checksum  := sha256(payload)[:8]
    payload   := block_header[88] ntx:u32 (txlen:u32 tx[txlen])*

The genesis block is *not* logged — it is deterministic from the chain
parameters, and the file header's ``genesis_id`` refuses replay into a
mismatched chain.  Appends flush to the OS on every record (a process
crash loses nothing already acknowledged); ``sync=True`` adds an fsync
per append for machine-crash durability at a heavy cost.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.blockchain.block import HEADER_BYTES, Block, BlockHeader
from repro.blockchain.ledger import Account, Ledger
from repro.errors import ChainError, StoreError

_FILE_MAGIC = b"HCSTORE1"
_FILE_HEADER_BYTES = len(_FILE_MAGIC) + 32

_LEN = struct.Struct("<I")
_U32 = struct.Struct("<I")

#: Checksum bytes per record (sha256 prefix — 2^-64 per-record collision).
CHECKSUM_BYTES = 8

#: Sanity cap on one record's payload; a length prefix beyond this is
#: treated as corruption, not as a 4 GB allocation request.
MAX_RECORD_BYTES = 1 << 26


def encode_block(block: Block) -> bytes:
    """Canonical record payload for one block."""
    parts = [block.header.serialize(), _U32.pack(len(block.transactions))]
    for tx in block.transactions:
        parts.append(_U32.pack(len(tx)))
        parts.append(tx)
    return b"".join(parts)


def decode_block(payload: bytes) -> Block:
    """Inverse of :func:`encode_block`; raises :class:`StoreError` on any
    structural mismatch (the checksum makes this unreachable for disk
    corruption — it guards programming errors)."""
    try:
        header = BlockHeader.deserialize(payload[:HEADER_BYTES])
        (ntx,) = _U32.unpack_from(payload, HEADER_BYTES)
        offset = HEADER_BYTES + _U32.size
        transactions = []
        for _ in range(ntx):
            (txlen,) = _U32.unpack_from(payload, offset)
            offset += _U32.size
            if offset + txlen > len(payload):
                raise StoreError("transaction runs past record payload")
            transactions.append(payload[offset : offset + txlen])
            offset += txlen
        if offset != len(payload):
            raise StoreError("trailing bytes in block record")
    except (struct.error, ChainError) as exc:
        raise StoreError(f"undecodable block record: {exc}") from None
    return Block(header=header, transactions=tuple(transactions))


@dataclass(slots=True)
class StoreEntry:
    """Index entry for one logged block: where it lives and where it sits."""

    offset: int
    length: int  # full record length (prefix + payload + checksum)
    height: int


class BlockStore:
    """Append-only block log with an index rebuilt on open.

    A store can be constructed *unbound* (``genesis_id=None`` over a path
    with no file yet): the first :class:`~repro.blockchain.chain.Blockchain`
    to attach calls :meth:`bind` with its genesis id, which creates the
    file header.  Opening an existing file scans and verifies every
    record, truncates any unverifiable tail in place, and records what was
    dropped in :attr:`recovery`.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        genesis_id: bytes | None = None,
        *,
        sync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.sync = sync
        self.genesis_id: bytes | None = None
        self._index: dict[bytes, StoreEntry] = {}
        self._order: list[bytes] = []
        self._fh = None
        self._end = 0
        #: What the last open had to discard to recover a consistent
        #: prefix: ``{"dropped_bytes": n, "reason": slug | None}``.
        self.recovery: dict = {"dropped_bytes": 0, "reason": None}
        if self.path.exists() and self.path.stat().st_size > 0:
            self._scan()
            if genesis_id is not None and genesis_id != self.genesis_id:
                self.close()
                raise StoreError(
                    f"store {self.path} belongs to a different genesis"
                )
        elif genesis_id is not None:
            self.bind(genesis_id)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bind(self, genesis_id: bytes) -> None:
        """Anchor the store to a chain's genesis (creates the file header
        on first bind; verifies the match on every later one)."""
        if len(genesis_id) != 32:
            raise StoreError("genesis id must be 32 bytes")
        if self.genesis_id is not None:
            if genesis_id != self.genesis_id:
                raise StoreError(
                    f"store {self.path} belongs to a different genesis"
                )
            return
        self.genesis_id = genesis_id
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a+b")
        self._fh.write(_FILE_MAGIC + genesis_id)
        self._fh.flush()
        self._end = _FILE_HEADER_BYTES

    def reopen(self) -> None:
        """Drop all in-memory state and rebuild it from disk — the restart
        path.  Exercises exactly what a fresh process would see."""
        self.close()
        self._index.clear()
        self._order.clear()
        self.genesis_id = None
        self._end = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            self._scan()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    # ------------------------------------------------------------------
    # recovery scan
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        data = self.path.read_bytes()
        if len(data) < _FILE_HEADER_BYTES or not data.startswith(_FILE_MAGIC):
            raise StoreError(f"{self.path} is not a block store")
        self.genesis_id = data[len(_FILE_MAGIC) : _FILE_HEADER_BYTES]
        heights: dict[bytes, int] = {self.genesis_id: 0}
        offset = _FILE_HEADER_BYTES
        valid_end = offset
        reason = None
        from repro.blockchain.chain import block_id  # cycle-free at call time

        while offset < len(data):
            if offset + _LEN.size > len(data):
                reason = "torn-length"
                break
            (length,) = _LEN.unpack_from(data, offset)
            if length == 0 or length > MAX_RECORD_BYTES:
                reason = "bad-length"
                break
            end = offset + _LEN.size + length + CHECKSUM_BYTES
            if end > len(data):
                reason = "torn-record"
                break
            payload = data[offset + _LEN.size : offset + _LEN.size + length]
            checksum = data[offset + _LEN.size + length : end]
            if hashlib.sha256(payload).digest()[:CHECKSUM_BYTES] != checksum:
                reason = "bad-checksum"
                break
            try:
                block = decode_block(payload)
            except StoreError:
                reason = "undecodable"
                break
            parent = block.header.prev_hash
            if parent not in heights:
                reason = "unknown-parent"
                break
            bid = block_id(block)
            if bid in self._index:
                reason = "duplicate-record"
                break
            height = heights[parent] + 1
            heights[bid] = height
            self._index[bid] = StoreEntry(
                offset=offset, length=end - offset, height=height
            )
            self._order.append(bid)
            offset = end
            valid_end = end
        dropped = len(data) - valid_end
        self.recovery = {"dropped_bytes": dropped, "reason": reason}
        if dropped:
            with open(self.path, "r+b") as fh:
                fh.truncate(valid_end)
        self._fh = open(self.path, "a+b")
        self._end = valid_end

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, bid: bytes) -> bool:
        return bid in self._index

    def height_of(self, bid: bytes) -> int:
        return self._index[bid].height

    def entry(self, bid: bytes) -> StoreEntry:
        return self._index[bid]

    def ids(self) -> list[bytes]:
        """Block ids in log (= acceptance) order."""
        return list(self._order)

    def get(self, bid: bytes) -> Block:
        """Read one block back from disk, re-verifying its checksum."""
        try:
            entry = self._index[bid]
        except KeyError:
            raise StoreError(f"block {bid.hex()[:16]} not in store") from None
        return self._read_record(entry.offset)

    def _read_record(self, offset: int) -> Block:
        if self._fh is None:
            raise StoreError("store is closed")
        self._fh.flush()
        self._fh.seek(offset)
        (length,) = _LEN.unpack(self._fh.read(_LEN.size))
        payload = self._fh.read(length)
        checksum = self._fh.read(CHECKSUM_BYTES)
        if hashlib.sha256(payload).digest()[:CHECKSUM_BYTES] != checksum:
            raise StoreError(f"checksum mismatch at offset {offset}")
        return decode_block(payload)

    def iter_blocks(self) -> Iterator[tuple[bytes, Block]]:
        """Yield ``(block_id, block)`` in log order (replay order: every
        parent precedes its children, because acceptance required it)."""
        for bid in self._order:
            yield bid, self._read_record(self._index[bid].offset)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, block: Block) -> int:
        """Log one accepted block; returns its file offset.

        The caller (:meth:`Blockchain.add_block
        <repro.blockchain.chain.Blockchain.add_block>`) has already
        validated consensus; the store only enforces log consistency —
        bound, connected, and not a duplicate."""
        if self._fh is None or self.genesis_id is None:
            raise StoreError("store is closed or unbound")
        from repro.blockchain.chain import block_id

        bid = block_id(block)
        if bid in self._index:
            raise StoreError("duplicate block append")
        parent = block.header.prev_hash
        if parent == self.genesis_id:
            height = 1
        elif parent in self._index:
            height = self._index[parent].height + 1
        else:
            raise StoreError("append does not connect to the stored chain")
        payload = encode_block(block)
        record = (
            _LEN.pack(len(payload))
            + payload
            + hashlib.sha256(payload).digest()[:CHECKSUM_BYTES]
        )
        offset = self._end
        self._fh.seek(offset)
        self._fh.write(record)
        self._fh.flush()
        if self.sync:
            os.fsync(self._fh.fileno())
        self._end = offset + len(record)
        self._index[bid] = StoreEntry(
            offset=offset, length=len(record), height=height
        )
        self._order.append(bid)
        return offset

    def stats(self) -> dict:
        return {
            "path": str(self.path),
            "blocks": len(self._index),
            "bytes": self._end,
            "recovery": dict(self.recovery),
        }


# ----------------------------------------------------------------------
# account-state index with incremental apply/undo
# ----------------------------------------------------------------------
def default_miner_of(block: Block) -> bytes:
    """Miner address attributed to a block when nothing better is known:
    the hash of its first (coinbase) transaction bytes.  Deterministic and
    collision-free per coinbase, so reward accounting survives reorgs and
    replays identically even for opaque simulator coinbases."""
    coinbase = block.transactions[0] if block.transactions else b""
    return hashlib.sha256(b"miner:" + coinbase).digest()


@dataclass(slots=True)
class _Undo:
    """Pre-images of every account one block's application touched
    (``None`` = the account did not exist before the block), plus where
    the index stood before applying it (``parent``) so a rewind knows
    where it lands."""

    bid: bytes
    height: int
    parent: bytes
    accounts: list[tuple[bytes, Account | None]]


class UtxoIndex:
    """Account state pinned to one block, advanced incrementally.

    ``advance(chain)`` finds the fork point between the index position and
    the chain's current tip *through the undo window* — rewinding only the
    displaced blocks and applying only the new branch — so a reorg costs
    O(blocks moved), not O(chain).  Forks deeper than ``max_undo`` fall
    back to a full rebuild from genesis (counted in ``full_rebuilds``).

    Transactions inside accepted blocks are applied without signature
    re-verification by default (``verify_signatures=False``): the index
    trails consensus, and admission-time checks live in the mempool and
    ledger-application policy at the edges.  Body bytes that do not parse
    as :class:`~repro.blockchain.transaction.Transaction` (coinbases,
    simulator payloads) move no balances; every block still credits its
    miner (``miner_of``) with subsidy + parsed fees.
    """

    def __init__(
        self,
        *,
        verify_signatures: bool = False,
        max_undo: int = 4096,
        miner_of: Callable[[Block], bytes] | None = None,
        genesis_alloc: tuple[tuple[bytes, int], ...] = (),
    ) -> None:
        if max_undo < 1:
            raise StoreError("max_undo must be >= 1")
        self.genesis_alloc = tuple(genesis_alloc)
        self.ledger = Ledger()
        self.verify_signatures = verify_signatures
        self.max_undo = max_undo
        self.miner_of = miner_of or default_miner_of
        self.tip_id: bytes | None = None
        self.height = -1
        self._undo: deque[_Undo] = deque()
        self._applied: set[bytes] = set()  # undo window + current base
        self.full_rebuilds = 0

    # ------------------------------------------------------------------
    def rebase(self, genesis_id: bytes) -> None:
        """Reset to the genesis state (allocations applied, nothing else)."""
        self.ledger = Ledger()
        for address, balance in self.genesis_alloc:
            self.ledger.register(address, balance)
        self.tip_id = genesis_id
        self.height = 0
        self._undo.clear()
        self._applied = {genesis_id}

    def _parse_transactions(self, block: Block):
        from repro.blockchain.transaction import TRANSACTION_BYTES, Transaction

        return [
            Transaction.deserialize(raw)
            for raw in block.transactions
            if len(raw) == TRANSACTION_BYTES
        ]

    def apply_block(self, bid: bytes, height: int, block: Block) -> None:
        """Apply one block on top of the current position, recording undo
        pre-images.  All-or-nothing like the ledger itself."""
        if bid in self._applied:
            raise StoreError("block already applied to index")
        if self.tip_id is None:
            raise StoreError("index is unpositioned; call rebase() first")
        transactions = self._parse_transactions(block)
        _, undo_accounts = self.ledger.apply_block_with_undo(
            transactions,
            self.miner_of(block),
            verify_signatures=self.verify_signatures,
        )
        self._undo.append(
            _Undo(bid=bid, height=height, parent=self.tip_id,
                  accounts=undo_accounts)
        )
        self._applied.add(bid)
        self.tip_id = bid
        self.height = height
        while len(self._undo) > self.max_undo:
            dropped = self._undo.popleft()
            self._applied.discard(dropped.bid)

    def undo_block(self) -> bytes:
        """Rewind the topmost applied block; returns the new tip id (the
        rewound block's parent — which may lie outside the trimmed undo
        window, in which case the next :meth:`advance` falls back to a
        full rebuild)."""
        if not self._undo:
            raise StoreError("undo window is empty")
        record = self._undo.pop()
        self.ledger.revert(record.accounts)
        self._applied.discard(record.bid)
        self.tip_id, self.height = record.parent, record.height - 1
        return self.tip_id

    # ------------------------------------------------------------------
    def advance(self, chain) -> dict:
        """Catch the index up to ``chain``'s current tip.

        Returns ``{"applied": n, "undone": n, "rebuilt": bool}``.
        """
        target = chain.tip_id
        if self.tip_id is None:
            self.rebase(chain.genesis_id)
        if target == self.tip_id:
            return {"applied": 0, "undone": 0, "rebuilt": False}
        # Walk back from the target until we hit a block we have applied
        # (the fork point).  The walk is bounded by the new branch length.
        forward: list[bytes] = []
        cursor = target
        while cursor not in self._applied:
            if cursor == chain.genesis_id:
                break
            forward.append(cursor)
            cursor = chain.header_of(cursor).prev_hash
        if cursor not in self._applied:
            # Fork point predates the undo window: rebuild from scratch.
            return self._rebuild(chain)
        undone = 0
        while self.tip_id != cursor:
            if not self._undo:
                return self._rebuild(chain)
            self.undo_block()
            undone += 1
        for bid in reversed(forward):
            self.apply_block(bid, chain.height_of(bid), chain.get(bid))
        return {"applied": len(forward), "undone": undone, "rebuilt": False}

    def _rebuild(self, chain) -> dict:
        self.full_rebuilds += 1
        self.rebase(chain.genesis_id)
        applied = 0
        for block in chain.main_chain()[1:]:
            from repro.blockchain.chain import block_id

            bid = block_id(block)
            self.apply_block(bid, chain.height_of(bid), block)
            applied += 1
        return {"applied": applied, "undone": 0, "rebuilt": True}

    # ------------------------------------------------------------------
    # snapshot persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        accounts = {
            address.hex(): [acc.balance, acc.nonce, acc.expected_key.hex()]
            for address, acc in sorted(self.ledger.accounts.items())
        }
        undo = [
            {
                "bid": record.bid.hex(),
                "height": record.height,
                "parent": record.parent.hex(),
                "accounts": [
                    [
                        address.hex(),
                        None
                        if prior is None
                        else [prior.balance, prior.nonce, prior.expected_key.hex()],
                    ]
                    for address, prior in record.accounts
                ],
            }
            for record in self._undo
        ]
        return {
            "tip": self.tip_id.hex() if self.tip_id else None,
            "height": self.height,
            "accounts": accounts,
            "undo": undo,
        }

    def save(self, path: str | os.PathLike) -> None:
        """Checkpoint the index: canonical JSON + embedded checksum,
        written to a temp file and atomically renamed — a crash mid-save
        leaves the previous snapshot intact."""
        path = Path(path)
        body = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        checksum = hashlib.sha256(body.encode()).hexdigest()
        wrapped = json.dumps({"checksum": checksum, "state": body})
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(wrapped, encoding="utf-8")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str | os.PathLike, **kwargs) -> "UtxoIndex":
        """Reload a snapshot; :class:`StoreError` when missing or torn
        (callers fall back to a rebuild via :meth:`advance`)."""
        path = Path(path)
        if not path.exists():
            raise StoreError(f"no snapshot at {path}")
        try:
            wrapped = json.loads(path.read_text(encoding="utf-8"))
            body = wrapped["state"]
            if hashlib.sha256(body.encode()).hexdigest() != wrapped["checksum"]:
                raise StoreError(f"snapshot {path} failed its checksum")
            data = json.loads(body)
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise StoreError(f"snapshot {path} is unreadable: {exc}") from None
        index = cls(**kwargs)
        index.tip_id = bytes.fromhex(data["tip"]) if data["tip"] else None
        index.height = data["height"]
        index.ledger = Ledger(
            accounts={
                bytes.fromhex(address): Account(
                    balance=fields[0],
                    nonce=fields[1],
                    expected_key=bytes.fromhex(fields[2]),
                )
                for address, fields in data["accounts"].items()
            }
        )
        for record in data["undo"]:
            index._undo.append(
                _Undo(
                    bid=bytes.fromhex(record["bid"]),
                    height=record["height"],
                    parent=bytes.fromhex(record["parent"]),
                    accounts=[
                        (
                            bytes.fromhex(address),
                            None
                            if prior is None
                            else Account(
                                balance=prior[0],
                                nonce=prior[1],
                                expected_key=bytes.fromhex(prior[2]),
                            ),
                        )
                        for address, prior in record["accounts"]
                    ],
                )
            )
        index._applied = {record.bid for record in index._undo}
        if index.tip_id is not None:
            index._applied.add(index.tip_id)
        return index

    def stats(self) -> dict:
        return {
            "tip": self.tip_id.hex()[:16] if self.tip_id else None,
            "height": self.height,
            "accounts": len(self.ledger.accounts),
            "undo_depth": len(self._undo),
            "full_rebuilds": self.full_rebuilds,
        }
