"""Exception hierarchy for the HashCore reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without accidentally swallowing unrelated
bugs (``except Exception`` is never required).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class AssemblyError(ReproError):
    """A textual assembly program could not be parsed or resolved."""


class EncodingError(ReproError):
    """An instruction or program could not be encoded or decoded."""


class ExecutionError(ReproError):
    """The simulated machine hit an unrecoverable fault (bad opcode, fuse)."""


class ExecutionLimitExceeded(ExecutionError):
    """The instruction fuse tripped before the program halted."""


class GenerationError(ReproError):
    """The widget generator could not produce a valid widget."""


class ProfileError(ReproError):
    """A performance profile is malformed or inconsistent."""


class PowError(ReproError):
    """Proof-of-work parameters or solutions are invalid."""


class ChainError(ReproError):
    """A block or chain failed consensus validation."""


class StoreError(ChainError):
    """The durable chain store is missing, mismatched, or unrecoverable.

    Raised for conditions recovery cannot paper over: a file that is not a
    block log (bad magic), a log written for a *different* genesis, an
    append against an unbound or closed store, or a replayed tip whose
    proof of work fails verification.  Torn tails and corrupt records are
    *not* errors — the store truncates to the longest checksummed prefix
    and reports what it dropped (see ``BlockStore.recovery``).
    """


class ValidationError(ChainError):
    """A block failed one specific consensus check.

    ``code`` is a stable machine-readable slug (``unknown-parent``,
    ``bad-timestamp``, ``bad-bits``, ``duplicate-tx``, ``bad-merkle``,
    ``bad-pow``, ``duplicate-block``, plus the mempool admission codes in
    :data:`MEMPOOL_REJECT_CODES`) so callers — the gossip node's
    rejection statistics, the chaos harness's reports — can classify
    rejections without parsing message strings.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


#: Mempool admission-rejection codes (:class:`ValidationError` slugs, so
#: callers assert ``exc.code`` rather than matching message strings):
#: the pool is full and the incoming transaction does not outbid the
#: cheapest evictable entry / the fee rate is under the configured floor /
#: a replace-by-fee attempt does not bump the displaced fee by at least
#: the configured minimum.
MEMPOOL_FULL = "mempool-full"
FEE_TOO_LOW = "fee-too-low"
RBF_BUMP_TOO_SMALL = "rbf-bump-too-small"

MEMPOOL_REJECT_CODES = (MEMPOOL_FULL, FEE_TOO_LOW, RBF_BUMP_TOO_SMALL)


#: Stable machine-readable fault codes the supervised mining/execution
#: stack can raise or record.  Mirrors the :class:`ValidationError` code
#: vocabulary for consensus rejections.
ENGINE_FAULT_CODES = (
    "worker-crash",
    "chunk-timeout",
    "tier-degraded",
    "deadline-exceeded",
)


class EngineFault(PowError):
    """The supervised mining engine hit a fault it could not absorb.

    ``code`` is a stable machine-readable slug from
    :data:`ENGINE_FAULT_CODES` (``worker-crash`` — the worker pool died
    more than ``max_respawns`` times; ``chunk-timeout`` — a nonce chunk
    exceeded its watchdog deadline on every allowed retry;
    ``tier-degraded`` — a widget failed on every execution tier, timed
    model included; ``deadline-exceeded`` — ``mine_header(deadline=…)``
    ran out of wall clock), so callers can classify engine failures
    without parsing message strings — the same contract
    :class:`ValidationError.code` gives consensus rejections.
    """

    def __init__(self, code: str, message: str) -> None:
        if code not in ENGINE_FAULT_CODES:
            raise ValueError(
                f"unknown engine fault code {code!r}; "
                f"expected one of {ENGINE_FAULT_CODES}"
            )
        super().__init__(message)
        self.code = code


class ConfigError(ReproError):
    """A machine or generator configuration is invalid."""


class PoolError(ReproError):
    """The mining-pool layer hit a protocol or configuration fault."""

