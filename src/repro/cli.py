"""Command-line interface.

Usage (after ``pip install -e .``)::

    python -m repro hash "some block header"
    python -m repro verify "some block header" <digest-hex>
    python -m repro widget <seed-or-text> [--asm]
    python -m repro profile leela
    python -m repro workloads
    python -m repro mine --difficulty 4 --blocks 2
    python -m repro pool --port 3333 --share-difficulty 2
    python -m repro simulate --hashrates 100,50,25 --blocks 500
    python -m repro chaos --nodes 4 --drop 0.1 --byzantine 7 --seed 3

Every command is a thin shell over the library; ``main(argv)`` returns an
exit code and is exercised directly by the test suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.hashcore import HashCore
from repro.core.seed import HashSeed
from repro.errors import ReproError
from repro.machine.config import PRESETS, preset
from repro.machine.cpu import Machine
from repro.widgetgen.params import GeneratorParams


def _params(args) -> GeneratorParams:
    return GeneratorParams(
        target_instructions=args.instructions,
        snapshot_interval=max(1, args.instructions // 120),
    )


def _machine(args) -> Machine:
    return Machine(preset(args.machine))


def _profile(args):
    if args.profile is None:
        return None  # HashCore default (the baked Leela consensus profile)
    from repro.profiling.profile import PerformanceProfile

    with open(args.profile, encoding="utf-8") as handle:
        return PerformanceProfile.from_json(handle.read())


def _hashcore(args) -> HashCore:
    return HashCore(
        profile=_profile(args),
        machine=_machine(args),
        params=_params(args),
        widgets_per_hash=args.widgets,
        mode=args.mode,
    )


def cmd_hash(args) -> int:
    """Compute and display one HashCore evaluation."""
    hashcore = _hashcore(args)
    mode = hashcore.mode  # "auto" resolved to the fastest available tier
    start = time.perf_counter()
    trace = hashcore.hash_with_trace(args.data.encode(), mode=mode)
    elapsed = time.perf_counter() - start
    print(f"seed   : {trace.seed.hex}")
    for widget, result in zip(trace.widgets, trace.results):
        line = f"widget : {widget.name}  retired={result.counters.retired:,}"
        if mode == "timed":  # IPC exists only on the timing path
            line += f" ipc={result.counters.ipc:.2f}"
        print(f"{line} output={result.output_size:,}B")
    print(f"digest : {trace.digest.hex()}")
    print(f"time   : {elapsed:.2f}s ({mode} path)")
    return 0


def cmd_verify(args) -> int:
    """Verify a digest by recomputation."""
    hashcore = _hashcore(args)
    try:
        digest = bytes.fromhex(args.digest)
    except ValueError:
        print("error: digest must be hex", file=sys.stderr)
        return 2
    if hashcore.verify(args.data.encode(), digest):
        print("OK: digest verifies")
        return 0
    print("FAIL: digest does not verify")
    return 1


def cmd_widget(args) -> int:
    """Generate, inspect, and execute the widget a seed selects."""
    try:
        seed = HashSeed.from_hex(args.seed)
    except (ValueError, ReproError):
        # Not hex: derive the seed by gating the text, like hash() does.
        from repro.core.hash_gate import hash_gate

        seed = HashSeed(hash_gate(args.seed.encode()))
    hashcore = _hashcore(args)
    widget = hashcore.widget_for(seed)
    spec = widget.spec
    print(f"widget    : {widget.name}")
    print(f"seed      : {seed.hex}")
    print(f"blocks    : {len(spec.blocks)}  loops: {len(spec.loops)}  "
          f"outer trips: {spec.outer_trips}")
    print(f"code size : {widget.code_bytes():,} bytes "
          f"({len(widget.program)} instructions)")
    print(f"memory    : hot {spec.plan.hot_words * 8 // 1024}KB, "
          f"cold {spec.plan.cold_words * 8 // 1024}KB, "
          f"ring {spec.plan.ring_words * 8 // 1024}KB")
    result = widget.execute(hashcore.machine)
    counters = result.counters
    print(f"executed  : {counters.retired:,} instructions, ipc={counters.ipc:.2f}, "
          f"branch acc={counters.branch_accuracy:.3f}, "
          f"output={result.output_size:,}B")
    if args.asm:
        from repro.isa.assembler import disassemble

        print("\n" + disassemble(widget.program))
    return 0


def cmd_profile(args) -> int:
    """Profile a reference workload and print the JSON profile."""
    from repro.profiling.profiler import profile_workload
    from repro.workloads.suite import get_workload

    profile = profile_workload(get_workload(args.workload), _machine(args))
    print(profile.to_json())
    return 0


def cmd_workloads(args) -> int:
    """List the reference workload suite."""
    from repro.workloads.suite import SUITE

    for name, cls in sorted(SUITE.items()):
        print(f"{name:<10s} {cls.description:<42s} (~{cls.spec_counterpart})")
    return 0


class _CliPowFactory:
    """Picklable HashCore factory for mining-engine worker processes.

    Captures only the CLI's plain-value knobs (preset name, instruction
    target, mode, profile path) so it crosses the process boundary; each
    worker reconstructs its own HashCore — and keeps it, caches and all,
    for the life of the pool.
    """

    def __init__(
        self,
        machine: str,
        instructions: int,
        widgets: int,
        mode: str,
        profile: str | None,
    ) -> None:
        self.machine = machine
        self.instructions = instructions
        self.widgets = widgets
        self.mode = mode
        self.profile = profile

    def __call__(self) -> HashCore:
        return _hashcore(
            argparse.Namespace(
                machine=self.machine,
                instructions=self.instructions,
                widgets=self.widgets,
                mode=self.mode,
                profile=self.profile,
            )
        )


def cmd_mine(args) -> int:
    """Mine a short fully-validated HashCore chain.

    With ``--workers N`` (N > 1) the nonce search runs on a persistent
    :class:`~repro.blockchain.mining_engine.MiningEngine` whose worker
    pool — and the warm widget/JIT caches inside it — survives across all
    mined blocks.
    """
    from repro.blockchain.block import Block
    from repro.blockchain.chain import Blockchain
    from repro.blockchain.difficulty import RetargetSchedule
    from repro.blockchain.miner import mine_block
    from repro.core.pow import difficulty_to_target, target_to_compact

    hashcore = _hashcore(args)
    bits = target_to_compact(difficulty_to_target(args.difficulty))
    store = None
    if args.store is not None:
        from repro.blockchain.store import BlockStore

        store = BlockStore(args.store)
    chain = Blockchain(hashcore, genesis_bits=bits,
                       schedule=RetargetSchedule(interval=10_000),
                       store=store)
    if store is not None and chain.replayed:
        print(f"resumed from {args.store}: replayed {chain.replayed} blocks "
              f"to height {chain.height()}")
    engine = None
    if args.workers > 1:
        from repro.blockchain.mining_engine import MiningEngine

        factory = _CliPowFactory(
            args.machine, args.instructions, args.widgets, args.mode,
            args.profile,
        )
        engine = MiningEngine(
            factory, workers=args.workers, chunk_timeout=args.chunk_timeout
        )
    try:
        base = chain.height()  # nonzero when resuming from --store
        for height in range(base + 1, base + args.blocks + 1):
            block = Block.build(
                prev_hash=chain.tip_id,
                transactions=[f"coinbase-{height}".encode()],
                timestamp=30 * height,
                bits=chain.expected_bits(chain.tip_id),
            )
            start = time.perf_counter()
            max_attempts = int(args.difficulty * 100)
            if engine is not None:
                solved, digest, attempts = engine.mine_header(
                    block.header, max_attempts=max_attempts,
                    deadline=args.deadline,
                )
                mined_block = Block(
                    header=solved, transactions=block.transactions
                )
            else:
                mined = mine_block(block, hashcore, max_attempts=max_attempts)
                mined_block, digest = mined.block, mined.digest
                attempts = mined.attempts
            chain.add_block(mined_block)
            print(
                f"height {height}: nonce={mined_block.header.nonce} "
                f"attempts={attempts} time={time.perf_counter()-start:.1f}s "
                f"digest={digest.hex()[:24]}…"
            )
        if engine is not None:
            report = engine.report()
            print(
                f"engine : {report.workers} workers, "
                f"{report.hashes:,} hashes, "
                f"{report.hashrate:.1f} hash/s aggregate, "
                f"adaptive chunk {report.chunk}"
            )
            health = report.health
            degraded = sum(health.degradations.values())
            print(
                f"health : respawns={health.respawns} "
                f"timeouts={health.chunk_timeouts} "
                f"requeues={health.requeues} "
                f"poisoned={health.poisoned_seeds} "
                f"degraded={degraded}"
                + ("" if health.healthy else "  [degraded run]")
            )
    finally:
        if engine is not None:
            engine.close()
    print(f"chain height {chain.height()}, total work {chain.total_work():.1f}")
    return 0


def cmd_pool(args) -> int:
    """Run the stratum-style mining-pool server.

    Hands out header templates from a fresh chain at ``--difficulty``,
    grades shares at per-client vardiff difficulty starting from
    ``--share-difficulty``, and drains submissions through the batched
    verifier.  ``--duration`` bounds the run (default: until Ctrl-C).
    """
    import asyncio

    from repro.baselines.sha256d import Sha256d
    from repro.blockchain.chain import Blockchain
    from repro.blockchain.difficulty import RetargetSchedule
    from repro.blockchain.ledger import Ledger
    from repro.blockchain.mempool import Mempool
    from repro.core.pow import difficulty_to_target, target_to_compact
    from repro.pool import ChainTemplateSource, PoolConfig, PoolServer

    pow_fn = Sha256d() if args.pow == "sha256d" else _hashcore(args)
    chain = Blockchain(
        pow_fn,
        genesis_bits=target_to_compact(difficulty_to_target(args.difficulty)),
        schedule=RetargetSchedule(interval=10_000),
    )
    source = ChainTemplateSource(chain, Mempool(Ledger()))
    config = PoolConfig(
        host=args.host,
        port=args.port,
        share_difficulty=args.share_difficulty,
        vardiff=not args.no_vardiff,
        batched_verify=not args.per_share_verify,
    )

    async def serve() -> None:
        server = PoolServer(pow_fn, source, config)
        await server.start()
        print(f"pool listening on {config.host}:{server.port} "
              f"({pow_fn.name}, block difficulty {args.difficulty}, "
              f"share difficulty {args.share_difficulty})")
        loop = asyncio.get_running_loop()
        deadline = None if args.duration is None else (
            loop.time() + args.duration
        )
        try:
            while deadline is None or loop.time() < deadline:
                wait = args.refresh
                if deadline is not None:
                    wait = min(wait, max(0.0, deadline - loop.time()))
                await asyncio.sleep(wait)
                if deadline is None or loop.time() < deadline:
                    server.rotate_job(clean=False)  # timestamp refresh
        finally:
            await server.stop()
            stats = server.stats
            print(f"shares : accepted={stats.accepted} stale={stats.stale} "
                  f"invalid={stats.invalid} duplicate={stats.duplicate}")
            print(f"clients: sessions={stats.sessions} "
                  f"connections={stats.connections} bans={stats.bans} "
                  f"slow-disconnects={stats.slow_disconnects}")
            print(f"blocks : found={stats.blocks_found} "
                  f"chain height {chain.height()}")
            batching = server.verifier.stats
            print(f"verify : {batching.shares} shares in {batching.batches} "
                  f"batches (mean {batching.mean_batch:.1f}/batch)")

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_widgetpool(args) -> int:
    """Build a widget pool and report the §VI-A selection stats."""
    from repro.core.default_profile import default_profile
    from repro.widgetgen.pool import WidgetPool

    profile = _profile(args) or default_profile()
    pool = WidgetPool(profile, _params(args), pool_size=args.size)
    mean = pool.storage_bytes() / len(pool)
    print(f"pool size      : {len(pool)} widgets")
    print(f"storage        : {pool.storage_bytes():,} bytes "
          f"({mean:.0f} bytes/widget)")
    print(f"fingerprint    : {pool.fingerprint()}")
    print(f"SPEC-scale pool: ~{mean * 430_000 / 1e6:.0f} MB "
          "(430k-widget corpus, cf. §VI-A 'several gigabytes')")
    return 0


def cmd_simulate(args) -> int:
    """Run the statistical mining-network simulator."""
    from repro.blockchain.difficulty import RetargetSchedule
    from repro.blockchain.network import simulate_network

    hashrates = [float(x) for x in args.hashrates.split(",")]
    schedule = RetargetSchedule(block_time=args.block_time)
    result = simulate_network(
        hashrates, args.blocks, schedule,
        initial_difficulty=args.initial_difficulty, seed=args.seed,
    )
    shares = result.miner_shares(len(hashrates))
    print(json.dumps({
        "blocks": len(result.block_times),
        "mean_block_time": round(result.mean_block_time(), 2),
        "final_difficulty": round(result.difficulties[-1], 1),
        "miner_shares": [round(s, 4) for s in shares],
        "orphan_candidates": result.orphan_candidates,
    }, indent=2))
    return 0


def _parse_partition(spec: str):
    """``start:end:0,1/2,3`` → :class:`~repro.blockchain.faults.Partition`."""
    from repro.blockchain.faults import Partition

    try:
        start, end, groups = spec.split(":")
        return Partition(
            start=int(start),
            end=int(end),
            groups=tuple(
                tuple(int(n) for n in group.split(","))
                for group in groups.split("/")
            ),
        )
    except ValueError:
        raise ReproError(
            f"bad partition spec {spec!r}, want start:end:0,1/2,3"
        ) from None


def _parse_crash(spec: str):
    """``node:at:restart_at`` → :class:`~repro.blockchain.faults.Crash`."""
    from repro.blockchain.faults import Crash

    try:
        node, at, restart_at = (int(x) for x in spec.split(":"))
    except ValueError:
        raise ReproError(
            f"bad crash spec {spec!r}, want node:at:restart_at"
        ) from None
    return Crash(node=node, at=at, restart_at=restart_at)


def cmd_chaos(args) -> int:
    """Run a fault-injection chaos scenario and print the JSON report.

    Exit code 0 when every invariant held and the honest nodes converged;
    1 otherwise — so a chaos run slots straight into CI.
    """
    from repro.blockchain.faults import ByzantinePeer, LinkFaults, Scenario
    from repro.blockchain.sim import ChaosRunner

    if args.scenario is not None:
        with open(args.scenario, encoding="utf-8") as handle:
            scenario = Scenario.from_dict(json.load(handle))
        if args.seed is not None:
            scenario = scenario.with_seed(args.seed)
        if args.relay is not None or args.fanout is not None:
            scenario = scenario.with_relay(
                args.relay if args.relay is not None else scenario.relay,
                fanout=args.fanout,
            )
    else:
        byzantine = ()
        if args.byzantine:
            byzantine = (ByzantinePeer(every=args.byzantine),)
        scenario = Scenario(
            n_nodes=args.nodes,
            seed=args.seed if args.seed is not None else 1,
            ticks=args.ticks,
            link=LinkFaults(
                delay=args.delay, jitter=args.jitter,
                drop=args.drop, duplicate=args.duplicate,
            ),
            partitions=tuple(_parse_partition(s) for s in args.partition),
            crashes=tuple(_parse_crash(s) for s in args.crash),
            byzantine=byzantine,
            relay=args.relay if args.relay is not None else "flood",
            fanout=args.fanout if args.fanout is not None else 0,
        )
    report = ChaosRunner(scenario, store_dir=args.store_dir).run()
    print(report.to_json())
    return 0 if report.ok() else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HashCore (ICDCS 2019) reproduction toolkit",
    )
    parser.add_argument(
        "--machine", choices=sorted(PRESETS), default="ivy-bridge",
        help="simulated GPP preset",
    )
    parser.add_argument(
        "--instructions", type=int, default=20_000,
        help="target dynamic instructions per widget",
    )
    parser.add_argument(
        "--widgets", type=int, default=1, help="widgets per hash (sequential)"
    )
    parser.add_argument(
        "--mode", choices=("auto", "batch", "jit", "fast", "timed"),
        default="auto",
        help="execution engine: 'auto' (default) picks the fastest "
        "functional tier (currently the JIT); 'batch' routes "
        "shared-program groups through the tier-3 lockstep engine "
        "(singletons still run the scalar JIT); 'jit'/'fast' pin a "
        "functional tier; 'timed' runs the timing model (enables "
        "IPC/branch counters)",
    )
    parser.add_argument(
        "--profile", default=None, metavar="JSON",
        help="performance-profile JSON (from `repro profile <workload>`); "
        "default: the baked Leela consensus profile",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("hash", help="compute H(data)")
    p.add_argument("data")
    p.set_defaults(fn=cmd_hash)

    p = sub.add_parser("verify", help="verify a digest by recomputation")
    p.add_argument("data")
    p.add_argument("digest")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("widget", help="inspect the widget a seed selects")
    p.add_argument("seed", help="64-hex-char seed, or any text to gate")
    p.add_argument("--asm", action="store_true", help="print disassembly")
    p.set_defaults(fn=cmd_widget)

    p = sub.add_parser("profile", help="profile a reference workload (JSON)")
    p.add_argument("workload")
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("workloads", help="list the reference workload suite")
    p.set_defaults(fn=cmd_workloads)

    p = sub.add_parser("mine", help="mine a short HashCore chain")
    p.add_argument("--difficulty", type=float, default=4.0)
    p.add_argument("--blocks", type=int, default=2)
    p.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; >1 mines on the persistent engine",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per block on the engine; expiry exits "
        "with a structured deadline-exceeded fault",
    )
    p.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help="hung-chunk watchdog deadline (default: derived from the "
        "measured chunk timing; 0 disables)",
    )
    p.add_argument(
        "--store", default=None, metavar="PATH",
        help="durable block log; an existing log is replayed (resumes "
        "mining from its tip), a missing one is created",
    )
    p.set_defaults(fn=cmd_mine)

    p = sub.add_parser("pool", help="run the stratum-style mining-pool server")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=3333,
                   help="listen port (0: ephemeral)")
    p.add_argument("--share-difficulty", type=float, default=1.0,
                   help="starting per-client share difficulty")
    p.add_argument("--difficulty", type=float, default=1024.0,
                   help="block difficulty of the pool's chain")
    p.add_argument("--pow", choices=("hashcore", "sha256d"),
                   default="hashcore",
                   help="PoW function the pool verifies (sha256d: fast demo)")
    p.add_argument("--no-vardiff", action="store_true",
                   help="pin the share difficulty (disable retargeting)")
    p.add_argument("--per-share-verify", action="store_true",
                   help="verify each share individually instead of batched "
                        "(the baseline bench_poolserver.py races against)")
    p.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                   help="stop after this long (default: run until Ctrl-C)")
    p.add_argument("--refresh", type=float, default=30.0, metavar="SECONDS",
                   help="job timestamp-refresh cadence")
    p.set_defaults(fn=cmd_pool)

    p = sub.add_parser("widgetpool",
                       help="build a widget pool and report §VI-A stats")
    p.add_argument("--size", type=int, default=16)
    p.set_defaults(fn=cmd_widgetpool)

    p = sub.add_parser("chaos", help="fault-injection consensus chaos run")
    p.add_argument("--scenario", default=None, metavar="JSON",
                   help="scenario schedule file (overrides the flags below)")
    p.add_argument("--nodes", type=int, default=4)
    p.add_argument("--ticks", type=int, default=200)
    p.add_argument("--seed", type=int, default=None,
                   help="replay seed (also overrides a --scenario file's)")
    p.add_argument("--delay", type=int, default=1)
    p.add_argument("--jitter", type=int, default=0)
    p.add_argument("--drop", type=float, default=0.0)
    p.add_argument("--duplicate", type=float, default=0.0)
    p.add_argument("--partition", action="append", default=[],
                   metavar="START:END:0,1/2,3",
                   help="scheduled partition (repeatable)")
    p.add_argument("--crash", action="append", default=[],
                   metavar="NODE:AT:RESTART",
                   help="crash/restart event (repeatable)")
    p.add_argument("--byzantine", type=int, default=0, metavar="EVERY",
                   help="add a byzantine peer forging every EVERY ticks")
    p.add_argument("--relay", choices=["flood", "gossip", "compact"],
                   default=None,
                   help="block relay protocol (also overrides a --scenario "
                        "file's; default flood)")
    p.add_argument("--fanout", type=int, default=None, metavar="K",
                   help="gossip relay fanout; 0 = auto (~sqrt(N), default)")
    p.add_argument("--store-dir", default=None, metavar="DIR",
                   help="persist every node's chain to DIR/node{i}.log; "
                        "crash faults then exercise real disk recovery")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("simulate", help="statistical mining-network study")
    p.add_argument("--hashrates", default="100,50,25")
    p.add_argument("--blocks", type=int, default=500)
    p.add_argument("--block-time", type=float, default=30.0)
    p.add_argument("--initial-difficulty", type=float, default=1000.0)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_simulate)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
