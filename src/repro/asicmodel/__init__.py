"""ASIC-advantage modeling.

The paper's motivation (§II, §III) is an economic claim: for PoW functions
that use only a subset of a GPP's resources, "any PoW function that
utilizes only a subset of the resources within a GPP is vulnerable to an
ASIC that mimics the GPP with respect to that subset and strips away
everything else" (§I).  This subpackage turns that argument into a model:

1. a die-area / power inventory of the GPP's resources
   (:mod:`~repro.asicmodel.resources`),
2. a per-PoW-function *utilization vector* — hand-documented for the
   classical baselines, measured from simulator counters for the VM-based
   functions (:func:`~repro.asicmodel.advantage.utilization_from_counters`),
3. the hypothetical best-ASIC construction: strip unused resources, resize
   kept ones to demand, and harden fixed dataflows
   (:class:`~repro.asicmodel.advantage.AsicModel`).

The output — hashrate-per-area and hashrate-per-watt advantage factors —
reproduces the ordering the paper argues for: SHA-256d ≫ scrypt >
Equihash > RandomX-like > HashCore ≈ 1.
"""

from repro.asicmodel.resources import GPP_RESOURCES, Resource, total_area, total_power
from repro.asicmodel.advantage import (
    AsicAdvantage,
    AsicModel,
    PowTraits,
    utilization_from_counters,
)

__all__ = [
    "Resource",
    "GPP_RESOURCES",
    "total_area",
    "total_power",
    "PowTraits",
    "AsicAdvantage",
    "AsicModel",
    "utilization_from_counters",
]
