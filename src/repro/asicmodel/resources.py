"""GPP resource inventory: die area and power of each structure.

The numbers are relative units following published die-shot breakdowns of
Ivy-Bridge-class server cores (LLC ≈ 30-40 % of die, out-of-order engine
and vector units the biggest core blocks).  Only *ratios* matter to the
advantage factors; absolute calibration is irrelevant.

``harden_factor`` is the area an ASIC needs per unit of GPP area when the
computed function is *fixed* (no random code): a hardened SHA-256 dataflow
is far denser than a programmable ALU (factor ≈ 0.2), while SRAM/DRAM is
already near-optimal (factor ≈ 0.7 — ASIC memory saves on ports and
coherence, which is the energy argument of Ren & Devadas [10]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Resource:
    """One GPP structure."""

    name: str
    area: float
    power: float
    #: Relative area/power an ASIC needs for the same throughput when the
    #: function is a fixed dataflow.
    harden_factor: float
    #: True for structures that exist only to run *arbitrary* programs;
    #: a random-code PoW forces an ASIC to keep them outright.
    programmability: bool = False


#: The simulated GPP's inventory (relative units, Ivy-Bridge-like ratios).
GPP_RESOURCES: tuple[Resource, ...] = (
    Resource("frontend", area=12.0, power=6.0, harden_factor=0.0, programmability=True),
    Resource("int_alu", area=6.0, power=4.0, harden_factor=0.2),
    Resource("int_mul", area=4.0, power=3.0, harden_factor=0.25),
    Resource("fp", area=10.0, power=7.0, harden_factor=0.25),
    Resource("vector", area=12.0, power=8.0, harden_factor=0.3),
    Resource("branch_predictor", area=4.0, power=2.0, harden_factor=0.0, programmability=True),
    Resource("ooo_window", area=14.0, power=9.0, harden_factor=0.0, programmability=True),
    Resource("l1", area=4.0, power=3.0, harden_factor=0.7),
    Resource("l2", area=10.0, power=4.0, harden_factor=0.7),
    Resource("l3", area=45.0, power=10.0, harden_factor=0.7),
    Resource("mem", area=8.0, power=4.0, harden_factor=0.7),
)

RESOURCE_NAMES = tuple(r.name for r in GPP_RESOURCES)


def total_area() -> float:
    """Total GPP die area (relative units)."""
    return sum(r.area for r in GPP_RESOURCES)


def total_power() -> float:
    """Total GPP power (relative units)."""
    return sum(r.power for r in GPP_RESOURCES)
