"""The best-ASIC construction and its advantage factors.

Model (documented, deliberately simple):

* The GPP runs the PoW at some throughput using every resource at
  utilization ``u_r``; hashrate-per-area is ``1 / total_gpp_area``.
* A rational ASIC designer, for the same throughput per pipeline:

  - **drops** resources with negligible utilization (``u_r < 0.02``) —
    unless the PoW executes *random code*, which forces programmability
    resources (frontend, OoO window; the predictor only if the code
    branches) to stay at full size (§IV-A Code Randomization is exactly
    the countermeasure that triggers this);
  - **resizes** kept resources to demand (area × max(u_r, floor)); the
    floor is high for random-code PoW (the next program may stress the
    unit fully) and low for fixed functions;
  - **hardens** fixed dataflows (area × harden_factor): only possible
    when the function is fixed — random code must keep programmable
    units.

* Advantage factors are area and power ratios GPP/ASIC: hashrate-per-dollar
  and hashrate-per-watt multipliers available to custom hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asicmodel.resources import GPP_RESOURCES, total_area, total_power
from repro.errors import ConfigError
from repro.machine.config import MachineConfig
from repro.machine.perf_counters import PerfCounters

_DROP_THRESHOLD = 0.02
_FIXED_FLOOR = 0.10
_RANDOM_FLOOR = 0.80


@dataclass(frozen=True, slots=True)
class PowTraits:
    """What an ASIC designer may assume about the PoW function."""

    #: True when the computed function is one fixed dataflow (SHA-256d,
    #: scrypt, Equihash); False for random-code PoW (HashCore, RandomX).
    fixed_function: bool
    #: True when evaluation includes generating/compiling a program — extra
    #: machinery an ASIC must carry (§IV-B's three-program pipeline).
    requires_generation: bool = False


@dataclass(slots=True)
class AsicAdvantage:
    """Result of the best-ASIC construction for one PoW function."""

    name: str
    area_advantage: float
    energy_advantage: float
    asic_area: float
    asic_power: float
    kept: dict[str, float] = field(default_factory=dict)

    def row(self) -> str:
        """One formatted table row (used by the E8 bench and example)."""
        return (
            f"{self.name:<14s} area x{self.area_advantage:8.1f}   "
            f"energy x{self.energy_advantage:6.1f}   "
            f"asic area {self.asic_area:6.1f}/{total_area():.0f}"
        )


class AsicModel:
    """Evaluate the best-ASIC advantage for a PoW function."""

    def __init__(self, drop_threshold: float = _DROP_THRESHOLD) -> None:
        if not 0.0 <= drop_threshold < 1.0:
            raise ConfigError("drop_threshold must be in [0, 1)")
        self.drop_threshold = drop_threshold

    def advantage(
        self,
        name: str,
        utilization: dict[str, float],
        traits: PowTraits,
    ) -> AsicAdvantage:
        """Compute advantage factors for a utilization vector."""
        for key, value in utilization.items():
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"utilization[{key}]={value} out of range")
        floor = _FIXED_FLOOR if traits.fixed_function else _RANDOM_FLOOR
        asic_area = 0.0
        asic_power = 0.0
        kept: dict[str, float] = {}
        for resource in GPP_RESOURCES:
            u = utilization.get(resource.name, 0.0)
            if resource.programmability:
                if traits.fixed_function:
                    continue  # fixed dataflow: control machinery removed
                if resource.name == "branch_predictor" and u < self.drop_threshold:
                    continue  # branch-free random code: predictor pointless
                kept[resource.name] = resource.area
                asic_area += resource.area
                asic_power += resource.power
                continue
            if u < self.drop_threshold:
                continue  # stripped away entirely
            if traits.fixed_function:
                scale = max(u, _FIXED_FLOOR) * resource.harden_factor
            else:
                # Random code: the unit stays programmable; it can only be
                # modestly down-sized because the next program may load it
                # fully (§IV-A).
                scale = max(u, floor)
            kept[resource.name] = resource.area * scale
            asic_area += resource.area * scale
            asic_power += resource.power * scale
        if traits.requires_generation:
            # Generation + compilation machinery: carried at the cost of a
            # frontend-sized block (the paper notes this "may increase the
            # difficulty of developing custom hardware", §IV-B).
            asic_area += 12.0
            asic_power += 6.0
        asic_area = max(asic_area, 1e-9)
        asic_power = max(asic_power, 1e-9)
        return AsicAdvantage(
            name=name,
            area_advantage=total_area() / asic_area,
            energy_advantage=total_power() / asic_power,
            asic_area=asic_area,
            asic_power=asic_power,
            kept=kept,
        )


def utilization_from_counters(
    counters: PerfCounters, config: MachineConfig
) -> dict[str, float]:
    """Measure a utilization vector from a simulated run.

    Per-unit occupancy = issued operations per cycle over the unit's
    sustainable throughput; cache levels and DRAM from access rates; the
    predictor from conditional-branch density; frontend and window from
    achieved IPC.  Heuristic but measured — the same code path serves
    HashCore widgets and the RandomX-like baseline.
    """
    cycles = max(counters.cycles, 1.0)
    retired = max(counters.retired, 1)
    per_cycle = lambda count, throughput: min(1.0, count / cycles / throughput)
    mix = counters.mix_fractions()
    accesses = counters.loads + counters.stores
    l1_misses = max(0, accesses - counters.l1_hits)
    l2_misses = max(0, l1_misses - counters.l2_hits)
    return {
        "frontend": min(1.0, counters.ipc / config.issue_width + 0.25),
        "int_alu": per_cycle(counters.class_counts[0], 3.0),
        "int_mul": per_cycle(counters.class_counts[1], 0.33),
        "fp": per_cycle(counters.class_counts[2], 1.0),
        "vector": per_cycle(counters.class_counts[6], 0.5),
        "branch_predictor": min(1.0, 5.0 * mix["branch"]),
        "ooo_window": min(1.0, counters.ipc / config.issue_width + 0.35),
        "l1": per_cycle(accesses, 2.0),
        "l2": per_cycle(l1_misses, 0.1),
        "l3": per_cycle(l2_misses, 0.05),
        "mem": per_cycle(counters.dram_accesses, 0.02),
    }
