"""Generalized-birthday PoW: a small-parameter Equihash.

Equihash [1] asks for ``2^k`` hash-output indices whose XOR is zero on
``n`` bits, found with Wagner's k-round collision algorithm over lists of
``~2^(n/(k+1)+1)`` entries — memory-hard because the lists must be held
and sorted.  This is the real algorithm at reduced parameters
(``n = 48, k = 3`` by default: 8 Ki-entry lists, three 12-bit collision
rounds) so a pure-Python solver runs in tens of milliseconds.

As a ``PowFunction`` the solver output (or, when a run finds no solution,
a distinguished miss marker) is hashed with the input to a 32-byte digest,
so the function composes with the standard target check like any other.
"""

from __future__ import annotations

import hashlib
import struct

from repro.errors import PowError


class EquihashLike:
    """Wagner-style generalized-birthday PoW."""

    name = "equihash-like"

    def __init__(self, n: int = 48, k: int = 3) -> None:
        if k < 1 or n % (k + 1):
            raise PowError(f"need k >= 1 and (k+1) | n, got n={n} k={k}")
        self.n = n
        self.k = k
        self.collision_bits = n // (k + 1)
        self.list_size = 1 << (self.collision_bits + 1)

    # ------------------------------------------------------------------
    def _initial_list(self, seed: bytes) -> list[tuple[int, tuple[int, ...]]]:
        """(hash value, index tuple) entries from the seeded hash stream."""
        entries = []
        mask = (1 << self.n) - 1
        for i in range(self.list_size):
            digest = hashlib.sha256(seed + struct.pack("<I", i)).digest()
            value = int.from_bytes(digest[: (self.n + 7) // 8 + 1], "big") & mask
            entries.append((value, (i,)))
        return entries

    def solve(self, seed: bytes) -> list[tuple[int, ...]] | None:
        """Run Wagner's algorithm; returns solutions (index tuples) or None.

        Each round buckets entries by their lowest ``collision_bits`` bits
        and XOR-combines colliding pairs with disjoint index sets; after
        ``k`` rounds any zero-valued entry is a solution.
        """
        entries = self._initial_list(seed)
        shift = self.collision_bits
        for round_index in range(self.k):
            buckets: dict[int, list[tuple[int, tuple[int, ...]]]] = {}
            for value, indices in entries:
                buckets.setdefault(value & ((1 << shift) - 1), []).append((value, indices))
            combined: list[tuple[int, tuple[int, ...]]] = []
            for group in buckets.values():
                for i in range(len(group)):
                    value_i, idx_i = group[i]
                    for j in range(i + 1, len(group)):
                        value_j, idx_j = group[j]
                        if set(idx_i) & set(idx_j):
                            continue  # distinct-index constraint
                        combined.append((
                            (value_i ^ value_j) >> shift,
                            tuple(sorted(idx_i + idx_j)),
                        ))
            entries = combined
            if not entries:
                return None
        solutions = sorted({idx for value, idx in entries if value == 0})
        return list(solutions) or None

    @staticmethod
    def verify_solution(seed: bytes, indices: tuple[int, ...], n: int, k: int) -> bool:
        """Check that ``indices`` XOR to zero on ``n`` bits (cheap verify)."""
        if len(indices) != 1 << k or len(set(indices)) != len(indices):
            return False
        mask = (1 << n) - 1
        acc = 0
        for i in indices:
            digest = hashlib.sha256(seed + struct.pack("<I", i)).digest()
            acc ^= int.from_bytes(digest[: (n + 7) // 8 + 1], "big") & mask
        return acc == 0

    # ------------------------------------------------------------------
    def hash(self, data: bytes) -> bytes:
        """PoW digest: the first solution (or a miss marker) hashed with
        the input."""
        seed = hashlib.sha256(data).digest()
        solutions = self.solve(seed)
        if solutions is None:
            payload = b"no-solution"
        else:
            first = solutions[0]
            payload = struct.pack(f"<{len(first)}I", *first)
        return hashlib.sha256(seed + payload).digest()

    def memory_bytes(self) -> int:
        """Rough working-state footprint of the solver lists."""
        return self.list_size * 16

    def resource_profile(self) -> dict[str, float]:
        """GPP utilization: hashing + bucket sort over multi-megabyte lists
        at production parameters — memory and integer dominated, no FP or
        vector, data-dependent but sort-predictable branches."""
        return {
            "frontend": 0.45,
            "int_alu": 0.6,
            "int_mul": 0.05,
            "fp": 0.0,
            "vector": 0.0,
            "branch_predictor": 0.25,
            "ooo_window": 0.45,
            "l1": 0.9,
            "l2": 0.8,
            "l3": 0.7,
            "mem": 0.5,
        }
