"""Sequential memory-hard PoW: a faithful small-parameter scrypt core.

scrypt [9] drives ASIC resistance through *memory-hardness*: ROMix fills a
table of pseudo-random blocks, then revisits them in a data-dependent
order, so an efficient implementation must keep ``N`` blocks of state.
This implementation is the real construction — Salsa20/8 core, BlockMix
with ``r = 1``, ROMix over ``N`` 128-byte blocks — at parameters small
enough for a pure-Python miner (the default ``N = 256`` uses 32 KiB,
versus Litecoin's 128 KiB; the structure and the data-dependent
access pattern are identical).

The paper's critique (§II, [10]): memory units dominate, so an ASIC built
from "many memory units and graph traversal logic" still wins on energy —
visible in this function's resource profile, which exercises caches hard
but leaves multiply/FP/vector/predictor silent.
"""

from __future__ import annotations

import hashlib
import struct

from repro.errors import PowError

_MASK32 = 0xFFFFFFFF


def _rotl32(x: int, k: int) -> int:
    return ((x << k) | (x >> (32 - k))) & _MASK32


def salsa20_8(words: list[int]) -> list[int]:
    """Salsa20/8 core over 16 little-endian u32 words."""
    if len(words) != 16:
        raise PowError("salsa20/8 needs exactly 16 words")
    x = list(words)
    for _ in range(4):  # 8 rounds = 4 double-rounds
        # Column round.
        x[4] ^= _rotl32((x[0] + x[12]) & _MASK32, 7)
        x[8] ^= _rotl32((x[4] + x[0]) & _MASK32, 9)
        x[12] ^= _rotl32((x[8] + x[4]) & _MASK32, 13)
        x[0] ^= _rotl32((x[12] + x[8]) & _MASK32, 18)
        x[9] ^= _rotl32((x[5] + x[1]) & _MASK32, 7)
        x[13] ^= _rotl32((x[9] + x[5]) & _MASK32, 9)
        x[1] ^= _rotl32((x[13] + x[9]) & _MASK32, 13)
        x[5] ^= _rotl32((x[1] + x[13]) & _MASK32, 18)
        x[14] ^= _rotl32((x[10] + x[6]) & _MASK32, 7)
        x[2] ^= _rotl32((x[14] + x[10]) & _MASK32, 9)
        x[6] ^= _rotl32((x[2] + x[14]) & _MASK32, 13)
        x[10] ^= _rotl32((x[6] + x[2]) & _MASK32, 18)
        x[3] ^= _rotl32((x[15] + x[11]) & _MASK32, 7)
        x[7] ^= _rotl32((x[3] + x[15]) & _MASK32, 9)
        x[11] ^= _rotl32((x[7] + x[3]) & _MASK32, 13)
        x[15] ^= _rotl32((x[11] + x[7]) & _MASK32, 18)
        # Row round.
        x[1] ^= _rotl32((x[0] + x[3]) & _MASK32, 7)
        x[2] ^= _rotl32((x[1] + x[0]) & _MASK32, 9)
        x[3] ^= _rotl32((x[2] + x[1]) & _MASK32, 13)
        x[0] ^= _rotl32((x[3] + x[2]) & _MASK32, 18)
        x[6] ^= _rotl32((x[5] + x[4]) & _MASK32, 7)
        x[7] ^= _rotl32((x[6] + x[5]) & _MASK32, 9)
        x[4] ^= _rotl32((x[7] + x[6]) & _MASK32, 13)
        x[5] ^= _rotl32((x[4] + x[7]) & _MASK32, 18)
        x[11] ^= _rotl32((x[10] + x[9]) & _MASK32, 7)
        x[8] ^= _rotl32((x[11] + x[10]) & _MASK32, 9)
        x[9] ^= _rotl32((x[8] + x[11]) & _MASK32, 13)
        x[10] ^= _rotl32((x[9] + x[8]) & _MASK32, 18)
        x[12] ^= _rotl32((x[15] + x[14]) & _MASK32, 7)
        x[13] ^= _rotl32((x[12] + x[15]) & _MASK32, 9)
        x[14] ^= _rotl32((x[13] + x[12]) & _MASK32, 13)
        x[15] ^= _rotl32((x[14] + x[13]) & _MASK32, 18)
    return [(x[i] + words[i]) & _MASK32 for i in range(16)]


def _block_mix(block: list[int]) -> list[int]:
    """BlockMix with r=1: two 64-byte halves through the Salsa core."""
    x = block[16:32]
    out = []
    for half in (block[0:16], block[16:32]):
        x = salsa20_8([a ^ b for a, b in zip(x, half)])
        out.append(x)
    return out[0] + out[1]


class ScryptLike:
    """Sequential memory-hard PoW (scrypt with small parameters)."""

    name = "scrypt-like"

    def __init__(self, n: int = 256) -> None:
        if n < 2 or n & (n - 1):
            raise PowError(f"N must be a power of two >= 2, got {n}")
        self.n = n

    def hash(self, data: bytes) -> bytes:
        # Key expansion: 128 bytes (32 u32 words) from SHA-256 chaining.
        seed = hashlib.sha256(data).digest()
        material = b""
        counter = 0
        while len(material) < 128:
            material += hashlib.sha256(seed + bytes([counter])).digest()
            counter += 1
        block = list(struct.unpack("<32I", material[:128]))

        # ROMix: fill, then data-dependent gather.
        table = []
        for _ in range(self.n):
            table.append(block)
            block = _block_mix(block)
        for _ in range(self.n):
            j = block[16] % self.n  # integerify: first word of second half
            block = _block_mix([a ^ b for a, b in zip(block, table[j])])

        return hashlib.sha256(struct.pack("<32I", *block)).digest()

    def memory_bytes(self) -> int:
        """Bytes of state an efficient evaluation must hold."""
        return self.n * 128

    def resource_profile(self) -> dict[str, float]:
        """GPP resource utilization of a scrypt miner.

        Salsa rounds are add/xor/rotate (integer ALU); ROMix's second loop
        streams data-dependent 128-byte blocks through the cache level that
        fits ``N``.  Multiply, FP, vector, and the branch predictor stay
        idle — the structure a memory-plus-mixer ASIC strips away.
        """
        in_l1 = self.memory_bytes() <= 32 * 1024
        return {
            "frontend": 0.35,
            "int_alu": 0.75,
            "int_mul": 0.0,
            "fp": 0.0,
            "vector": 0.0,
            "branch_predictor": 0.02,
            "ooo_window": 0.35,
            "l1": 0.9,
            "l2": 0.0 if in_l1 else 0.9,
            "l3": 0.0,
            "mem": 0.0,
        }
