"""Random-program VM PoW — the RandomX-style alternative (§VI-C).

RandomX "constructs a virtual machine that attempts to simulate a generic
GPP … generating a random program to fit into the VM they define before
executing it, followed by a hash on the output."  The paper positions this
as the main alternative generation strategy to inverted benchmarking: it
targets *explicit uniform utilization* of each computational structure
instead of matching a profiled workload.

This baseline does exactly that on the same synthetic ISA and simulated
machine HashCore uses: a seed-derived program with a *uniform* class mix
(every unit exercised equally), a register-file dataflow, a scratchpad for
loads/stores, and a final hash over the register-snapshot output.  The
contrast with HashCore is therefore purely the generation methodology —
which is the comparison §VI-C calls for.
"""

from __future__ import annotations

import hashlib

from repro.errors import PowError
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.machine.cpu import Machine
from repro.machine.perf_counters import PerfCounters
from repro.rng import Xoshiro256

#: Scratchpad: 256 KiB (RandomX uses a 2 MiB scratchpad at full scale).
SCRATCH_WORDS = 1 << 15

# One representative opcode bag per resource class; classes are drawn
# uniformly — "explicit utilization of each computational structure".
_CLASS_BAGS = (
    (Opcode.ADD, Opcode.SUB, Opcode.XOR, Opcode.AND, Opcode.OR, Opcode.SHL, Opcode.SHR),
    (Opcode.MUL, Opcode.MULHI, Opcode.DIV),
    (Opcode.FADD, Opcode.FMUL, Opcode.FSUB, Opcode.FDIV),
    ("load",),
    ("store",),
    (Opcode.VADD, Opcode.VMUL, Opcode.VFMA),
)

_DATA_INT = tuple(range(4, 12))  # r4-r11 dataflow; r0-r3 reserved below
_DATA_FP = tuple(range(0, 6))
_DATA_VEC = (0, 1, 2, 3)
_PTR = 1      # scratchpad pointer
_MASKREG = 2  # scratchpad mask
_LOOP = 3     # loop counter


class RandomXLike:
    """Uniform random-program PoW on the synthetic GPP."""

    name = "randomx-like"

    def __init__(
        self,
        machine: Machine | None = None,
        program_size: int = 256,
        loop_trips: int = 64,
        snapshot_interval: int = 512,
    ) -> None:
        if program_size < 16:
            raise PowError("program_size must be >= 16")
        if loop_trips < 1:
            raise PowError("loop_trips must be >= 1")
        self.machine = machine or Machine()
        self.program_size = program_size
        self.loop_trips = loop_trips
        self.snapshot_interval = snapshot_interval

    # ------------------------------------------------------------------
    def generate_program(self, seed: bytes) -> Program:
        """Uniform random program for ``seed`` (pure function of it)."""
        rng = Xoshiro256(int.from_bytes(seed[:8], "little"))
        b = ProgramBuilder(f"randomx-{seed[:6].hex()}")
        b.movi(_PTR, 0)
        b.movi(_MASKREG, SCRATCH_WORDS - 1)
        for i, reg in enumerate(_DATA_INT):
            value = int.from_bytes(seed[8:16], "little") ^ (0x9E37 * (i + 1))
            b.movi(reg, value & ((1 << 62) - 1))
        for i, freg in enumerate(_DATA_FP):
            b.movi(0, (int.from_bytes(seed[16:20], "little") + i) & 0xFFFFF)
            b.cvtif(freg, 0)
        with b.loop(_LOOP, self.loop_trips):
            for _ in range(self.program_size):
                self._emit_random_op(b, rng)
            # Advance the scratchpad pointer data-dependently, as RandomX
            # derives addresses from register state.
            b.add(_PTR, _PTR, rng.choice(_DATA_INT))
            b.and_(_PTR, _PTR, _MASKREG)
        b.halt()
        return b.build()

    def _emit_random_op(self, b: ProgramBuilder, rng: Xoshiro256) -> None:
        bag = _CLASS_BAGS[rng.next_u64() % len(_CLASS_BAGS)]
        op = bag[rng.next_u64() % len(bag)]
        if op == "load":
            b.load(rng.choice(_DATA_INT), _PTR, rng.randint(0, 63))
        elif op == "store":
            b.store(rng.choice(_DATA_INT), _PTR, rng.randint(0, 63))
        elif isinstance(op, Opcode) and op.name.startswith("V"):
            b.emit(op, rng.choice(_DATA_VEC), rng.choice(_DATA_VEC), rng.choice(_DATA_VEC))
        elif isinstance(op, Opcode) and op.name.startswith("F"):
            b.emit(op, rng.choice(_DATA_FP), rng.choice(_DATA_FP), rng.choice(_DATA_FP))
        else:
            b.emit(op, rng.choice(_DATA_INT), rng.choice(_DATA_INT), rng.choice(_DATA_INT))

    # ------------------------------------------------------------------
    def run(self, seed: bytes) -> tuple[bytes, PerfCounters]:
        """Generate + execute the seed's program; returns (output, counters)."""
        program = self.generate_program(seed)
        memory = self.machine.new_memory()
        memory.fill_random(int.from_bytes(seed[8:16], "little"), 0, SCRATCH_WORDS)
        result = self.machine.run(
            program,
            memory,
            max_instructions=40 * self.program_size * self.loop_trips + 10_000,
            snapshot_interval=self.snapshot_interval,
        )
        return result.output, result.counters

    def hash(self, data: bytes) -> bytes:
        seed = hashlib.sha256(data).digest()
        output, _ = self.run(seed)
        return hashlib.sha256(seed + output).digest()

    def resource_profile(self) -> dict[str, float]:
        """Measured-style utilization: uniform over compute units, low
        branch-predictor pressure (the only branches are counted loops)."""
        return {
            "frontend": 0.8,
            "int_alu": 0.5,
            "int_mul": 0.5,
            "fp": 0.5,
            "vector": 0.5,
            "branch_predictor": 0.1,
            "ooo_window": 0.8,
            "l1": 0.8,
            "l2": 0.6,
            "l3": 0.2,
            "mem": 0.1,
        }
