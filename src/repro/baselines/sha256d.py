"""Bitcoin's PoW function: double SHA-256.

The ASIC-friendly extreme of the spectrum: a fixed dataflow of 32-bit
bitwise/add operations with a few hundred bytes of state and no memory
traffic — exactly the kind of function for which "custom hardware can be
built that will materially outperform general purpose hardware" (§IV-A).
Its resource profile reflects that: only the integer ALU is exercised, and
only a sliver of it.
"""

from __future__ import annotations

import hashlib


class Sha256d:
    """Double SHA-256 PoW (Bitcoin)."""

    name = "sha256d"

    def hash(self, data: bytes) -> bytes:
        return hashlib.sha256(hashlib.sha256(data).digest()).digest()

    @staticmethod
    def resource_profile() -> dict[str, float]:
        """GPP resource utilization of a SHA-256d miner.

        A software SHA-256 inner loop uses 32-bit logical/add operations
        almost exclusively; it never multiplies, touches floating point or
        vectors (scalar reference code), misses no caches (the message
        schedule fits in registers/L1), and is branch-free.  These numbers
        parameterise the ASIC-advantage model (E8).
        """
        return {
            "frontend": 0.30,   # tiny fixed loop: decode bandwidth barely used
            "int_alu": 0.90,
            "int_mul": 0.0,
            "fp": 0.0,
            "vector": 0.0,
            "branch_predictor": 0.02,
            "ooo_window": 0.30,
            "l1": 0.05,
            "l2": 0.0,
            "l3": 0.0,
            "mem": 0.0,
        }
