"""Baseline PoW functions (§II related work, §VI-C alternatives).

Every baseline implements the :class:`~repro.core.pow.PowFunction`
interface so the miner, the blockchain, and the ASIC-advantage experiments
can swap them for HashCore:

* :class:`~repro.baselines.sha256d.Sha256d` — Bitcoin's double SHA-256,
  the ASIC-friendly extreme.
* :class:`~repro.baselines.scrypt_like.ScryptLike` — sequential
  memory-hard ROMix (scrypt [9]).
* :class:`~repro.baselines.equihash_like.EquihashLike` — memory-hard
  generalized-birthday PoW (Equihash [1]).
* :class:`~repro.baselines.randomx_like.RandomXLike` — random-program VM
  PoW (§VI-C): uniform random code on the same synthetic ISA, *without*
  inverted benchmarking's profile matching — the head-to-head contrast for
  HashCore's generation strategy.
"""

from repro.baselines.sha256d import Sha256d
from repro.baselines.scrypt_like import ScryptLike
from repro.baselines.equihash_like import EquihashLike
from repro.baselines.randomx_like import RandomXLike

ALL_BASELINES = (Sha256d, ScryptLike, EquihashLike, RandomXLike)

__all__ = ["Sha256d", "ScryptLike", "EquihashLike", "RandomXLike", "ALL_BASELINES"]
