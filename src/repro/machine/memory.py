"""Simulated main memory: a flat, word-addressed array of 64-bit values.

Addresses wrap modulo the (power-of-two) memory size, so no program can
fault on a wild address — a property the widget generator relies on: any
seed-derived address stream is safe to execute.

Storage is a raw byte buffer exposed as a ``memoryview`` cast to 64-bit
words: indexing it returns and accepts plain Python ints (so every
interpreter tier uses it exactly like the historical list backend), while
bulk initialisation writes through a zero-copy numpy view of the same
buffer when numpy is available.  The buffer backend makes a fresh
machine-sized memory an allocation instead of a 2M-element Python list
build — the single largest per-hash cost in the fresh-widget (mining)
regime — and bulk fills no longer round-trip numpy output through
``tolist``.  The scalar fill implementations remain authoritative and
bit-identical.
"""

from __future__ import annotations

import sys

from repro.errors import ConfigError
from repro.rng import MASK64, Xoshiro256, splitmix64

try:  # numpy accelerates bulk fills; the scalar path is authoritative.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None


def _splitmix64_block(seed: int, count: int) -> list[int]:
    """``count`` SplitMix64 outputs for stream ``seed`` (scalar reference)."""
    return [splitmix64((seed + i) & MASK64) for i in range(1, count + 1)]


def _splitmix64_block_np(seed: int, count: int):
    """Vectorised twin of :func:`_splitmix64_block` (uint64 wraps like the
    scalar code masks).  Returns a numpy ``uint64`` array."""
    with _np.errstate(over="ignore"):
        x = _np.arange(1, count + 1, dtype=_np.uint64) + _np.uint64(seed & MASK64)
        z = x + _np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> _np.uint64(31))
    return z


class Memory:
    """Word-addressed simulated RAM."""

    __slots__ = ("_buf", "words", "mask", "size_words")

    def __init__(self, size_words: int) -> None:
        if size_words <= 0 or size_words & (size_words - 1):
            raise ConfigError(f"memory size must be a positive power of two, got {size_words}")
        self.size_words = size_words
        self.mask = size_words - 1
        self._buf = bytearray(size_words * 8)
        # Plain-int indexing view: words[i] returns/accepts Python ints in
        # [0, 2**64), which is exactly the invariant every store site keeps.
        self.words = memoryview(self._buf).cast("Q")

    # ------------------------------------------------------------------
    # pickling: memoryviews don't pickle, the raw bytes do
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple[int, bytes]:
        return (self.size_words, bytes(self._buf))

    def __setstate__(self, state: tuple[int, bytes]) -> None:
        size_words, raw = state
        self.size_words = size_words
        self.mask = size_words - 1
        self._buf = bytearray(raw)
        self.words = memoryview(self._buf).cast("Q")

    # ------------------------------------------------------------------
    # direct access (the CPU inlines these for speed; they exist for
    # workload setup and tests)
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        return self.words[addr & self.mask]

    def write(self, addr: int, value: int) -> None:
        self.words[addr & self.mask] = value & MASK64

    def np_words(self):
        """Zero-copy numpy ``uint64`` view of the whole memory, or ``None``
        when numpy is unavailable.  Writes through the view are visible to
        :attr:`words` immediately (same buffer) — bulk fills and the batch
        execution tier use this instead of materialising Python ints."""
        if _np is None:
            return None
        return _np.frombuffer(self._buf, dtype=_np.uint64)

    # ------------------------------------------------------------------
    # deterministic initialisation helpers
    # ------------------------------------------------------------------
    def fill_random(self, seed: int, start: int, count: int) -> None:
        """Fill ``count`` words from ``start`` with SplitMix64(seed) output.

        The contents depend only on ``(seed, start, count)``.
        """
        if count < 0:
            raise ConfigError("count must be non-negative")
        start &= self.mask
        if _np is not None and count >= 1024 and count <= self.size_words:
            block = _splitmix64_block_np(seed, count)
            view = self.np_words()
            first = self.size_words - start
            if count <= first:
                view[start : start + count] = block
            else:  # wraps once: two in-order slice writes
                view[start:] = block[:first]
                view[: count - first] = block[first:]
            return
        words, mask = self.words, self.mask
        for offset, value in enumerate(_splitmix64_block(seed, count)):
            words[(start + offset) & mask] = value

    def fill_pointer_ring(self, seed: int, start: int, count: int) -> None:
        """Install a pointer-chasing ring over ``count`` slots from ``start``.

        Each slot holds the absolute word address of the next slot in a
        single random cycle, so ``addr = mem[addr]`` visits every slot before
        repeating — the classic dependent-load pattern used by
        latency-bound workload phases and by widget memory streams.
        """
        if count < 2:
            raise ConfigError("pointer ring needs at least 2 slots")
        order = list(range(count))
        rng = Xoshiro256(seed)
        rng.shuffle(order)
        words, mask = self.words, self.mask
        for i in range(count):
            src = (start + order[i]) & mask
            dst = (start + order[(i + 1) % count]) & mask
            words[src] = dst

    def fill_value(self, value: int, start: int, count: int) -> None:
        """Set ``count`` words from ``start`` to a constant."""
        value &= MASK64
        start &= self.mask
        if start + count <= self.size_words:
            # One buffer-level splice: no per-word Python loop.
            self._buf[start * 8 : (start + count) * 8] = (
                value.to_bytes(8, sys.byteorder) * count
            )
        else:
            words, mask = self.words, self.mask
            for offset in range(count):
                words[(start + offset) & mask] = value
