"""Simulated main memory: a flat, word-addressed array of 64-bit values.

Addresses wrap modulo the (power-of-two) memory size, so no program can
fault on a wild address — a property the widget generator relies on: any
seed-derived address stream is safe to execute.

Deterministic bulk initialisation uses a vectorised SplitMix64 when numpy is
available (milliseconds for millions of words) and falls back to the scalar
implementation otherwise, producing bit-identical contents either way.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.rng import MASK64, Xoshiro256, splitmix64

try:  # numpy accelerates bulk fills; the scalar path is authoritative.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is installed in CI
    _np = None


def _splitmix64_block(seed: int, count: int) -> list[int]:
    """``count`` SplitMix64 outputs for stream ``seed`` (scalar reference)."""
    return [splitmix64((seed + i) & MASK64) for i in range(1, count + 1)]


def _splitmix64_block_np(seed: int, count: int) -> list[int]:
    """Vectorised twin of :func:`_splitmix64_block` (uint64 wraps like the
    scalar code masks)."""
    with _np.errstate(over="ignore"):
        x = _np.arange(1, count + 1, dtype=_np.uint64) + _np.uint64(seed & MASK64)
        z = x + _np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
        z = z ^ (z >> _np.uint64(31))
    return z.tolist()


class Memory:
    """Word-addressed simulated RAM."""

    __slots__ = ("words", "mask", "size_words")

    def __init__(self, size_words: int) -> None:
        if size_words <= 0 or size_words & (size_words - 1):
            raise ConfigError(f"memory size must be a positive power of two, got {size_words}")
        self.size_words = size_words
        self.mask = size_words - 1
        self.words: list[int] = [0] * size_words

    # ------------------------------------------------------------------
    # direct access (the CPU inlines these for speed; they exist for
    # workload setup and tests)
    # ------------------------------------------------------------------
    def read(self, addr: int) -> int:
        return self.words[addr & self.mask]

    def write(self, addr: int, value: int) -> None:
        self.words[addr & self.mask] = value & MASK64

    # ------------------------------------------------------------------
    # deterministic initialisation helpers
    # ------------------------------------------------------------------
    def fill_random(self, seed: int, start: int, count: int) -> None:
        """Fill ``count`` words from ``start`` with SplitMix64(seed) output.

        The contents depend only on ``(seed, start, count)``.
        """
        if count < 0:
            raise ConfigError("count must be non-negative")
        if _np is not None and count >= 1024:
            block = _splitmix64_block_np(seed, count)
        else:
            block = _splitmix64_block(seed, count)
        words, mask = self.words, self.mask
        start &= mask
        if start + count <= self.size_words:
            words[start : start + count] = block
        else:
            for offset, value in enumerate(block):
                words[(start + offset) & mask] = value

    def fill_pointer_ring(self, seed: int, start: int, count: int) -> None:
        """Install a pointer-chasing ring over ``count`` slots from ``start``.

        Each slot holds the absolute word address of the next slot in a
        single random cycle, so ``addr = mem[addr]`` visits every slot before
        repeating — the classic dependent-load pattern used by
        latency-bound workload phases and by widget memory streams.
        """
        if count < 2:
            raise ConfigError("pointer ring needs at least 2 slots")
        order = list(range(count))
        rng = Xoshiro256(seed)
        rng.shuffle(order)
        words, mask = self.words, self.mask
        for i in range(count):
            src = (start + order[i]) & mask
            dst = (start + order[(i + 1) % count]) & mask
            words[src] = dst

    def fill_value(self, value: int, start: int, count: int) -> None:
        """Set ``count`` words from ``start`` to a constant."""
        words, mask = self.words, self.mask
        value &= MASK64
        start &= mask
        if start + count <= self.size_words:
            words[start : start + count] = [value] * count
        else:
            for offset in range(count):
                words[(start + offset) & mask] = value
