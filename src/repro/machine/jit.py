"""Tier-2 JIT — specialize each program into compiled Python source.

The execution-tier ladder (ARCHITECTURE.md §1) is:

* **timed** (:mod:`repro.machine.cpu`) — the analytic out-of-order model,
  authoritative for every timing question;
* **fast** (:mod:`repro.machine.fastpath`) — threaded code, one bound
  closure per static instruction;
* **jit** (this module) — the program is translated once into Python
  source at two granularities.  Each *straight-line segment* becomes a
  function: registers become locals, immediates and masks are folded into
  the text, and the whole segment runs as one compiled call instead of
  one closure call per instruction.  Each *natural loop* closed by a
  backward branch additionally becomes a **region**: structured
  ``while``/``if`` Python covering the entire loop nest, with registers
  loaded into locals once and flushed only at exits, and an exact
  retirement guard at every loop head so the region never overshoots a
  snapshot or budget boundary.  Loop shapes the region generator cannot
  prove bounded (``JMP`` inside the region, side entries, irregular
  nesting) bail out and run on segments — never incorrectly.

Translation happens per :class:`~repro.isa.program.Program` and the
resulting code objects are cached on the program (alongside
``code_tuples`` and the threaded handlers), so re-running a widget —
LRU hits, verification, persistent mining workers — pays the ``compile()``
cost only once.

Translation itself is amortised across *programs* by a **shape-template
cache**: generated source never contains data immediates.  Each one is
abstracted to a ``_K{n}`` slot bound as a default argument of the segment
or region function that uses it, so the module text depends only on the
program's *shape* — the ``(op, a, b, c)`` sequence plus branch targets
(which are structural: they decide leaders, loop nests and guards).  Two
programs with the same shape share one compiled module; the second one
skips codegen and ``compile()`` entirely and only re-executes the cheap
``def`` statements with its own constant vector (default arguments are
``LOAD_FAST`` at run time, so bound slots cost the same as burned-in
literals).  The cache is process-wide and LRU-bounded; see
:func:`template_cache_stats`.

Correctness strategy: the driver loop here is *identical* to the fast
path's block-stepped loop — the next event (snapshot due, budget
exhausted) is always a known number of retirements away.  A region is
dispatched only when the window has at least its entry guard left, and
its per-head guards (the longest check-free instruction path to the next
check or exit, exact because every backward branch lands on a checking
loop head) make it return to the driver before the window closes.  A
segment is dispatched only when it fits entirely inside the window.
When neither fits (rare: events come every ``snapshot_interval``
retirements, segments are capped at :data:`MAX_SEGMENT`), the driver
falls back to the program's threaded handlers for per-instruction
stepping, which are bit-identical by the fast path's own differential
suite.  ``tests/test_jit.py`` proves the three tiers agree on outputs,
register files, memory, snapshots, retired counts and limit errors.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.isa.program import Program
from repro.machine.cpu import _SNAP_F, _SNAP_I, ExecutionResult
from repro.machine.fastpath import _State, _finish, _init_state
from repro.machine.memory import Memory
from repro.errors import ExecutionLimitExceeded

#: Straight-line runs longer than this are split into chained segments so a
#: segment always fits inside a typical snapshot window; otherwise the
#: driver would fall back to per-instruction dispatch for the entire run.
MAX_SEGMENT = 64

_M64 = "0xFFFFFFFFFFFFFFFF"
_M53 = "0x1FFFFFFFFFFFFF"
_TWO52 = "4503599627370496"
_SCALE = "67108864.0"

_BRANCH_OPS = frozenset((56, 57, 58, 59, 60, 61))
_TERMINATORS = _BRANCH_OPS | {73}
_CMP = {56: "==", 57: "!=", 58: "<", 59: ">="}
#: Negation of each conditional branch — the loop variant's exit test.
_INV_CMP = {56: "!=", 57: "==", 58: ">=", 59: "<"}


def _imm_slot(op: int, imm: int):
    """The constant-slot value for ops whose immediate is *data*, not
    control flow, or ``None`` when the op burns no immediate into source.

    This is the single source of truth for slot order and preprocessing:
    the value returned here is byte-for-byte what the literal emitter
    would have folded into the text, so binding it as a default argument
    is semantically identical to burning it in.  Branch targets (ops
    56-61) are deliberately *not* slots — they shape leaders, loop nests
    and retirement guards, so they belong to the template key instead.
    """
    if op in (8, 9, 10, 14):  # ANDI/ORI/XORI/MOVI fold ``imm & M64``
        return imm & 0xFFFFFFFFFFFFFFFF
    if op in (11, 12):  # shift immediates fold ``imm & 63``
        return imm & 63
    if op in (7, 48, 49, 52, 53, 67, 68):  # ADDI + memory displacements
        return imm
    return None


#: Shape-template LRU: module text + compiled ``_bind`` factory keyed by
#: program shape.  Process-wide (each mining worker warms its own).
_TEMPLATE_CAPACITY = 256
_templates: OrderedDict = OrderedDict()
_template_stats = {"hits": 0, "misses": 0, "evictions": 0}


def template_cache_stats() -> dict:
    """Counters for the process-wide JIT shape-template cache."""
    total = _template_stats["hits"] + _template_stats["misses"]
    return {
        "capacity": _TEMPLATE_CAPACITY,
        "size": len(_templates),
        "hits": _template_stats["hits"],
        "misses": _template_stats["misses"],
        "evictions": _template_stats["evictions"],
        "hit_rate": _template_stats["hits"] / total if total else 0.0,
    }


def clear_template_cache() -> None:
    """Drop all cached templates and reset counters (tests, benchmarks)."""
    _templates.clear()
    _template_stats.update(hits=0, misses=0, evictions=0)


@dataclass(slots=True)
class JitCode:
    """Compiled artifact for one program: segment functions by leader pc."""

    funcs: list  #: callable or None, indexed by pc (None off segment starts)
    sizes: list[int]  #: instructions per segment, 0 for non-leader pcs
    #: ``(region_fn, guard)`` per loop-head pc, or None.  ``region_fn(st,
    #: limit) -> (pc, retired)`` runs the whole natural loop (nested loops,
    #: forward diamonds and all) inside one compiled function; ``guard`` is
    #: the minimum event window the driver must have left to enter it.
    regions: list
    length: int  #: program length the artifact was compiled against
    source: str  #: the generated module source (debugging, tests)


class _Emitter:
    """Accumulates generated statements for one segment."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self._tmp = 0

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def temp(self) -> str:
        self._tmp += 1
        return f"_t{self._tmp}"

    def clamp(self, dest: str, expr: str) -> None:
        """``dest = clamp(expr)`` with the fast path's finite-range rule."""
        t = self.temp()
        self.emit(
            f"{dest} = {t} if -1e300 < ({t} := {expr}) < 1e300 else 1.0"
        )


def _accesses(op: int, a: int, b: int, c: int):
    """Register/memory footprint of one instruction.

    Returns ``(int_reads, int_writes, fp_reads, fp_writes, vec_reads,
    vec_writes, uses_mem)`` as tuples of register indices — the codegen
    uses these to decide which locals to preload and which to flush.
    """
    ir: tuple = ()
    iw: tuple = ()
    fr: tuple = ()
    fw: tuple = ()
    vr: tuple = ()
    vw: tuple = ()
    mem = False
    if op < 24:
        iw = (a,)
        if op != 14:  # all but MOVI read r[b]
            ir = (b,) if 7 <= op <= 15 else (b, c)
    elif op < 32:
        ir, iw = (b, c), (a,)
    elif op < 48:
        if op == 40:  # FMA reads its destination
            fr, fw = (a, b, c), (a,)
        elif op == 41:  # CVTIF
            ir, fw = (b,), (a,)
        elif op == 42:  # CVTFI
            fr, iw = (b,), (a,)
        elif op in (38, 39):  # FABS / FNEG
            fr, fw = (b,), (a,)
        else:
            fr, fw = (b, c), (a,)
    elif op == 48:
        ir, iw, mem = (b,), (a,), True
    elif op == 49:
        ir, fw, mem = (b,), (a,), True
    elif op == 52:
        ir, mem = (a, b), True
    elif op == 53:
        ir, fr, mem = (b,), (a,), True
    elif op < 60:  # conditional branches
        ir = (a, b)
    elif op == 61:  # LOOPNZ
        ir, iw = (a,), (a,)
    elif op in (64, 65):
        vr, vw = (b, c), (a,)
    elif op == 66:  # VFMA reads its destination
        vr, vw = (a, b, c), (a,)
    elif op == 67:
        ir, vw, mem = (b,), (a,), True
    elif op == 68:
        ir, vr, mem = (b,), (a,), True
    elif op == 69:
        fr, vw = (b,), (a,)
    elif op == 70:
        vr, fw = (b,), (a,)
    # JMP (60), NOP (72), HALT (73) touch nothing.
    return ir, iw, fr, fw, vr, vw, mem


def _stmt(
    em: _Emitter, op: int, a: int, b: int, c: int, imm: int, kname: str | None = None
) -> None:
    """Emit the statement(s) for one straight-line (non-terminator) op.

    When ``kname`` is given, data immediates render as that slot name
    (bound by :func:`_imm_slot`'s value at bind time) instead of a
    literal, making the emitted text shape-generic.
    """
    E = em.emit
    if op == 0:
        E(f"i{a} = (i{b} + i{c}) & {_M64}")
    elif op == 1:
        E(f"i{a} = (i{b} - i{c}) & {_M64}")
    elif op == 2:
        E(f"i{a} = i{b} & i{c}")
    elif op == 3:
        E(f"i{a} = i{b} | i{c}")
    elif op == 4:
        E(f"i{a} = i{b} ^ i{c}")
    elif op == 5:
        E(f"i{a} = (i{b} << (i{c} & 63)) & {_M64}")
    elif op == 6:
        E(f"i{a} = i{b} >> (i{c} & 63)")
    elif op == 7:
        E(f"i{a} = (i{b} + {kname or imm}) & {_M64}")
    elif op == 8:
        E(f"i{a} = i{b} & {kname or (imm & 0xFFFFFFFFFFFFFFFF)}")
    elif op == 9:
        E(f"i{a} = i{b} | {kname or (imm & 0xFFFFFFFFFFFFFFFF)}")
    elif op == 10:
        E(f"i{a} = i{b} ^ {kname or (imm & 0xFFFFFFFFFFFFFFFF)}")
    elif op == 11:
        E(f"i{a} = (i{b} << {kname or (imm & 63)}) & {_M64}")
    elif op == 12:
        E(f"i{a} = i{b} >> {kname or (imm & 63)}")
    elif op == 13:
        E(f"i{a} = i{b}")
    elif op == 14:
        E(f"i{a} = {kname or (imm & 0xFFFFFFFFFFFFFFFF)}")
    elif op == 15:
        E(f"i{a} = i{b} ^ {_M64}")
    elif op == 16:
        E(f"i{a} = 1 if i{b} < i{c} else 0")
    elif op == 17:
        E(f"i{a} = 1 if i{b} == i{c} else 0")
    elif op == 18:
        E(f"i{a} = i{b} if i{b} < i{c} else i{c}")
    elif op == 19:
        E(f"i{a} = i{b} if i{b} > i{c} else i{c}")
    elif op == 24:
        E(f"i{a} = (i{b} * i{c}) & {_M64}")
    elif op == 25:
        E(f"i{a} = (i{b} * i{c}) >> 64")
    elif op == 26:
        E(f"i{a} = {_M64} if i{c} == 0 else i{b} // i{c}")
    elif op == 27:
        E(f"i{a} = 0 if i{c} == 0 else i{b} % i{c}")
    elif op == 32:
        em.clamp(f"f{a}", f"f{b} + f{c}")
    elif op == 33:
        em.clamp(f"f{a}", f"f{b} - f{c}")
    elif op == 34:
        em.clamp(f"f{a}", f"f{b} * f{c}")
    elif op == 35:
        em.clamp(
            f"f{a}",
            f"f{b} / f{c} if (f{c} > 1e-300 or f{c} < -1e-300) else 1.0",
        )
    elif op == 36:
        em.clamp(f"f{a}", f"f{b} if f{b} < f{c} else f{c}")
    elif op == 37:
        em.clamp(f"f{a}", f"f{b} if f{b} > f{c} else f{c}")
    elif op == 38:
        em.clamp(f"f{a}", f"f{b} if f{b} >= 0.0 else -f{b}")
    elif op == 39:
        em.clamp(f"f{a}", f"-f{b}")
    elif op == 40:
        em.clamp(f"f{a}", f"f{a} + f{b} * f{c}")
    elif op == 41:
        em.clamp(f"f{a}", f"float(i{b} & {_M53})")
    elif op == 42:
        E(f"i{a} = int(f{b}) & {_M64}")
    elif op == 48:
        E(f"i{a} = W[(i{b} + {kname or imm}) & _mm]")
    elif op == 49:
        E(f"f{a} = ((W[(i{b} + {kname or imm}) & _mm] & {_M53}) - {_TWO52}) / {_SCALE}")
    elif op == 52:
        E(f"W[(i{b} + {kname or imm}) & _mm] = i{a}")
    elif op == 53:
        E(f"W[(i{b} + {kname or imm}) & _mm] = (int(f{a} * {_SCALE}) + {_TWO52}) & {_M64}")
    elif op in (64, 65, 66):
        sign = "+" if op == 64 else "*"
        if op == 66:
            lanes = ", ".join(
                f"v{a}[{k}] + v{b}[{k}] * v{c}[{k}]" for k in range(4)
            )
        else:
            lanes = ", ".join(f"v{b}[{k}] {sign} v{c}[{k}]" for k in range(4))
        t = em.temp()
        E(f"{t} = ({lanes})")
        E(f"v{a} = [_x if -1e300 < _x < 1e300 else 1.0 for _x in {t}]")
    elif op == 67:
        t = em.temp()
        E(f"{t} = (i{b} + {kname or imm}) & _mm")
        lanes = ", ".join(
            f"((W[({t} + {k}) & _mm] & {_M53}) - {_TWO52}) / {_SCALE}"
            if k
            else f"((W[{t}] & {_M53}) - {_TWO52}) / {_SCALE}"
            for k in range(4)
        )
        E(f"v{a} = [{lanes}]")
    elif op == 68:
        t = em.temp()
        E(f"{t} = (i{b} + {kname or imm}) & _mm")
        E(f"W[{t}] = (int(v{a}[0] * {_SCALE}) + {_TWO52}) & {_M64}")
        for k in (1, 2, 3):
            E(f"W[({t} + {k}) & _mm] = (int(v{a}[{k}] * {_SCALE}) + {_TWO52}) & {_M64}")
    elif op == 69:
        E(f"v{a} = [f{b}] * 4")
    elif op == 70:
        em.clamp(f"f{a}", f"v{b}[0] + v{b}[1] + v{b}[2] + v{b}[3]")
    # NOP and any other system opcode: no architectural effect.


def _exit_stmt(
    em: _Emitter,
    op: int,
    a: int,
    b: int,
    imm: int,
    nxt: int,
    flush: list[str],
) -> None:
    """Emit the terminator: flush dirty registers, then return the next pc."""
    E = em.emit
    if op in _CMP:
        for line in flush:
            E(line)
        E(f"return {imm} if i{a} {_CMP[op]} i{b} else {nxt}")
    elif op == 60:  # JMP
        for line in flush:
            E(line)
        E(f"return {imm}")
    elif op == 61:  # LOOPNZ
        E(f"i{a} = (i{a} - 1) & {_M64}")
        for line in flush:
            E(line)
        E(f"return {imm} if i{a} else {nxt}")
    else:  # HALT — negative pc is the driver's halt sentinel
        for line in flush:
            E(line)
        E("return -1")


def _gen_segment(
    code: list[tuple], start: int, n: int, knames: list | None = None
) -> tuple[str, int, int]:
    """Generate one segment function's source.

    Returns ``(source, size, next_leader)`` where ``next_leader`` is the pc
    a split (over-long) straight-line run chains into, or ``-1`` when the
    segment ends at a terminator or falls off the program.  ``knames``
    (slot name per pc, or None) switches data immediates to template
    slots bound as default arguments.
    """
    end = start
    while end < n and code[end][0] not in _TERMINATORS and end - start < MAX_SEGMENT - 1:
        end += 1
    if end == n:  # ran off the end without a terminator
        end = n - 1
    terminated = code[end][0] in _TERMINATORS
    size = end - start + 1

    # Footprint scan: which registers to preload (read before written) and
    # which to flush (written at all).
    pre_i: list[int] = []
    pre_f: list[int] = []
    pre_v: list[int] = []
    wr_i: list[int] = []
    wr_f: list[int] = []
    wr_v: list[int] = []
    uses_mem = False
    for pc in range(start, end + 1):
        op, a, b, c, imm = code[pc]
        ir, iw, fr, fw, vr, vw, mem = _accesses(op, a, b, c)
        uses_mem = uses_mem or mem
        for reg in ir:
            if reg not in wr_i and reg not in pre_i:
                pre_i.append(reg)
        for reg in fr:
            if reg not in wr_f and reg not in pre_f:
                pre_f.append(reg)
        for reg in vr:
            if reg not in wr_v and reg not in pre_v:
                pre_v.append(reg)
        for reg in iw:
            if reg not in wr_i:
                wr_i.append(reg)
        for reg in fw:
            if reg not in wr_f:
                wr_f.append(reg)
        for reg in vw:
            if reg not in wr_v:
                wr_v.append(reg)

    prologue: list[str] = []
    if pre_i or wr_i:
        prologue.append("I = st.i")
    if pre_f or wr_f:
        prologue.append("F = st.f")
    if pre_v or wr_v:
        prologue.append("V = st.v")
    if uses_mem:
        prologue.append("W = st.w")
        prologue.append("_mm = st.m")
    for reg in sorted(pre_i):
        prologue.append(f"i{reg} = I[{reg}]")
    for reg in sorted(pre_f):
        prologue.append(f"f{reg} = F[{reg}]")
    for reg in sorted(pre_v):
        prologue.append(f"v{reg} = V[{reg}]")

    flush = (
        [f"I[{reg}] = i{reg}" for reg in sorted(wr_i)]
        + [f"F[{reg}] = f{reg}" for reg in sorted(wr_f)]
        + [f"V[{reg}] = v{reg}" for reg in sorted(wr_v)]
    )

    body = _Emitter()
    body.lines.extend(prologue)
    last = end if terminated else end + 1
    for pc in range(start, last):
        op, a, b, c, imm = code[pc]
        _stmt(body, op, a, b, c, imm, knames[pc] if knames else None)
    if terminated:
        op, a, b, c, imm = code[end]
        _exit_stmt(body, op, a, b, imm, end + 1, flush)
        next_leader = -1
    else:
        for line in flush:
            body.emit(line)
        body.emit(f"return {end + 1}")
        # Chain into the rest of an over-long straight-line run (if any).
        next_leader = end + 1 if end + 1 < n else -1

    binds = ""
    if knames is not None:
        used = [knames[pc] for pc in range(start, last) if knames[pc]]
        binds = "".join(f", {k}=_K[{k[2:]}]" for k in used)
    lines = [f"def _s{start}(st{binds}):"] + ["    " + line for line in body.lines]
    return "\n".join(lines), size, next_leader


class _Bail(Exception):
    """Raised during region emission when control flow isn't structured."""


def _gen_region(
    code: list[tuple], head: int, tail: int, knames: list | None = None
) -> tuple[str, int] | None:
    """``(source, entry_guard)`` for the compiled loop region ``_r{head}``,
    or None.

    A *region* is a natural loop ``[head, tail]`` closed by the backward
    branch at ``tail``.  The whole loop — nested inner loops, forward
    skip-diamonds, conditional mid-loop exits — compiles into one function
    whose registers stay in locals *across iterations*, so the dominant
    dynamic cost of a widget (tens of thousands of retirements through a
    few dozen static instructions) runs without any per-segment dispatch,
    load or flush.

    Event-window correctness: the function takes ``limit`` (the driver's
    remaining retirement countdown) and counts retirements in ``_ret``.
    Every loop head re-checks ``_ret + guard <= limit`` before starting an
    iteration, where that head's ``guard`` is the longest check-free path
    from it — exact, because every backedge lands on a checking loop head,
    making check-free paths a DAG.  ``_ret`` therefore never exceeds
    ``limit``.  On a failed check the function flushes and returns the
    loop-head pc, and the driver's segment/instruction stepping carries
    execution to the snapshot/budget boundary exactly as before.

    Any shape outside the clean structured set (unconditional jumps,
    branches into the region from outside, non-nested overlaps) bails out
    to ``None`` — the region is simply not accelerated.
    """
    for pc in range(head, tail + 1):
        op, _a, _b, _c, imm = code[pc]
        if op == 60:
            return None  # JMP: skipped ranges may hide side entries
        if op in _BRANCH_OPS and not (head <= imm <= tail + 1):
            return None
    for pc, (op, _a, _b, _c, imm) in enumerate(code):
        if op in _BRANCH_OPS and (pc < head or pc > tail) and head < imm <= tail:
            return None  # side entry into the loop body

    # Inner loop heads: target -> furthest backward branch closing it.
    heads: dict[int, int] = {}
    for pc in range(head, tail + 1):
        op, _a, _b, _c, imm = code[pc]
        if op in _BRANCH_OPS and imm <= pc:
            heads[imm] = max(heads.get(imm, -1), pc)

    # Per-head guard: the longest check-free path from executing that head
    # until the *next* limit check (any loop head) or the region exit.
    # Every backedge lands on a checking head, so the paths form a DAG and
    # the guards are exact — typically far smaller than the region size,
    # which lets a loop consume almost the whole event window before
    # handing the tail back to the driver.
    _free: dict[int, int] = {}

    def _path_from(pc: int) -> int:
        """Max retirements from ``pc`` to the next check, ``pc`` excluded
        from the head rule only when it is the path's first instruction."""
        if pc > tail or pc in heads:
            return 0
        cached = _free.get(pc)
        if cached is not None:
            return cached
        op, _a, _b, _c, imm = code[pc]
        if op == 73:  # HALT returns immediately
            cost = 1
        elif op in _BRANCH_OPS:
            taken = 0 if imm in heads else _path_from(imm)
            cost = 1 + max(taken, _path_from(pc + 1))
        else:
            cost = 1 + _path_from(pc + 1)
        _free[pc] = cost
        return cost

    guards: dict[int, int] = {}
    for h in heads:
        op, _a, _b, _c, imm = code[h]
        if op in _BRANCH_OPS:
            taken = 0 if imm in heads else _path_from(imm)
            guards[h] = 1 + max(taken, _path_from(h + 1))
        elif op == 73:
            guards[h] = 1
        else:
            guards[h] = 1 + _path_from(h + 1)
    guard = guards[head]

    # Footprint: preload every register the region touches (reads *or*
    # writes — conditional paths may skip a write, so flushed locals must
    # always be defined), flush every register it can write.
    pre_i: set = set()
    pre_f: set = set()
    pre_v: set = set()
    wr_i: set = set()
    wr_f: set = set()
    wr_v: set = set()
    uses_mem = False
    for pc in range(head, tail + 1):
        op, a, b, c, _imm = code[pc]
        ir, iw, fr, fw, vr, vw, mem = _accesses(op, a, b, c)
        uses_mem = uses_mem or mem
        pre_i.update(ir, iw)
        pre_f.update(fr, fw)
        pre_v.update(vr, vw)
        wr_i.update(iw)
        wr_f.update(fw)
        wr_v.update(vw)

    binds = ""
    if knames is not None:
        used = [knames[pc] for pc in range(head, tail + 1) if knames[pc]]
        binds = "".join(f", {k}=_K[{k[2:]}]" for k in used)
    lines: list[str] = [f"def _r{head}(st, limit{binds}):"]

    def out(depth: int, text: str) -> None:
        lines.append("    " * depth + text)

    if pre_i:
        out(1, "I = st.i")
    if pre_f:
        out(1, "F = st.f")
    if pre_v:
        out(1, "V = st.v")
    if uses_mem:
        out(1, "W = st.w")
        out(1, "_mm = st.m")
    for reg in sorted(pre_i):
        out(1, f"i{reg} = I[{reg}]")
    for reg in sorted(pre_f):
        out(1, f"f{reg} = F[{reg}]")
    for reg in sorted(pre_v):
        out(1, f"v{reg} = V[{reg}]")
    flush = (
        [f"I[{reg}] = i{reg}" for reg in sorted(wr_i)]
        + [f"F[{reg}] = f{reg}" for reg in sorted(wr_f)]
        + [f"V[{reg}] = v{reg}" for reg in sorted(wr_v)]
    )
    out(1, "_ret = 0")

    def seq(lo: int, hi: int, depth: int, cur_head: int, break_pc: int) -> None:
        """Emit instructions ``[lo, hi)`` of the loop whose head is
        ``cur_head``; a taken branch to ``break_pc`` exits that loop."""
        pending = 0
        i = lo
        while i < hi:
            if i in heads and i != cur_head:
                if heads[i] >= hi:
                    raise _Bail  # inner loop crosses the block boundary
                if pending:
                    out(depth, f"_ret += {pending}")
                    pending = 0
                loop(i, heads[i], depth)
                i = heads[i] + 1
                continue
            op, a, b, c, imm = code[i]
            if op in _BRANCH_OPS:
                out(depth, f"_ret += {pending + 1}")
                pending = 0
                if imm <= i:  # backedge: must re-enter the current loop
                    if imm != cur_head or op == 60:
                        raise _Bail
                    if op == 61:
                        out(depth, f"i{a} = (i{a} - 1) & {_M64}")
                        out(depth, f"if i{a}:")
                    else:
                        out(depth, f"if i{a} {_CMP[op]} i{b}:")
                    out(depth + 1, "continue")
                elif imm == break_pc:  # conditional mid-loop exit
                    if op == 61:
                        raise _Bail
                    out(depth, f"if i{a} {_CMP[op]} i{b}:")
                    out(depth + 1, "break")
                elif i < imm <= hi:  # forward skip: nested if
                    if op == 61:
                        raise _Bail
                    out(depth, f"if i{a} {_INV_CMP[op]} i{b}:")
                    seq(i + 1, imm, depth + 1, cur_head, break_pc)
                    i = imm
                    continue
                else:
                    raise _Bail  # not properly nested
                i += 1
                continue
            if op == 73:  # HALT: flush and hand the sentinel to the driver
                out(depth, f"_ret += {pending + 1}")
                pending = 0
                for line in flush:
                    out(depth, line)
                out(depth, "return -1, _ret")
                i += 1
                continue
            em = _Emitter()
            _stmt(em, op, a, b, c, imm, knames[i] if knames else None)
            for line in em.lines:
                out(depth, line)
            pending += 1
            i += 1
        if pending:
            out(depth, f"_ret += {pending}")

    def loop(t: int, e: int, depth: int) -> None:
        """Emit the loop ``[t, e]`` (body + closing terminator at ``e``)."""
        out(depth, "while True:")
        out(depth + 1, f"if _ret + {guards[t]} > limit:")
        for line in flush:
            out(depth + 2, line)
        out(depth + 2, f"return {t}, _ret")
        seq(t, e, depth + 1, t, e + 1)
        op, a, b, _c, _imm = code[e]
        out(depth + 1, "_ret += 1")
        if op == 61:
            out(depth + 1, f"i{a} = (i{a} - 1) & {_M64}")
            out(depth + 1, f"if not i{a}:")
        elif op in _INV_CMP:
            out(depth + 1, f"if i{a} {_INV_CMP[op]} i{b}:")
        else:
            raise _Bail
        out(depth + 2, "break")

    try:
        loop(head, tail, 1)
    except _Bail:
        return None
    for line in flush:
        out(1, line)
    out(1, f"return {tail + 1}, _ret")
    return "\n".join(lines), guard


def _build_template(code: list[tuple], n: int) -> tuple:
    """Generate and compile the shared module for one program shape.

    Returns ``(bind, sizes, seg_starts, region_guards, source)`` where
    ``bind(kvalues)`` executes the (already compiled) function definitions
    with a concrete constant vector and returns the resulting namespace.
    """
    knames: list = [None] * n
    slot = 0
    for pc, (op, _a, _b, _c, imm) in enumerate(code):
        if _imm_slot(op, imm) is not None:
            knames[pc] = f"_K{slot}"
            slot += 1

    # Segment leaders: instruction 0, every branch target, the successor of
    # every control-transfer instruction, and the continuation points of
    # straight-line runs split at MAX_SEGMENT.
    leaders = {0}
    for pc, (op, _a, _b, _c, imm) in enumerate(code):
        if op in _BRANCH_OPS:
            if 0 <= imm < n:
                leaders.add(imm)
            if pc + 1 < n:
                leaders.add(pc + 1)
        elif op == 73 and pc + 1 < n:
            leaders.add(pc + 1)

    sources: dict[int, str] = {}
    sizes = [0] * n
    worklist = sorted(leaders)
    while worklist:
        start = worklist.pop()
        if start in sources:
            continue
        src, size, next_leader = _gen_segment(code, start, n, knames)
        sources[start] = src
        sizes[start] = size
        if next_leader >= 0 and next_leader not in sources:
            worklist.append(next_leader)

    # Loop regions: one candidate per backward-branch target, closed by the
    # furthest backedge.  Inner loops get their own region too, so the
    # driver re-accelerates when an event boundary parks the pc mid-loop.
    candidates: dict[int, int] = {}
    for pc, (op, _a, _b, _c, imm) in enumerate(code):
        if op in _BRANCH_OPS and 0 <= imm <= pc:
            candidates[imm] = max(candidates.get(imm, -1), pc)
    region_srcs: dict[int, tuple[str, int]] = {}
    for start, end in candidates.items():
        generated = _gen_region(code, start, end, knames)
        if generated is not None:
            region_srcs[start] = generated

    parts = [sources[start] for start in sorted(sources)]
    parts += [region_srcs[start][0] for start in sorted(region_srcs)]
    body = "\n\n".join(parts)
    module = (
        "def _bind(_K):\n"
        + "\n".join("    " + ln if ln else ln for ln in body.split("\n"))
        + "\n    return locals()"
    )
    namespace: dict = {}
    exec(compile(module, "<jit-template>", "exec"), namespace)
    region_guards = {start: guard for start, (_s, guard) in region_srcs.items()}
    return namespace["_bind"], sizes, sorted(sources), region_guards, module


def compile_jit(program: Program) -> JitCode:
    """Translate ``program`` into its segment-function table.

    Codegen and ``compile()`` run once per *shape* (see module docstring):
    the program's data constants are extracted with :func:`_imm_slot` and
    bound into a cached template's functions as default arguments, so
    fresh widgets matching previously-seen shapes pay only the binding
    cost.  :meth:`repro.isa.program.Program.jit_code` caches the bound
    result per program as before.
    """
    code = program.code_tuples()
    n = len(code)
    key = tuple(
        (op, a, b, c, imm) if op in _BRANCH_OPS else (op, a, b, c)
        for op, a, b, c, imm in code
    )
    entry = _templates.get(key)
    if entry is None:
        _template_stats["misses"] += 1
        entry = _build_template(code, n)
        _templates[key] = entry
        if len(_templates) > _TEMPLATE_CAPACITY:
            _templates.popitem(last=False)
            _template_stats["evictions"] += 1
    else:
        _template_stats["hits"] += 1
        _templates.move_to_end(key)

    bind, sizes, seg_starts, region_guards, module = entry
    kvalues = [
        v
        for op, _a, _b, _c, imm in code
        if (v := _imm_slot(op, imm)) is not None
    ]
    namespace = bind(kvalues)
    funcs: list = [None] * n
    regions: list = [None] * n
    for start in seg_starts:
        funcs[start] = namespace[f"_s{start}"]
    for start, guard in region_guards.items():
        regions[start] = (namespace[f"_r{start}"], guard)
    return JitCode(
        funcs=funcs, sizes=list(sizes), regions=regions, length=n, source=module
    )


def run_jit(
    machine,
    program: Program,
    memory: Memory | None = None,
    *,
    max_instructions: int = 10_000_000,
    snapshot_interval: int = 0,
    initial_iregs: list[int] | None = None,
    initial_fregs: list[float] | None = None,
) -> ExecutionResult:
    """Execute ``program`` on the tier-2 JIT.

    Arguments and result mirror :func:`repro.machine.fastpath.run_fast`;
    the architectural outcome is bit-identical to both other tiers
    (``tests/test_jit.py``).  The driver is the fast path's block-stepped
    loop with segment-at-a-time dispatch: a compiled segment runs only
    when it fits inside the current snapshot/budget window, otherwise the
    threaded per-instruction handlers carry execution to the boundary.
    """
    memory, iregs, fregs, vregs = _init_state(
        machine, memory, max_instructions, initial_iregs, initial_fregs
    )
    jit = program.jit_code()
    handlers = program.fast_handlers()
    funcs = jit.funcs
    sizes = jit.sizes
    regions = jit.regions
    n = len(handlers)
    st = _State(iregs, fregs, vregs, memory.words, memory.mask)

    out_chunks: list[bytes] = []
    out_append = out_chunks.append
    snap_interval = snapshot_interval if snapshot_interval > 0 else 0
    snap_countdown = snap_interval
    snapshots = 0
    pack_i = _SNAP_I.pack
    pack_f = _SNAP_F.pack

    retired = 0
    halted = False
    budget = max_instructions
    pc = 0
    while 0 <= pc < n:
        if snap_interval and snap_countdown < budget:
            steps = snap_countdown
        else:
            steps = budget
        countdown = steps
        while countdown and 0 <= pc < n:
            size = sizes[pc]
            if size and size <= countdown:
                region = regions[pc]
                if region is not None and countdown >= region[1]:
                    # Loop head with enough window left: run whole loop
                    # iterations inside one compiled function, which
                    # returns how many instructions it retired.
                    pc, done = region[0](st, countdown)
                    countdown -= done
                else:
                    pc = funcs[pc](st)
                    countdown -= size
            else:
                pc = handlers[pc](st)
                countdown -= 1
        if pc < 0:
            # HALT: retires, but consumes neither budget nor a snapshot
            # tick — identical accounting to the fast path (the HALT's own
            # countdown decrement keeps the non-HALT count strictly below
            # ``steps``, so no interior snapshot can have come due).
            retired += steps - countdown
            halted = True
            break
        block = steps - countdown
        retired += block
        budget -= block
        if snap_interval:
            snap_countdown -= block
            if snap_countdown == 0:
                out_append(pack_i(*iregs))
                out_append(pack_f(*fregs))
                snapshots += 1
                snap_countdown = snap_interval
        if budget <= 0:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_instructions} instructions"
            )

    if pc >= 0 and not halted:
        halted = True  # fell off the end: implicit halt

    if snap_interval:
        out_append(pack_i(*iregs))
        out_append(pack_f(*fregs))
        snapshots += 1

    return _finish(retired, halted, out_chunks, snapshots, iregs, fregs)
