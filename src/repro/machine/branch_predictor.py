"""Branch predictors.

The paper's Figure 3 compares the branch-prediction accuracy of widgets
against the Leela reference workload, measured by the hardware predictor of
the Ivy Bridge platform.  These software predictors play that role.  Two
classic designs are provided (plus a trivial baseline for ablations):

* :class:`BimodalPredictor` — per-PC 2-bit saturating counters.
* :class:`GsharePredictor` — global history XOR PC indexing (McFarling),
  a reasonable stand-in for the Ivy Bridge hybrid predictor.
"""

from __future__ import annotations

from repro.errors import ConfigError


class BranchPredictor:
    """Interface: ``predict`` then ``update`` for each conditional branch."""

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class AlwaysTakenPredictor(BranchPredictor):
    """Static predict-taken baseline (used by ablation benches)."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None

    def reset(self) -> None:
        return None


class BimodalPredictor(BranchPredictor):
    """Table of 2-bit saturating counters indexed by PC."""

    def __init__(self, table_bits: int = 12) -> None:
        if not 1 <= table_bits <= 24:
            raise ConfigError(f"table_bits out of range: {table_bits}")
        self._mask = (1 << table_bits) - 1
        self._table = [2] * (1 << table_bits)  # initialise weakly taken

    def predict(self, pc: int) -> bool:
        return self._table[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = pc & self._mask
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1

    def reset(self) -> None:
        self._table = [2] * (self._mask + 1)


class GsharePredictor(BranchPredictor):
    """Global-history predictor: counters indexed by ``PC xor history``."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12) -> None:
        if not 1 <= table_bits <= 24:
            raise ConfigError(f"table_bits out of range: {table_bits}")
        if not 0 <= history_bits <= table_bits:
            raise ConfigError(
                f"history_bits must be in [0, table_bits], got {history_bits}"
            )
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._table = [2] * (1 << table_bits)
        self._history = 0

    def predict(self, pc: int) -> bool:
        return self._table[(pc ^ self._history) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = (pc ^ self._history) & self._mask
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) & self._history_mask

    def reset(self) -> None:
        self._table = [2] * (self._mask + 1)
        self._history = 0


def make_predictor(kind: str, table_bits: int, history_bits: int) -> BranchPredictor:
    """Construct the predictor named by a :class:`MachineConfig`."""
    if kind == "gshare":
        return GsharePredictor(table_bits, history_bits)
    if kind == "bimodal":
        return BimodalPredictor(table_bits)
    if kind == "always-taken":
        return AlwaysTakenPredictor()
    raise ConfigError(f"unknown predictor kind {kind!r}")
