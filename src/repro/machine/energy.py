"""Energy accounting for simulated runs.

The paper's critique of memory-hard PoW rests on energy: "the energy
required to power memory units in an ASIC is much lower than that of
generalized hardware" (§I, citing Ren & Devadas [10]), so hash-per-joule —
not just hash-per-die-area — decides mining economics.  This model turns a
run's performance counters into an energy estimate so experiments can
compare *on-GPP* energy profiles of workloads and PoW functions.

Per-event energies are in picojoule-class relative units with 45 nm-era
ratios from the architecture literature (Horowitz, ISSCC'14 keynote):
an integer op ≈ 1, FP ≈ 4-8, SRAM accesses grow with capacity, and DRAM
is ~3 orders of magnitude above an integer op.  Only ratios matter here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import OpClass
from repro.machine.perf_counters import PerfCounters


@dataclass(frozen=True, slots=True)
class EnergyParams:
    """Per-event energies (relative pJ) and static power (pJ/cycle)."""

    int_alu: float = 1.0
    int_mul: float = 3.0
    fp_alu: float = 5.0
    vector: float = 8.0
    branch: float = 1.0
    system: float = 0.5
    #: Issued-instruction overhead: fetch/decode/rename/commit.
    pipeline_overhead: float = 2.0
    l1_access: float = 5.0
    l2_access: float = 20.0
    l3_access: float = 80.0
    dram_access: float = 1300.0
    #: Leakage + clock per cycle.
    static_per_cycle: float = 6.0


@dataclass(slots=True)
class EnergyBreakdown:
    """Energy of one run, split by source (relative pJ)."""

    compute: float
    memory: float
    pipeline: float
    static: float

    @property
    def total(self) -> float:
        return self.compute + self.memory + self.pipeline + self.static

    def per_instruction(self, retired: int) -> float:
        return self.total / max(retired, 1)

    def memory_share(self) -> float:
        """Fraction of total energy spent in the memory hierarchy — the
        quantity behind the bandwidth-hardness argument [10]."""
        return self.memory / self.total if self.total > 0 else 0.0


class EnergyModel:
    """Counters → energy, post-hoc (no interpreter overhead)."""

    def __init__(self, params: EnergyParams | None = None) -> None:
        self.params = params or EnergyParams()

    def energy_of(self, counters: PerfCounters) -> EnergyBreakdown:
        p = self.params
        cc = counters.class_counts
        compute = (
            cc[OpClass.INT_ALU] * p.int_alu
            + cc[OpClass.INT_MUL] * p.int_mul
            + cc[OpClass.FP_ALU] * p.fp_alu
            + cc[OpClass.VECTOR] * p.vector
            + cc[OpClass.BRANCH] * p.branch
            + cc[OpClass.SYSTEM] * p.system
        )
        # Every access probes L1; misses continue downward (inclusive fill).
        accesses = counters.loads + counters.stores
        l1_misses = max(0, accesses - counters.l1_hits)
        l2_misses = max(0, l1_misses - counters.l2_hits)
        memory = (
            accesses * p.l1_access
            + l1_misses * p.l2_access
            + l2_misses * p.l3_access
            + counters.dram_accesses * p.dram_access
        )
        pipeline = counters.retired * p.pipeline_overhead
        static = counters.cycles * p.static_per_cycle
        return EnergyBreakdown(
            compute=compute, memory=memory, pipeline=pipeline, static=static
        )
