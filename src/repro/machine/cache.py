"""Set-associative cache hierarchy with LRU replacement.

Memory in the simulator is word-addressed (8-byte words); a 64-byte line
holds 8 words.  The hierarchy is inclusive and write-allocate: every access
probes L1 → L2 → L3 → DRAM and fills all levels on the way back, which is
close enough to the Ivy Bridge behaviour for the hit-rate and latency
statistics the experiments need.
"""

from __future__ import annotations

from repro.machine.config import CacheConfig, MachineConfig


class Cache:
    """One cache level.  ``access(line)`` returns True on hit and updates
    LRU/replacement state (dict insertion order serves as the LRU stack)."""

    __slots__ = ("config", "_sets", "_set_mask", "_ways", "hits", "misses")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._set_mask = config.num_sets - 1
        self._ways = config.ways
        self._sets: list[dict[int, bool]] = [dict() for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, line: int) -> bool:
        index = line & self._set_mask
        tag = line >> 0  # full line id as tag; the set split is via index
        cache_set = self._sets[index]
        if tag in cache_set:
            # Refresh LRU position.
            del cache_set[tag]
            cache_set[tag] = True
            self.hits += 1
            return True
        cache_set[tag] = True
        if len(cache_set) > self._ways:
            del cache_set[next(iter(cache_set))]
        self.misses += 1
        return False

    def insert(self, line: int) -> None:
        """Fill a line without touching hit/miss statistics (prefetches)."""
        index = line & self._set_mask
        cache_set = self._sets[index]
        if line in cache_set:
            del cache_set[line]
        cache_set[line] = True
        if len(cache_set) > self._ways:
            del cache_set[next(iter(cache_set))]

    def contains(self, line: int) -> bool:
        """Non-mutating lookup (used by tests)."""
        return line in self._sets[line & self._set_mask]

    def reset(self) -> None:
        self._sets = [dict() for _ in range(self.config.num_sets)]
        self.hits = 0
        self.misses = 0


class CacheHierarchy:
    """L1 → L2 → optional L3 → DRAM, returning the access latency."""

    __slots__ = (
        "l1",
        "l2",
        "l3",
        "_line_shift",
        "_l1_lat",
        "_l2_lat",
        "_l3_lat",
        "_mem_lat",
        "_prefetch_next",
        "dram_accesses",
        "prefetches",
    )

    def __init__(self, config: MachineConfig) -> None:
        if config.l1.line_bytes != config.l2.line_bytes or (
            config.l3 is not None and config.l3.line_bytes != config.l1.line_bytes
        ):
            # Uniform line size keeps the single line-shift valid at every level.
            raise ValueError("all cache levels must share one line size")
        self.l1 = Cache(config.l1)
        self.l2 = Cache(config.l2)
        self.l3 = Cache(config.l3) if config.l3 is not None else None
        words_per_line = config.l1.line_bytes // 8
        self._line_shift = words_per_line.bit_length() - 1
        self._l1_lat = config.l1.latency
        self._l2_lat = config.l2.latency
        self._l3_lat = config.l3.latency if config.l3 is not None else 0
        self._mem_lat = config.memory_latency
        self._prefetch_next = config.prefetch_next_line
        self.dram_accesses = 0
        self.prefetches = 0

    def line_of(self, word_addr: int) -> int:
        """Line id containing a word address."""
        return word_addr >> self._line_shift

    def access(self, word_addr: int) -> int:
        """Probe the hierarchy for ``word_addr``; returns latency in cycles."""
        line = word_addr >> self._line_shift
        if self.l1.access(line):
            return self._l1_lat
        if self._prefetch_next:
            # Next-line prefetch on an L1 miss: fill line+1 alongside the
            # demand fill (no latency charged; no hit/miss stats touched).
            self.prefetches += 1
            self.l1.insert(line + 1)
            self.l2.insert(line + 1)
            if self.l3 is not None:
                self.l3.insert(line + 1)
        if self.l2.access(line):
            return self._l2_lat
        if self.l3 is not None:
            if self.l3.access(line):
                return self._l3_lat
            self.dram_accesses += 1
            return self._mem_lat
        self.dram_accesses += 1
        return self._mem_lat

    def reset(self) -> None:
        self.l1.reset()
        self.l2.reset()
        if self.l3 is not None:
            self.l3.reset()
        self.dram_accesses = 0
        self.prefetches = 0
