"""Tier-3 batch lockstep execution — N widget runs per dispatch step.

The scalar tiers (timed / fast / jit) pay Python dispatch overhead per
*instruction*.  This tier pays it per *step of N lanes*: registers are
``(16, N)``-shaped numpy arrays, memories are rows of an ``(N, W)``
array, and a single dispatch step advances every lane whose pc sits at
the step's program counter.  The per-step cost is a handful of
vectorised array operations, so the interpreter overhead is amortised
1/N — a software analogue of a SIMT warp.

Control flow diverges per lane.  Each lane has its own pc; every step
the driver picks the **minimum pc over live lanes** and executes that
instruction under an *active mask* ``pcs == cur``.  Lanes that branch
elsewhere simply don't participate until the scheduler's min-pc walk
reaches them again; because laggards (smallest pc) always run first,
lanes re-join automatically at the first program point they share — the
convergence rule is "min-pc first", no explicit reconvergence stack
needed.  Worst case (fully divergent lanes) degenerates to one lane per
step, i.e. scalar interpretation with masking overhead: batch pays off
when lanes run the *same program* and mostly agree on direction, which
is exactly the widget regime (data-dependent short diamonds inside
long convergent loops).

Lane independence: lanes never share architectural state — each has its
own registers, memory image, retirement count, snapshot countdown and
instruction budget.  A lane that executes ``HALT`` (or falls off the
end) is masked out and the rest continue; a lane that exhausts its
budget raises :class:`~repro.errors.ExecutionLimitExceeded` — either
immediately re-raised after the batch drains (default, scalar-parity)
or collected per lane (``collect_errors=True``).

Bit-identity: every operation reproduces the fast path's semantics on
uint64 / float64 arrays — including the 128-bit ``MULHI`` via 32-bit
half decomposition, full-range ``int(f) & MASK64`` truncation via
``frexp`` (floats up to 1e300 overflow any int64 cast), the FP clamp's
NaN behaviour through ``np.where`` (NaN compares false → clamps to
1.0), and strictly sequential VREDUCE summation (``np.sum`` would
re-associate).  ``tests/test_batch.py`` fuzzes this against the scalar
tiers across every preset.

numpy is a *gated* dependency: importing this module without numpy
leaves :func:`compile_batch` raising ``ExecutionError``, which the
tier ladder treats as a translation failure and degrades to jit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.program import Program
from repro.machine.cpu import _SNAP_F, _SNAP_I, ExecutionResult
from repro.machine.fastpath import PerfCounters  # re-exported convenience
from repro.machine.memory import Memory

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is installed in CI
    np = None

_MASK64 = 0xFFFFFFFFFFFFFFFF
_MASK53 = 0x1FFFFFFFFFFFFF
_TWO52 = 1 << 52
_FP_SCALE = 67108864.0  # 2**26
_TWO53F = 9007199254740992.0  # 2**53


@dataclass(slots=True)
class BatchCode:
    """Compiled artifact: one vectorised step handler per pc."""

    handlers: list  #: callable(state, mask) or None (HALT/NOP), by pc
    ops: list[int]  #: opcode per pc (driver checks HALT before dispatch)
    #: per-pc: can executing this pc move a lane's pc past the program end
    #: (fall-through off the last instruction, or a branch/jump whose
    #: target is the end)?  The driver only scans for finished lanes on
    #: these pcs.
    may_exit: list[bool]
    length: int  #: program length the artifact was compiled against


class BatchState:
    """All-lane architectural state: ``(16, N)`` registers, ``(N, W)`` memory."""

    __slots__ = ("i", "f", "v", "mem", "lanes", "m", "pcs", "n")

    def __init__(self, n_lanes: int, mem2d, mem_mask: int) -> None:
        self.n = n_lanes
        self.i = np.zeros((16, n_lanes), dtype=np.uint64)
        self.f = np.zeros((16, n_lanes), dtype=np.float64)
        self.v = np.zeros((16, 4, n_lanes), dtype=np.float64)
        self.mem = mem2d
        self.lanes = np.arange(n_lanes)
        self.m = np.uint64(mem_mask)
        self.pcs = np.zeros(n_lanes, dtype=np.int64)


def _clamp(x):
    """The FP clamp: finite and inside (-1e300, 1e300), else 1.0 (NaN → 1.0)."""
    return np.where((x > -1e300) & (x < 1e300), x, 1.0)


def _mulhi(b, c):
    """High 64 bits of the 128-bit product, via 32-bit halves."""
    m32 = np.uint64(0xFFFFFFFF)
    s32 = np.uint64(32)
    bl, bh = b & m32, b >> s32
    cl, ch = c & m32, c >> s32
    low = bl * cl
    mid1 = bh * cl
    mid2 = bl * ch
    carry = ((low >> s32) + (mid1 & m32) + (mid2 & m32)) >> s32
    return bh * ch + (mid1 >> s32) + (mid2 >> s32) + carry


def _trunc_mod64(f):
    """``int(f) & MASK64`` for finite float64 of any magnitude.

    ``int()`` truncates toward zero with unbounded precision; floats up
    to 1e300 make a direct integer cast impossible, so decompose with
    ``frexp``: ``|f| = m * 2**e`` with the 53-bit mantissa integer
    ``M = m * 2**53``, then shift ``M`` by ``e - 53`` with uint64
    wraparound (low 64 bits are all that survive the mask).
    """
    af = np.abs(f)
    m, e = np.frexp(af)
    mant = (m * _TWO53F).astype(np.uint64)  # exact: integer in [2^52, 2^53)
    s = e.astype(np.int64) - 53
    shl = np.clip(s, 0, 63).astype(np.uint64)
    shr = np.clip(-s, 0, 63).astype(np.uint64)
    v = np.where(s >= 0, mant << shl, mant >> shr)
    v = np.where(s >= 64, np.uint64(0), v)  # shifted entirely past bit 63
    return np.where(f < 0, np.uint64(0) - v, v)


def _fixed_to_float(w):
    """FLOAD mapping: ``((w & MASK53) - TWO52) / FP_SCALE`` (exact)."""
    return ((w & np.uint64(_MASK53)).astype(np.int64) - _TWO52).astype(
        np.float64
    ) / _FP_SCALE


def _float_to_fixed(f):
    """FSTORE mapping: ``(int(f * FP_SCALE) + TWO52) & MASK64``."""
    return _trunc_mod64(f * _FP_SCALE) + np.uint64(_TWO52)


def _compile_one(op: int, a: int, b: int, c: int, imm: int, nxt: int):
    """Vectorised step handler for one static instruction.

    The handler mutates masked lanes of the state in place; the driver
    has already advanced ``pcs[mask]`` to the fall-through successor, so
    only taken branches touch ``pcs`` here.  Returns ``None`` for ops
    with no architectural effect (NOP, HALT — the driver short-circuits
    HALT before dispatch).
    """
    U = np.uint64
    IMM64 = U(imm & _MASK64)

    def _set_i(st, mask, value):
        np.copyto(st.i[a], value, where=mask, casting="unsafe")

    def _set_f(st, mask, value):
        np.copyto(st.f[a], value, where=mask)

    if op == 0:
        return lambda st, mask: _set_i(st, mask, st.i[b] + st.i[c])
    if op == 1:
        return lambda st, mask: _set_i(st, mask, st.i[b] - st.i[c])
    if op == 2:
        return lambda st, mask: _set_i(st, mask, st.i[b] & st.i[c])
    if op == 3:
        return lambda st, mask: _set_i(st, mask, st.i[b] | st.i[c])
    if op == 4:
        return lambda st, mask: _set_i(st, mask, st.i[b] ^ st.i[c])
    if op == 5:
        return lambda st, mask: _set_i(st, mask, st.i[b] << (st.i[c] & U(63)))
    if op == 6:
        return lambda st, mask: _set_i(st, mask, st.i[b] >> (st.i[c] & U(63)))
    if op == 7:
        return lambda st, mask: _set_i(st, mask, st.i[b] + IMM64)
    if op == 8:
        return lambda st, mask: _set_i(st, mask, st.i[b] & IMM64)
    if op == 9:
        return lambda st, mask: _set_i(st, mask, st.i[b] | IMM64)
    if op == 10:
        return lambda st, mask: _set_i(st, mask, st.i[b] ^ IMM64)
    if op == 11:
        sh = U(imm & 63)
        return lambda st, mask: _set_i(st, mask, st.i[b] << sh)
    if op == 12:
        sh = U(imm & 63)
        return lambda st, mask: _set_i(st, mask, st.i[b] >> sh)
    if op == 13:
        return lambda st, mask: _set_i(st, mask, st.i[b])
    if op == 14:
        return lambda st, mask: _set_i(st, mask, IMM64)
    if op == 15:
        return lambda st, mask: _set_i(st, mask, st.i[b] ^ U(_MASK64))
    if op == 16:
        return lambda st, mask: _set_i(
            st, mask, (st.i[b] < st.i[c]).astype(np.uint64)
        )
    if op == 17:
        return lambda st, mask: _set_i(
            st, mask, (st.i[b] == st.i[c]).astype(np.uint64)
        )
    if op == 18:
        return lambda st, mask: _set_i(
            st, mask, np.where(st.i[b] < st.i[c], st.i[b], st.i[c])
        )
    if op == 19:
        return lambda st, mask: _set_i(
            st, mask, np.where(st.i[b] > st.i[c], st.i[b], st.i[c])
        )
    if op == 24:
        return lambda st, mask: _set_i(st, mask, st.i[b] * st.i[c])
    if op == 25:
        return lambda st, mask: _set_i(st, mask, _mulhi(st.i[b], st.i[c]))
    if op == 26:

        def _div(st, mask):
            vc = st.i[c]
            zero = vc == 0
            safe = np.where(zero, U(1), vc)
            _set_i(st, mask, np.where(zero, U(_MASK64), st.i[b] // safe))

        return _div
    if op == 27:

        def _mod(st, mask):
            vc = st.i[c]
            zero = vc == 0
            safe = np.where(zero, U(1), vc)
            _set_i(st, mask, np.where(zero, U(0), st.i[b] % safe))

        return _mod
    if op == 32:
        return lambda st, mask: _set_f(st, mask, _clamp(st.f[b] + st.f[c]))
    if op == 33:
        return lambda st, mask: _set_f(st, mask, _clamp(st.f[b] - st.f[c]))
    if op == 34:
        return lambda st, mask: _set_f(st, mask, _clamp(st.f[b] * st.f[c]))
    if op == 35:

        def _fdiv(st, mask):
            fc = st.f[c]
            ok = (fc > 1e-300) | (fc < -1e-300)
            safe = np.where(ok, fc, 1.0)
            _set_f(st, mask, _clamp(np.where(ok, st.f[b] / safe, 1.0)))

        return _fdiv
    if op == 36:
        return lambda st, mask: _set_f(
            st, mask, _clamp(np.where(st.f[b] < st.f[c], st.f[b], st.f[c]))
        )
    if op == 37:
        return lambda st, mask: _set_f(
            st, mask, _clamp(np.where(st.f[b] > st.f[c], st.f[b], st.f[c]))
        )
    if op == 38:
        return lambda st, mask: _set_f(
            st, mask, _clamp(np.where(st.f[b] >= 0.0, st.f[b], -st.f[b]))
        )
    if op == 39:
        return lambda st, mask: _set_f(st, mask, _clamp(-st.f[b]))
    if op == 40:
        return lambda st, mask: _set_f(
            st, mask, _clamp(st.f[a] + st.f[b] * st.f[c])
        )
    if op == 41:
        return lambda st, mask: _set_f(
            st,
            mask,
            _clamp((st.i[b] & U(_MASK53)).astype(np.float64)),
        )
    if op == 42:
        return lambda st, mask: _set_i(st, mask, _trunc_mod64(st.f[b]))
    if op == 48:

        def _load(st, mask):
            addr = (st.i[b] + IMM64) & st.m
            _set_i(st, mask, st.mem[st.lanes, addr])

        return _load
    if op == 49:

        def _fload(st, mask):
            addr = (st.i[b] + IMM64) & st.m
            _set_f(st, mask, _fixed_to_float(st.mem[st.lanes, addr]))

        return _fload
    if op == 52:

        def _store(st, mask):
            addr = (st.i[b] + IMM64) & st.m
            st.mem[st.lanes[mask], addr[mask]] = st.i[a][mask]

        return _store
    if op == 53:

        def _fstore(st, mask):
            addr = (st.i[b] + IMM64) & st.m
            st.mem[st.lanes[mask], addr[mask]] = _float_to_fixed(st.f[a][mask])

        return _fstore
    if op in (56, 57, 58, 59):

        def _branch(st, mask):
            va, vb = st.i[a], st.i[b]
            if op == 56:
                taken = va == vb
            elif op == 57:
                taken = va != vb
            elif op == 58:
                taken = va < vb
            else:
                taken = va >= vb
            st.pcs[mask & taken] = imm

        return _branch
    if op == 60:

        def _jmp(st, mask):
            st.pcs[mask] = imm

        return _jmp
    if op == 61:

        def _loopnz(st, mask):
            value = st.i[a] - U(1)
            np.copyto(st.i[a], value, where=mask)
            st.pcs[mask & (value != 0)] = imm

        return _loopnz
    if op in (64, 65, 66):

        def _vop(st, mask):
            if op == 64:
                value = st.v[b] + st.v[c]
            elif op == 65:
                value = st.v[b] * st.v[c]
            else:
                value = st.v[a] + st.v[b] * st.v[c]
            np.copyto(st.v[a], _clamp(value), where=mask)

        return _vop
    if op == 67:

        def _vload(st, mask):
            addr = (st.i[b] + IMM64) & st.m
            value = np.empty((4, st.n), dtype=np.float64)
            for k in range(4):
                value[k] = _fixed_to_float(
                    st.mem[st.lanes, (addr + U(k)) & st.m]
                )
            np.copyto(st.v[a], value, where=mask)

        return _vload
    if op == 68:

        def _vstore(st, mask):
            addr = (st.i[b] + IMM64) & st.m
            rows = st.lanes[mask]
            cols = addr[mask]
            va = st.v[a]
            for k in range(4):
                st.mem[rows, (cols + U(k)) & st.m] = _float_to_fixed(
                    va[k][mask]
                )

        return _vstore
    if op == 69:

        def _vbroadcast(st, mask):
            np.copyto(
                st.v[a], np.broadcast_to(st.f[b], (4, st.n)), where=mask
            )

        return _vbroadcast
    if op == 70:

        def _vreduce(st, mask):
            vb = st.v[b]
            # Strictly sequential: ((l0 + l1) + l2) + l3, matching the
            # scalar tiers (np.sum would pairwise-reassociate).
            total = ((vb[0] + vb[1]) + vb[2]) + vb[3]
            _set_f(st, mask, _clamp(total))

        return _vreduce
    # NOP (72), HALT (73) and any other system opcode: no architectural
    # effect at the handler level.
    return None


_BRANCH_OPS = frozenset((56, 57, 58, 59, 60, 61))


def compile_batch(program: Program) -> BatchCode:
    """Translate ``program`` into vectorised step handlers (one per pc)."""
    if np is None:
        raise ExecutionError("batch tier requires numpy")
    code = program.code_tuples()
    n = len(code)
    handlers = [
        _compile_one(op, a, b, c, imm, pc + 1)
        for pc, (op, a, b, c, imm) in enumerate(code)
    ]
    may_exit = [
        pc + 1 >= n or (op in _BRANCH_OPS and imm >= n)
        for pc, (op, _a, _b, _c, imm) in enumerate(code)
    ]
    return BatchCode(
        handlers=handlers, ops=[t[0] for t in code], may_exit=may_exit, length=n
    )


def _as_memory_list(machine, memories, lanes):
    """Normalise the ``memories``/``lanes`` arguments to a list of Memory."""
    if memories is None:
        count = 1 if lanes is None else lanes
        if count <= 0:
            raise ExecutionError("lanes must be positive")
        return [machine.new_memory() for _ in range(count)]
    if isinstance(memories, Memory):
        memories = [memories]
    else:
        memories = list(memories)
    if not memories:
        raise ExecutionError("batch run needs at least one lane")
    if lanes is not None and lanes != len(memories):
        raise ExecutionError(
            f"lanes={lanes} disagrees with {len(memories)} memories"
        )
    size = memories[0].size_words
    if any(m.size_words != size for m in memories):
        raise ExecutionError("batch lanes must share one memory geometry")
    return memories


def run_batch(
    machine,
    program: Program,
    memories=None,
    *,
    lanes: int | None = None,
    max_instructions: int = 10_000_000,
    snapshot_interval: int = 0,
    initial_iregs: list | None = None,
    initial_fregs: list | None = None,
    collect_errors: bool = False,
):
    """Execute ``program`` on N lanes in lockstep.

    ``memories`` is a :class:`Memory`, a list of per-lane memories, an
    ``(N, W)`` uint64 ndarray (zero-copy: rows are the lane memories and
    are mutated in place — the fast path for ensemble callers), or None
    (``lanes`` fresh machine memories).  Registers start from
    ``initial_iregs`` / ``initial_fregs`` — a flat list broadcast to all
    lanes, or a per-lane list of lists.  Returns a list of per-lane
    :class:`ExecutionResult`, bit-identical to running each lane on the
    scalar tiers.  Lane memories are written back on completion.

    A lane that exceeds ``max_instructions`` produces an
    :class:`ExecutionLimitExceeded`; with ``collect_errors=False``
    (default) the first such error is raised after the batch drains
    (scalar parity for N=1), with ``collect_errors=True`` the exception
    object takes that lane's slot in the returned list.
    """
    if np is None:
        raise ExecutionError("batch tier requires numpy")
    if max_instructions <= 0:
        raise ExecutionError("max_instructions must be positive")
    if isinstance(memories, np.ndarray):
        if memories.ndim != 2 or memories.dtype != np.uint64:
            raise ExecutionError("ndarray memories must be (N, W) uint64")
        n_lanes, words = memories.shape
        if words <= 0 or words & (words - 1):
            raise ExecutionError("lane memory width must be a power of two")
        if lanes is not None and lanes != n_lanes:
            raise ExecutionError(
                f"lanes={lanes} disagrees with {n_lanes} memory rows"
            )
        views = None
        mem2d = memories
        mem_mask = words - 1
        copy_back = False
    else:
        mems = _as_memory_list(machine, memories, lanes)
        n_lanes = len(mems)
        words = mems[0].size_words
        mem_mask = mems[0].mask
        # (N, W) memory image: a zero-copy view for the single-lane case,
        # a stacked copy (written back at the end) otherwise.
        views = [m.np_words() for m in mems]
        if n_lanes == 1:
            mem2d = views[0].reshape(1, words)
            copy_back = False
        else:
            mem2d = np.stack(views)
            copy_back = True

    st = BatchState(n_lanes, mem2d, mem_mask)
    if initial_iregs:
        if isinstance(initial_iregs[0], (list, tuple)):
            if len(initial_iregs) != n_lanes:
                raise ExecutionError("per-lane initial_iregs length mismatch")
            for lane, regs in enumerate(initial_iregs):
                if len(regs) != 16:
                    raise ExecutionError(
                        "initial register files have wrong length"
                    )
                st.i[:, lane] = [v & _MASK64 for v in regs]
        else:
            if len(initial_iregs) != 16:
                raise ExecutionError("initial register files have wrong length")
            st.i[:] = np.array(
                [v & _MASK64 for v in initial_iregs], dtype=np.uint64
            ).reshape(16, 1)
    if initial_fregs:
        if isinstance(initial_fregs[0], (list, tuple)):
            if len(initial_fregs) != n_lanes:
                raise ExecutionError("per-lane initial_fregs length mismatch")
            for lane, regs in enumerate(initial_fregs):
                if len(regs) != 16:
                    raise ExecutionError(
                        "initial register files have wrong length"
                    )
                st.f[:, lane] = regs
        else:
            if len(initial_fregs) != 16:
                raise ExecutionError("initial register files have wrong length")
            st.f[:] = np.array(initial_fregs, dtype=np.float64).reshape(16, 1)

    batch = program.batch_code()
    handlers = batch.handlers
    ops = batch.ops
    may_exit = batch.may_exit
    n = batch.length

    snap_interval = snapshot_interval if snapshot_interval > 0 else 0
    retired = np.zeros(n_lanes, dtype=np.int64)
    budget = np.full(n_lanes, max_instructions, dtype=np.int64)
    snap_countdown = np.full(
        n_lanes, snap_interval if snap_interval else 0, dtype=np.int64
    )
    alive = np.ones(n_lanes, dtype=bool)
    halted = np.zeros(n_lanes, dtype=bool)
    errored = np.zeros(n_lanes, dtype=bool)
    out_chunks: list[list[bytes]] = [[] for _ in range(n_lanes)]
    snapshots = [0] * n_lanes
    pack_i = _SNAP_I.pack
    pack_f = _SNAP_F.pack
    pcs = st.pcs

    # Hot-path scratch (no per-step allocation) and scalar event bounds:
    # the global budget / snapshot countdowns decrease by at most one per
    # step, so a scalar lower bound tells us how many steps are certainly
    # event-free — the per-lane arrays are only scanned when the bound
    # runs out, mirroring the scalar tiers' block-stepped driver.
    mask = np.empty(n_lanes, dtype=bool)
    mask_i = np.empty(n_lanes, dtype=np.int64)
    n_alive = n_lanes
    budget_bound = max_instructions
    snap_bound = snap_interval if snap_interval else 1 << 62
    _BIG = 1 << 62

    with np.errstate(all="ignore"):
        while n_alive:
            cur = int(np.min(pcs, where=alive, initial=n))
            if cur >= n:  # every live lane fell off the end: implicit halt
                halted |= alive
                alive[:] = False
                break
            np.equal(pcs, cur, out=mask)
            mask &= alive
            op = ops[cur]
            if op == 73:  # HALT: retires, consumes neither budget nor tick
                retired[mask] += 1
                halted |= mask
                alive &= ~mask
                n_alive = int(alive.sum())
                continue
            np.copyto(pcs, cur + 1, where=mask)
            handler = handlers[cur]
            if handler is not None:
                handler(st, mask)
            np.copyto(mask_i, mask, casting="unsafe")
            retired += mask_i
            budget -= mask_i
            if snap_interval:
                snap_countdown -= mask_i
                snap_bound -= 1
                if snap_bound <= 0:
                    due = mask & (snap_countdown == 0)
                    if due.any():
                        for lane in np.nonzero(due)[0]:
                            chunk = out_chunks[lane]
                            chunk.append(
                                pack_i(*(int(x) for x in st.i[:, lane]))
                            )
                            chunk.append(
                                pack_f(*(float(x) for x in st.f[:, lane]))
                            )
                            snapshots[lane] += 1
                        snap_countdown[due] = snap_interval
                    snap_bound = int(
                        np.min(snap_countdown, where=alive, initial=_BIG)
                    )
            budget_bound -= 1
            if budget_bound <= 0:
                # Budget check follows the instruction that exhausted it,
                # even when it also left the program (scalar parity).
                exhausted = mask & (budget <= 0)
                if exhausted.any():
                    errored |= exhausted
                    alive &= ~exhausted
                    n_alive = int(alive.sum())
                budget_bound = int(np.min(budget, where=alive, initial=_BIG))
            if may_exit[cur]:
                fell = alive & (pcs >= n)
                if fell.any():
                    halted |= fell
                    alive &= ~fell
                    n_alive = int(alive.sum())

    if copy_back:
        for lane, view in enumerate(views):
            np.copyto(view, mem2d[lane])

    if not collect_errors and errored.any():
        raise ExecutionLimitExceeded(
            f"{program.name}: exceeded {max_instructions} instructions"
        )

    results: list = []
    for lane in range(n_lanes):
        if errored[lane]:
            results.append(
                ExecutionLimitExceeded(
                    f"{program.name}: exceeded {max_instructions} instructions"
                )
            )
            continue
        chunks = out_chunks[lane]
        if snap_interval:
            chunks.append(pack_i(*(int(x) for x in st.i[:, lane])))
            chunks.append(pack_f(*(float(x) for x in st.f[:, lane])))
            snapshots[lane] += 1
        counters = PerfCounters()
        counters.retired = int(retired[lane])
        results.append(
            ExecutionResult(
                counters=counters,
                output=b"".join(chunks),
                iregs=[int(x) for x in st.i[:, lane]],
                fregs=[float(x) for x in st.f[:, lane]],
                halted=bool(halted[lane]),
                snapshots=snapshots[lane],
            )
        )
    return results
