"""Performance counters — the simulator's stand-in for hardware PMUs.

Everything the paper measures on silicon (IPC, branch-prediction accuracy,
instruction mix, cache behaviour) is read from an instance of this class
after a run.  The optional *detail* section (dependency distances, per-branch
bias, basic-block sizes, touched-line working set, stride histogram) feeds
the PerfProx-style profiler and is only populated when a run is started with
``collect_detail=True``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import OpClass

#: Dependency-distance histogram bucket upper bounds (in instructions).
DEP_BUCKETS = (1, 2, 4, 8, 16, 32, 64)

#: Stride histogram bucket upper bounds (in words, absolute value).
STRIDE_BUCKETS = (0, 1, 2, 8, 64, 512)


def bucket_index(value: int, bounds: tuple[int, ...]) -> int:
    """Index of the histogram bucket for ``value`` (last bucket is overflow)."""
    for i, bound in enumerate(bounds):
        if value <= bound:
            return i
    return len(bounds)


@dataclass(slots=True)
class PerfCounters:
    """Counters accumulated over one run."""

    # Headline metrics.
    retired: int = 0
    cycles: float = 0.0

    # Instruction mix (indexed by OpClass value).
    class_counts: list[int] = field(default_factory=lambda: [0] * len(OpClass))

    # Branches.
    branches: int = 0          # conditional branches retired
    taken: int = 0
    mispredicts: int = 0

    # Memory.
    loads: int = 0
    stores: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    dram_accesses: int = 0

    # Detail section (populated only with collect_detail=True).
    opcode_counts: list[int] = field(default_factory=lambda: [0] * 80)
    dep_distance_hist: list[int] = field(
        default_factory=lambda: [0] * (len(DEP_BUCKETS) + 1)
    )
    stride_hist: list[int] = field(
        default_factory=lambda: [0] * (len(STRIDE_BUCKETS) + 1)
    )
    block_sizes: list[int] = field(default_factory=list)
    branch_bias: dict[int, list[int]] = field(default_factory=dict)  # pc -> [taken, total]
    touched_lines: set[int] = field(default_factory=set)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        """Instructions per cycle (0 when nothing ran)."""
        return self.retired / self.cycles if self.cycles > 0 else 0.0

    @property
    def branch_accuracy(self) -> float:
        """Fraction of conditional branches predicted correctly."""
        if self.branches == 0:
            return 1.0
        return 1.0 - self.mispredicts / self.branches

    @property
    def branch_mpki(self) -> float:
        """Branch mispredictions per thousand instructions."""
        if self.retired == 0:
            return 0.0
        return 1000.0 * self.mispredicts / self.retired

    @property
    def taken_rate(self) -> float:
        """Fraction of conditional branches that were taken."""
        return self.taken / self.branches if self.branches else 0.0

    @property
    def l1_hit_rate(self) -> float:
        accesses = self.loads + self.stores
        return self.l1_hits / accesses if accesses else 1.0

    @property
    def working_set_bytes(self) -> int:
        """Touched-line working set (detail mode only), in bytes."""
        return len(self.touched_lines) * 64

    def mix_fractions(self) -> dict[str, float]:
        """Instruction mix as fractions of retired instructions, by class name."""
        total = max(self.retired, 1)
        return {cls.name.lower(): self.class_counts[cls] / total for cls in OpClass}

    def class_count(self, cls: OpClass) -> int:
        """Retired instructions in one resource class."""
        return self.class_counts[cls]

    def biased_branch_fraction(self, threshold: float = 0.9) -> float:
        """Fraction of static branches whose taken-rate bias exceeds
        ``threshold`` in either direction (detail mode only)."""
        if not self.branch_bias:
            return 0.0
        biased = 0
        for taken, total in self.branch_bias.values():
            rate = taken / total
            if rate >= threshold or rate <= 1.0 - threshold:
                biased += 1
        return biased / len(self.branch_bias)

    def summary(self) -> dict[str, float]:
        """Compact headline-metric dict (used by reports and examples)."""
        return {
            "retired": float(self.retired),
            "cycles": self.cycles,
            "ipc": self.ipc,
            "branch_accuracy": self.branch_accuracy,
            "branch_mpki": self.branch_mpki,
            "taken_rate": self.taken_rate,
            "l1_hit_rate": self.l1_hit_rate,
        }
