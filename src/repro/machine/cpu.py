"""Functional + timing simulation of the synthetic GPP.

One pass over the dynamic instruction stream both *executes* each
instruction (architectural state: registers, memory) and *times* it with an
analytic out-of-order model:

* instructions dispatch at ``issue_width`` per cycle in program order;
* an instruction starts when its source operands are ready (register
  scoreboard) and completes after its class latency;
* instruction *i* cannot dispatch before instruction ``i - rob_size``
  completes (reorder-buffer window);
* loads take the latency returned by the cache hierarchy;
* a mispredicted conditional branch stalls dispatch for
  ``mispredict_penalty`` cycles after it resolves.

Total cycles is the maximum of the dispatch clock and the latest completion
time, giving IPC = retired / cycles.  The model reproduces the first-order
effects the paper's figures depend on — dependency chains, mix-dependent
latencies, branch predictability, cache locality — without cycle-accurate
overhead that pure Python could not afford.

Floating-point semantics are fully deterministic: any non-finite or
out-of-range result is replaced by 1.0, memory<->float conversions use a
fixed-point mapping, and division by (near-)zero yields a defined constant.
Determinism of the *entire* architectural trace is what makes widget outputs
verifiable by other miners (§IV-A, irreducibility).

This timing path is one half of a dual-path engine: hashing runs on the
functional fast path in :mod:`repro.machine.fastpath` (same architectural
semantics, no timing model), selected by the ``mode`` knob on
:class:`Machine`.  The two interpreters are differential-tested to be
bit-identical; this one stays authoritative for every timing question.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.errors import ExecutionError, ExecutionLimitExceeded, ReproError
from repro.isa.opcodes import NUM_FP_REGS, NUM_INT_REGS, NUM_VEC_REGS, VEC_LANES
from repro.isa.program import Program
from repro.machine.branch_predictor import make_predictor
from repro.machine.cache import CacheHierarchy
from repro.machine.config import MachineConfig
from repro.machine.memory import Memory
from repro.machine.perf_counters import (
    DEP_BUCKETS,
    STRIDE_BUCKETS,
    PerfCounters,
    bucket_index,
)

_MASK64 = (1 << 64) - 1
_MASK53 = (1 << 53) - 1
_TWO52 = 1 << 52
# float<->memory fixed-point mapping: store (f * 2**26 + 2**52), load the
# inverse; round-trips exactly for |f| < 2**26 and wraps deterministically
# beyond.
_FP_SCALE = 67108864.0  # 2**26

_SNAP_I = struct.Struct(f"<{NUM_INT_REGS}Q")
_SNAP_F = struct.Struct(f"<{NUM_FP_REGS}d")

#: Bytes appended to the output per register snapshot.
SNAPSHOT_BYTES = _SNAP_I.size + _SNAP_F.size


@dataclass(slots=True)
class ExecutionResult:
    """Outcome of one program run."""

    counters: PerfCounters
    output: bytes
    iregs: list[int]
    fregs: list[float]
    halted: bool
    snapshots: int

    @property
    def output_size(self) -> int:
        return len(self.output)


#: Execution modes a :class:`Machine` supports — the execution-tier
#: ladder.  ``timed`` runs the full analytic out-of-order model
#: (authoritative for profiling and every IPC experiment); ``fast`` runs
#: the threaded-code functional path in :mod:`repro.machine.fastpath`;
#: ``jit`` runs the tier-2 JIT in :mod:`repro.machine.jit` (programs
#: translated once into compiled Python segments); ``batch`` runs the
#: tier-3 numpy lockstep interpreter in :mod:`repro.machine.batch`
#: (N lanes per dispatch step).  All tiers produce bit-identical
#: architectural results; they differ only in throughput.
EXECUTION_MODES = ("timed", "fast", "jit", "batch")

#: The fastest functional tier for a *single* run — what ``mode="auto"``
#: resolves to in HashCore and friends.  This stays ``jit`` even though
#: the ladder has a batch rung above it: batch amortises dispatch across
#: lanes, so at N=1 it is strictly slower than the JIT.  Batch execution
#: pays off through the N-lane entry points
#: (:func:`repro.machine.batch.run_batch`, ``HashCore.hash_batch``) and
#: is opt-in per run via ``mode="batch"``.
FASTEST_MODE = "jit"


#: Degradation order of the tier ladder: when a tier fails on a program
#: (compile bug, codegen fault, execution-time error) execution falls to
#: the next entry instead of dying; ``timed`` is the reference model and
#: the final rung.
NEXT_TIER = {"batch": "jit", "jit": "fast", "fast": "timed"}


def resolve_mode(mode: str, exc: type[Exception] = ExecutionError) -> str:
    """Resolve a PoW-level ``mode`` knob to a concrete execution tier.

    ``"auto"`` selects :data:`FASTEST_MODE`; any explicit tier name passes
    through unchanged.  ``exc`` lets callers keep their established error
    type (``ValueError`` for HashCore, ``ConfigError`` for rotation).
    """
    if mode == "auto":
        return FASTEST_MODE
    if mode not in EXECUTION_MODES:
        raise exc(
            f"mode must be 'auto' or one of {EXECUTION_MODES}, got {mode!r}"
        )
    return mode


class Machine:
    """A simulated GPP built from a :class:`MachineConfig`.

    A single ``Machine`` may run many programs; each :meth:`run` starts from
    cold microarchitectural state (fresh caches and predictor) so results
    are independent of run order — required for PoW verifiability.

    ``mode`` selects the default execution engine for :meth:`run` (see
    :data:`EXECUTION_MODES`); individual runs may override it.  Because
    timing never feeds back into architectural state, the mode can never
    change a program's outputs — only how long computing them takes.
    """

    def __init__(
        self, config: MachineConfig | None = None, mode: str = "timed"
    ) -> None:
        if mode not in EXECUTION_MODES:
            raise ExecutionError(
                f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
            )
        self.mode = mode
        self.config = config or MachineConfig()
        cfg = self.config
        # Per-opcode latency table (loads patched at access time).
        lat = [1] * 80
        for op in range(0, 24):
            lat[op] = cfg.int_alu_latency
        lat[24] = lat[25] = cfg.int_mul_latency
        lat[26] = lat[27] = cfg.int_div_latency
        for op in range(32, 43):
            lat[op] = cfg.fp_misc_latency
        lat[32] = lat[33] = cfg.fp_add_latency
        lat[34] = cfg.fp_mul_latency
        lat[35] = cfg.fp_div_latency
        lat[40] = cfg.fp_mul_latency  # FMA costs a multiply
        for op in range(64, 71):
            lat[op] = cfg.vector_latency
        self._latency = lat
        # Tier-degradation registry: aggregate fall-back counters plus a
        # per-widget breakdown, surfaced through tier_stats() the way the
        # decode caches surface cache_stats().
        self._degradations: dict[str, int] = {}
        self._widget_degradations: dict[str, dict[str, int]] = {}
        self._degradation_log: list[str] = []
        # Per-tier dispatch counters: how many runs actually executed on
        # each tier after translation degradations re-routed them.
        self._tier_runs: dict[str, int] = {
            tier: 0 for tier in EXECUTION_MODES
        }

    def new_memory(self) -> Memory:
        """A zeroed memory sized for this machine."""
        return Memory(self.config.memory_words)

    # ------------------------------------------------------------------
    def _note_degradation(
        self, program: Program, from_tier: str, to_tier: str, exc: Exception
    ) -> None:
        """Record one tier fall-back and block the failed tier on the
        program so later runs route around it without retrying."""
        program.block_tier(from_tier)
        key = f"{from_tier}->{to_tier}"
        self._degradations[key] = self._degradations.get(key, 0) + 1
        per = self._widget_degradations.setdefault(program.name, {})
        per[key] = per.get(key, 0) + 1
        if len(self._degradation_log) < 32:  # cap: diagnostics, not a leak
            self._degradation_log.append(
                f"{program.name}: {key}: {exc!r}"
            )

    def tier_stats(self) -> dict:
        """Tier-degradation counters, ``cache_stats()``-style.

        ``degradations`` aggregates fall-back events per edge of the
        ladder (``{"jit->fast": n, "fast->timed": m}``), ``widgets``
        breaks them down per program name, and ``log`` keeps the first
        few error strings for diagnostics.  All zeros/empty on a healthy
        machine — the mining engine's health report folds these in via
        the per-worker stats channel.
        """
        return {
            "degradations": dict(self._degradations),
            "widgets": {
                name: dict(counts)
                for name, counts in self._widget_degradations.items()
            },
            "log": list(self._degradation_log),
            "runs": dict(self._tier_runs),
        }

    def run_with_fallback(
        self,
        program: Program,
        memory_factory: "Callable[[], Memory] | None" = None,
        *,
        max_instructions: int = 10_000_000,
        snapshot_interval: int = 0,
        initial_iregs: list[int] | None = None,
        initial_fregs: list[float] | None = None,
        mode: str | None = None,
    ) -> ExecutionResult:
        """Execute ``program`` on the degrading tier ladder.

        Like :meth:`run`, but execution-time faults in an accelerated tier
        (not just translation faults) degrade to the next rung instead of
        propagating: the failed tier may have dirtied memory mid-run, so
        each attempt starts from a fresh ``memory_factory()`` product.
        :class:`ExecutionLimitExceeded` always propagates — the fuse trip
        is an architectural outcome, identical on every tier, not a tier
        bug.  If even the timed reference model fails on a non-library
        error after degradation, the ladder raises a structured
        :class:`~repro.errors.EngineFault` with code ``tier-degraded``.

        ``memory_factory`` rebuilds the initial memory image for each
        attempt (``None``: a zeroed machine-sized memory).  The happy path
        calls it exactly once and adds only a try frame over :meth:`run`.
        """
        mode = self.mode if mode is None else mode
        if mode not in EXECUTION_MODES:
            raise ExecutionError(
                f"unknown execution mode {mode!r}; "
                f"expected one of {EXECUTION_MODES}"
            )
        kwargs = dict(
            max_instructions=max_instructions,
            snapshot_interval=snapshot_interval,
            initial_iregs=initial_iregs,
            initial_fregs=initial_fregs,
        )

        def fresh_memory() -> Memory | None:
            return memory_factory() if memory_factory is not None else None

        tier = mode
        while tier != "timed":
            if program.tier_blocked(tier):
                tier = NEXT_TIER[tier]
                continue
            try:
                return self.run(program, fresh_memory(), mode=tier, **kwargs)
            except ExecutionLimitExceeded:
                raise
            except Exception as exc:  # noqa: BLE001 — tier bug, degrade
                self._note_degradation(program, tier, NEXT_TIER[tier], exc)
                tier = NEXT_TIER[tier]
        try:
            return self.run(program, fresh_memory(), mode="timed", **kwargs)
        except ReproError:
            raise  # library errors (fuse, config…) are the real outcome
        except Exception as exc:  # noqa: BLE001
            from repro.errors import EngineFault

            raise EngineFault(
                "tier-degraded",
                f"{program.name}: every execution tier failed "
                f"(last: {exc!r})",
            ) from exc

    # ------------------------------------------------------------------
    def run_lockstep(
        self,
        program: Program,
        memories,
        *,
        max_instructions: int = 10_000_000,
        snapshot_interval: int = 0,
        initial_iregs=None,
        initial_fregs=None,
        collect_errors: bool = False,
    ) -> list:
        """Execute ``program`` once per entry of ``memories``, all lanes in
        lockstep on the tier-3 batch engine (one vectorised dispatch
        advances every lane at each step).

        The scalar analogue is ``[self.run(program, m, mode="jit") for m
        in memories]`` and the results are bit-identical; the lockstep
        form amortises dispatch overhead across lanes.  ``memories`` may
        be a list of :class:`Memory` objects (copied in and back out) or
        an ``(N, words)`` uint64 ndarray mutated in place (zero-copy).
        Translation faults propagate — callers wanting the degrading
        ladder handle them (see :meth:`HashCore.hash_batch`).
        """
        from repro.machine.batch import run_batch

        self._tier_runs["batch"] += 1
        return run_batch(
            self,
            program,
            memories,
            max_instructions=max_instructions,
            snapshot_interval=snapshot_interval,
            initial_iregs=initial_iregs,
            initial_fregs=initial_fregs,
            collect_errors=collect_errors,
        )

    def run(
        self,
        program: Program,
        memory: Memory | None = None,
        *,
        max_instructions: int = 10_000_000,
        snapshot_interval: int = 0,
        collect_detail: bool = False,
        initial_iregs: list[int] | None = None,
        initial_fregs: list[float] | None = None,
        mode: str | None = None,
    ) -> ExecutionResult:
        """Execute ``program`` to completion.

        ``snapshot_interval`` > 0 appends a register snapshot to the output
        every that many retired instructions (plus one final snapshot at
        termination) — the widget output mechanism of §IV-B.  ``collect_detail``
        additionally gathers the profiler's histograms (slower).

        ``mode`` overrides the machine's default execution engine for this
        run: ``"fast"`` dispatches to the functional fast path, ``"jit"``
        to the tier-2 JIT (both: identical architectural results, counters
        report only ``retired``); ``"timed"`` runs the full timing model.
        ``collect_detail`` always implies the timing path — the detail
        histograms *are* timing instrumentation.

        Raises :class:`ExecutionLimitExceeded` when ``max_instructions``
        retire without the program halting.
        """
        if mode is None:
            mode = self.mode
        elif mode not in EXECUTION_MODES:
            raise ExecutionError(
                f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
            )
        if mode != "timed" and not collect_detail:
            # Degrading dispatch: a tier whose *translation* step fails
            # (jit_code()/fast_handlers() raising before any architectural
            # state is touched) falls to the next rung instead of dying.
            # Execution-time failures propagate — memory may be dirty, so
            # only run_with_fallback (which can rebuild memory) retries
            # them on a lower tier.
            tier = mode
            while tier != "timed":
                if program.tier_blocked(tier):
                    tier = NEXT_TIER[tier]
                    continue
                try:
                    if tier == "batch":
                        program.batch_code()
                    elif tier == "jit":
                        program.jit_code()
                    else:
                        program.fast_handlers()
                except Exception as exc:  # noqa: BLE001 — tier bug, degrade
                    self._note_degradation(
                        program, tier, NEXT_TIER[tier], exc
                    )
                    tier = NEXT_TIER[tier]
                    continue
                break
            if tier == "batch":
                from repro.machine.batch import run_batch

                self._tier_runs["batch"] += 1
                return run_batch(
                    self,
                    program,
                    memory,
                    max_instructions=max_instructions,
                    snapshot_interval=snapshot_interval,
                    initial_iregs=initial_iregs,
                    initial_fregs=initial_fregs,
                )[0]
            if tier == "jit":
                from repro.machine.jit import run_jit

                self._tier_runs["jit"] += 1
                return run_jit(
                    self,
                    program,
                    memory,
                    max_instructions=max_instructions,
                    snapshot_interval=snapshot_interval,
                    initial_iregs=initial_iregs,
                    initial_fregs=initial_fregs,
                )
            if tier == "fast":
                from repro.machine.fastpath import run_fast

                self._tier_runs["fast"] += 1
                return run_fast(
                    self,
                    program,
                    memory,
                    max_instructions=max_instructions,
                    snapshot_interval=snapshot_interval,
                    initial_iregs=initial_iregs,
                    initial_fregs=initial_fregs,
                )
            # Every functional tier degraded: fall through to the timed
            # model below — slow, but authoritative and always available.
        cfg = self.config
        if memory is None:
            memory = self.new_memory()
        if max_instructions <= 0:
            raise ExecutionError("max_instructions must be positive")
        self._tier_runs["timed"] += 1

        code = program.code_tuples()
        n = len(code)

        iregs = [v & _MASK64 for v in (initial_iregs or [0] * NUM_INT_REGS)]
        fregs = list(initial_fregs or [0.0] * NUM_FP_REGS)
        if len(iregs) != NUM_INT_REGS or len(fregs) != NUM_FP_REGS:
            raise ExecutionError("initial register files have wrong length")
        vregs = [[0.0] * VEC_LANES for _ in range(NUM_VEC_REGS)]

        ready_i = [0.0] * NUM_INT_REGS
        ready_f = [0.0] * NUM_FP_REGS
        ready_v = [0.0] * NUM_VEC_REGS

        hierarchy = CacheHierarchy(cfg)
        cache_access = hierarchy.access
        predictor = make_predictor(
            cfg.predictor, cfg.predictor_table_bits, cfg.predictor_history_bits
        )
        predict = predictor.predict
        predictor_update = predictor.update

        words = memory.words
        mem_mask = memory.mask

        counters = PerfCounters()
        class_counts = counters.class_counts
        opcode_counts = counters.opcode_counts
        dep_hist = counters.dep_distance_hist
        stride_hist = counters.stride_hist
        block_sizes = counters.block_sizes
        branch_bias = counters.branch_bias
        touched = counters.touched_lines
        last_writer_i = [0] * NUM_INT_REGS
        last_writer_f = [0] * NUM_FP_REGS
        last_mem_addr: dict[int, int] = {}
        detail = collect_detail

        step = 1.0 / cfg.issue_width
        dispatch = 0.0
        max_done = 0.0
        rob_size = cfg.rob_size
        rob = [0.0] * rob_size
        rob_pos = 0
        penalty = float(cfg.mispredict_penalty)
        store_lat = cfg.store_latency
        branch_lat = cfg.branch_latency
        latency = self._latency

        out_chunks: list[bytes] = []
        snap_interval = snapshot_interval if snapshot_interval > 0 else 0
        snap_countdown = snap_interval
        snapshots = 0
        pack_i = _SNAP_I.pack
        pack_f = _SNAP_F.pack

        retired = 0
        branches = 0
        taken_count = 0
        mispredicts = 0
        loads = 0
        stores = 0
        block_len = 0
        halted = False
        budget = max_instructions

        pc = 0
        while pc < n:
            op, a, b, c, imm = code[pc]
            pc += 1
            if detail:
                opcode_counts[op] += 1

            rt = rob[rob_pos]
            if rt > dispatch:
                dispatch = rt
            start = dispatch

            if op < 24:  # ---------------- integer ALU ----------------
                class_counts[0] += 1
                if op == 0:  # ADD
                    value = (iregs[b] + iregs[c]) & _MASK64
                elif op == 1:  # SUB
                    value = (iregs[b] - iregs[c]) & _MASK64
                elif op == 2:  # AND
                    value = iregs[b] & iregs[c]
                elif op == 3:  # OR
                    value = iregs[b] | iregs[c]
                elif op == 4:  # XOR
                    value = iregs[b] ^ iregs[c]
                elif op == 5:  # SHL
                    value = (iregs[b] << (iregs[c] & 63)) & _MASK64
                elif op == 6:  # SHR
                    value = iregs[b] >> (iregs[c] & 63)
                elif op == 7:  # ADDI
                    value = (iregs[b] + imm) & _MASK64
                elif op == 8:  # ANDI
                    value = iregs[b] & (imm & _MASK64)
                elif op == 9:  # ORI
                    value = iregs[b] | (imm & _MASK64)
                elif op == 10:  # XORI
                    value = iregs[b] ^ (imm & _MASK64)
                elif op == 11:  # SHLI
                    value = (iregs[b] << (imm & 63)) & _MASK64
                elif op == 12:  # SHRI
                    value = iregs[b] >> (imm & 63)
                elif op == 13:  # MOV
                    value = iregs[b]
                elif op == 14:  # MOVI
                    value = imm & _MASK64
                elif op == 15:  # NOT
                    value = iregs[b] ^ _MASK64
                elif op == 16:  # CMPLT
                    value = 1 if iregs[b] < iregs[c] else 0
                elif op == 17:  # CMPEQ
                    value = 1 if iregs[b] == iregs[c] else 0
                elif op == 18:  # MIN
                    value = iregs[b] if iregs[b] < iregs[c] else iregs[c]
                else:  # MAX
                    value = iregs[b] if iregs[b] > iregs[c] else iregs[c]
                if op != 14:  # all but MOVI read r[b]
                    t = ready_i[b]
                    if t > start:
                        start = t
                    if op < 7 or op > 15:  # three-register forms read r[c]
                        t = ready_i[c]
                        if t > start:
                            start = t
                    if detail:
                        dep_hist[bucket_index(retired - last_writer_i[b], DEP_BUCKETS)] += 1
                done = start + latency[op]
                iregs[a] = value
                ready_i[a] = done
                if detail:
                    last_writer_i[a] = retired

            elif op < 32:  # ---------------- integer multiply / divide ----
                class_counts[1] += 1
                vb = iregs[b]
                vc = iregs[c]
                if op == 24:  # MUL
                    value = (vb * vc) & _MASK64
                elif op == 25:  # MULHI
                    value = (vb * vc) >> 64
                elif op == 26:  # DIV
                    value = _MASK64 if vc == 0 else vb // vc
                else:  # MOD
                    value = 0 if vc == 0 else vb % vc
                t = ready_i[b]
                if t > start:
                    start = t
                t = ready_i[c]
                if t > start:
                    start = t
                if detail:
                    dep_hist[bucket_index(retired - last_writer_i[b], DEP_BUCKETS)] += 1
                done = start + latency[op]
                iregs[a] = value
                ready_i[a] = done
                if detail:
                    last_writer_i[a] = retired

            elif op == 42:  # CVTFI: float source, integer destination
                class_counts[2] += 1
                t = ready_f[b]
                if t > start:
                    start = t
                done = start + latency[op]
                iregs[a] = int(fregs[b]) & _MASK64
                ready_i[a] = done
                if detail:
                    last_writer_i[a] = retired

            elif op < 48:  # ---------------- floating point -------------
                class_counts[2] += 1
                if op == 40:  # FMA: f[a] += f[b] * f[c]
                    fvalue = fregs[a] + fregs[b] * fregs[c]
                    t = ready_f[a]
                    if t > start:
                        start = t
                    t = ready_f[b]
                    if t > start:
                        start = t
                    t = ready_f[c]
                    if t > start:
                        start = t
                elif op == 41:  # CVTIF
                    fvalue = float(iregs[b] & _MASK53)
                    t = ready_i[b]
                    if t > start:
                        start = t
                else:
                    fb = fregs[b]
                    t = ready_f[b]
                    if t > start:
                        start = t
                    if op < 38:  # two-source FP ops read f[c]
                        fc = fregs[c]
                        t = ready_f[c]
                        if t > start:
                            start = t
                        if op == 32:
                            fvalue = fb + fc
                        elif op == 33:
                            fvalue = fb - fc
                        elif op == 34:
                            fvalue = fb * fc
                        elif op == 35:
                            fvalue = fb / fc if (fc > 1e-300 or fc < -1e-300) else 1.0
                        elif op == 36:
                            fvalue = fb if fb < fc else fc
                        else:
                            fvalue = fb if fb > fc else fc
                    elif op == 38:  # FABS
                        fvalue = fb if fb >= 0.0 else -fb
                    else:  # FNEG
                        fvalue = -fb
                if not -1e300 < fvalue < 1e300:  # clamp NaN/Inf/overflow
                    fvalue = 1.0
                done = start + latency[op]
                fregs[a] = fvalue
                ready_f[a] = done
                if detail:
                    last_writer_f[a] = retired

            elif op < 52:  # ---------------- loads ----------------------
                class_counts[3] += 1
                loads += 1
                addr = (iregs[b] + imm) & mem_mask
                t = ready_i[b]
                if t > start:
                    start = t
                done = start + cache_access(addr)
                if op == 48:  # LOAD
                    iregs[a] = words[addr]
                    ready_i[a] = done
                    if detail:
                        last_writer_i[a] = retired
                else:  # FLOAD
                    fregs[a] = ((words[addr] & _MASK53) - _TWO52) / _FP_SCALE
                    ready_f[a] = done
                    if detail:
                        last_writer_f[a] = retired
                if detail:
                    dep_hist[bucket_index(retired - last_writer_i[b], DEP_BUCKETS)] += 1
                    touched.add(addr >> 3)
                    mem_pc = pc - 1
                    prev = last_mem_addr.get(mem_pc)
                    if prev is not None:
                        stride = addr - prev
                        if stride < 0:
                            stride = -stride
                        stride_hist[bucket_index(stride, STRIDE_BUCKETS)] += 1
                    last_mem_addr[mem_pc] = addr

            elif op < 56:  # ---------------- stores ---------------------
                class_counts[4] += 1
                stores += 1
                addr = (iregs[b] + imm) & mem_mask
                t = ready_i[b]
                if t > start:
                    start = t
                if op == 52:  # STORE
                    t = ready_i[a]
                    if t > start:
                        start = t
                    words[addr] = iregs[a]
                else:  # FSTORE
                    t = ready_f[a]
                    if t > start:
                        start = t
                    words[addr] = (int(fregs[a] * _FP_SCALE) + _TWO52) & _MASK64
                cache_access(addr)
                done = start + store_lat
                if detail:
                    touched.add(addr >> 3)
                    mem_pc = pc - 1
                    prev = last_mem_addr.get(mem_pc)
                    if prev is not None:
                        stride = addr - prev
                        if stride < 0:
                            stride = -stride
                        stride_hist[bucket_index(stride, STRIDE_BUCKETS)] += 1
                    last_mem_addr[mem_pc] = addr

            elif op < 64:  # ---------------- branches -------------------
                class_counts[5] += 1
                bpc = pc - 1
                if op == 60:  # JMP: unconditional, target known
                    done = start + branch_lat
                    pc = imm
                    if detail:
                        block_sizes.append(block_len + 1)
                        block_len = -1  # +1 below restores 0
                else:
                    if op == 61:  # LOOPNZ: decrement and branch if non-zero
                        value = (iregs[a] - 1) & _MASK64
                        iregs[a] = value
                        taken = value != 0
                        t = ready_i[a]
                        if t > start:
                            start = t
                        done = start + branch_lat
                        ready_i[a] = done
                    else:
                        va = iregs[a]
                        vb = iregs[b]
                        if op == 56:
                            taken = va == vb
                        elif op == 57:
                            taken = va != vb
                        elif op == 58:
                            taken = va < vb
                        else:
                            taken = va >= vb
                        t = ready_i[a]
                        if t > start:
                            start = t
                        t = ready_i[b]
                        if t > start:
                            start = t
                        done = start + branch_lat
                    branches += 1
                    predicted = predict(bpc)
                    predictor_update(bpc, taken)
                    if taken:
                        taken_count += 1
                        pc = imm
                    if predicted != taken:
                        mispredicts += 1
                        flush = done + penalty
                        if flush > dispatch:
                            dispatch = flush
                    if detail:
                        bias = branch_bias.get(bpc)
                        if bias is None:
                            branch_bias[bpc] = [1 if taken else 0, 1]
                        else:
                            bias[1] += 1
                            if taken:
                                bias[0] += 1
                        block_sizes.append(block_len + 1)
                        block_len = -1

            elif op < 72:  # ---------------- vector ---------------------
                class_counts[6] += 1
                if op == 64:  # VADD
                    vb_ = vregs[b]
                    vc_ = vregs[c]
                    vregs[a] = [
                        x if -1e300 < x < 1e300 else 1.0
                        for x in (
                            vb_[0] + vc_[0],
                            vb_[1] + vc_[1],
                            vb_[2] + vc_[2],
                            vb_[3] + vc_[3],
                        )
                    ]
                    t = ready_v[b]
                    if t > start:
                        start = t
                    t = ready_v[c]
                    if t > start:
                        start = t
                    done = start + latency[op]
                    ready_v[a] = done
                elif op == 65:  # VMUL
                    vb_ = vregs[b]
                    vc_ = vregs[c]
                    vregs[a] = [
                        x if -1e300 < x < 1e300 else 1.0
                        for x in (
                            vb_[0] * vc_[0],
                            vb_[1] * vc_[1],
                            vb_[2] * vc_[2],
                            vb_[3] * vc_[3],
                        )
                    ]
                    t = ready_v[b]
                    if t > start:
                        start = t
                    t = ready_v[c]
                    if t > start:
                        start = t
                    done = start + latency[op]
                    ready_v[a] = done
                elif op == 66:  # VFMA: v[a] += v[b] * v[c]
                    va_ = vregs[a]
                    vb_ = vregs[b]
                    vc_ = vregs[c]
                    vregs[a] = [
                        x if -1e300 < x < 1e300 else 1.0
                        for x in (
                            va_[0] + vb_[0] * vc_[0],
                            va_[1] + vb_[1] * vc_[1],
                            va_[2] + vb_[2] * vc_[2],
                            va_[3] + vb_[3] * vc_[3],
                        )
                    ]
                    t = ready_v[a]
                    if t > start:
                        start = t
                    t = ready_v[b]
                    if t > start:
                        start = t
                    t = ready_v[c]
                    if t > start:
                        start = t
                    done = start + latency[op]
                    ready_v[a] = done
                elif op == 67:  # VLOAD
                    addr = (iregs[b] + imm) & mem_mask
                    t = ready_i[b]
                    if t > start:
                        start = t
                    done = start + cache_access(addr)
                    vregs[a] = [
                        ((words[addr] & _MASK53) - _TWO52) / _FP_SCALE,
                        ((words[(addr + 1) & mem_mask] & _MASK53) - _TWO52) / _FP_SCALE,
                        ((words[(addr + 2) & mem_mask] & _MASK53) - _TWO52) / _FP_SCALE,
                        ((words[(addr + 3) & mem_mask] & _MASK53) - _TWO52) / _FP_SCALE,
                    ]
                    ready_v[a] = done
                    loads += 1
                    if detail:
                        touched.add(addr >> 3)
                elif op == 68:  # VSTORE
                    addr = (iregs[b] + imm) & mem_mask
                    t = ready_i[b]
                    if t > start:
                        start = t
                    t = ready_v[a]
                    if t > start:
                        start = t
                    va_ = vregs[a]
                    words[addr] = (int(va_[0] * _FP_SCALE) + _TWO52) & _MASK64
                    words[(addr + 1) & mem_mask] = (int(va_[1] * _FP_SCALE) + _TWO52) & _MASK64
                    words[(addr + 2) & mem_mask] = (int(va_[2] * _FP_SCALE) + _TWO52) & _MASK64
                    words[(addr + 3) & mem_mask] = (int(va_[3] * _FP_SCALE) + _TWO52) & _MASK64
                    cache_access(addr)
                    done = start + store_lat
                    stores += 1
                    if detail:
                        touched.add(addr >> 3)
                elif op == 69:  # VBROADCAST
                    t = ready_f[b]
                    if t > start:
                        start = t
                    done = start + latency[op]
                    vregs[a] = [fregs[b]] * VEC_LANES
                    ready_v[a] = done
                else:  # VREDUCE
                    t = ready_v[b]
                    if t > start:
                        start = t
                    done = start + latency[op]
                    vb_ = vregs[b]
                    total = vb_[0] + vb_[1] + vb_[2] + vb_[3]
                    fregs[a] = total if -1e300 < total < 1e300 else 1.0
                    ready_f[a] = done

            else:  # ---------------- system --------------------------
                class_counts[7] += 1
                done = start
                if op == 73:  # HALT
                    retired += 1
                    halted = True
                    break
                # NOP falls through.

            retired += 1
            budget -= 1
            if done > max_done:
                max_done = done
            rob[rob_pos] = done
            rob_pos += 1
            if rob_pos == rob_size:
                rob_pos = 0
            dispatch += step
            block_len += 1
            if snap_countdown:
                snap_countdown -= 1
                if snap_countdown == 0:
                    out_chunks.append(pack_i(*iregs))
                    out_chunks.append(pack_f(*fregs))
                    snapshots += 1
                    snap_countdown = snap_interval
            if budget <= 0:
                raise ExecutionLimitExceeded(
                    f"{program.name}: exceeded {max_instructions} instructions"
                )

        if pc >= n:
            halted = True  # fell off the end: implicit halt

        if snap_interval:
            # Final-state snapshot: the output commits to the complete run.
            out_chunks.append(pack_i(*iregs))
            out_chunks.append(pack_f(*fregs))
            snapshots += 1

        counters.retired = retired
        counters.cycles = max(dispatch, max_done)
        counters.branches = branches
        counters.taken = taken_count
        counters.mispredicts = mispredicts
        counters.loads = loads
        counters.stores = stores
        counters.l1_hits = hierarchy.l1.hits
        counters.l2_hits = hierarchy.l2.hits
        counters.l3_hits = hierarchy.l3.hits if hierarchy.l3 is not None else 0
        counters.dram_accesses = hierarchy.dram_accesses
        if detail and block_len > 0:
            block_sizes.append(block_len)

        return ExecutionResult(
            counters=counters,
            output=b"".join(out_chunks),
            iregs=iregs,
            fregs=fregs,
            halted=halted,
            snapshots=snapshots,
        )
