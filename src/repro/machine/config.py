"""Machine configurations and the presets used by the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """One cache level: ``size_bytes`` capacity, ``ways`` associativity,
    ``line_bytes`` line size, ``latency`` access latency in cycles."""

    size_bytes: int
    ways: int
    line_bytes: int
    latency: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache dimensions must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        sets = self.num_sets
        if sets & (sets - 1):
            raise ConfigError(f"number of sets must be a power of two, got {sets}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Full description of a simulated GPP.

    The default values approximate the paper's evaluation platform (Xeon
    E5-2430 v2, Ivy Bridge): 4-wide out-of-order core, 168-entry ROB,
    32 KB/256 KB/15 MB cache hierarchy, gshare-class branch prediction.
    """

    name: str = "ivy-bridge-like"
    issue_width: int = 4
    rob_size: int = 168

    # Execution latencies (cycles).
    int_alu_latency: int = 1
    int_mul_latency: int = 3
    int_div_latency: int = 26
    fp_add_latency: int = 3
    fp_mul_latency: int = 5
    fp_div_latency: int = 14
    fp_misc_latency: int = 2
    vector_latency: int = 4
    store_latency: int = 1
    branch_latency: int = 1

    # Branch prediction.
    predictor: str = "gshare"
    predictor_table_bits: int = 12
    predictor_history_bits: int = 12
    mispredict_penalty: int = 14

    # Memory system.
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(32 * 1024, 8, 64, 4)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(256 * 1024, 8, 64, 12)
    )
    # The real E5-2430 v2 has a 15 MB 20-way L3; 16 MB/16-way keeps the
    # set count a power of two with nearly identical capacity behaviour.
    l3: CacheConfig | None = field(
        default_factory=lambda: CacheConfig(16 * 1024 * 1024, 16, 64, 30)
    )
    memory_latency: int = 180
    memory_words: int = 1 << 21  # 16 MiB of 8-byte words
    #: Next-line prefetch on L1 misses.  Off by default: the consensus
    #: profile was measured without it, and it is a *timing* feature only —
    #: architectural results (and hashes) are identical either way.
    prefetch_next_line: bool = False

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ConfigError("issue_width must be >= 1")
        if self.rob_size < 1:
            raise ConfigError("rob_size must be >= 1")
        if self.memory_words & (self.memory_words - 1):
            raise ConfigError("memory_words must be a power of two")
        if self.predictor not in ("gshare", "bimodal", "always-taken"):
            raise ConfigError(f"unknown predictor {self.predictor!r}")

    def scaled_memory(self, words: int) -> "MachineConfig":
        """Copy of this config with a different memory size."""
        return replace(self, memory_words=words)


def ivy_bridge() -> MachineConfig:
    """The paper's evaluation platform (§V): Ivy Bridge Xeon E5-2430 v2."""
    return MachineConfig()


def mobile_arm() -> MachineConfig:
    """An ARM-like mobile core (§VI-B: targeting alternative GPPs)."""
    return MachineConfig(
        name="mobile-arm-like",
        issue_width=2,
        rob_size=64,
        int_mul_latency=4,
        fp_add_latency=4,
        fp_mul_latency=6,
        predictor="bimodal",
        predictor_table_bits=10,
        predictor_history_bits=0,
        mispredict_penalty=8,
        l1=CacheConfig(32 * 1024, 4, 64, 3),
        l2=CacheConfig(512 * 1024, 8, 64, 15),
        l3=None,
        memory_latency=150,
        memory_words=1 << 20,
    )


def scalar_inorder() -> MachineConfig:
    """A minimal in-order scalar core — the 'stripped ASIC' end of the
    spectrum used by ablation benches."""
    return MachineConfig(
        name="scalar-inorder",
        issue_width=1,
        rob_size=1,
        predictor="bimodal",
        predictor_table_bits=8,
        predictor_history_bits=0,
        mispredict_penalty=4,
        l1=CacheConfig(16 * 1024, 2, 64, 2),
        l2=CacheConfig(128 * 1024, 4, 64, 10),
        l3=None,
        memory_latency=100,
        memory_words=1 << 20,
    )


def modern_desktop() -> MachineConfig:
    """A wider, newer desktop core (6-wide, larger window and caches,
    next-line prefetch) — the upper end of the §VI-B hardware spectrum."""
    return MachineConfig(
        name="modern-desktop",
        issue_width=6,
        rob_size=352,
        int_mul_latency=3,
        fp_add_latency=3,
        fp_mul_latency=4,
        fp_div_latency=11,
        mispredict_penalty=16,
        predictor_table_bits=14,
        predictor_history_bits=14,
        l1=CacheConfig(48 * 1024, 12, 64, 4),
        l2=CacheConfig(1024 * 1024, 16, 64, 13),
        l3=CacheConfig(32 * 1024 * 1024, 16, 64, 34),
        memory_latency=170,
        memory_words=1 << 21,
        prefetch_next_line=True,
    )


PRESETS = {
    "ivy-bridge": ivy_bridge,
    "mobile-arm": mobile_arm,
    "scalar-inorder": scalar_inorder,
    "modern-desktop": modern_desktop,
}


def preset(name: str) -> MachineConfig:
    """Look up a named machine preset."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown machine preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
