"""Microarchitectural GPP simulator.

This subpackage stands in for the paper's physical Xeon E5-2430 v2: widgets
and workloads execute instruction-by-instruction on a machine model with the
resource classes Table I targets, and the performance counters the paper
reads from hardware PMUs are collected by :class:`PerfCounters` instead.

The timing model is an analytic out-of-order model: instructions dispatch at
``issue_width`` per cycle, wait for their source operands (dependency
scoreboard), occupy a reorder-buffer window, suffer branch-misprediction
flushes, and see load latencies from a simulated three-level set-associative
cache hierarchy.  It is *not* cycle-accurate silicon — it does not need to
be: the paper's figures compare widget IPC / branch-prediction distributions
against a reference workload measured on the *same* platform, and this model
plays that platform's role for both.

Execution is dual-path: the timing model above (``mode="timed"``) is
authoritative for profiling and experiments, while hashing runs on the
functional fast path (``mode="fast"``, :mod:`repro.machine.fastpath`) that
computes bit-identical architectural results without any timing machinery.
"""

from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.branch_predictor import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    make_predictor,
)
from repro.machine.cache import Cache, CacheHierarchy
from repro.machine.memory import Memory
from repro.machine.perf_counters import PerfCounters
from repro.machine.cpu import EXECUTION_MODES, ExecutionResult, Machine
from repro.machine.energy import EnergyBreakdown, EnergyModel, EnergyParams
from repro.machine.fastpath import compile_threaded, run_fast

__all__ = [
    "EXECUTION_MODES",
    "compile_threaded",
    "run_fast",
    "CacheConfig",
    "MachineConfig",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "make_predictor",
    "Cache",
    "CacheHierarchy",
    "Memory",
    "PerfCounters",
    "ExecutionResult",
    "Machine",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
]
