"""Functional fast-path interpreter — the hashing twin of the timing model.

HashCore's digest is ``G(s || W(s))`` where the widget output ``W(s)`` is
purely *architectural* state: register snapshots taken every
``snapshot_interval`` retired instructions plus the final register file.
ARCHITECTURE.md states the load-bearing invariant — *timing never feeds
back into architectural state* — so every cycle the timing model spends on
the cache hierarchy, branch predictor, reorder buffer and scoreboard is
provably irrelevant to the hash value.  This module exploits that: it
executes the identical instruction semantics as
:meth:`repro.machine.cpu.Machine.run` while touching *nothing but*
registers, memory and the snapshot stream.

Two interpretation strategies are provided, both bit-identical to the
timing path (enforced by ``tests/test_fastpath.py``'s differential suite):

* **ladder** — the timing path's ``op < 24`` dispatch ladder with every
  timing line stripped;
* **threaded** (default) — each :class:`~repro.isa.program.Program` is
  decoded *once* into a list of bound closures (classic threaded code),
  one per static instruction, with operand indices, masked immediates and
  the fall-through pc baked in as default arguments.  The dispatch loop is
  then just ``pc = handlers[pc](state)``.  The handler list is cached on
  the program alongside ``code_tuples``, so re-running a widget (LRU cache
  hits, verification, multi-nonce mining on one header) pays the decode
  cost only once.

The timing path in :mod:`repro.machine.cpu` remains authoritative for all
profiling, IPC and benchmark experiments; this module is what the miner
and verifier run.
"""

from __future__ import annotations

from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.opcodes import NUM_FP_REGS, NUM_INT_REGS, NUM_VEC_REGS, VEC_LANES
from repro.isa.program import Program
from repro.machine.cpu import (
    _FP_SCALE,
    _MASK53,
    _MASK64,
    _SNAP_F,
    _SNAP_I,
    _TWO52,
    ExecutionResult,
)
from repro.machine.memory import Memory
from repro.machine.perf_counters import PerfCounters

#: Strategy used when ``run_fast`` is called without an explicit
#: ``threaded`` argument.  Threaded code wins on every machine we measured
#: (it skips both the tuple unpack and the opcode ladder per dynamic
#: instruction); the ladder is kept as a zero-compile fallback and as a
#: second implementation for the differential suite to cross-check.
DEFAULT_THREADED = True


class _State:
    """Mutable architectural state shared with the threaded handlers.

    A slotted attribute container is the cheapest per-call vehicle for the
    register files: handlers read only the files they touch (one attribute
    load each) instead of unpacking a tuple of all five.
    """

    __slots__ = ("i", "f", "v", "w", "m")

    def __init__(
        self,
        iregs: list[int],
        fregs: list[float],
        vregs: list[list[float]],
        words: list[int],
        mask: int,
    ) -> None:
        self.i = iregs
        self.f = fregs
        self.v = vregs
        self.w = words
        self.m = mask


def _compile_one(op: int, a: int, b: int, c: int, imm: int, nxt: int):
    """Build the bound-closure handler for one static instruction.

    Every handler takes the :class:`_State` and returns the next pc; a
    negative return is the HALT sentinel.  Operand indices, pre-masked
    immediates and the fall-through pc are bound as default arguments so
    the handler body runs entirely on locals.
    """
    M = _MASK64
    if op == 0:  # ADD
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = (I[b] + I[c]) & M
            return n
    elif op == 1:  # SUB
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = (I[b] - I[c]) & M
            return n
    elif op == 2:  # AND
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = I[b] & I[c]
            return n
    elif op == 3:  # OR
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = I[b] | I[c]
            return n
    elif op == 4:  # XOR
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = I[b] ^ I[c]
            return n
    elif op == 5:  # SHL
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = (I[b] << (I[c] & 63)) & M
            return n
    elif op == 6:  # SHR
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = I[b] >> (I[c] & 63)
            return n
    elif op == 7:  # ADDI
        def h(st, a=a, b=b, imm=imm, n=nxt):
            I = st.i
            I[a] = (I[b] + imm) & M
            return n
    elif op == 8:  # ANDI
        def h(st, a=a, b=b, imm=imm & M, n=nxt):
            I = st.i
            I[a] = I[b] & imm
            return n
    elif op == 9:  # ORI
        def h(st, a=a, b=b, imm=imm & M, n=nxt):
            I = st.i
            I[a] = I[b] | imm
            return n
    elif op == 10:  # XORI
        def h(st, a=a, b=b, imm=imm & M, n=nxt):
            I = st.i
            I[a] = I[b] ^ imm
            return n
    elif op == 11:  # SHLI
        def h(st, a=a, b=b, imm=imm & 63, n=nxt):
            I = st.i
            I[a] = (I[b] << imm) & M
            return n
    elif op == 12:  # SHRI
        def h(st, a=a, b=b, imm=imm & 63, n=nxt):
            I = st.i
            I[a] = I[b] >> imm
            return n
    elif op == 13:  # MOV
        def h(st, a=a, b=b, n=nxt):
            I = st.i
            I[a] = I[b]
            return n
    elif op == 14:  # MOVI
        def h(st, a=a, imm=imm & M, n=nxt):
            st.i[a] = imm
            return n
    elif op == 15:  # NOT
        def h(st, a=a, b=b, n=nxt):
            I = st.i
            I[a] = I[b] ^ M
            return n
    elif op == 16:  # CMPLT
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = 1 if I[b] < I[c] else 0
            return n
    elif op == 17:  # CMPEQ
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = 1 if I[b] == I[c] else 0
            return n
    elif op == 18:  # MIN
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            vb, vc = I[b], I[c]
            I[a] = vb if vb < vc else vc
            return n
    elif op == 19:  # MAX
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            vb, vc = I[b], I[c]
            I[a] = vb if vb > vc else vc
            return n
    elif op == 24:  # MUL
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = (I[b] * I[c]) & M
            return n
    elif op == 25:  # MULHI
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            I[a] = (I[b] * I[c]) >> 64
            return n
    elif op == 26:  # DIV
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            vc = I[c]
            I[a] = M if vc == 0 else I[b] // vc
            return n
    elif op == 27:  # MOD
        def h(st, a=a, b=b, c=c, n=nxt):
            I = st.i
            vc = I[c]
            I[a] = 0 if vc == 0 else I[b] % vc
            return n
    elif op == 32:  # FADD
        def h(st, a=a, b=b, c=c, n=nxt):
            F = st.f
            fv = F[b] + F[c]
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 33:  # FSUB
        def h(st, a=a, b=b, c=c, n=nxt):
            F = st.f
            fv = F[b] - F[c]
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 34:  # FMUL
        def h(st, a=a, b=b, c=c, n=nxt):
            F = st.f
            fv = F[b] * F[c]
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 35:  # FDIV
        def h(st, a=a, b=b, c=c, n=nxt):
            F = st.f
            fc = F[c]
            fv = F[b] / fc if (fc > 1e-300 or fc < -1e-300) else 1.0
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 36:  # FMIN
        def h(st, a=a, b=b, c=c, n=nxt):
            F = st.f
            fb, fc = F[b], F[c]
            fv = fb if fb < fc else fc
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 37:  # FMAX
        def h(st, a=a, b=b, c=c, n=nxt):
            F = st.f
            fb, fc = F[b], F[c]
            fv = fb if fb > fc else fc
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 38:  # FABS
        def h(st, a=a, b=b, n=nxt):
            F = st.f
            fb = F[b]
            fv = fb if fb >= 0.0 else -fb
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 39:  # FNEG
        def h(st, a=a, b=b, n=nxt):
            F = st.f
            fv = -F[b]
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 40:  # FMA
        def h(st, a=a, b=b, c=c, n=nxt):
            F = st.f
            fv = F[a] + F[b] * F[c]
            F[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 41:  # CVTIF
        def h(st, a=a, b=b, n=nxt):
            fv = float(st.i[b] & _MASK53)
            st.f[a] = fv if -1e300 < fv < 1e300 else 1.0
            return n
    elif op == 42:  # CVTFI
        def h(st, a=a, b=b, n=nxt):
            st.i[a] = int(st.f[b]) & M
            return n
    elif op == 48:  # LOAD
        def h(st, a=a, b=b, imm=imm, n=nxt):
            I = st.i
            I[a] = st.w[(I[b] + imm) & st.m]
            return n
    elif op == 49:  # FLOAD
        def h(st, a=a, b=b, imm=imm, n=nxt):
            st.f[a] = ((st.w[(st.i[b] + imm) & st.m] & _MASK53) - _TWO52) / _FP_SCALE
            return n
    elif op == 52:  # STORE
        def h(st, a=a, b=b, imm=imm, n=nxt):
            I = st.i
            st.w[(I[b] + imm) & st.m] = I[a]
            return n
    elif op == 53:  # FSTORE
        def h(st, a=a, b=b, imm=imm, n=nxt):
            st.w[(st.i[b] + imm) & st.m] = (int(st.f[a] * _FP_SCALE) + _TWO52) & M
            return n
    elif op == 56:  # BEQ
        def h(st, a=a, b=b, t=imm, n=nxt):
            I = st.i
            return t if I[a] == I[b] else n
    elif op == 57:  # BNE
        def h(st, a=a, b=b, t=imm, n=nxt):
            I = st.i
            return t if I[a] != I[b] else n
    elif op == 58:  # BLT
        def h(st, a=a, b=b, t=imm, n=nxt):
            I = st.i
            return t if I[a] < I[b] else n
    elif op == 59:  # BGE
        def h(st, a=a, b=b, t=imm, n=nxt):
            I = st.i
            return t if I[a] >= I[b] else n
    elif op == 60:  # JMP
        def h(st, t=imm):
            return t
    elif op == 61:  # LOOPNZ
        def h(st, a=a, t=imm, n=nxt):
            I = st.i
            value = (I[a] - 1) & M
            I[a] = value
            return t if value else n
    elif op == 64:  # VADD
        def h(st, a=a, b=b, c=c, n=nxt):
            V = st.v
            vb, vc = V[b], V[c]
            V[a] = [
                x if -1e300 < x < 1e300 else 1.0
                for x in (
                    vb[0] + vc[0],
                    vb[1] + vc[1],
                    vb[2] + vc[2],
                    vb[3] + vc[3],
                )
            ]
            return n
    elif op == 65:  # VMUL
        def h(st, a=a, b=b, c=c, n=nxt):
            V = st.v
            vb, vc = V[b], V[c]
            V[a] = [
                x if -1e300 < x < 1e300 else 1.0
                for x in (
                    vb[0] * vc[0],
                    vb[1] * vc[1],
                    vb[2] * vc[2],
                    vb[3] * vc[3],
                )
            ]
            return n
    elif op == 66:  # VFMA
        def h(st, a=a, b=b, c=c, n=nxt):
            V = st.v
            va, vb, vc = V[a], V[b], V[c]
            V[a] = [
                x if -1e300 < x < 1e300 else 1.0
                for x in (
                    va[0] + vb[0] * vc[0],
                    va[1] + vb[1] * vc[1],
                    va[2] + vb[2] * vc[2],
                    va[3] + vb[3] * vc[3],
                )
            ]
            return n
    elif op == 67:  # VLOAD
        def h(st, a=a, b=b, imm=imm, n=nxt):
            W = st.w
            m = st.m
            addr = (st.i[b] + imm) & m
            st.v[a] = [
                ((W[addr] & _MASK53) - _TWO52) / _FP_SCALE,
                ((W[(addr + 1) & m] & _MASK53) - _TWO52) / _FP_SCALE,
                ((W[(addr + 2) & m] & _MASK53) - _TWO52) / _FP_SCALE,
                ((W[(addr + 3) & m] & _MASK53) - _TWO52) / _FP_SCALE,
            ]
            return n
    elif op == 68:  # VSTORE
        def h(st, a=a, b=b, imm=imm, n=nxt):
            W = st.w
            m = st.m
            addr = (st.i[b] + imm) & m
            va = st.v[a]
            W[addr] = (int(va[0] * _FP_SCALE) + _TWO52) & M
            W[(addr + 1) & m] = (int(va[1] * _FP_SCALE) + _TWO52) & M
            W[(addr + 2) & m] = (int(va[2] * _FP_SCALE) + _TWO52) & M
            W[(addr + 3) & m] = (int(va[3] * _FP_SCALE) + _TWO52) & M
            return n
    elif op == 69:  # VBROADCAST
        def h(st, a=a, b=b, n=nxt):
            st.v[a] = [st.f[b]] * VEC_LANES
            return n
    elif op == 70:  # VREDUCE
        def h(st, a=a, b=b, n=nxt):
            vb = st.v[b]
            total = vb[0] + vb[1] + vb[2] + vb[3]
            st.f[a] = total if -1e300 < total < 1e300 else 1.0
            return n
    elif op == 73:  # HALT — negative pc is the driver's halt sentinel
        def h(st):
            return -1
    else:  # NOP and any other system opcode fall through
        def h(st, n=nxt):
            return n
    return h


def compile_threaded(program: Program) -> list:
    """Decode ``program`` into its threaded-code handler list.

    One closure per static instruction; called through
    :meth:`repro.isa.program.Program.fast_handlers`, which caches the
    result on the program object.
    """
    return [
        _compile_one(i.op, i.a, i.b, i.c, i.imm, index + 1)
        for index, i in enumerate(program.instructions)
    ]


def _init_state(
    machine,
    memory: Memory | None,
    max_instructions: int,
    initial_iregs: list[int] | None,
    initial_fregs: list[float] | None,
) -> tuple[Memory, list[int], list[float], list[list[float]]]:
    """Shared prologue: validate arguments, build the register files."""
    if memory is None:
        memory = machine.new_memory()
    if max_instructions <= 0:
        raise ExecutionError("max_instructions must be positive")
    iregs = [v & _MASK64 for v in (initial_iregs or [0] * NUM_INT_REGS)]
    fregs = list(initial_fregs or [0.0] * NUM_FP_REGS)
    if len(iregs) != NUM_INT_REGS or len(fregs) != NUM_FP_REGS:
        raise ExecutionError("initial register files have wrong length")
    vregs = [[0.0] * VEC_LANES for _ in range(NUM_VEC_REGS)]
    return memory, iregs, fregs, vregs


def run_fast(
    machine,
    program: Program,
    memory: Memory | None = None,
    *,
    max_instructions: int = 10_000_000,
    snapshot_interval: int = 0,
    initial_iregs: list[int] | None = None,
    initial_fregs: list[float] | None = None,
    threaded: bool | None = None,
) -> ExecutionResult:
    """Execute ``program`` functionally — no timing model, no counters
    beyond ``retired``.

    Arguments mirror :meth:`repro.machine.cpu.Machine.run` (minus
    ``collect_detail``, which requires the timing path).  The returned
    :class:`ExecutionResult` carries bit-identical ``output``, ``iregs``,
    ``fregs``, ``halted`` and ``snapshots``; its counters report only the
    retired-instruction count (``cycles`` stays 0, so IPC reads 0 — timing
    questions belong to the timed path).

    ``threaded`` selects the threaded-code dispatcher (default) or the
    stripped opcode ladder; both are differential-tested against the
    timing path and each other.
    """
    if threaded is None:
        threaded = DEFAULT_THREADED
    memory, iregs, fregs, vregs = _init_state(
        machine, memory, max_instructions, initial_iregs, initial_fregs
    )
    if threaded:
        return _run_threaded(
            program, memory, iregs, fregs, vregs, max_instructions, snapshot_interval
        )
    return _run_ladder(
        program, memory, iregs, fregs, vregs, max_instructions, snapshot_interval
    )


def _finish(
    retired: int,
    halted: bool,
    out_chunks: list[bytes],
    snapshots: int,
    iregs: list[int],
    fregs: list[float],
) -> ExecutionResult:
    """Shared epilogue: package the architectural outcome."""
    counters = PerfCounters()
    counters.retired = retired
    return ExecutionResult(
        counters=counters,
        output=b"".join(out_chunks),
        iregs=iregs,
        fregs=fregs,
        halted=halted,
        snapshots=snapshots,
    )


def _run_threaded(
    program: Program,
    memory: Memory,
    iregs: list[int],
    fregs: list[float],
    vregs: list[list[float]],
    max_instructions: int,
    snapshot_interval: int,
) -> ExecutionResult:
    """Threaded-code dispatch loop: ``pc = handlers[pc](state)``.

    The loop is block-stepped: the next *event* (a snapshot coming due, or
    the instruction budget running out) is always a known number of
    non-HALT retirements away, so the inner loop runs straight to it
    touching nothing but ``pc`` and a single countdown.  All retire/budget/
    snapshot bookkeeping happens once per block instead of once per
    instruction — the same architectural semantics as the timing path's
    per-instruction epilogue, at a fraction of the dispatch overhead.
    """
    handlers = program.fast_handlers()
    n = len(handlers)
    st = _State(iregs, fregs, vregs, memory.words, memory.mask)

    out_chunks: list[bytes] = []
    out_append = out_chunks.append
    snap_interval = snapshot_interval if snapshot_interval > 0 else 0
    snap_countdown = snap_interval
    snapshots = 0
    pack_i = _SNAP_I.pack
    pack_f = _SNAP_F.pack

    retired = 0
    halted = False
    budget = max_instructions
    pc = 0
    while 0 <= pc < n:
        if snap_interval and snap_countdown < budget:
            steps = snap_countdown
        else:
            steps = budget
        countdown = steps
        while countdown and 0 <= pc < n:
            pc = handlers[pc](st)
            countdown -= 1
        if pc < 0:
            # HALT: retires, but consumes neither budget nor a snapshot
            # tick.  It decremented ``countdown`` like any instruction, so
            # the non-HALT count for this block is one less — and because
            # that is strictly below ``steps``, no interior snapshot can
            # have come due before it.
            retired += steps - countdown
            halted = True
            break
        block = steps - countdown
        retired += block
        budget -= block
        if snap_interval:
            snap_countdown -= block
            if snap_countdown == 0:
                out_append(pack_i(*iregs))
                out_append(pack_f(*fregs))
                snapshots += 1
                snap_countdown = snap_interval
        if budget <= 0:
            # Mirrors the timing path's ordering: the budget check follows
            # the instruction that exhausted it, even if that instruction
            # also fell off the end of the program.
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_instructions} instructions"
            )

    if pc >= 0 and not halted:
        halted = True  # fell off the end: implicit halt

    if snap_interval:
        out_append(pack_i(*iregs))
        out_append(pack_f(*fregs))
        snapshots += 1

    return _finish(retired, halted, out_chunks, snapshots, iregs, fregs)


def _run_ladder(
    program: Program,
    memory: Memory,
    iregs: list[int],
    fregs: list[float],
    vregs: list[list[float]],
    max_instructions: int,
    snapshot_interval: int,
) -> ExecutionResult:
    """The timing path's dispatch ladder with every timing line stripped."""
    code = program.code_tuples()
    n = len(code)
    words = memory.words
    mem_mask = memory.mask

    out_chunks: list[bytes] = []
    out_append = out_chunks.append
    snap_interval = snapshot_interval if snapshot_interval > 0 else 0
    snap_countdown = snap_interval
    snapshots = 0
    pack_i = _SNAP_I.pack
    pack_f = _SNAP_F.pack

    retired = 0
    halted = False
    budget = max_instructions
    pc = 0
    while pc < n:
        op, a, b, c, imm = code[pc]
        pc += 1

        if op < 24:  # ---------------- integer ALU ----------------
            if op == 0:  # ADD
                value = (iregs[b] + iregs[c]) & _MASK64
            elif op == 1:  # SUB
                value = (iregs[b] - iregs[c]) & _MASK64
            elif op == 2:  # AND
                value = iregs[b] & iregs[c]
            elif op == 3:  # OR
                value = iregs[b] | iregs[c]
            elif op == 4:  # XOR
                value = iregs[b] ^ iregs[c]
            elif op == 5:  # SHL
                value = (iregs[b] << (iregs[c] & 63)) & _MASK64
            elif op == 6:  # SHR
                value = iregs[b] >> (iregs[c] & 63)
            elif op == 7:  # ADDI
                value = (iregs[b] + imm) & _MASK64
            elif op == 8:  # ANDI
                value = iregs[b] & (imm & _MASK64)
            elif op == 9:  # ORI
                value = iregs[b] | (imm & _MASK64)
            elif op == 10:  # XORI
                value = iregs[b] ^ (imm & _MASK64)
            elif op == 11:  # SHLI
                value = (iregs[b] << (imm & 63)) & _MASK64
            elif op == 12:  # SHRI
                value = iregs[b] >> (imm & 63)
            elif op == 13:  # MOV
                value = iregs[b]
            elif op == 14:  # MOVI
                value = imm & _MASK64
            elif op == 15:  # NOT
                value = iregs[b] ^ _MASK64
            elif op == 16:  # CMPLT
                value = 1 if iregs[b] < iregs[c] else 0
            elif op == 17:  # CMPEQ
                value = 1 if iregs[b] == iregs[c] else 0
            elif op == 18:  # MIN
                value = iregs[b] if iregs[b] < iregs[c] else iregs[c]
            else:  # MAX
                value = iregs[b] if iregs[b] > iregs[c] else iregs[c]
            iregs[a] = value

        elif op < 32:  # ---------------- integer multiply / divide ----
            vb = iregs[b]
            vc = iregs[c]
            if op == 24:  # MUL
                value = (vb * vc) & _MASK64
            elif op == 25:  # MULHI
                value = (vb * vc) >> 64
            elif op == 26:  # DIV
                value = _MASK64 if vc == 0 else vb // vc
            else:  # MOD
                value = 0 if vc == 0 else vb % vc
            iregs[a] = value

        elif op == 42:  # CVTFI: float source, integer destination
            iregs[a] = int(fregs[b]) & _MASK64

        elif op < 48:  # ---------------- floating point -------------
            if op == 40:  # FMA: f[a] += f[b] * f[c]
                fvalue = fregs[a] + fregs[b] * fregs[c]
            elif op == 41:  # CVTIF
                fvalue = float(iregs[b] & _MASK53)
            else:
                fb = fregs[b]
                if op < 38:  # two-source FP ops read f[c]
                    fc = fregs[c]
                    if op == 32:
                        fvalue = fb + fc
                    elif op == 33:
                        fvalue = fb - fc
                    elif op == 34:
                        fvalue = fb * fc
                    elif op == 35:
                        fvalue = fb / fc if (fc > 1e-300 or fc < -1e-300) else 1.0
                    elif op == 36:
                        fvalue = fb if fb < fc else fc
                    else:
                        fvalue = fb if fb > fc else fc
                elif op == 38:  # FABS
                    fvalue = fb if fb >= 0.0 else -fb
                else:  # FNEG
                    fvalue = -fb
            if not -1e300 < fvalue < 1e300:  # clamp NaN/Inf/overflow
                fvalue = 1.0
            fregs[a] = fvalue

        elif op < 52:  # ---------------- loads ----------------------
            addr = (iregs[b] + imm) & mem_mask
            if op == 48:  # LOAD
                iregs[a] = words[addr]
            else:  # FLOAD
                fregs[a] = ((words[addr] & _MASK53) - _TWO52) / _FP_SCALE

        elif op < 56:  # ---------------- stores ---------------------
            addr = (iregs[b] + imm) & mem_mask
            if op == 52:  # STORE
                words[addr] = iregs[a]
            else:  # FSTORE
                words[addr] = (int(fregs[a] * _FP_SCALE) + _TWO52) & _MASK64

        elif op < 64:  # ---------------- branches -------------------
            if op == 60:  # JMP
                pc = imm
            elif op == 61:  # LOOPNZ: decrement and branch if non-zero
                value = (iregs[a] - 1) & _MASK64
                iregs[a] = value
                if value:
                    pc = imm
            else:
                va = iregs[a]
                vb = iregs[b]
                if op == 56:
                    taken = va == vb
                elif op == 57:
                    taken = va != vb
                elif op == 58:
                    taken = va < vb
                else:
                    taken = va >= vb
                if taken:
                    pc = imm

        elif op < 72:  # ---------------- vector ---------------------
            if op == 64:  # VADD
                vb_ = vregs[b]
                vc_ = vregs[c]
                vregs[a] = [
                    x if -1e300 < x < 1e300 else 1.0
                    for x in (
                        vb_[0] + vc_[0],
                        vb_[1] + vc_[1],
                        vb_[2] + vc_[2],
                        vb_[3] + vc_[3],
                    )
                ]
            elif op == 65:  # VMUL
                vb_ = vregs[b]
                vc_ = vregs[c]
                vregs[a] = [
                    x if -1e300 < x < 1e300 else 1.0
                    for x in (
                        vb_[0] * vc_[0],
                        vb_[1] * vc_[1],
                        vb_[2] * vc_[2],
                        vb_[3] * vc_[3],
                    )
                ]
            elif op == 66:  # VFMA: v[a] += v[b] * v[c]
                va_ = vregs[a]
                vb_ = vregs[b]
                vc_ = vregs[c]
                vregs[a] = [
                    x if -1e300 < x < 1e300 else 1.0
                    for x in (
                        va_[0] + vb_[0] * vc_[0],
                        va_[1] + vb_[1] * vc_[1],
                        va_[2] + vb_[2] * vc_[2],
                        va_[3] + vb_[3] * vc_[3],
                    )
                ]
            elif op == 67:  # VLOAD
                addr = (iregs[b] + imm) & mem_mask
                vregs[a] = [
                    ((words[addr] & _MASK53) - _TWO52) / _FP_SCALE,
                    ((words[(addr + 1) & mem_mask] & _MASK53) - _TWO52) / _FP_SCALE,
                    ((words[(addr + 2) & mem_mask] & _MASK53) - _TWO52) / _FP_SCALE,
                    ((words[(addr + 3) & mem_mask] & _MASK53) - _TWO52) / _FP_SCALE,
                ]
            elif op == 68:  # VSTORE
                addr = (iregs[b] + imm) & mem_mask
                va_ = vregs[a]
                words[addr] = (int(va_[0] * _FP_SCALE) + _TWO52) & _MASK64
                words[(addr + 1) & mem_mask] = (int(va_[1] * _FP_SCALE) + _TWO52) & _MASK64
                words[(addr + 2) & mem_mask] = (int(va_[2] * _FP_SCALE) + _TWO52) & _MASK64
                words[(addr + 3) & mem_mask] = (int(va_[3] * _FP_SCALE) + _TWO52) & _MASK64
            elif op == 69:  # VBROADCAST
                vregs[a] = [fregs[b]] * VEC_LANES
            else:  # VREDUCE
                vb_ = vregs[b]
                total = vb_[0] + vb_[1] + vb_[2] + vb_[3]
                fregs[a] = total if -1e300 < total < 1e300 else 1.0

        else:  # ---------------- system --------------------------
            if op == 73:  # HALT
                retired += 1
                halted = True
                break
            # NOP falls through.

        retired += 1
        budget -= 1
        if snap_countdown:
            snap_countdown -= 1
            if snap_countdown == 0:
                out_append(pack_i(*iregs))
                out_append(pack_f(*fregs))
                snapshots += 1
                snap_countdown = snap_interval
        if budget <= 0:
            raise ExecutionLimitExceeded(
                f"{program.name}: exceeded {max_instructions} instructions"
            )

    if pc >= n:
        halted = True  # fell off the end: implicit halt

    if snap_interval:
        out_append(pack_i(*iregs))
        out_append(pack_f(*fregs))
        snapshots += 1

    return _finish(retired, halted, out_chunks, snapshots, iregs, fregs)
