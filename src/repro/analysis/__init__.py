"""Analysis utilities: statistics, figure/table rendering, and the
machine-checked Theorem 1 reduction."""

from repro.analysis.stats import (
    DistributionSummary,
    ascii_histogram,
    gaussian_fit,
    ks_distance,
    summarize,
)
from repro.analysis.reduction import (
    CollisionReduction,
    find_gate_collision_from_h_collision,
)
from repro.analysis.hashrate import (
    HashrateEstimate,
    estimate_hashrate,
    rolling_hashrate,
)
from repro.analysis.market import (
    CentralizationResult,
    centralization_study,
    gini,
)
from repro.analysis.report import render_table
from repro.analysis.svg import histogram_svg, save_histogram

__all__ = [
    "DistributionSummary",
    "summarize",
    "ascii_histogram",
    "gaussian_fit",
    "ks_distance",
    "CollisionReduction",
    "find_gate_collision_from_h_collision",
    "render_table",
    "HashrateEstimate",
    "estimate_hashrate",
    "rolling_hashrate",
    "CentralizationResult",
    "centralization_study",
    "gini",
    "histogram_svg",
    "save_histogram",
]
