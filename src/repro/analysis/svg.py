"""Dependency-free SVG histogram rendering.

The benches print ASCII histograms for terminals; this module renders the
same data as standalone SVG files so Figures 2 and 3 regenerate as actual
graphics (``benchmarks/results/fig2_ipc.svg`` etc.) without a plotting
stack.  Output is deliberately simple: bars, axes, tick labels, and the
reference-workload marker line the paper's figures carry.
"""

from __future__ import annotations

import pathlib
from typing import Sequence
from xml.sax.saxutils import escape

from repro.errors import ReproError

_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 60
_MARGIN_RIGHT = 20
_MARGIN_TOP = 50
_MARGIN_BOTTOM = 60


def histogram_svg(
    sample: Sequence[float],
    bins: int = 12,
    *,
    title: str = "",
    x_label: str = "",
    marker: float | None = None,
    marker_label: str = "reference",
) -> str:
    """Render a histogram of ``sample`` as an SVG document string."""
    if not sample:
        raise ReproError("empty sample")
    if bins < 1:
        raise ReproError("bins must be >= 1")
    lo = min(sample)
    hi = max(sample)
    if marker is not None:
        lo = min(lo, marker)
        hi = max(hi, marker)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for value in sample:
        index = min(bins - 1, int((value - lo) / span * bins))
        counts[index] += 1
    peak = max(counts)

    plot_w = _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT
    plot_h = _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM
    bar_w = plot_w / bins

    def x_of(value: float) -> float:
        return _MARGIN_LEFT + (value - lo) / span * plot_w

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH/2}" y="28" text-anchor="middle" '
        f'font-family="sans-serif" font-size="16">{escape(title)}</text>',
    ]
    # Bars.
    for index, count in enumerate(counts):
        if count == 0:
            continue
        height = plot_h * count / peak
        x = _MARGIN_LEFT + index * bar_w
        y = _MARGIN_TOP + plot_h - height
        parts.append(
            f'<rect class="bar" x="{x:.1f}" y="{y:.1f}" '
            f'width="{bar_w - 2:.1f}" height="{height:.1f}" '
            'fill="#4878a8" stroke="none"/>'
        )
    # Axes.
    axis_y = _MARGIN_TOP + plot_h
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{axis_y}" x2="{_WIDTH - _MARGIN_RIGHT}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    parts.append(
        f'<line x1="{_MARGIN_LEFT}" y1="{_MARGIN_TOP}" x2="{_MARGIN_LEFT}" '
        f'y2="{axis_y}" stroke="black"/>'
    )
    # X ticks (5 of them) and labels.
    for tick in range(6):
        value = lo + span * tick / 5
        x = x_of(value)
        parts.append(
            f'<line x1="{x:.1f}" y1="{axis_y}" x2="{x:.1f}" y2="{axis_y + 5}" '
            'stroke="black"/>'
        )
        parts.append(
            f'<text x="{x:.1f}" y="{axis_y + 20}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="11">{value:.2f}</text>'
        )
    # Y ticks: 0 and peak.
    parts.append(
        f'<text x="{_MARGIN_LEFT - 8}" y="{axis_y + 4}" text-anchor="end" '
        'font-family="sans-serif" font-size="11">0</text>'
    )
    parts.append(
        f'<text x="{_MARGIN_LEFT - 8}" y="{_MARGIN_TOP + 4}" text-anchor="end" '
        f'font-family="sans-serif" font-size="11">{peak}</text>'
    )
    parts.append(
        f'<text x="{_WIDTH/2}" y="{_HEIGHT - 15}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="13">{escape(x_label)}</text>'
    )
    # Reference marker.
    if marker is not None:
        x = x_of(marker)
        parts.append(
            f'<line class="marker" x1="{x:.1f}" y1="{_MARGIN_TOP}" '
            f'x2="{x:.1f}" y2="{axis_y}" stroke="#c03028" '
            'stroke-width="2" stroke-dasharray="6,3"/>'
        )
        parts.append(
            f'<text x="{x + 5:.1f}" y="{_MARGIN_TOP + 14}" '
            f'font-family="sans-serif" font-size="12" fill="#c03028">'
            f'{escape(marker_label)}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_histogram(path: str | pathlib.Path, sample: Sequence[float], **kwargs) -> None:
    """Render and write a histogram SVG to ``path``."""
    pathlib.Path(path).write_text(histogram_svg(sample, **kwargs) + "\n")
