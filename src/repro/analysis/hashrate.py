"""Network-hashrate estimation from chain observables.

Real PoW networks cannot measure hashrate directly; it is inferred from
observed block times and the difficulty each block carried:
``hashrate ≈ Σ difficulty / Σ inter-arrival time`` over a window.  The
estimator here is the standard one, with a binomial-ish confidence band
from the exponential inter-arrival model, and is validated against the
network simulator's ground truth in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class HashrateEstimate:
    """Point estimate plus a (lo, hi) confidence interval in hash/s."""

    rate: float
    lo: float
    hi: float
    blocks: int

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi


def estimate_hashrate(
    difficulties: Sequence[float],
    block_times: Sequence[float],
    confidence: float = 0.95,
) -> HashrateEstimate:
    """Estimate hashrate from per-block difficulty and inter-arrival time.

    With exponential inter-arrivals, the total elapsed time over *n*
    blocks is Gamma(n, 1/λ)-distributed; the normal approximation gives a
    ±z/√n relative band on the rate, which is what real chain-analytics
    dashboards report.
    """
    if len(difficulties) != len(block_times):
        raise ReproError("difficulties and block_times must align")
    n = len(difficulties)
    if n == 0:
        raise ReproError("need at least one block")
    total_work = float(sum(difficulties))
    total_time = float(sum(block_times))
    if total_time <= 0:
        raise ReproError("non-positive elapsed time")
    if not 0.5 <= confidence < 1.0:
        raise ReproError("confidence must be in [0.5, 1)")
    rate = total_work / total_time
    # Two-sided normal quantile via the inverse error function.
    z = math.sqrt(2.0) * _erfinv(confidence)
    spread = z / math.sqrt(n)
    return HashrateEstimate(
        rate=rate,
        lo=rate / (1.0 + spread),
        hi=rate / max(1e-9, (1.0 - spread)),
        blocks=n,
    )


def rolling_hashrate(
    difficulties: Sequence[float],
    block_times: Sequence[float],
    window: int = 64,
) -> list[float]:
    """Windowed hashrate series (one point per block once warmed up)."""
    if window < 1:
        raise ReproError("window must be >= 1")
    if len(difficulties) != len(block_times):
        raise ReproError("difficulties and block_times must align")
    out = []
    for end in range(window, len(difficulties) + 1):
        work = sum(difficulties[end - window : end])
        elapsed = sum(block_times[end - window : end])
        out.append(work / elapsed if elapsed > 0 else 0.0)
    return out


def _erfinv(p: float) -> float:
    """Inverse error function of ``p`` (Winitzki's approximation, adequate
    for confidence-band quantiles)."""
    if not -1.0 < p < 1.0:
        raise ReproError("erfinv domain is (-1, 1)")
    a = 0.147
    ln_term = math.log(1.0 - p * p)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    inner = first * first - ln_term / a
    return math.copysign(math.sqrt(math.sqrt(inner) - first), p)
