"""Distribution statistics for the widget-population experiments.

Figures 2 and 3 of the paper are histograms of widget metrics against a
reference workload's value; these helpers summarise, fit, compare, and
render such distributions without pulling in a plotting stack (benches
print ASCII histograms next to the numbers they report).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class DistributionSummary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.3g} "
            f"min={self.minimum:.4g} p25={self.p25:.4g} med={self.median:.4g} "
            f"p75={self.p75:.4g} max={self.maximum:.4g}"
        )


def _percentile(ordered: list[float], q: float) -> float:
    """Linear-interpolated percentile of a pre-sorted sample."""
    if not ordered:
        raise ReproError("empty sample")
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    frac = position - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def summarize(sample: Sequence[float]) -> DistributionSummary:
    """Summary statistics of a non-empty sample."""
    if not sample:
        raise ReproError("empty sample")
    ordered = sorted(float(x) for x in sample)
    n = len(ordered)
    mean = sum(ordered) / n
    variance = sum((x - mean) ** 2 for x in ordered) / (n - 1) if n > 1 else 0.0
    return DistributionSummary(
        n=n,
        mean=mean,
        std=math.sqrt(variance),
        minimum=ordered[0],
        p25=_percentile(ordered, 0.25),
        median=_percentile(ordered, 0.5),
        p75=_percentile(ordered, 0.75),
        maximum=ordered[-1],
    )


def gaussian_fit(sample: Sequence[float]) -> tuple[float, float]:
    """Maximum-likelihood (mean, std) of a Gaussian fit."""
    if len(sample) < 2:
        raise ReproError("need at least 2 points to fit")
    mean = sum(sample) / len(sample)
    var = sum((x - mean) ** 2 for x in sample) / len(sample)
    return mean, math.sqrt(var)


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (max CDF distance)."""
    if not a or not b:
        raise ReproError("empty sample")
    xs = sorted(float(v) for v in a)
    ys = sorted(float(v) for v in b)
    i = j = 0
    d = 0.0
    while i < len(xs) and j < len(ys):
        # Advance past ties on both sides together, otherwise identical
        # samples would show a spurious mid-walk distance.
        value = min(xs[i], ys[j])
        while i < len(xs) and xs[i] == value:
            i += 1
        while j < len(ys) and ys[j] == value:
            j += 1
        d = max(d, abs(i / len(xs) - j / len(ys)))
    return d


def ascii_histogram(
    sample: Sequence[float],
    bins: int = 12,
    width: int = 40,
    marker: str | None = None,
    marker_label: str = "reference",
) -> str:
    """Render a histogram as text; ``marker`` draws a reference value's bin
    (the workload line in Figures 2/3)."""
    if not sample:
        raise ReproError("empty sample")
    lo = min(sample)
    hi = max(sample)
    if marker is not None:
        lo = min(lo, marker)
        hi = max(hi, marker)
    span = (hi - lo) or 1.0
    counts = [0] * bins
    for x in sample:
        index = min(bins - 1, int((x - lo) / span * bins))
        counts[index] += 1
    peak = max(counts) or 1
    marker_bin = (
        min(bins - 1, int((marker - lo) / span * bins)) if marker is not None else -1
    )
    lines = []
    for index, count in enumerate(counts):
        left = lo + span * index / bins
        bar = "#" * round(width * count / peak)
        suffix = f"  <- {marker_label}" if index == marker_bin else ""
        lines.append(f"{left:9.3f} | {bar:<{width}} {count:4d}{suffix}")
    return "\n".join(lines)


def chi_square_uniform(samples: Sequence[int], bins: int, upper: int) -> float:
    """Chi-square statistic of ``samples`` (integers in ``[0, upper)``)
    against the uniform distribution over ``bins`` equal buckets.

    Returns the statistic; compare against the chi-square quantile with
    ``bins - 1`` degrees of freedom (for the hash-quality experiment,
    values near ``bins`` indicate uniformity; several times ``bins``
    indicates bias).
    """
    if not samples:
        raise ReproError("empty sample")
    if bins < 2 or upper < bins:
        raise ReproError("need bins >= 2 and upper >= bins")
    counts = [0] * bins
    for value in samples:
        if not 0 <= value < upper:
            raise ReproError(f"sample {value} outside [0, {upper})")
        counts[value * bins // upper] += 1
    expected = len(samples) / bins
    return sum((c - expected) ** 2 / expected for c in counts)
