"""The Theorem 1 reduction, implemented and machine-checkable.

The appendix proof constructs an algorithm **B** that turns any collision
on ``H(x) = G(s || W(s))`` (with ``s = G(x)``) into a collision on the
hash gate ``G`` with probability 1, case by case:

* **Case 1** (``G(x̂₀) = G(x̂₁)``): the inputs themselves collide on the
  first gate — return them.
* **Case 2** (``s₀ ≠ s₁``): then ``s₀‖W(s₀) ≠ s₁‖W(s₁)`` (they differ in
  the seed prefix) yet both hash to the same ``H`` value through the
  second gate — return the concatenations.

Implementing B makes the proof *testable*: the suite instantiates HashCore
with deliberately weak (truncated) gates where collisions are findable by
search, feeds them to B, and checks the produced pair really collides on
``G`` — exercising both cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class CollisionReduction:
    """Output of algorithm B: a collision on the gate ``G``."""

    case: int  # 1 or 2, matching the proof's case split
    x0: bytes
    x1: bytes

    def check(self, gate: Callable[[bytes], bytes]) -> bool:
        """True when this really is a collision on ``gate``."""
        return self.x0 != self.x1 and gate(self.x0) == gate(self.x1)


def find_gate_collision_from_h_collision(
    gate: Callable[[bytes], bytes],
    widget_fn: Callable[[bytes], bytes],
    x0: bytes,
    x1: bytes,
) -> CollisionReduction:
    """Algorithm B from the appendix.

    ``gate`` is ``G``, ``widget_fn`` is ``W`` (seed bytes → widget output
    bytes), and ``(x0, x1)`` is a claimed collision on
    ``H(x) = G(G(x) || W(G(x)))``.  Returns a collision on ``G``; raises
    :class:`ReproError` when the claimed pair is not actually a collision
    on ``H`` (the proof only guarantees success given a genuine collision).
    """
    if x0 == x1:
        raise ReproError("x0 and x1 must differ")
    s0 = gate(x0)
    s1 = gate(x1)
    h0 = gate(s0 + widget_fn(s0))
    h1 = gate(s1 + widget_fn(s1))
    if h0 != h1:
        raise ReproError("inputs do not collide on H")
    if s0 == s1:
        # Case 1: collision on the first gate.
        return CollisionReduction(case=1, x0=x0, x1=x1)
    # Case 2: distinct seeds means distinct second-gate inputs (they differ
    # within the first |s| bytes), colliding on the second gate.
    return CollisionReduction(case=2, x0=s0 + widget_fn(s0), x1=s1 + widget_fn(s1))
