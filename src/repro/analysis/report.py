"""Plain-text table rendering shared by benches and examples."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned text table.

    Cells are stringified; floats get 4 significant digits.  Used by every
    benchmark that regenerates one of the paper's tables/figures so their
    output is uniform and diffable across runs.
    """
    if not headers:
        raise ReproError("table needs headers")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)
