"""Mining-market centralization under ASIC advantage (§III quantified).

The paper's motivation chain: ASIC advantage → cheaper hashes for ASIC
owners → "a disproportionate advantage over the rest of the network" →
centralization.  This module closes the loop between the ASIC-advantage
model and the network simulator: given an advantage factor, how much of
the network does a fixed-capital attacker capture, and how concentrated
does block revenue become?

The capital model is deliberately simple: hardware price per unit of
*GPP-equivalent* throughput is constant, so a budget buying ``B`` units of
GPP hashrate buys ``B × advantage`` units when ASICs exist for the PoW
function.  (Hash-per-watt advantage compounds the effect; the study uses
the area factor alone, making it conservative.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.blockchain.network import simulate_network
from repro.errors import ReproError


def gini(shares: Sequence[float]) -> float:
    """Gini coefficient of a share distribution (0 = equal, →1 = one
    participant holds everything)."""
    values = sorted(float(s) for s in shares)
    if not values:
        raise ReproError("empty distribution")
    if any(v < 0 for v in values):
        raise ReproError("shares must be non-negative")
    total = sum(values)
    if total == 0:
        return 0.0
    n = len(values)
    cumulative = 0.0
    for index, value in enumerate(values, start=1):
        cumulative += index * value
    return (2.0 * cumulative) / (n * total) - (n + 1.0) / n


@dataclass(frozen=True, slots=True)
class CentralizationResult:
    """Outcome of one attacker-vs-home-miners scenario."""

    advantage: float
    attacker_share_expected: float
    attacker_share_simulated: float
    revenue_gini: float


def centralization_study(
    advantage: float,
    n_home_miners: int = 50,
    home_rate: float = 1.0,
    attacker_budget_rate: float = 10.0,
    blocks: int = 2000,
    seed: int = 1,
) -> CentralizationResult:
    """Simulate one PoW market.

    ``attacker_budget_rate`` is the GPP-equivalent hashrate the attacker's
    capital buys; with ASICs available it becomes
    ``attacker_budget_rate × advantage``.  Returns the attacker's expected
    and simulated block share plus the revenue Gini across all miners.
    """
    if advantage < 1.0:
        raise ReproError("advantage factor must be >= 1")
    if n_home_miners < 1 or home_rate <= 0 or attacker_budget_rate < 0:
        raise ReproError("invalid market parameters")
    attacker_rate = attacker_budget_rate * advantage
    rates = [home_rate] * n_home_miners + [attacker_rate]
    total = home_rate * n_home_miners + attacker_rate
    expected = attacker_rate / total
    result = simulate_network(
        rates, blocks, initial_difficulty=max(1.0, total * 30.0), seed=seed
    )
    shares = result.miner_shares(len(rates))
    return CentralizationResult(
        advantage=advantage,
        attacker_share_expected=expected,
        attacker_share_simulated=shares[-1],
        revenue_gini=gini(shares),
    )
