"""Widget memory planning.

The widget's memory behaviour is synthesised from the profile's locality
statistics (Table I's *Memory Seed* field drives the PRNG):

* a **hot** region sized to live in L1 — the high-locality accesses;
* a **cold** region the widget sweeps with large odd strides — its
  first-touch misses reproduce the profiled L1-miss and DRAM rates;
* an optional **pointer-chase ring** — dependent loads reproducing the
  profile's irregular (large-stride) access share and its latency-bound
  dependency chains.

Sizing is *duration-aware*: a widget runs for ``target_instructions``
dynamic instructions while the profile was measured over
``profile.dynamic_instructions``, so the regions scale with that ratio.
(Cold-start misses dominate cache behaviour at both scales; keeping
*lines-touched per instruction* matched is what makes the widget's
DRAM-access and L1-miss rates land on the profiled ones.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GenerationError
from repro.profiling.profile import PerformanceProfile
from repro.rng import Xoshiro256
from repro.workloads.base import MemoryDirective

#: Fixed region bases (word addresses) inside the machine's memory.
HOT_BASE = 0
COLD_BASE = 1 << 18
RING_BASE = 1 << 19

#: Hot region: 16 KiB, comfortably inside a 32 KiB L1.
HOT_WORDS = 2048

_MIN_COLD_WORDS = 1 << 10   # 8 KiB
_MAX_COLD_WORDS = 1 << 17   # 1 MiB — bounded so widgets stay verifiable
_MIN_RING_WORDS = 1 << 9    # 4 KiB
_MAX_RING_WORDS = 1 << 15   # 256 KiB


def _pow2_near(value: float) -> int:
    """Power of two nearest to ``value`` (geometric rounding)."""
    if value <= 1:
        return 1
    lower = 1 << (int(value).bit_length() - 1)
    return lower * 2 if value / lower > 1.5 else lower


@dataclass(frozen=True, slots=True)
class MemoryPlan:
    """Concrete widget memory layout plus access-mix probabilities."""

    hot_words: int
    cold_words: int
    ring_words: int
    #: Probability that a load targets the cold region.
    p_cold: float
    #: Probability that a load is a pointer-chase step.
    p_ring: float
    #: SplitMix64 stream seeding the regions' initial contents.
    fill_seed: int

    def __post_init__(self) -> None:
        for label, words in (
            ("hot", self.hot_words),
            ("cold", self.cold_words),
            ("ring", self.ring_words),
        ):
            if words and words & (words - 1):
                raise GenerationError(f"{label}_words must be a power of two")
        if not 0.0 <= self.p_cold <= 1.0 or not 0.0 <= self.p_ring <= 1.0:
            raise GenerationError("stream probabilities out of range")
        if self.p_cold + self.p_ring > 1.0:
            raise GenerationError("cold + ring probabilities exceed 1")

    @property
    def hot_mask(self) -> int:
        return self.hot_words - 1

    @property
    def cold_mask(self) -> int:
        return self.cold_words - 1

    def directives(self) -> list[MemoryDirective]:
        """Memory-initialisation recipe for this plan."""
        out = [
            MemoryDirective("random", self.fill_seed, HOT_BASE, self.hot_words),
            MemoryDirective("random", self.fill_seed ^ 0xC01D, COLD_BASE, self.cold_words),
        ]
        if self.ring_words:
            out.append(
                MemoryDirective("ring", self.fill_seed ^ 0x4163, RING_BASE, self.ring_words)
            )
        return out

    def footprint_bytes(self) -> int:
        """Total bytes the widget's streams can touch."""
        return 8 * (self.hot_words + self.cold_words + self.ring_words)


def plan_memory(
    profile: PerformanceProfile,
    mem_rng: Xoshiro256,
    duration_scale: float = 1.0,
) -> MemoryPlan:
    """Derive a :class:`MemoryPlan` from the profile's locality statistics.

    ``duration_scale`` is ``widget_target_instructions /
    profile.dynamic_instructions``; region footprints scale with it so that
    lines-touched *per instruction* (and hence miss rates) match the
    profiled workload.  The mapping:

    * ``p_cold``  ≈ 1.3 × profiled L1 miss rate;
    * ``p_ring``  ≈ 0.4 × the profile's large-stride access share;
    * cold/ring footprints follow the scaled working set, clamped to
      practical power-of-two bands.
    """
    if duration_scale <= 0:
        raise GenerationError(f"duration_scale must be positive, got {duration_scale}")
    miss_rate = max(0.0, 1.0 - profile.l1_hit_rate)
    p_cold = min(0.6, 1.3 * miss_rate)
    irregular = profile.stride_hist[-1] if profile.stride_hist else 0.0
    p_ring = min(0.3, 0.4 * irregular)
    if p_cold + p_ring > 0.85:
        scale = 0.85 / (p_cold + p_ring)
        p_cold *= scale
        p_ring *= scale

    ws_words = max(1.0, profile.working_set_bytes / 8.0) * min(
        4.0, max(0.02, duration_scale)
    )
    cold_words = min(
        _MAX_COLD_WORDS, max(_MIN_COLD_WORDS, _pow2_near(0.75 * ws_words))
    )
    if p_ring > 0.0:
        ring_words = min(
            _MAX_RING_WORDS, max(_MIN_RING_WORDS, _pow2_near(0.25 * ws_words))
        )
    else:
        ring_words = 0

    return MemoryPlan(
        hot_words=HOT_WORDS,
        cold_words=cold_words,
        ring_words=ring_words,
        p_cold=p_cold,
        p_ring=p_ring,
        fill_seed=mem_rng.next_u64(),
    )
