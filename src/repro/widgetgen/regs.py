"""Register conventions shared by the widget generator and code generator.

The 16 integer registers are fully allocated:

======  =======================================================
r0      hot-region pointer
r1      widget PRNG state (xorshift64, seeded from the hash seed)
r2      outer-loop counter
r3      inner-loop counter
r4      cold-region pointer
r5      pointer-chase register (holds an absolute ring address)
r6-r9   integer dataflow registers
r10     guard-test scratch
r11     guard threshold "hi"
r12     guard threshold "mid"
r13     hot-region mask
r14     cold-region mask
r15     multiplier constant
======  =======================================================

f0-f5 are floating-point dataflow registers; v0-v3 are vector dataflow
registers.
"""

HOT_PTR = 0
PRNG = 1
OUTER = 2
INNER = 3
COLD_PTR = 4
RING_PTR = 5
INT_DATA = (6, 7, 8, 9)
TEST = 10
THR_HI = 11
THR_MID = 12
HOT_MASK = 13
COLD_MASK = 14
MUL_CONST = 15

FP_DATA = (0, 1, 2, 3, 4, 5)
VEC_DATA = (0, 1, 2, 3)

#: The "hi" guard threshold: exec_p ≈ 246/256 ≈ 0.961 (or its complement).
THRESHOLD_HI = 246
#: Base of the "mid" threshold; the Branch Behavior seed field adds ±24.
THRESHOLD_MID_BASE = 128
THRESHOLD_MID_SPAN = 24
