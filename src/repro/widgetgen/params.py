"""Generator parameters — the consensus-level widget configuration.

All miners of one HashCore chain must agree on these values (they are as
much a consensus parameter as the difficulty target): changing any of them
changes every widget and therefore every hash.

The paper's widgets run for seconds of native x86 execution (millions of
dynamic instructions).  A pure-Python interpreter executes ~1 M simulated
instructions per second, so the defaults scale the widget down to tens of
thousands of dynamic instructions while keeping every proportion — snapshot
cadence per instruction, output size band (20-38 KB, §V), noise magnitude —
the same.  ``full_scale()`` returns the paper-sized configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True, slots=True)
class GeneratorParams:
    """Tunable knobs of the widget generator."""

    #: Mean target dynamic instruction count per widget (before the
    #: seed-driven size jitter).
    target_instructions: int = 60_000
    #: Maximum positive noise each Table I field adds to its instruction
    #: class, as a fraction of the class's profiled share (§IV-B: "each seed
    #: will add some amount of noise to the widget generator").
    noise_fraction: float = 0.10
    #: Retired instructions between register snapshots ("every few thousand
    #: instructions" at paper scale; scaled with the widget here).
    snapshot_interval: int = 500
    #: Mean number of basic blocks in the widget body.
    mean_blocks: int = 12
    #: Widget dynamic size jitter band (min, max multiplier), seeded from
    #: the BBV field.  (0.65, 1.25) reproduces the paper's ~1.9x output-size
    #: spread (20-38 KB) around the 60 k-instruction default.
    size_jitter: tuple[float, float] = (0.65, 1.25)
    #: Maximum number of inner loops in the widget body.
    max_inner_loops: int = 2
    #: Inner-loop trip-count band.
    inner_trips: tuple[int, int] = (4, 12)
    #: Fraction of blocks carrying a conditional guard.
    guard_fraction: float = 0.7
    #: Execution fuse safety factor over the expected dynamic size.
    fuse_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.target_instructions < 1000:
            raise ConfigError("target_instructions must be >= 1000")
        if not 0.0 <= self.noise_fraction <= 1.0:
            raise ConfigError("noise_fraction must be in [0, 1]")
        if self.snapshot_interval < 1:
            raise ConfigError("snapshot_interval must be >= 1")
        if self.mean_blocks < 2:
            raise ConfigError("mean_blocks must be >= 2")
        lo, hi = self.size_jitter
        if not 0.0 < lo <= hi:
            raise ConfigError("size_jitter must satisfy 0 < lo <= hi")
        lo_t, hi_t = self.inner_trips
        if not 1 <= lo_t <= hi_t:
            raise ConfigError("inner_trips must satisfy 1 <= lo <= hi")
        if not 0.0 <= self.guard_fraction <= 1.0:
            raise ConfigError("guard_fraction must be in [0, 1]")
        if self.fuse_factor < 1.5:
            raise ConfigError("fuse_factor must be >= 1.5")

    @classmethod
    def full_scale(cls) -> "GeneratorParams":
        """Paper-scale widgets: millions of instructions, snapshots every
        few thousand (only practical on a compiled substrate)."""
        return cls(target_instructions=4_000_000, snapshot_interval=40_000)

    @classmethod
    def test_scale(cls) -> "GeneratorParams":
        """Small widgets for fast unit tests."""
        return cls(target_instructions=6_000, snapshot_interval=200)
