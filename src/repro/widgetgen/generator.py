"""Widget generation: profile + hash seed → :class:`WidgetSpec`.

This is the paper's modified PerfProx (§IV-B).  The hash seed enters in
exactly the Table I places:

* fields 0-4 add **positive** noise (up to ``params.noise_fraction``) to the
  integer-ALU, integer-multiply, FP, load, and store targets — which is why
  widget branch *fractions* come out slightly below the profiled workload's
  (§V-B, reproduced by experiment E5);
* field 5 jitters branch behaviour (taken-rate target and the "mid" guard
  threshold);
* field 6 seeds the structure PRNG (block count/sizes, guard placement,
  loops, opcode selection, dependency shapes, widget size jitter) — the
  paper's Basic Block Vector seed;
* field 7 seeds the memory PRNG (region sizes and contents, stream mix,
  strides, offsets).

The output is a pure function of ``(profile, seed, params)``; any two
parties derive the identical widget, which is what makes HashCore hashes
verifiable.
"""

from __future__ import annotations

from repro.core.seed import HashSeed, SeedField
from repro.isa.opcodes import OpClass, Opcode
from repro.machine.perf_counters import DEP_BUCKETS
from repro.profiling.profile import PerformanceProfile
from repro.rng import Xoshiro256
from repro.widgetgen import regs
from repro.widgetgen.ir import BlockSpec, GuardSpec, LoopSpec, WidgetSpec
from repro.widgetgen.memstream import plan_memory
from repro.widgetgen.params import GeneratorParams

# Opcode selection weights within each class, loosely following the opcode
# frequencies of compiled integer/FP code (divide is rare, add/xor common).
_INT_ALU_OPS = (
    (Opcode.ADD, 20), (Opcode.SUB, 10), (Opcode.AND, 8), (Opcode.OR, 5),
    (Opcode.XOR, 14), (Opcode.SHL, 4), (Opcode.SHR, 4), (Opcode.ADDI, 12),
    (Opcode.ANDI, 6), (Opcode.ORI, 2), (Opcode.XORI, 4), (Opcode.SHLI, 4),
    (Opcode.SHRI, 4), (Opcode.MOV, 3), (Opcode.NOT, 2), (Opcode.CMPLT, 4),
    (Opcode.CMPEQ, 3), (Opcode.MIN, 2), (Opcode.MAX, 2),
)
# The multiply-class table is built per profile (divide share matters to
# dependency-chain latency); see ``tables`` in :func:`generate_spec`.
_FP_OPS = (
    (Opcode.FADD, 28), (Opcode.FMUL, 28), (Opcode.FSUB, 14), (Opcode.FMA, 12),
    (Opcode.FDIV, 5), (Opcode.FMIN, 3), (Opcode.FMAX, 3), (Opcode.CVTIF, 4),
    (Opcode.CVTFI, 3),
)
# Vector class: concrete ALU opcodes plus the memory-token kinds.
_VEC_OPS = (
    (Opcode.VADD, 25), (Opcode.VMUL, 25), (Opcode.VFMA, 30),
    (Opcode.VBROADCAST, 5), (Opcode.VREDUCE, 4), ("vload", 6), ("vstore", 5),
)

#: Body-fillable classes, in sampling order.
_BODY_CLASSES = (
    OpClass.INT_ALU,
    OpClass.INT_MUL,
    OpClass.FP_ALU,
    OpClass.LOAD,
    OpClass.STORE,
    OpClass.VECTOR,
)

#: Classes whose targets receive positive seed noise (Table I fields 0-4).
_NOISED = {
    OpClass.INT_ALU: SeedField.INT_ALU,
    OpClass.INT_MUL: SeedField.INT_MUL,
    OpClass.FP_ALU: SeedField.FP_ALU,
    OpClass.LOAD: SeedField.LOADS,
    OpClass.STORE: SeedField.STORES,
}

# Representative stride per stride-histogram bucket (bucket bounds are
# 0, 1, 2, 8, 64, 512, +overflow).
_STRIDE_VALUES = (0, 1, 2, 5, 24, 192, 1024)


def _weighted_choice(rng: Xoshiro256, table) -> object:
    total = float(sum(weight for _, weight in table))
    r = rng.random() * total
    acc = 0.0
    for item, weight in table:
        acc += weight
        if r < acc:
            return item
    return table[-1][0]


class _DepTracker:
    """Chooses source registers so dependency distances follow the profile."""

    def __init__(self, rng: Xoshiro256, dep_hist: list[float], pool: tuple[int, ...]):
        self._rng = rng
        self._pool = pool
        # Cumulative weights over DEP_BUCKETS (+overflow).
        self._hist = dep_hist if sum(dep_hist) > 0 else [1.0] * len(dep_hist)
        self._recent: list[int] = []

    def source(self) -> int:
        """A source register at a profile-shaped dependency distance."""
        if not self._recent:
            return self._pool[self._rng.next_u64() % len(self._pool)]
        bucket = self._sample_bucket()
        distance = DEP_BUCKETS[bucket] if bucket < len(DEP_BUCKETS) else 2 * DEP_BUCKETS[-1]
        index = min(distance, len(self._recent))
        return self._recent[-index]

    def wrote(self, reg: int) -> None:
        self._recent.append(reg)
        if len(self._recent) > 128:
            del self._recent[:64]

    def last(self) -> int | None:
        """The most recently written register (chain continuation target)."""
        return self._recent[-1] if self._recent else None

    def _sample_bucket(self) -> int:
        r = self._rng.random() * sum(self._hist)
        acc = 0.0
        for index, weight in enumerate(self._hist):
            acc += weight
            if r < acc:
                return index
        return len(self._hist) - 1


def generate_spec(
    profile: PerformanceProfile,
    seed: HashSeed,
    params: GeneratorParams | None = None,
    name: str | None = None,
) -> WidgetSpec:
    """Generate the widget spec for ``seed`` against ``profile``."""
    params = params or GeneratorParams()
    profile.validate()
    bbv_rng = Xoshiro256(seed.field(SeedField.BBV_SEED))
    mem_rng = Xoshiro256(seed.field(SeedField.MEMORY_SEED))

    # ------------------------------------------------------------------
    # 1. Noisy class weights (Table I fields 0-4: positive noise only).
    # ------------------------------------------------------------------
    weights: dict[OpClass, float] = {}
    for cls in OpClass:
        base = profile.mix_fraction(cls)
        field = _NOISED.get(cls)
        if field is not None:
            base *= 1.0 + params.noise_fraction * seed.fraction(field)
        weights[cls] = base
    weights[OpClass.SYSTEM] = 0.0
    total_weight = sum(weights.values()) or 1.0
    target_mix = {cls: w / total_weight for cls, w in weights.items()}

    # ------------------------------------------------------------------
    # 2. Memory plan (Table I field 7).
    # ------------------------------------------------------------------
    plan = plan_memory(
        profile,
        mem_rng,
        duration_scale=params.target_instructions / profile.dynamic_instructions,
    )

    # ------------------------------------------------------------------
    # 3. Structure: blocks, guards, inner loops (Table I field 6).
    # ------------------------------------------------------------------
    n_blocks = max(4, params.mean_blocks + bbv_rng.randint(-2, 2))
    guarded = [False] + [
        bbv_rng.random() < params.guard_fraction for _ in range(n_blocks - 1)
    ]

    loops: list[LoopSpec] = []
    n_loops = bbv_rng.randint(1, params.max_inner_loops)
    cursor = 1
    for _ in range(n_loops):
        if cursor >= n_blocks - 2:
            break
        start = cursor + bbv_rng.randint(0, min(2, n_blocks - 3 - cursor))
        end = min(n_blocks - 1, start + bbv_rng.randint(1, 2))
        trips = bbv_rng.randint(*params.inner_trips)
        loops.append(LoopSpec(start=start, end=end, trips=trips))
        cursor = end + 2

    reps = [1] * n_blocks
    for loop in loops:
        for index in range(loop.start, loop.end + 1):
            reps[index] = loop.trips

    # ------------------------------------------------------------------
    # 4. Guard calibration (Table I field 5).
    #
    # Guards come in three flavours: "hi" (rarely taken, ~6.6%), "lo"
    # (mostly taken, ~93.4%) and "mid" (~50/50, unpredictable).  Their
    # dynamic weights are solved so the widget's expected branch taken-rate
    # and prediction accuracy both land on the (seed-jittered) profile
    # values.  The predictor model: an iid Bernoulli(p) branch mispredicts
    # at ≈ 1.15·min(p, 1-p) under 2-bit counters; a counted loop of t trips
    # mispredicts ≈ 1.2 times per full execution.
    # ------------------------------------------------------------------
    branch_jitter = (seed.fraction(SeedField.BRANCH_BEHAVIOR) - 0.5) * 0.06
    target_taken = min(0.95, max(0.05, profile.branch_taken_rate + branch_jitter))
    target_accuracy = min(
        0.995, max(0.5, profile.branch_accuracy - branch_jitter * 0.5)
    )
    mid_threshold = regs.THRESHOLD_MID_BASE + int(
        (seed.fraction(SeedField.BRANCH_BEHAVIOR) - 0.5)
        * 2
        * regs.THRESHOLD_MID_SPAN
    )
    exec_hi = regs.THRESHOLD_HI / 256.0      # thresholds live in the top byte
    exec_mid = mid_threshold / 256.0
    mis_hi = 1.15 * (1.0 - exec_hi)
    mis_mid = 1.15 * min(exec_mid, 1.0 - exec_mid)

    guard_indices = [i for i in range(n_blocks) if guarded[i]]
    guard_weight = sum(reps[i] for i in guard_indices)
    branches_per_iter = guard_weight + sum(l.trips for l in loops) + 1
    loop_taken = sum(l.trips - 1 for l in loops) + 1.0  # inner loop-backs + outer
    loop_mis = 1.2 * len(loops)

    needed_mis = max(0.0, 0.45 * ((1.0 - target_accuracy) * branches_per_iter - loop_mis))
    needed_taken = max(0.0, target_taken * branches_per_iter - loop_taken)

    # Solve the dynamic weights of each flavour.
    mid_weight = min(guard_weight, max(0.0, (needed_mis - mis_hi * guard_weight) / max(1e-9, mis_mid - mis_hi)))
    rest = guard_weight - mid_weight
    taken_hi, taken_lo = 1.0 - exec_hi, exec_hi
    lo_weight = min(
        rest,
        max(
            0.0,
            (needed_taken - 0.5 * mid_weight - taken_hi * rest)
            / max(1e-9, taken_lo - taken_hi),
        ),
    )

    # Heaviest guards first minimises quota overshoot; the shuffled
    # tiebreak keeps equal-weight assignment seed-dependent.
    order = list(guard_indices)
    bbv_rng.shuffle(order)
    order.sort(key=lambda i: -reps[i])
    guards: dict[int, GuardSpec] = {}
    mid_left, lo_left = mid_weight, lo_weight
    for i in order:
        weight = reps[i]
        mix_reg = bbv_rng.choice(regs.INT_DATA)
        if mid_left >= 0.5 * weight:
            mid_left -= weight
            invert = bbv_rng.random() < 0.5
            guards[i] = GuardSpec(
                exec_p=1.0 - exec_mid if invert else exec_mid,
                threshold="mid",
                invert=invert,
                mix_reg=mix_reg,
            )
        elif lo_left >= 0.5 * weight:
            lo_left -= weight
            # "lo": branch mostly taken, body rarely executed.
            guards[i] = GuardSpec(
                exec_p=1.0 - exec_hi, threshold="hi", invert=True,
                mix_reg=mix_reg,
            )
        else:
            guards[i] = GuardSpec(
                exec_p=exec_hi, threshold="hi", invert=False,
                mix_reg=mix_reg,
            )

    # ------------------------------------------------------------------
    # 5. Pre tokens and overhead accounting.
    # ------------------------------------------------------------------
    blocks = [BlockSpec() for _ in range(n_blocks)]
    # One PRNG advance feeds ~3 guards (each reads a different shift window
    # of the state), the way real code amortises one RNG step over several
    # decisions — keeping per-branch overhead near the profiled block size.
    guard_counter = 0
    for index, block in enumerate(blocks):
        if index in guards:
            block.guard = guards[index]
            if guard_counter % 3 == 0:
                block.pre.append(("prng",))
            guard_counter += 1
        if index % 3 == 0:
            hot_stride = _STRIDE_VALUES[_sample_hist(mem_rng, profile.stride_hist)]
            if hot_stride:
                block.pre.append(("bump", "hot", hot_stride))
        if plan.p_cold > 0.0 and index % 2 == 0:
            # Odd strides make the wrap-around orbit cover the whole cold
            # region, so first-touch misses track the region size.
            cold_stride = (
                max(1, _STRIDE_VALUES[_sample_hist(mem_rng, profile.stride_hist)]) | 1
            )
            block.pre.append(("bump", "cold", cold_stride))

    # ------------------------------------------------------------------
    # 6. Body quotas and filling.
    # ------------------------------------------------------------------
    mean_body = max(2.0, profile.block_size_mean - 1.0)
    sizes = [
        max(1, round(mean_body * (0.6 + 0.8 * bbv_rng.random())))
        for _ in range(n_blocks)
    ]
    exec_p_of = [guards[i].exec_p if i in guards else 1.0 for i in range(n_blocks)]

    overhead: dict[OpClass, float] = {cls: 0.0 for cls in OpClass}
    for index, block in enumerate(blocks):
        for token in block.pre:
            if token[0] == "prng":
                overhead[OpClass.INT_ALU] += 6 * reps[index]
            elif token[0] == "bump":
                overhead[OpClass.INT_ALU] += 2 * reps[index]
        if block.guard is not None:
            overhead[OpClass.INT_ALU] += 1 * reps[index]
            overhead[OpClass.BRANCH] += reps[index]
    for loop in loops:
        overhead[OpClass.BRANCH] += loop.trips
        overhead[OpClass.INT_ALU] += 1
    overhead[OpClass.BRANCH] += 1

    # The structure fixes the branch count per iteration; solve the total
    # body volume so the branch *fraction* lands on target, then rescale
    # the sampled block sizes to that volume (this is how PerfProx pins the
    # proxy's basic-block granularity to the profiled workload's).
    branch_count = overhead[OpClass.BRANCH]
    branch_target = max(1e-3, target_mix[OpClass.BRANCH])
    desired_slots = max(
        float(n_blocks), branch_count / branch_target - sum(overhead.values())
    )
    weighted_slots = sum(reps[i] * exec_p_of[i] * sizes[i] for i in range(n_blocks))
    scale = desired_slots / max(weighted_slots, 1.0)
    sizes = [max(1, round(size * scale)) for size in sizes]
    weighted_slots = sum(reps[i] * exec_p_of[i] * sizes[i] for i in range(n_blocks))

    iteration_cost = weighted_slots + sum(overhead.values())
    quotas: dict[OpClass, float] = {}
    for cls in _BODY_CLASSES:
        quotas[cls] = max(0.0, target_mix[cls] * iteration_cost - overhead[cls])
    quota_total = sum(quotas.values()) or 1.0
    class_probs = [(cls, quotas[cls] / quota_total) for cls in _BODY_CLASSES]

    # Long-latency opcode shares follow the profiled workload (divide chains
    # dominate serial latency, so their share matters to IPC matching).
    div_share = min(0.9, max(0.0, profile.extras.get("div_share", 0.12)))
    fdiv_share = min(0.9, max(0.0, profile.extras.get("fdiv_share", 0.05)))
    tables = {
        # Probability that an op continues the most recent dependency chain
        # (dst = src = last written register) — follows the profiled share
        # of distance-1 dependencies, which sets the serial-latency floor of
        # the workload.  The 1.35 factor calibrates for chain breaks at
        # block boundaries and guard-skipped bodies.
        "chain_p": min(0.9, 2.0 * profile.dep_distance_hist[0]),
        # Share of loads whose address derives from live dataflow rather
        # than a streaming pointer — the profile's beyond-line stride share.
        "p_dep_addr": min(0.95, 0.55 * sum(profile.stride_hist[4:])),
        "int_mul": (
            (Opcode.MUL, (1.0 - div_share) * 0.8 + 1e-6),
            (Opcode.MULHI, (1.0 - div_share) * 0.2 + 1e-6),
            (Opcode.DIV, div_share * 0.5),
            (Opcode.MOD, div_share * 0.5),
        ),
        "fp": tuple(
            (op, weight * (1.0 - fdiv_share) if op != Opcode.FDIV else 0.0)
            for op, weight in _FP_OPS
        )
        + ((Opcode.FDIV, fdiv_share * sum(w for _, w in _FP_OPS)),),
    }

    dep_int = _DepTracker(bbv_rng, profile.dep_distance_hist, regs.INT_DATA)
    dep_fp = _DepTracker(bbv_rng, profile.dep_distance_hist, regs.FP_DATA)
    for index, block in enumerate(blocks):
        for _ in range(sizes[index]):
            block.body.append(
                _sample_token(
                    bbv_rng, mem_rng, class_probs, plan, dep_int, dep_fp, tables
                )
            )

    # ------------------------------------------------------------------
    # 7. Widget size: outer trips from the jittered instruction target.
    # ------------------------------------------------------------------
    lo, hi = params.size_jitter
    jitter = lo + (hi - lo) * bbv_rng.random()
    spec = WidgetSpec(
        name=name or f"widget-{seed.hex[:12]}",
        seed_hex=seed.hex,
        blocks=blocks,
        loops=loops,
        outer_trips=1,
        plan=plan,
        snapshot_interval=params.snapshot_interval,
        meta={
            "target_mix": {cls.name.lower(): target_mix[cls] for cls in OpClass},
            "target_taken_rate": target_taken,
            "mid_threshold": mid_threshold,
            "size_jitter": jitter,
            "profile": profile.name,
        },
    )
    per_iter = spec.expected_iteration_cost()
    spec.outer_trips = max(1, round(params.target_instructions * jitter / per_iter))
    spec.meta["expected_instructions"] = spec.expected_instructions()
    spec.meta["fuse"] = int(
        params.fuse_factor * max(spec.expected_instructions(), 1000.0)
    )
    spec.validate()
    return spec


def _sample_hist(rng: Xoshiro256, hist: list[float]) -> int:
    total = sum(hist)
    if total <= 0.0:
        return 0
    r = rng.random() * total
    acc = 0.0
    for index, weight in enumerate(hist):
        acc += weight
        if r < acc:
            return index
    return len(hist) - 1


def _sample_token(
    bbv_rng: Xoshiro256,
    mem_rng: Xoshiro256,
    class_probs: list[tuple[OpClass, float]],
    plan,
    dep_int: _DepTracker,
    dep_fp: _DepTracker,
    tables: dict,
):
    """Draw one body token matching the quota-derived class distribution."""
    r = bbv_rng.random()
    acc = 0.0
    cls = class_probs[-1][0]
    for candidate, prob in class_probs:
        acc += prob
        if r < acc:
            cls = candidate
            break

    if cls == OpClass.INT_ALU:
        op = _weighted_choice(bbv_rng, _INT_ALU_OPS)
        last = dep_int.last()
        if last is not None and bbv_rng.random() < tables["chain_p"]:
            dst = src1 = last  # read-modify-write: continue the chain
        else:
            dst = bbv_rng.choice(regs.INT_DATA)
            src1 = regs.PRNG if bbv_rng.random() < 0.12 else dep_int.source()
        if op in (Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI):
            token = ("ins", int(op), dst, src1, 0, bbv_rng.randint(1, 4095))
        elif op in (Opcode.SHLI, Opcode.SHRI):
            token = ("ins", int(op), dst, src1, 0, bbv_rng.randint(1, 13))
        elif op in (Opcode.MOV, Opcode.NOT):
            token = ("ins", int(op), dst, src1, 0, 0)
        else:
            token = ("ins", int(op), dst, src1, dep_int.source(), 0)
        dep_int.wrote(dst)
        return token

    if cls == OpClass.INT_MUL:
        op = _weighted_choice(bbv_rng, tables["int_mul"])
        last = dep_int.last()
        if last is not None and bbv_rng.random() < tables["chain_p"]:
            dst = src1 = last
        else:
            dst = bbv_rng.choice(regs.INT_DATA)
            src1 = dep_int.source()
        token = ("ins", int(op), dst, src1, dep_int.source(), 0)
        dep_int.wrote(dst)
        return token

    if cls == OpClass.FP_ALU:
        op = _weighted_choice(bbv_rng, tables["fp"])
        if op == Opcode.CVTIF:
            dst = bbv_rng.choice(regs.FP_DATA)
            token = ("ins", int(op), dst, dep_int.source(), 0, 0)
            dep_fp.wrote(dst)
            return token
        if op == Opcode.CVTFI:
            dst = bbv_rng.choice(regs.INT_DATA)
            token = ("ins", int(op), dst, dep_fp.source(), 0, 0)
            dep_int.wrote(dst)
            return token
        last = dep_fp.last()
        if last is not None and bbv_rng.random() < tables["chain_p"]:
            dst = src1 = last
        else:
            dst = bbv_rng.choice(regs.FP_DATA)
            src1 = dep_fp.source()
        if op in (Opcode.FABS, Opcode.FNEG):
            token = ("ins", int(op), dst, src1, 0, 0)
        else:
            token = ("ins", int(op), dst, src1, dep_fp.source(), 0)
        dep_fp.wrote(dst)
        return token

    if cls == OpClass.LOAD:
        stream = mem_rng.random()
        if plan.p_ring and stream < plan.p_ring:
            return ("chase",)
        region = "cold" if stream < plan.p_ring + plan.p_cold else "hot"
        offset = mem_rng.randint(0, 7)
        if bbv_rng.random() < 0.2:
            dst = bbv_rng.choice(regs.FP_DATA)
            dep_fp.wrote(dst)
            return ("fload", region, dst, offset)
        # Irregular (large-stride) loads use *dependent addressing*: the
        # address is computed from the live dataflow, the way index/pointer
        # arithmetic feeds loads in real code.  That threads the cache
        # latency into the dependency chain, which is where most of a
        # branchy integer workload's CPI lives.
        last = dep_int.last()
        if last is not None and bbv_rng.random() < tables["p_dep_addr"]:
            addr_src = last
            dst = last if bbv_rng.random() < tables["chain_p"] else bbv_rng.choice(regs.INT_DATA)
            dep_int.wrote(dst)
            return ("dload", region, dst, addr_src)
        dst = bbv_rng.choice(regs.INT_DATA)
        dep_int.wrote(dst)
        return ("load", region, dst, offset)

    if cls == OpClass.STORE:
        region = "cold" if mem_rng.random() < plan.p_cold else "hot"
        offset = mem_rng.randint(0, 7)
        if bbv_rng.random() < 0.2:
            return ("fstore", region, dep_fp.source(), offset)
        return ("store", region, dep_int.source(), offset)

    # OpClass.VECTOR
    op = _weighted_choice(bbv_rng, _VEC_OPS)
    if op == "vload":
        region = "cold" if mem_rng.random() < plan.p_cold else "hot"
        return ("vload", region, bbv_rng.choice(regs.VEC_DATA), mem_rng.randint(0, 4))
    if op == "vstore":
        region = "cold" if mem_rng.random() < plan.p_cold else "hot"
        return ("vstore", region, bbv_rng.choice(regs.VEC_DATA), mem_rng.randint(0, 4))
    if op == Opcode.VBROADCAST:
        return ("ins", int(op), bbv_rng.choice(regs.VEC_DATA), dep_fp.source(), 0, 0)
    if op == Opcode.VREDUCE:
        dst = bbv_rng.choice(regs.FP_DATA)
        dep_fp.wrote(dst)
        return ("ins", int(op), dst, bbv_rng.choice(regs.VEC_DATA), 0, 0)
    return (
        "ins",
        int(op),
        bbv_rng.choice(regs.VEC_DATA),
        bbv_rng.choice(regs.VEC_DATA),
        bbv_rng.choice(regs.VEC_DATA),
        0,
    )


class WidgetGenerator:
    """Convenience wrapper binding a profile and parameters.

    ``generator.widget(seed)`` returns a compiled
    :class:`~repro.core.widget.Widget` ready to execute — the full
    generate → compile pipeline of §IV-B.
    """

    def __init__(
        self,
        profile: PerformanceProfile,
        params: GeneratorParams | None = None,
    ) -> None:
        profile.validate()
        self.profile = profile
        self.params = params or GeneratorParams()

    def spec(self, seed: HashSeed) -> WidgetSpec:
        """Generate the widget spec for ``seed``."""
        return generate_spec(self.profile, seed, self.params)

    def widget(self, seed: HashSeed):
        """Generate *and compile* the widget for ``seed``."""
        from repro.core.widget import Widget
        from repro.widgetgen.codegen import compile_spec

        spec = self.spec(seed)
        program = compile_spec(spec)
        return Widget(spec=spec, program=program)
