"""Widget code generation: :class:`WidgetSpec` → :class:`Program`.

This stage stands in for the paper's generated-C + GCC step: the IR is
lowered to concrete ISA instructions through the structured
:class:`~repro.isa.builder.ProgramBuilder`.  The emitted instruction counts
per construct match the generator's accounting exactly (guard = 3
instructions, PRNG advance = 6, pointer bump = 2), so the spec's expected
dynamic size is an unbiased estimate of the real one.
"""

from __future__ import annotations

import struct

from repro.errors import GenerationError
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.rng import MASK64, splitmix64
from repro.widgetgen import regs
from repro.widgetgen.ir import BlockSpec, WidgetSpec
from repro.widgetgen.memstream import COLD_BASE, HOT_BASE, RING_BASE


def _movi64(b: ProgramBuilder, reg: int, value: int) -> None:
    """MOVI a full 64-bit pattern (the imm field is signed)."""
    value &= MASK64
    if value >= 1 << 63:
        value -= 1 << 64
    b.movi(reg, value)


def compile_spec(spec: WidgetSpec) -> Program:
    """Compile a widget spec to an executable program."""
    spec.validate()
    b = ProgramBuilder(spec.name)
    plan = spec.plan
    seed_words = struct.unpack("<4Q", bytes.fromhex(spec.seed_hex))

    # ------------------------------------------------------------------
    # Preamble: seed-derived architectural state.  Register *values* differ
    # per widget, so even structurally similar widgets produce unrelated
    # outputs.
    # ------------------------------------------------------------------
    _movi64(b, regs.PRNG, seed_words[0] | 1)
    for offset, reg in enumerate(regs.INT_DATA):
        _movi64(b, reg, splitmix64((seed_words[1] + offset) & MASK64))
    _movi64(b, regs.MUL_CONST, splitmix64(seed_words[2]) | 1)
    _movi64(b, regs.THR_HI, regs.THRESHOLD_HI << 56)
    _movi64(
        b,
        regs.THR_MID,
        int(spec.meta.get("mid_threshold", regs.THRESHOLD_MID_BASE)) << 56,
    )
    b.movi(regs.HOT_MASK, plan.hot_mask)
    b.movi(regs.COLD_MASK, plan.cold_mask if plan.cold_words else 0)
    b.movi(regs.HOT_PTR, 0)
    b.movi(regs.COLD_PTR, 0)
    b.movi(regs.RING_PTR, RING_BASE if plan.ring_words else 0)
    for offset, freg in enumerate(regs.FP_DATA):
        b.movi(regs.TEST, splitmix64((seed_words[3] + offset) & MASK64) % 100_000 + 1)
        b.cvtif(freg, regs.TEST)
    for vreg in regs.VEC_DATA:
        b.vbroadcast(vreg, regs.FP_DATA[vreg % len(regs.FP_DATA)])

    # ------------------------------------------------------------------
    # Body: outer loop over blocks, with inner loops where specified.
    # ------------------------------------------------------------------
    loop_at = {loop.start: loop for loop in spec.loops}
    with b.loop(regs.OUTER, spec.outer_trips):
        index = 0
        while index < len(spec.blocks):
            loop = loop_at.get(index)
            if loop is not None:
                with b.loop(regs.INNER, loop.trips):
                    for j in range(loop.start, loop.end + 1):
                        _emit_block(b, spec.blocks[j], plan)
                index = loop.end + 1
            else:
                _emit_block(b, spec.blocks[index], plan)
                index += 1

    # ------------------------------------------------------------------
    # Epilogue: fold vector state into snapshot-visible FP registers so the
    # final snapshot commits to every architectural effect of the run.
    # ------------------------------------------------------------------
    b.vreduce(4, 0)
    b.fadd(0, 0, 4)
    b.vreduce(5, 2)
    b.fadd(1, 1, 5)
    b.cvtfi(regs.TEST, 0)
    b.xor(regs.INT_DATA[0], regs.INT_DATA[0], regs.TEST)
    b.halt()
    return b.build()


def _emit_prng(b: ProgramBuilder) -> None:
    """xorshift64 advance of the widget PRNG (6 instructions)."""
    b.shli(regs.TEST, regs.PRNG, 13)
    b.xor(regs.PRNG, regs.PRNG, regs.TEST)
    b.shri(regs.TEST, regs.PRNG, 7)
    b.xor(regs.PRNG, regs.PRNG, regs.TEST)
    b.shli(regs.TEST, regs.PRNG, 17)
    b.xor(regs.PRNG, regs.PRNG, regs.TEST)


def _region(plan, region: str) -> tuple[int, int, int]:
    """(pointer register, mask register, base offset) for a region name."""
    if region == "hot":
        return regs.HOT_PTR, regs.HOT_MASK, HOT_BASE
    if region == "cold":
        return regs.COLD_PTR, regs.COLD_MASK, COLD_BASE
    raise GenerationError(f"unknown region {region!r}")


def _emit_token(b: ProgramBuilder, token, plan) -> None:
    kind = token[0]
    if kind == "ins":
        _, op, a, src1, src2, imm = token
        b.emit(Opcode(op), a, src1, src2, imm)
    elif kind == "load":
        ptr, _, base = _region(plan, token[1])
        b.load(token[2], ptr, base + token[3])
    elif kind == "dload":
        # Data-dependent address: mask the live value into the region.
        _, mask, base = _region(plan, token[1])
        b.and_(regs.TEST, token[3], mask)
        b.load(token[2], regs.TEST, base)
    elif kind == "fload":
        ptr, _, base = _region(plan, token[1])
        b.fload(token[2], ptr, base + token[3])
    elif kind == "store":
        ptr, _, base = _region(plan, token[1])
        b.store(token[2], ptr, base + token[3])
    elif kind == "fstore":
        ptr, _, base = _region(plan, token[1])
        b.fstore(token[2], ptr, base + token[3])
    elif kind == "vload":
        ptr, _, base = _region(plan, token[1])
        b.vload(token[2], ptr, base + token[3])
    elif kind == "vstore":
        ptr, _, base = _region(plan, token[1])
        b.vstore(token[2], ptr, base + token[3])
    elif kind == "chase":
        if not plan.ring_words:
            raise GenerationError("chase token without a pointer ring")
        b.load(regs.RING_PTR, regs.RING_PTR, 0)
    elif kind == "bump":
        ptr, mask, _ = _region(plan, token[1])
        b.addi(ptr, ptr, token[2])
        b.and_(ptr, ptr, mask)
    elif kind == "prng":
        _emit_prng(b)
    else:
        raise GenerationError(f"unknown token kind {kind!r}")


def _emit_block(b: ProgramBuilder, block: BlockSpec, plan) -> None:
    for token in block.pre:
        _emit_token(b, token, plan)
    guard = block.guard
    if guard is None:
        for token in block.body:
            _emit_token(b, token, plan)
        return
    # Guard test: 1 instruction + 1 branch (matches the generator's
    # accounting).  XOR with the uniform PRNG keeps the 64-bit test value
    # uniform whatever the data register holds, and makes the branch
    # resolve late (it waits on the dataflow feeding mix_reg).
    b.xor(regs.TEST, regs.PRNG, guard.mix_reg)
    threshold_reg = regs.THR_HI if guard.threshold == "hi" else regs.THR_MID
    conditional = b.if_ge if guard.invert else b.if_lt
    with conditional(regs.TEST, threshold_reg):
        for token in block.body:
            _emit_token(b, token, plan)
