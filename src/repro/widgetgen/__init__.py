"""Widget generation — inverted benchmarking (§IV-B).

The back half of the PerfProx pipeline, modified as the paper describes:

1. the 256-bit hash seed is folded into the performance profile (Table I):
   five fields add *positive* noise to the instruction-type targets, one
   perturbs branch behaviour, and two seed the structure ("basic block
   vector") and memory PRNGs;
2. a synthetic program — the *widget* — is generated to match the perturbed
   profile: basic blocks, guards with calibrated biases, inner loops, memory
   streams over hot/cold regions and a pointer-chase ring, and data
   dependencies matching the profiled distance distribution;
3. the widget IR is compiled to the synthetic ISA (the stand-in for the
   paper's Python → C → GCC → x86 chain) and executed with periodic register
   snapshots forming the widget output.

Everything is a pure function of ``(profile, seed, params)``: the same seed
always yields the byte-identical program, which is what lets other miners
verify a HashCore hash.
"""

from repro.widgetgen.params import GeneratorParams
from repro.widgetgen.ir import BlockSpec, GuardSpec, LoopSpec, WidgetSpec
from repro.widgetgen.memstream import MemoryPlan, plan_memory
from repro.widgetgen.generator import WidgetGenerator, generate_spec
from repro.widgetgen.codegen import compile_spec
from repro.widgetgen.pool import SelectionHashCore, WidgetPool

__all__ = [
    "GeneratorParams",
    "BlockSpec",
    "GuardSpec",
    "LoopSpec",
    "WidgetSpec",
    "MemoryPlan",
    "plan_memory",
    "WidgetGenerator",
    "generate_spec",
    "compile_spec",
    "WidgetPool",
    "SelectionHashCore",
]
