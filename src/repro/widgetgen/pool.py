"""Widget *selection* from a fixed pool — the §VI-A alternative.

Instead of generating widgets at runtime, a chain may fix a large widget
pool at genesis and have each hash seed select an ordered subset to
execute: "gating the input string and using the result to select some
ordered set of these widgets to be executed, resulting in an output string
to be hashed."  The trade-offs the paper discusses (storage vs generation
time vs per-widget-ASIC risk) are measurable on this implementation, and
the E9 bench does exactly that.

The pool itself is deterministic: member *i* is the widget generated from
``sha256(pool_tag || i)`` against the pool's profile, so two nodes
constructing the pool from the same consensus parameters hold identical
widgets without shipping gigabytes of code.
"""

from __future__ import annotations

import hashlib
import struct

from typing import TYPE_CHECKING

from repro.core.seed import HashSeed
from repro.errors import GenerationError

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.core.widget import Widget
from repro.machine.cpu import Machine
from repro.profiling.profile import PerformanceProfile
from repro.rng import Xoshiro256
from repro.widgetgen.generator import WidgetGenerator
from repro.widgetgen.params import GeneratorParams


class WidgetPool:
    """A fixed, deterministically constructed widget pool."""

    def __init__(
        self,
        profile: PerformanceProfile,
        params: GeneratorParams | None = None,
        pool_size: int = 64,
        pool_tag: bytes = b"hashcore-pool-v1",
    ) -> None:
        if pool_size < 2:
            raise GenerationError("pool needs at least 2 widgets")
        self.pool_tag = pool_tag
        self.generator = WidgetGenerator(profile, params)
        self.widgets: list["Widget"] = []
        self._selections = 0
        for index in range(pool_size):
            member_seed = HashSeed(
                hashlib.sha256(pool_tag + struct.pack("<I", index)).digest()
            )
            self.widgets.append(self.generator.widget(member_seed))

    def __len__(self) -> int:
        return len(self.widgets)

    def storage_bytes(self) -> int:
        """Total encoded size of the pool — the §VI-A storage cost."""
        return sum(widget.code_bytes() for widget in self.widgets)

    def select(self, seed: HashSeed, count: int = 1) -> list["Widget"]:
        """The ordered widget subset a hash seed selects.

        Selection is sampling *without replacement* driven by a PRNG seeded
        from the full 256 bits of the hash seed, so all pool members are
        reachable and the order matters (the paper's "ordered set").
        """
        if not 1 <= count <= len(self.widgets):
            raise GenerationError(
                f"count must be in [1, {len(self.widgets)}], got {count}"
            )
        self._selections += 1
        state = int.from_bytes(seed.raw[:8], "little") ^ int.from_bytes(
            seed.raw[8:16], "little"
        )
        rng = Xoshiro256(state)
        indices = list(range(len(self.widgets)))
        chosen = []
        for _ in range(count):
            pick = rng.next_u64() % len(indices)
            chosen.append(indices.pop(pick))
        return [self.widgets[i] for i in chosen]

    def fingerprint(self) -> str:
        """Pool identity: hash over member fingerprints (consensus check)."""
        acc = hashlib.sha256()
        for widget in self.widgets:
            acc.update(bytes.fromhex(widget.fingerprint()))
        return acc.hexdigest()

    def cache_stats(self) -> dict:
        """Selection count plus aggregated decode-tier counters over every
        member program — how warm the pool's compiled caches are (the
        quantity persistent mining workers preserve across chunks)."""
        programs = {
            "code_builds": 0, "code_hits": 0,
            "fast_builds": 0, "fast_hits": 0,
            "jit_builds": 0, "jit_hits": 0,
        }
        fast_ready = jit_ready = 0
        for widget in self.widgets:
            stats = widget.program.cache_stats()
            for key in programs:
                programs[key] += stats[key]
            fast_ready += stats["fast_ready"]
            jit_ready += stats["jit_ready"]
        return {
            "widgets": len(self.widgets),
            "selections": self._selections,
            "fast_ready": fast_ready,
            "jit_ready": jit_ready,
            "programs": programs,
        }


class SelectionHashCore:
    """HashCore with widget *selection* instead of generation (§VI-A).

    ``H(x) = G(s || W_{i1}(s-memory) || ... || W_{ik}(...))`` where the
    gate output ``s`` selects ``widgets_per_hash`` pool members.  Execution
    memory still derives from each selected widget's own plan, so outputs
    stay deterministic.  Implements the :class:`~repro.core.pow.PowFunction`
    protocol, so it drops into the miner/chain like any other PoW.
    """

    name = "hashcore-select"

    def __init__(
        self,
        pool: WidgetPool,
        machine: Machine | None = None,
        widgets_per_hash: int = 1,
        gate=None,
        mode: str = "auto",
    ) -> None:
        from repro.core.hash_gate import HashGate
        from repro.machine.cpu import resolve_mode

        self.pool = pool
        self.machine = machine or Machine()
        self.widgets_per_hash = widgets_per_hash
        self.gate = gate or HashGate()
        self.mode = resolve_mode(mode, ValueError)

    def seed_of(self, data: bytes) -> HashSeed:
        return HashSeed(self.gate(data))

    def hash(self, data: bytes) -> bytes:
        seed = self.seed_of(data)
        parts = [seed.raw]
        for widget in self.pool.select(seed, self.widgets_per_hash):
            parts.append(widget.execute(self.machine, mode=self.mode).output)
        return self.gate(b"".join(parts))

    def verify(self, data: bytes, digest: bytes) -> bool:
        """Verification is recomputation, as for generated HashCore."""
        return self.hash(data) == digest

    def cache_stats(self) -> dict:
        """The underlying pool's cache statistics (see
        :meth:`WidgetPool.cache_stats`)."""
        return self.pool.cache_stats()
