"""Widget intermediate representation.

A widget is an outer loop over a sequence of *blocks*.  Each block has:

* ``pre`` tokens that always execute (PRNG advances, pointer bumps),
* an optional :class:`GuardSpec` — a seed-data-dependent conditional branch
  that decides whether the block body runs this iteration,
* ``body`` tokens (the profiled instruction mix).

Consecutive blocks may be wrapped in an inner counted loop
(:class:`LoopSpec`).  Tokens are concrete — the generator performs register
allocation — except that memory operands name symbolic *regions* resolved
by the code generator against the widget's :class:`~repro.widgetgen.memstream.MemoryPlan`.

Token grammar (tuples, first element is the kind):

=============== ====================================================
``("ins", op, a, b, c, imm)``  one concrete ALU/FP/vector instruction
``("load", region, dst, off)`` integer load from ``region`` pointer
``("dload", region, dst, src)`` integer load at data-dependent address
``("fload", region, dst, off)`` FP load
``("store", region, src, off)`` integer store
``("fstore", region, src, off)`` FP store
``("vload", region, vreg, off)`` vector load
``("vstore", region, vreg, off)`` vector store
``("chase",)``                 pointer-chasing load ``r5 = mem[r5]``
``("bump", region, stride)``   advance a region pointer (add + mask)
``("prng",)``                  xorshift64 advance of the widget PRNG
=============== ====================================================

``region`` is ``"hot"`` or ``"cold"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.isa.opcodes import OpClass, opcode_class
from repro.widgetgen.memstream import MemoryPlan

Token = tuple

#: Dynamic instruction cost of each token kind (instructions retired).
_TOKEN_COST = {
    "ins": 1,
    "load": 1,
    "dload": 2,  # address mask + load
    "fload": 1,
    "store": 1,
    "fstore": 1,
    "vload": 1,
    "vstore": 1,
    "chase": 1,
    "bump": 2,  # add + and
    "prng": 6,  # three shift+xor pairs
}

#: Op-class contribution of each token kind (class -> count).
_TOKEN_CLASSES = {
    "load": {OpClass.LOAD: 1},
    "dload": {OpClass.INT_ALU: 1, OpClass.LOAD: 1},
    "fload": {OpClass.LOAD: 1},
    "store": {OpClass.STORE: 1},
    "fstore": {OpClass.STORE: 1},
    "vload": {OpClass.VECTOR: 1},
    "vstore": {OpClass.VECTOR: 1},
    "chase": {OpClass.LOAD: 1},
    "bump": {OpClass.INT_ALU: 2},
    "prng": {OpClass.INT_ALU: 6},
}


def token_cost(token: Token) -> int:
    """Dynamic instructions contributed by one token."""
    try:
        return _TOKEN_COST[token[0]]
    except KeyError:
        raise GenerationError(f"unknown token kind {token[0]!r}") from None


def token_classes(token: Token) -> dict[OpClass, int]:
    """Op-class counts contributed by one token."""
    kind = token[0]
    if kind == "ins":
        return {opcode_class(token[1]): 1}
    try:
        return _TOKEN_CLASSES[kind]
    except KeyError:
        raise GenerationError(f"unknown token kind {kind!r}") from None


@dataclass(frozen=True, slots=True)
class GuardSpec:
    """A seed-data-dependent conditional guard.

    The guard tests the full 64-bit value ``prng XOR r[mix_reg]`` against a
    preloaded 64-bit threshold register; the block body executes with
    probability ``exec_p``.  ``threshold`` names the register (``"hi"`` or
    ``"mid"``) and ``invert`` selects the comparison direction:

    * ``("hi", False)``: execute when test <  hi  → exec_p ≈ hi threshold
    * ``("hi", True)``:  execute when test >= hi  → exec_p ≈ 1 - that
    * ``("mid", ...)``:  the ~50/50 variants.

    The tested value is ``prng XOR r[mix_reg]``: XOR with the uniform PRNG
    keeps the test bits uniform whatever the data register holds, while
    making the branch *resolve late* (it waits on the dataflow feeding
    ``mix_reg``), matching how real workloads' branches depend on loaded
    data.

    The *branch* emitted by the code generator is the inverse (it skips the
    body), so its taken-probability is ``1 - exec_p``.
    """

    exec_p: float
    threshold: str
    invert: bool
    mix_reg: int = 6

    def __post_init__(self) -> None:
        if not 0.0 < self.exec_p < 1.0:
            raise GenerationError(f"guard exec_p {self.exec_p} out of (0, 1)")
        if self.threshold not in ("hi", "mid"):
            raise GenerationError(f"unknown threshold {self.threshold!r}")


@dataclass(slots=True)
class BlockSpec:
    """One widget basic block."""

    pre: list[Token] = field(default_factory=list)
    guard: GuardSpec | None = None
    body: list[Token] = field(default_factory=list)

    def expected_cost(self) -> float:
        """Expected dynamic instructions per execution of this block."""
        cost = float(sum(token_cost(t) for t in self.pre))
        if self.guard is not None:
            cost += 2.0  # mix xor + branch
            cost += self.guard.exec_p * sum(token_cost(t) for t in self.body)
        else:
            cost += sum(token_cost(t) for t in self.body)
        return cost

    def expected_classes(self) -> dict[OpClass, float]:
        """Expected per-execution op-class counts."""
        out: dict[OpClass, float] = {cls: 0.0 for cls in OpClass}
        for token in self.pre:
            for cls, count in token_classes(token).items():
                out[cls] += count
        scale = 1.0
        if self.guard is not None:
            out[OpClass.INT_ALU] += 1.0  # test mix xor
            out[OpClass.BRANCH] += 1.0
            scale = self.guard.exec_p
        for token in self.body:
            for cls, count in token_classes(token).items():
                out[cls] += scale * count
        return out


@dataclass(frozen=True, slots=True)
class LoopSpec:
    """Inner counted loop over blocks ``start..end`` (inclusive)."""

    start: int
    end: int
    trips: int

    def __post_init__(self) -> None:
        if self.start > self.end:
            raise GenerationError(f"empty loop range [{self.start}, {self.end}]")
        if self.trips < 1:
            raise GenerationError(f"loop trips must be >= 1, got {self.trips}")


@dataclass(slots=True)
class WidgetSpec:
    """Complete widget description, ready for code generation."""

    name: str
    seed_hex: str
    blocks: list[BlockSpec]
    loops: list[LoopSpec]
    outer_trips: int
    plan: MemoryPlan
    snapshot_interval: int
    #: Generator bookkeeping: targets and expectations (consumed by tests
    #: and the mix-noise experiment, E5).
    meta: dict = field(default_factory=dict)

    def validate(self) -> None:
        """Check structural invariants (loop ranges sorted and disjoint)."""
        if not self.blocks:
            raise GenerationError("widget has no blocks")
        if self.outer_trips < 1:
            raise GenerationError("outer_trips must be >= 1")
        last_end = -1
        for loop in sorted(self.loops, key=lambda l: l.start):
            if loop.start <= last_end:
                raise GenerationError("inner loops overlap")
            if loop.end >= len(self.blocks):
                raise GenerationError("loop range exceeds block count")
            last_end = loop.end

    # ------------------------------------------------------------------
    def block_repetitions(self) -> list[int]:
        """Executions of each block per outer iteration."""
        reps = [1] * len(self.blocks)
        for loop in self.loops:
            for index in range(loop.start, loop.end + 1):
                reps[index] = loop.trips
        return reps

    def expected_iteration_cost(self) -> float:
        """Expected dynamic instructions per outer-loop iteration."""
        reps = self.block_repetitions()
        cost = 0.0
        for index, block in enumerate(self.blocks):
            cost += reps[index] * block.expected_cost()
        for loop in self.loops:
            cost += loop.trips  # LOOPNZ executions
            cost += 1  # loop-counter MOVI
        cost += 1  # outer LOOPNZ
        return cost

    def expected_instructions(self) -> float:
        """Expected total dynamic instructions for the whole widget."""
        return self.outer_trips * self.expected_iteration_cost()

    def expected_class_mix(self) -> dict[OpClass, float]:
        """Expected dynamic op-class fractions for the whole widget."""
        reps = self.block_repetitions()
        totals: dict[OpClass, float] = {cls: 0.0 for cls in OpClass}
        for index, block in enumerate(self.blocks):
            for cls, count in block.expected_classes().items():
                totals[cls] += reps[index] * count
        for loop in self.loops:
            totals[OpClass.BRANCH] += loop.trips
            totals[OpClass.INT_ALU] += 1
        totals[OpClass.BRANCH] += 1
        grand = sum(totals.values()) or 1.0
        return {cls: value / grand for cls, value in totals.items()}

    # ------------------------------------------------------------------
    # serialisation (pool persistence, debugging, cross-node shipping)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able representation; :meth:`from_dict` round-trips it."""
        return {
            "schema": 1,
            "name": self.name,
            "seed_hex": self.seed_hex,
            "outer_trips": self.outer_trips,
            "snapshot_interval": self.snapshot_interval,
            "meta": dict(self.meta),
            "plan": {
                "hot_words": self.plan.hot_words,
                "cold_words": self.plan.cold_words,
                "ring_words": self.plan.ring_words,
                "p_cold": self.plan.p_cold,
                "p_ring": self.plan.p_ring,
                "fill_seed": self.plan.fill_seed,
            },
            "loops": [
                {"start": l.start, "end": l.end, "trips": l.trips}
                for l in self.loops
            ],
            "blocks": [
                {
                    "pre": [list(t) for t in block.pre],
                    "guard": None
                    if block.guard is None
                    else {
                        "exec_p": block.guard.exec_p,
                        "threshold": block.guard.threshold,
                        "invert": block.guard.invert,
                        "mix_reg": block.guard.mix_reg,
                    },
                    "body": [list(t) for t in block.body],
                }
                for block in self.blocks
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WidgetSpec":
        if data.get("schema") != 1:
            raise GenerationError(f"unsupported spec schema {data.get('schema')!r}")
        plan = MemoryPlan(**data["plan"])
        blocks = []
        for raw in data["blocks"]:
            guard = None if raw["guard"] is None else GuardSpec(**raw["guard"])
            blocks.append(
                BlockSpec(
                    pre=[tuple(t) for t in raw["pre"]],
                    guard=guard,
                    body=[tuple(t) for t in raw["body"]],
                )
            )
        spec = cls(
            name=data["name"],
            seed_hex=data["seed_hex"],
            blocks=blocks,
            loops=[LoopSpec(**l) for l in data["loops"]],
            outer_trips=data["outer_trips"],
            plan=plan,
            snapshot_interval=data["snapshot_interval"],
            meta=dict(data["meta"]),
        )
        spec.validate()
        return spec

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WidgetSpec":
        import json

        return cls.from_dict(json.loads(text))
