"""HashCore reproduction: PoW functions for general purpose processors.

A full implementation of *HashCore: Proof-of-Work Functions for General
Purpose Processors* (Georghiades, Flolid, Vishwanath — ICDCS 2019) plus
every substrate its evaluation depends on:

* :mod:`repro.core` — HashCore itself: hash gates, the Table I hash seed,
  widgets, ``H(x) = G(s || W(s))``, PoW target arithmetic.
* :mod:`repro.isa` / :mod:`repro.machine` — the synthetic x86-like ISA and
  the microarchitectural simulator standing in for the paper's Xeon.
* :mod:`repro.workloads` / :mod:`repro.profiling` — the SPEC-like reference
  suite (Leela et al.) and the PerfProx-style profiler.
* :mod:`repro.widgetgen` — inverted benchmarking: seed + profile → widget.
* :mod:`repro.blockchain` — headers, difficulty, chain, miner, network sim.
* :mod:`repro.baselines` — SHA-256d, scrypt-like, Equihash-like,
  RandomX-like competitor PoW functions.
* :mod:`repro.asicmodel` — the ASIC-advantage economics model.
* :mod:`repro.analysis` — stats, reporting, and the machine-checked
  Theorem 1 reduction.

Quickstart::

    from repro import HashCore
    hc = HashCore()
    digest = hc.hash(b"block header bytes")
    assert hc.verify(b"block header bytes", digest)
"""

from repro.core import (
    HashCore,
    RotatingHashCore,
    HashCoreTrace,
    HashGate,
    HashSeed,
    SeedField,
    Widget,
    WidgetResult,
    hash_gate,
    meets_target,
    difficulty_to_target,
    target_to_difficulty,
)
from repro.core.default_profile import default_profile
from repro.core.suite_profiles import suite_profiles
from repro.machine import Machine, MachineConfig
from repro.machine.config import ivy_bridge, mobile_arm, modern_desktop, preset, scalar_inorder
from repro.profiling import PerformanceProfile, profile_program, profile_workload
from repro.widgetgen import GeneratorParams, SelectionHashCore, WidgetGenerator, WidgetPool
from repro.workloads import SUITE, get_workload
from repro.blockchain import Block, BlockHeader, Blockchain, mine_block, simulate_network
from repro.baselines import EquihashLike, RandomXLike, ScryptLike, Sha256d
from repro.asicmodel import AsicModel, PowTraits, utilization_from_counters
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "HashCore",
    "HashCoreTrace",
    "HashGate",
    "HashSeed",
    "SeedField",
    "Widget",
    "WidgetResult",
    "hash_gate",
    "meets_target",
    "difficulty_to_target",
    "target_to_difficulty",
    "default_profile",
    "suite_profiles",
    "Machine",
    "MachineConfig",
    "ivy_bridge",
    "mobile_arm",
    "scalar_inorder",
    "modern_desktop",
    "preset",
    "PerformanceProfile",
    "profile_program",
    "profile_workload",
    "GeneratorParams",
    "WidgetGenerator",
    "WidgetPool",
    "SelectionHashCore",
    "RotatingHashCore",
    "SUITE",
    "get_workload",
    "Block",
    "BlockHeader",
    "Blockchain",
    "mine_block",
    "simulate_network",
    "Sha256d",
    "ScryptLike",
    "EquihashLike",
    "RandomXLike",
    "AsicModel",
    "PowTraits",
    "utilization_from_counters",
    "ReproError",
    "__version__",
]
