"""Workload profiling — the front half of the PerfProx pipeline (§IV-B).

PerfProx profiles a workload "on a variety of performance metrics such as
instruction mix, branch behavior, memory access patterns, and data
dependencies" and then synthesises a proxy matching that profile.  This
subpackage produces exactly that profile from a run of a reference workload
on the simulated machine; :mod:`repro.widgetgen` is the back half that
consumes it.
"""

from repro.profiling.profile import PerformanceProfile
from repro.profiling.profiler import profile_program, profile_workload

__all__ = ["PerformanceProfile", "profile_program", "profile_workload"]
