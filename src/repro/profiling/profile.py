"""The performance profile a widget generator targets.

This is the reproduction's version of the PerfProx performance profile: the
statistics that characterise *how* a workload exercises the machine, without
retaining any of its code.  Widgets generated from a profile match the
workload at this level (Figures 2 and 3 of the paper), which is the whole
point of inverted benchmarking: the GPP was optimised for programs shaped
like this, so programs generated to this shape run optimally on the GPP.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import ProfileError
from repro.isa.opcodes import OpClass
from repro.machine.perf_counters import DEP_BUCKETS, STRIDE_BUCKETS, PerfCounters

#: Instruction-mix keys, in OpClass order.
MIX_KEYS = tuple(cls.name.lower() for cls in OpClass)

_SCHEMA_VERSION = 1


@dataclass(slots=True)
class PerformanceProfile:
    """Statistical execution profile of one workload on one machine."""

    name: str
    machine: str
    dynamic_instructions: int
    #: Fractions summing to ~1.0, keyed by op-class name (see MIX_KEYS).
    instruction_mix: dict[str, float]
    branch_taken_rate: float
    branch_accuracy: float
    biased_branch_fraction: float
    #: Normalised histogram over DEP_BUCKETS (+ overflow bucket).
    dep_distance_hist: list[float]
    #: Normalised histogram over STRIDE_BUCKETS (+ overflow bucket).
    stride_hist: list[float]
    block_size_mean: float
    working_set_bytes: int
    l1_hit_rate: float
    ipc: float
    extras: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ProfileError` on malformed or inconsistent data."""
        if self.dynamic_instructions <= 0:
            raise ProfileError(f"{self.name}: no dynamic instructions")
        missing = [k for k in MIX_KEYS if k not in self.instruction_mix]
        if missing:
            raise ProfileError(f"{self.name}: mix missing classes {missing}")
        total = sum(self.instruction_mix.values())
        if not math.isclose(total, 1.0, abs_tol=1e-6):
            raise ProfileError(f"{self.name}: mix sums to {total}, expected 1.0")
        for key, value in self.instruction_mix.items():
            if not 0.0 <= value <= 1.0:
                raise ProfileError(f"{self.name}: mix[{key}]={value} out of range")
        for label, value in (
            ("branch_taken_rate", self.branch_taken_rate),
            ("branch_accuracy", self.branch_accuracy),
            ("biased_branch_fraction", self.biased_branch_fraction),
            ("l1_hit_rate", self.l1_hit_rate),
        ):
            if not 0.0 <= value <= 1.0:
                raise ProfileError(f"{self.name}: {label}={value} out of range")
        for label, hist, size in (
            ("dep_distance_hist", self.dep_distance_hist, len(DEP_BUCKETS) + 1),
            ("stride_hist", self.stride_hist, len(STRIDE_BUCKETS) + 1),
        ):
            if len(hist) != size:
                raise ProfileError(
                    f"{self.name}: {label} has {len(hist)} buckets, expected {size}"
                )
            hist_total = sum(hist)
            if hist and hist_total > 0 and not math.isclose(hist_total, 1.0, abs_tol=1e-6):
                raise ProfileError(f"{self.name}: {label} sums to {hist_total}")
        if self.block_size_mean <= 0:
            raise ProfileError(f"{self.name}: non-positive block size mean")
        if self.working_set_bytes < 0:
            raise ProfileError(f"{self.name}: negative working set")
        if self.ipc < 0:
            raise ProfileError(f"{self.name}: negative IPC")

    def mix_fraction(self, cls: OpClass) -> float:
        """Mix fraction for one op class."""
        return self.instruction_mix[cls.name.lower()]

    # ------------------------------------------------------------------
    # serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": _SCHEMA_VERSION,
            "name": self.name,
            "machine": self.machine,
            "dynamic_instructions": self.dynamic_instructions,
            "instruction_mix": dict(self.instruction_mix),
            "branch_taken_rate": self.branch_taken_rate,
            "branch_accuracy": self.branch_accuracy,
            "biased_branch_fraction": self.biased_branch_fraction,
            "dep_distance_hist": list(self.dep_distance_hist),
            "stride_hist": list(self.stride_hist),
            "block_size_mean": self.block_size_mean,
            "working_set_bytes": self.working_set_bytes,
            "l1_hit_rate": self.l1_hit_rate,
            "ipc": self.ipc,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PerformanceProfile":
        if data.get("schema") != _SCHEMA_VERSION:
            raise ProfileError(f"unsupported profile schema {data.get('schema')!r}")
        profile = cls(
            name=data["name"],
            machine=data["machine"],
            dynamic_instructions=data["dynamic_instructions"],
            instruction_mix=dict(data["instruction_mix"]),
            branch_taken_rate=data["branch_taken_rate"],
            branch_accuracy=data["branch_accuracy"],
            biased_branch_fraction=data["biased_branch_fraction"],
            dep_distance_hist=list(data["dep_distance_hist"]),
            stride_hist=list(data["stride_hist"]),
            block_size_mean=data["block_size_mean"],
            working_set_bytes=data["working_set_bytes"],
            l1_hit_rate=data["l1_hit_rate"],
            ipc=data["ipc"],
            extras=dict(data.get("extras", {})),
        )
        profile.validate()
        return profile

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PerformanceProfile":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    @classmethod
    def from_counters(
        cls, name: str, machine: str, counters: PerfCounters
    ) -> "PerformanceProfile":
        """Build a profile from the detailed counters of one run."""
        if counters.retired <= 0:
            raise ProfileError(f"{name}: empty run")
        mix = counters.mix_fractions()
        dep_total = sum(counters.dep_distance_hist) or 1
        stride_total = sum(counters.stride_hist) or 1
        blocks = counters.block_sizes
        block_mean = sum(blocks) / len(blocks) if blocks else 1.0
        # Sub-class opcode shares: long-latency ops dominate dependency
        # chains, so the generator needs their share, not just the class mix.
        from repro.isa.opcodes import Opcode  # local import avoids a cycle

        oc = counters.opcode_counts
        int_mul_total = counters.class_counts[OpClass.INT_MUL] or 1
        fp_total = counters.class_counts[OpClass.FP_ALU] or 1
        extras = {
            "div_share": (oc[Opcode.DIV] + oc[Opcode.MOD]) / int_mul_total,
            "fdiv_share": oc[Opcode.FDIV] / fp_total,
        }
        profile = cls(
            name=name,
            machine=machine,
            dynamic_instructions=counters.retired,
            instruction_mix=mix,
            branch_taken_rate=counters.taken_rate,
            branch_accuracy=counters.branch_accuracy,
            biased_branch_fraction=counters.biased_branch_fraction(),
            dep_distance_hist=[h / dep_total for h in counters.dep_distance_hist],
            stride_hist=[h / stride_total for h in counters.stride_hist],
            block_size_mean=block_mean,
            working_set_bytes=counters.working_set_bytes,
            l1_hit_rate=counters.l1_hit_rate,
            ipc=counters.ipc,
            extras=extras,
        )
        profile.validate()
        return profile
