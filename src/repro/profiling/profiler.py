"""Run a workload with detailed counters and extract its profile."""

from __future__ import annotations

from repro.isa.program import Program
from repro.machine.cpu import Machine
from repro.machine.memory import Memory
from repro.profiling.profile import PerformanceProfile
from repro.workloads.base import Workload


def profile_workload(
    workload: Workload,
    machine: Machine | None = None,
    scale: int = 1,
) -> PerformanceProfile:
    """Profile ``workload`` on ``machine`` (default: the Ivy-Bridge-like
    reference platform), as the paper profiles Leela on its Xeon (§V).
    """
    machine = machine or Machine()
    image = workload.build(scale=scale)
    result = image.run(machine, collect_detail=True)
    return PerformanceProfile.from_counters(
        name=workload.name, machine=machine.config.name, counters=result.counters
    )


def profile_program(
    program: Program,
    machine: Machine | None = None,
    memory: Memory | None = None,
    *,
    name: str | None = None,
    max_instructions: int = 10_000_000,
) -> PerformanceProfile:
    """Profile an arbitrary program (used to profile widgets themselves)."""
    machine = machine or Machine()
    result = machine.run(
        program,
        memory,
        max_instructions=max_instructions,
        collect_detail=True,
    )
    return PerformanceProfile.from_counters(
        name=name or program.name,
        machine=machine.config.name,
        counters=result.counters,
    )
