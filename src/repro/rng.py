"""Deterministic pseudo-random number generators.

HashCore's security story requires that widget generation is a pure function
of the 256-bit hash seed: every miner and every verifier must derive the
exact same widget from the same seed.  We therefore avoid Python's global
``random`` module and use explicit, tiny, well-specified generators whose
output is identical on every platform and Python version.

Two primitives are provided:

* :func:`splitmix64` — a one-shot 64-bit mixer used to expand seed material.
* :class:`Xoshiro256` — the xoshiro256** generator (Blackman & Vigna), a
  high-quality non-cryptographic PRNG with a 256-bit state, used for all
  widget-generation randomness.  Its statistical quality does not matter for
  security (the hash gates provide that, see Theorem 1 in the paper); it only
  needs to be deterministic and well distributed.
"""

from __future__ import annotations

from typing import Sequence

MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """Advance-and-mix step of SplitMix64; returns the next 64-bit output."""
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & MASK64
    return (z ^ (z >> 31)) & MASK64


def _rotl(x: int, k: int) -> int:
    return ((x << k) | (x >> (64 - k))) & MASK64


class Xoshiro256:
    """xoshiro256** 1.0 — deterministic 64-bit PRNG with 256-bit state.

    The state is seeded from an arbitrary integer via SplitMix64 as the
    reference implementation recommends, so any 64-bit (or smaller) seed
    yields a fully mixed initial state.
    """

    __slots__ = ("_s0", "_s1", "_s2", "_s3")

    def __init__(self, seed: int) -> None:
        x = seed & MASK64
        x = (x + 0x9E3779B97F4A7C15) & MASK64
        self._s0 = splitmix64(x)
        x = (x + 0x9E3779B97F4A7C15) & MASK64
        self._s1 = splitmix64(x)
        x = (x + 0x9E3779B97F4A7C15) & MASK64
        self._s2 = splitmix64(x)
        x = (x + 0x9E3779B97F4A7C15) & MASK64
        self._s3 = splitmix64(x)

    def next_u64(self) -> int:
        """Return the next 64-bit output."""
        s0, s1, s2, s3 = self._s0, self._s1, self._s2, self._s3
        result = (_rotl((s1 * 5) & MASK64, 7) * 9) & MASK64
        t = (s1 << 17) & MASK64
        s2 ^= s0
        s3 ^= s1
        s1 ^= s2
        s0 ^= s3
        s2 ^= t
        s3 = _rotl(s3, 45)
        self._s0, self._s1, self._s2, self._s3 = s0, s1, s2, s3
        return result

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive (rejection-free modulo).

        The slight modulo bias is irrelevant for widget generation and is
        accepted in exchange for speed and simplicity.
        """
        if hi < lo:
            raise ValueError(f"empty range [{lo}, {hi}]")
        span = hi - lo + 1
        return lo + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def choice(self, seq: Sequence):
        """Uniformly choose one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.next_u64() % len(seq)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.next_u64() % (i + 1)
            items[i], items[j] = items[j], items[i]

    def sample_weighted(self, weights: Sequence[float]) -> int:
        """Return an index drawn proportionally to ``weights``.

        Raises :class:`ValueError` when the total weight is not positive.
        """
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        r = self.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if r < acc:
                return i
        return len(weights) - 1

    def getstate(self) -> tuple[int, int, int, int]:
        """Return the internal 256-bit state (for tests and checkpointing)."""
        return (self._s0, self._s1, self._s2, self._s3)
