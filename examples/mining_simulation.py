#!/usr/bin/env python3
"""Mining with HashCore: a real validated chain, then a network study.

Part 1 mines a short blockchain where every PoW attempt genuinely
generates, compiles and executes a widget (tiny difficulty so it finishes
in seconds), with full consensus validation of every block.

Part 2 runs the statistical network simulator over a long horizon to show
the properties the paper motivates (§I, §III): difficulty tracks hashing
power through the retarget rule, and revenue shares are proportional to
hashrate — the "equal hardware, equal opportunity" ideal HashCore aims at.

Run:  python examples/mining_simulation.py
"""

from __future__ import annotations

import time

from repro import Block, Blockchain, HashCore, mine_block, simulate_network
from repro.blockchain.difficulty import RetargetSchedule
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.widgetgen.params import GeneratorParams


def real_mining() -> None:
    print("=== Part 1: real HashCore mining (difficulty 4) ===")
    params = GeneratorParams(target_instructions=5000, snapshot_interval=250)
    hashcore = HashCore(params=params)
    bits = target_to_compact(difficulty_to_target(4.0))
    chain = Blockchain(hashcore, genesis_bits=bits,
                       schedule=RetargetSchedule(interval=1000))

    for height in range(1, 4):
        transactions = [f"coinbase height={height}".encode(), b"alice->bob: 5"]
        block = Block.build(
            prev_hash=chain.tip_id,
            transactions=transactions,
            timestamp=30 * height,
            bits=chain.expected_bits(chain.tip_id),
        )
        start = time.perf_counter()
        mined = mine_block(block, hashcore, max_attempts=400)
        elapsed = time.perf_counter() - start
        chain.add_block(mined.block)  # full consensus validation (re-runs PoW)
        print(
            f"  height {height}: nonce={mined.block.header.nonce} "
            f"attempts={mined.attempts} ({elapsed:.1f}s, each attempt runs a widget) "
            f"digest={mined.digest.hex()[:16]}…"
        )
    print(f"  chain height {chain.height()}, total work {chain.total_work():.0f}\n")


def network_study() -> None:
    print("=== Part 2: network simulation (Poisson model, real retarget rule) ===")
    schedule = RetargetSchedule(block_time=30.0, interval=16)

    def hashrates(now: float, height: int):
        # Three mining operations; a fourth joins after block 500.
        base = [120.0, 60.0, 20.0]
        return base + ([100.0] if height > 500 else [0.0])

    result = simulate_network(
        hashrates, 1500, schedule, initial_difficulty=6000.0, seed=2026
    )
    early = sum(result.difficulties[300:500]) / 200
    late = sum(result.difficulties[-200:]) / 200
    steady = result.block_times[-300:]
    shares = result.miner_shares(4)

    print(f"  blocks simulated      : {len(result.block_times)}")
    print(f"  difficulty pre-join   : {early:,.0f}")
    print(f"  difficulty post-join  : {late:,.0f}  "
          f"(hashrate x{(120+60+20+100)/(120+60+20):.2f} -> difficulty x{late/early:.2f})")
    print(f"  steady-state blocktime: {sum(steady)/len(steady):.1f}s (target 30s)")
    print("  revenue shares        :",
          ", ".join(f"miner{i}={s:.2%}" for i, s in enumerate(shares)))
    print("  (proportional to contributed hashrate — no hardware moat)")


if __name__ == "__main__":
    real_mining()
    network_study()
