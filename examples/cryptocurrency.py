#!/usr/bin/env python3
"""A complete miniature cryptocurrency on HashCore.

The full stack in one script: hash-ladder Lamport wallets sign
transactions, a fee-priority mempool assembles a block, HashCore (real
widget execution per attempt) mines it, the validating chain accepts it,
and the account ledger applies it — the "all other functionality of the
blockchain remains unchanged" claim of §I, demonstrated end to end.

Run:  python examples/cryptocurrency.py
"""

from __future__ import annotations

import hashlib
import time

from repro import HashCore
from repro.blockchain import (
    BLOCK_REWARD,
    Block,
    Blockchain,
    Ledger,
    Mempool,
    Transaction,
    Wallet,
    mine_block,
)
from repro.blockchain.difficulty import RetargetSchedule
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.widgetgen.params import GeneratorParams


def wallet(name: str) -> Wallet:
    return Wallet(hashlib.sha256(f"demo-{name}".encode()).digest())


def main() -> None:
    alice, bob, carol, miner = (wallet(n) for n in ("alice", "bob", "carol", "miner"))

    # Genesis: allocate coins and start a HashCore-secured chain.
    ledger = Ledger()
    ledger.register(alice.address, 1_000)
    ledger.register(bob.address, 500)
    hashcore = HashCore(
        params=GeneratorParams(target_instructions=5000, snapshot_interval=250)
    )
    chain = Blockchain(
        hashcore,
        genesis_bits=target_to_compact(difficulty_to_target(4.0)),
        schedule=RetargetSchedule(interval=10_000),
    )
    pool = Mempool(ledger)
    print("genesis balances:",
          {"alice": 1000, "bob": 500, "carol": 0, "miner": 0})

    # Users broadcast signed transactions (one-time Lamport keys).
    pool.add(Transaction.create(alice, bob.address, amount=250, fee=8, nonce=0))
    pool.add(Transaction.create(alice, carol.address, amount=100, fee=3, nonce=1))
    pool.add(Transaction.create(bob, carol.address, amount=50, fee=5, nonce=0))
    print(f"mempool: {len(pool)} signed transactions "
          f"({Transaction.create.__qualname__} uses hash-ladder Lamport keys)")

    # The miner assembles a block by fee priority and mines it with
    # HashCore — every nonce attempt generates + executes a widget.
    selected = pool.select(max_transactions=10)
    block = Block.build(
        prev_hash=chain.tip_id,
        transactions=[tx.serialize() for tx in selected],
        timestamp=30,
        bits=chain.expected_bits(chain.tip_id),
    )
    start = time.perf_counter()
    mined = mine_block(block, hashcore, max_attempts=400)
    elapsed = time.perf_counter() - start
    print(f"mined block: {mined.attempts} widget evaluations in {elapsed:.1f}s, "
          f"digest {mined.digest.hex()[:16]}…")

    # A validating node: PoW + merkle via the chain, signatures + balances
    # via the ledger.
    chain.add_block(mined.block)
    parsed = [Transaction.deserialize(raw) for raw in mined.block.transactions]
    reward = ledger.apply_block(parsed, miner.address)
    pool.remove_included(parsed)

    print(f"block accepted at height {chain.height()}; miner credited "
          f"{reward} ({BLOCK_REWARD} subsidy + {reward - BLOCK_REWARD} fees)")
    print("final balances:", {
        "alice": ledger.balance(alice.address),
        "bob": ledger.balance(bob.address),
        "carol": ledger.balance(carol.address),
        "miner": ledger.balance(miner.address),
    })

    # Replay protection: re-applying a confirmed transaction must fail.
    try:
        ledger.apply_transaction(parsed[0])
    except Exception as exc:  # noqa: BLE001 - demo output
        print(f"replay rejected: {exc}")


if __name__ == "__main__":
    main()
