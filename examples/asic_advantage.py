#!/usr/bin/env python3
"""ASIC-advantage comparison across PoW functions.

Quantifies the paper's motivation (§II, §III): how much better than a GPP
a purpose-built ASIC can be for each PoW function, under the best-ASIC
model (strip unused resources, resize kept ones, harden fixed dataflows).

Utilization vectors come from two sources: documented profiles for the
classical functions (SHA-256d, scrypt, Equihash), and *measured* simulator
counters for the VM-based ones (RandomX-like and HashCore itself).

Run:  python examples/asic_advantage.py
"""

from __future__ import annotations

import hashlib

from repro import (
    AsicModel,
    EquihashLike,
    HashCore,
    PowTraits,
    RandomXLike,
    ScryptLike,
    Sha256d,
    utilization_from_counters,
)
from repro.analysis.report import render_table
from repro.core.seed import HashSeed
from repro.widgetgen.params import GeneratorParams


def mean_utilization(counter_list, config):
    totals: dict[str, float] = {}
    for counters in counter_list:
        for key, value in utilization_from_counters(counters, config).items():
            totals[key] = totals.get(key, 0.0) + value
    return {k: v / len(counter_list) for k, v in totals.items()}


def main() -> None:
    model = AsicModel()

    print("measuring HashCore widget utilization (8 widgets) ...")
    hashcore = HashCore(params=GeneratorParams(target_instructions=30_000,
                                               snapshot_interval=500))
    widget_counters = []
    for i in range(8):
        seed = HashSeed(hashlib.sha256(f"asic-{i}".encode()).digest())
        widget = hashcore.widget_for(seed)
        widget_counters.append(widget.execute(hashcore.machine).counters)
    hashcore_u = mean_utilization(widget_counters, hashcore.machine.config)

    print("measuring RandomX-like utilization (3 programs) ...")
    rx = RandomXLike(program_size=128, loop_trips=32)
    rx_counters = [rx.run(bytes([i]) * 32)[1] for i in range(3)]
    rx_u = mean_utilization(rx_counters, rx.machine.config)

    entries = [
        ("sha256d (Bitcoin)", Sha256d.resource_profile(), PowTraits(True)),
        ("scrypt-like (memory-hard)", ScryptLike(n=1024).resource_profile(),
         PowTraits(True)),
        ("equihash-like (birthday)", EquihashLike().resource_profile(),
         PowTraits(True)),
        ("randomx-like (uniform VM)", rx_u, PowTraits(False)),
        ("hashcore (inverted bench)", hashcore_u,
         PowTraits(False, requires_generation=True)),
    ]
    rows = []
    for name, utilization, traits in entries:
        adv = model.advantage(name, utilization, traits)
        rows.append([name, adv.area_advantage, adv.energy_advantage,
                     f"{adv.asic_area:.0f}/129"])

    print()
    print(render_table(
        ["PoW function", "hashrate/area advantage", "hashrate/watt advantage",
         "ASIC die (rel.)"],
        rows,
        title="Best-ASIC advantage over the GPP (1.0 = the GPP *is* the ASIC)",
    ))
    print(
        "\nReading: a Bitcoin ASIC beats a CPU by ~2 orders of magnitude;\n"
        "for HashCore the hypothetical best ASIC is essentially the GPP\n"
        "itself — the paper's design goal (§I: 'a PoW function for which an\n"
        "existing general purpose processor is already an optimized ASIC')."
    )


if __name__ == "__main__":
    main()
