#!/usr/bin/env python3
"""Quickstart: compute, inspect, and verify a HashCore hash.

HashCore evaluates ``H(x) = G(s || W(s))`` with ``s = G(x)``: the input is
gated to a 256-bit seed, the seed selects a pseudo-random widget (a short
synthetic program matching the Leela performance profile), the widget runs
on the simulated GPP emitting register snapshots, and a second gate binds
seed and output into the final digest.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import HashCore


def main() -> None:
    hashcore = HashCore()  # Leela profile, Ivy-Bridge-like machine, SHA-256 gates

    payload = b"block header: prev=000000ab..., merkle=77fe..., nonce=42"
    start = time.perf_counter()
    trace = hashcore.hash_with_trace(payload)
    elapsed = time.perf_counter() - start

    print("input               :", payload.decode())
    print("hash seed (G(x))    :", trace.seed.hex)
    print("widget              :", trace.widget.name)
    print("  static code size  :", f"{trace.widget.code_bytes():,} bytes")
    print("  dynamic instrs    :", f"{trace.result.counters.retired:,}")
    print("  IPC on this GPP   :", f"{trace.result.counters.ipc:.2f}")
    print("  branch accuracy   :", f"{trace.result.counters.branch_accuracy:.3f}")
    print("  output (snapshots):", f"{trace.result.output_size:,} bytes "
          f"({trace.result.snapshots} register snapshots)")
    print("H(x)                :", trace.digest.hex())
    print(f"evaluation time     : {elapsed:.2f}s (simulated GPP; native would be ms)")

    # Verification is recomputation — any other miner derives the same
    # widget from the same seed and must reproduce the digest bit-for-bit.
    assert hashcore.verify(payload, trace.digest)
    print("verification        : OK (recomputed identically)")

    # Per Table I, the seed's eight 32-bit fields steer the generator.
    fields = trace.seed.fields()
    names = ["int ALU", "int mul", "FP ALU", "loads", "stores",
             "branch behavior", "BBV seed", "memory seed"]
    print("\nTable I seed fields:")
    for name, value in zip(names, fields):
        print(f"  {name:<16s} {value:#010x}")


if __name__ == "__main__":
    main()
