#!/usr/bin/env python3
"""Inverted benchmarking end-to-end: profile a workload, generate widgets,
compare their execution behaviour to the original — the paper's Figures 2
and 3 as a runnable script.

Steps (all live, nothing baked):
 1. run the Leela-like Go-engine workload on the simulated Ivy-Bridge GPP
    with detailed counters and extract its PerfProx-style profile;
 2. generate a widget population from random hash seeds against that
    profile (Table I noise included);
 3. execute every widget and histogram IPC and branch-prediction accuracy
    against the reference workload's values.

Run:  python examples/inverted_benchmarking.py [n_widgets]
"""

from __future__ import annotations

import hashlib
import sys

from repro import Machine, WidgetGenerator, get_workload, profile_workload
from repro.analysis.stats import ascii_histogram, gaussian_fit
from repro.core.seed import HashSeed
from repro.widgetgen.params import GeneratorParams


def main(n_widgets: int = 30) -> None:
    machine = Machine()

    print("1. profiling the Leela-like workload on the simulated GPP ...")
    profile = profile_workload(get_workload("leela"), machine)
    print(f"   IPC={profile.ipc:.3f}  branch accuracy={profile.branch_accuracy:.3f}  "
          f"taken rate={profile.branch_taken_rate:.3f}")
    print("   instruction mix:",
          {k: round(v, 3) for k, v in profile.instruction_mix.items() if v > 0.002})

    print(f"\n2. generating + executing {n_widgets} widgets from random seeds ...")
    params = GeneratorParams()  # 60k-instruction widgets
    generator = WidgetGenerator(profile, params)
    ipcs, accuracies, sizes = [], [], []
    for i in range(n_widgets):
        seed = HashSeed(hashlib.sha256(f"example-{i}".encode()).digest())
        result = generator.widget(seed).execute(machine)
        ipcs.append(result.counters.ipc)
        accuracies.append(result.counters.branch_accuracy)
        sizes.append(result.output_size)
        print(".", end="", flush=True)
    print()

    ipc_mean, ipc_std = gaussian_fit(ipcs)
    acc_mean, acc_std = gaussian_fit(accuracies)

    print("\n3. Figure 2 — IPC widget comparison")
    print(f"   widgets: mean={ipc_mean:.3f} std={ipc_std:.3f}   "
          f"Leela: {profile.ipc:.3f}  "
          f"(shift {100*(ipc_mean/profile.ipc-1):+.1f}%)")
    print(ascii_histogram(ipcs, bins=10, marker=profile.ipc, marker_label="Leela"))

    print("\n   Figure 3 — branch-prediction widget comparison")
    print(f"   widgets: mean={acc_mean:.3f} std={acc_std:.3f}   "
          f"Leela: {profile.branch_accuracy:.3f}")
    print(ascii_histogram(accuracies, bins=10, marker=profile.branch_accuracy,
                          marker_label="Leela"))

    print("\n   output sizes: "
          f"{min(sizes)/1024:.1f} .. {max(sizes)/1024:.1f} KB "
          "(paper: 20 .. 38 KB)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
