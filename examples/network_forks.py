#!/usr/bin/env python3
"""Forks, orphans and reorgs on a multi-node HashCore network.

Runs a three-node gossip network where two nodes mine concurrently during
a propagation delay, producing a live fork that work-based fork choice
later resolves — the consensus behaviour HashCore must slot into
unchanged ("All other hashing and other functionality within the
blockchain will remain unchanged", §I).

SHA-256d mining keeps the demo instant; swap ``pow_fn`` for
``HashCore(...)`` to run the identical scenario on real widgets (slower).

Run:  python examples/network_forks.py
"""

from __future__ import annotations

from repro.baselines.sha256d import Sha256d
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.node import P2PNetwork
from repro.core.pow import difficulty_to_target, target_to_compact


def show(net: P2PNetwork, label: str) -> None:
    tips = [node.tip_id().hex()[:8] for node in net.nodes]
    print(f"{label:<34s} heights={net.heights()} tips={tips} "
          f"converged={net.converged()}")


def main() -> None:
    pow_fn = Sha256d()
    net = P2PNetwork.create(
        3,
        pow_fn,
        schedule=RetargetSchedule(interval=10_000),
        genesis_bits=target_to_compact(difficulty_to_target(64.0)),
        delay=3,  # gossip takes 3 ticks — room for concurrent blocks
    )
    show(net, "genesis")

    print("\n-- node0 and node2 both mine before hearing from each other --")
    net.mine_on(0, [b"coinbase A1"], timestamp=30)
    net.mine_on(2, [b"coinbase B1"], timestamp=31, nonce_salt=10**6)
    show(net, "concurrent blocks mined")
    net.settle()
    show(net, "after gossip (equal-work fork)")

    print("\n-- node2 extends its branch; everyone reorgs onto it --")
    net.mine_on(2, [b"coinbase B2"], timestamp=60, nonce_salt=10**6)
    net.settle()
    show(net, "after extension")
    for node in net.nodes:
        print(f"  {node.name}: reorgs={node.reorgs} "
              f"blocks known={len(node.chain)} height={node.chain.height()}")

    print("\n-- steady mining converges every round --")
    for height in range(3, 7):
        net.mine_on(height % 3, [f"coinbase {height}".encode()],
                    timestamp=30 * height)
        net.settle()
    show(net, "final")
    main_chain = net.nodes[0].chain.main_chain()
    print("\nmain chain transactions:")
    for block in main_chain:
        print("  ", block.transactions[0].decode())


if __name__ == "__main__":
    main()
