#!/usr/bin/env python3
"""Chaos-testing a HashCore-style PoW network: faults as replayable data.

Builds a scenario schedule — lossy, jittery links, a two-way partition, a
node crash, and a byzantine peer forging invalid blocks — runs it through
the chaos harness, and shows the three properties the harness guarantees:

1. the schedule is *data* (it round-trips through JSON),
2. the run is *replayable* (same seed, byte-identical report),
3. consensus invariants hold throughout (no forged block ever enters a
   chain; honest nodes converge once the faults heal).

SHA-256d mining keeps the demo instant; the identical scenario runs on
real HashCore widgets by passing ``ChaosRunner(scenario, pow_fn=...)``.

Run:  python examples/chaos_scenario.py
"""

from __future__ import annotations

import json

from repro.blockchain.faults import (
    ByzantinePeer,
    Crash,
    LinkFaults,
    Partition,
    Scenario,
)
from repro.blockchain.sim import ChaosRunner


def build_scenario() -> Scenario:
    return Scenario(
        n_nodes=4,
        seed=2026,
        ticks=200,
        link=LinkFaults(delay=1, jitter=2, drop=0.10, duplicate=0.05),
        partitions=(
            # Ticks 20-50: {0,1} cannot talk to {2,3}; heals at 50.
            Partition(start=20, end=50, groups=((0, 1), (2, 3))),
        ),
        crashes=(
            # Node 3 dies at 30 (losing its orphan buffer), back at 60.
            Crash(node=3, at=30, restart_at=60),
        ),
        byzantine=(
            # One forged block every 8 ticks: bad PoW, bad merkle root,
            # self-granted easy difficulty, or a timestamp before its parent.
            ByzantinePeer(every=8),
        ),
        convergence_ticks=90,
    )


def main() -> None:
    scenario = build_scenario()

    print("-- schedules are data: JSON round-trip --")
    wire = json.dumps(scenario.to_dict(), indent=2, sort_keys=True)
    print("\n".join(wire.splitlines()[:6]) + "\n  ...")
    assert Scenario.from_dict(json.loads(wire)) == scenario
    print("round-trip OK\n")

    print("-- run the schedule --")
    report = ChaosRunner(scenario).run()
    print(f"blocks mined        : {report.blocks_mined} "
          f"(+{report.resolution_blocks} fork-resolution)")
    print(f"forged by adversary : {dict(report.forged)}")
    rejected = sum(sum(n["rejections"].values()) for n in report.nodes)
    print(f"rejected deliveries : {rejected} "
          "(every forgery refused with its reason)")
    print(f"messages            : sent={report.messages['sent']} "
          f"dropped={report.messages.get('dropped', 0)} "
          f"duplicated={report.messages.get('duplicated', 0)}")
    for node in report.nodes:
        print(f"  {node['name']}: height={node['height']} tip={node['tip']} "
              f"reorgs={node['reorgs']} crashes={node['crashes']} "
              f"rejections={node['rejections']}")
    print(f"invariants          : violations={report.violations} "
          f"converged={report.converged}")

    print("\n-- replay: one seed determines everything --")
    replay = ChaosRunner(scenario).run()
    identical = replay.to_json() == report.to_json()
    print(f"byte-identical report on replay: {identical}")
    assert identical and report.ok()


if __name__ == "__main__":
    main()
