"""Setuptools entry point.

`pip install -e .` requires the `wheel` package to build PEP 517 editable
wheels; on offline machines without it, `python setup.py develop` installs
the same editable package using only setuptools.
"""
from setuptools import setup

setup()
