"""Branch predictor unit tests."""

import pytest

from repro.errors import ConfigError
from repro.machine.branch_predictor import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GsharePredictor,
    make_predictor,
)


def accuracy(predictor, stream):
    """Run (pc, taken) pairs through predict/update; return accuracy."""
    correct = 0
    for pc, taken in stream:
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    return correct / len(stream)


class TestBimodal:
    def test_learns_heavily_biased_branch(self):
        stream = [(100, True)] * 1000
        assert accuracy(BimodalPredictor(), stream) > 0.99

    def test_learns_not_taken_bias(self):
        stream = [(100, False)] * 1000
        assert accuracy(BimodalPredictor(), stream) > 0.99

    def test_hysteresis_tolerates_rare_flips(self):
        # One flip every 20: 2-bit counters should not lose the bias.
        stream = [(7, i % 20 != 0) for i in range(2000)]
        assert accuracy(BimodalPredictor(), stream) > 0.9

    def test_cannot_learn_alternating_pattern(self):
        stream = [(7, bool(i % 2)) for i in range(2000)]
        assert accuracy(BimodalPredictor(), stream) < 0.7

    def test_distinct_pcs_use_distinct_counters(self):
        predictor = BimodalPredictor(table_bits=12)
        for _ in range(10):
            predictor.update(0, True)
            predictor.update(1, False)
        assert predictor.predict(0) is True
        assert predictor.predict(1) is False

    def test_reset_restores_initial_state(self):
        predictor = BimodalPredictor()
        for _ in range(10):
            predictor.update(3, False)
        predictor.reset()
        assert predictor.predict(3) is True  # weakly-taken initial state

    def test_bad_table_bits_rejected(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(table_bits=0)


class TestGshare:
    def test_learns_biased_branch(self):
        stream = [(100, True)] * 1000
        assert accuracy(GsharePredictor(), stream) > 0.98

    def test_learns_alternating_pattern_via_history(self):
        # Global history makes T/N/T/N predictable — bimodal cannot do this.
        stream = [(7, bool(i % 2)) for i in range(2000)]
        assert accuracy(GsharePredictor(), stream) > 0.95

    def test_learns_loop_exit_pattern(self):
        # An 8-iteration loop: 7 taken then 1 not-taken, repeating.
        stream = [(42, (i % 8) != 7) for i in range(4000)]
        assert accuracy(GsharePredictor(), stream) > 0.9

    def test_random_stream_near_chance(self):
        from repro.rng import Xoshiro256

        rng = Xoshiro256(5)
        stream = [(9, bool(rng.next_u64() & 1)) for _ in range(4000)]
        assert 0.35 < accuracy(GsharePredictor(), stream) < 0.65

    def test_history_bits_zero_behaves_like_bimodal(self):
        stream = [(7, bool(i % 2)) for i in range(2000)]
        assert accuracy(GsharePredictor(history_bits=0), stream) < 0.7

    def test_invalid_history_rejected(self):
        with pytest.raises(ConfigError):
            GsharePredictor(table_bits=8, history_bits=9)

    def test_reset_clears_history(self):
        predictor = GsharePredictor()
        for i in range(100):
            predictor.update(i, True)
        predictor.reset()
        assert predictor.predict(0) is True


class TestFactory:
    def test_make_each_kind(self):
        assert isinstance(make_predictor("gshare", 10, 8), GsharePredictor)
        assert isinstance(make_predictor("bimodal", 10, 0), BimodalPredictor)
        assert isinstance(make_predictor("always-taken", 10, 0), AlwaysTakenPredictor)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_predictor("neural", 10, 0)

    def test_always_taken_is_static(self):
        predictor = AlwaysTakenPredictor()
        predictor.update(5, False)
        assert predictor.predict(5) is True
