"""Differential and behavioural tests for the tier-2 JIT.

The JIT (:mod:`repro.machine.jit`) translates each widget program into
specialized Python source — straight-line segment functions plus compiled
loop regions — and must stay *bit-identical* to both the timed interpreter
and the tier-1 fast path on everything architectural: output bytes,
register files, memory words, snapshots, halting, retired counts, and the
exception a runaway program raises.  Any divergence would fork consensus
between JIT miners and everyone else, so the checks here are exhaustive:
generated widgets (whose programs contain the nested-loop shapes the
region compiler exists for), hypothesis-fuzzed straight-line programs,
every machine preset, and the hand-built edge cases where a compiler is
most likely to drift from an interpreter (HALT-vs-budget ordering,
snapshot windows smaller than a loop body, initial register files).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.hashcore import HashCore
from repro.errors import ExecutionError, ExecutionLimitExceeded
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.machine.config import PRESETS, preset
from repro.machine.cpu import EXECUTION_MODES, FASTEST_MODE, Machine, resolve_mode
from repro.machine.jit import compile_jit, run_jit
from repro.machine.memory import Memory

from tests.conftest import seed_of
from tests.test_differential import programs
from tests.test_fastpath import (
    _assert_same_architectural,
    _loop_forever,
    _run_widget,
    _small_machine,
    _SMALL_WORDS,
)


class TestWidgetDifferential:
    """JIT vs timed path over generated widgets (the real workload)."""

    def test_fifty_fuzzed_seeds_bit_identical(self, generator):
        machine = _small_machine()
        for i in range(50):
            widget = generator.widget(seed_of(f"jit-{i}"))
            timed, mem_t = _run_widget(widget, machine, mode="timed")
            jit, mem_j = _run_widget(widget, machine, mode="jit")
            _assert_same_architectural(
                timed, jit, mem_ref=mem_t, mem_got=mem_j
            )

    def test_three_tiers_agree(self, generator):
        machine = _small_machine()
        for i in range(10):
            widget = generator.widget(seed_of(f"jit-three-way-{i}"))
            results = {
                mode: _run_widget(widget, machine, mode=mode)
                for mode in EXECUTION_MODES
            }
            timed, mem_t = results["timed"]
            for mode in ("fast", "jit"):
                got, mem_g = results[mode]
                _assert_same_architectural(
                    timed, got, mem_ref=mem_t, mem_got=mem_g
                )

    def test_all_presets_digest_parity(self, test_params):
        data = b"jit preset parity"
        for name in sorted(PRESETS):
            jit_core = HashCore(
                machine=preset(name), params=test_params, mode="jit"
            )
            timed_core = HashCore(
                machine=preset(name), params=test_params, mode="timed"
            )
            assert jit_core.hash(data) == timed_core.hash(data), name


class TestHypothesisDifferential:
    """JIT vs timed agreement on hypothesis-fuzzed straight-line programs."""

    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_jit_matches_timed(self, instructions):
        program = Program(
            instructions=instructions + [Instruction(int(Opcode.HALT))]
        )
        program.validate()
        machine = _small_machine()

        mem_timed = Memory(_SMALL_WORDS)
        timed = machine.run(program, mem_timed, max_instructions=1000)
        mem_jit = Memory(_SMALL_WORDS)
        jit = run_jit(machine, program, mem_jit, max_instructions=1000)
        _assert_same_architectural(
            timed, jit, mem_ref=mem_timed, mem_got=mem_jit
        )


def _countdown_loop(iterations: int) -> Program:
    """MOVI n; loop { SUBI-style decrement via LOOPNZ } ; HALT."""
    return Program(instructions=[
        Instruction(int(Opcode.MOVI), 0, 0, 0, iterations),
        Instruction(int(Opcode.ADDI), 1, 1, 0, 3),
        Instruction(int(Opcode.LOOPNZ), 0, 0, 0, 1),
        Instruction(int(Opcode.HALT)),
    ])


class TestEdgeCaseParity:
    """Corners where a compiler most plausibly diverges from the spec."""

    def test_limit_exceeded_message_parity(self):
        machine = _small_machine()
        program = _loop_forever()
        messages = set()
        for mode in EXECUTION_MODES:
            with pytest.raises(ExecutionLimitExceeded) as excinfo:
                machine.run(program, max_instructions=100, mode=mode)
            messages.add(str(excinfo.value))
        assert len(messages) == 1  # identical across all three tiers

    def test_halt_does_not_consume_budget(self):
        machine = _small_machine()
        program = Program(instructions=[
            *[Instruction(int(Opcode.NOP)) for _ in range(5)],
            Instruction(int(Opcode.HALT)),
        ])
        result = machine.run(program, max_instructions=6, mode="jit")
        assert result.halted and result.counters.retired == 6
        with pytest.raises(ExecutionLimitExceeded):
            machine.run(program, max_instructions=5, mode="jit")

    def test_loop_budget_exact_boundary(self):
        # 100 iterations × 2 instructions + MOVI + HALT = 202 retirements.
        # The region guard must hand back to the driver rather than overrun
        # the budget, and the budget boundary must match the interpreter's.
        machine = _small_machine()
        program = _countdown_loop(100)
        for budget in (202, 201):
            outcomes = []
            for mode in EXECUTION_MODES:
                try:
                    res = machine.run(
                        program, max_instructions=budget, mode=mode
                    )
                    outcomes.append(("ok", res.counters.retired, res.halted))
                except ExecutionLimitExceeded:
                    outcomes.append(("limit",))
            assert len(set(outcomes)) == 1, (budget, outcomes)
        assert outcomes[0] == ("limit",)  # 201 must trip on every tier

    def test_snapshot_interval_inside_loop_body(self):
        # A snapshot window smaller than one loop iteration forces the JIT
        # driver off its region fast path onto segments / single steps;
        # snapshots must still land on exactly the same retirement counts.
        machine = _small_machine()
        program = _countdown_loop(40)
        for interval in (1, 2, 3, 7):
            timed = machine.run(
                program, snapshot_interval=interval, mode="timed"
            )
            jit = machine.run(program, snapshot_interval=interval, mode="jit")
            _assert_same_architectural(timed, jit)
            assert jit.snapshots == timed.snapshots >= 2

    def test_snapshot_boundary_parity(self):
        machine = _small_machine()
        program = Program(instructions=[
            *[Instruction(int(Opcode.MOVI), i % 16, 0, 0, i) for i in range(10)],
            Instruction(int(Opcode.HALT)),
        ])
        timed = machine.run(program, snapshot_interval=5, mode="timed")
        jit = machine.run(program, snapshot_interval=5, mode="jit")
        _assert_same_architectural(timed, jit)
        assert jit.snapshots == timed.snapshots >= 2

    def test_initial_register_parity(self):
        machine = _small_machine()
        program = Program(instructions=[
            Instruction(int(Opcode.ADD), 0, 1, 2),
            Instruction(int(Opcode.FADD), 0, 1, 2),
            Instruction(int(Opcode.HALT)),
        ])
        iregs = [(1 << 64) + i for i in range(16)]  # over-wide: must mask
        fregs = [0.5 * i for i in range(16)]
        timed = machine.run(
            program, initial_iregs=iregs, initial_fregs=fregs, mode="timed"
        )
        jit = machine.run(
            program, initial_iregs=iregs, initial_fregs=fregs, mode="jit"
        )
        _assert_same_architectural(timed, jit)

    def test_bad_arguments_rejected(self):
        machine = _small_machine()
        program = Program(instructions=[Instruction(int(Opcode.HALT))])
        with pytest.raises(ExecutionError):
            run_jit(machine, program, initial_iregs=[0] * 3)
        with pytest.raises(ExecutionError):
            run_jit(machine, program, initial_fregs=[0.0] * 3)
        with pytest.raises(ExecutionError):
            run_jit(machine, program, max_instructions=0)


class TestModeResolution:
    """'auto' resolves to the fastest tier everywhere it is accepted."""

    def test_resolve_mode(self):
        assert FASTEST_MODE == "jit"
        assert resolve_mode("auto", ExecutionError) == "jit"
        for mode in EXECUTION_MODES:
            assert resolve_mode(mode, ExecutionError) == mode
        with pytest.raises(ExecutionError):
            resolve_mode("warp", ExecutionError)

    def test_hashcore_defaults_to_jit(self, test_params):
        core = HashCore(machine=_small_machine(), params=test_params)
        assert core.mode == "jit"
        explicit = HashCore(
            machine=_small_machine(), params=test_params, mode="auto"
        )
        assert explicit.mode == "jit"

    def test_machine_accepts_jit_mode(self):
        machine = _small_machine("jit")
        program = _countdown_loop(10)
        result = machine.run(program)
        assert result.halted
        assert result.counters.cycles == 0  # no timing model ran


class TestCompilation:
    """The compiled artifact itself: caching, invalidation, region shape."""

    def test_jit_code_cached_and_invalidated(self):
        program = Program(instructions=[
            Instruction(int(Opcode.MOVI), 0, 0, 0, 3),
            Instruction(int(Opcode.HALT)),
        ])
        code = program.jit_code()
        assert program.jit_code() is code  # cached
        program.instructions.append(Instruction(int(Opcode.HALT)))
        program.invalidate_code()
        rebuilt = program.jit_code()
        assert rebuilt is not code and rebuilt.length == 3

    def test_loop_compiles_to_region(self):
        code = compile_jit(_countdown_loop(5))
        regions = [r for r in code.regions if r is not None]
        assert regions, "backward LOOPNZ should produce a compiled region"
        assert "while True:" in code.source

    def test_straight_line_has_no_regions(self):
        program = Program(instructions=[
            Instruction(int(Opcode.MOVI), 0, 0, 0, 1),
            Instruction(int(Opcode.HALT)),
        ])
        code = compile_jit(program)
        assert all(r is None for r in code.regions)
