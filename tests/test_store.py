"""Durable chain-state tests: record codec, crash recovery, UTXO index.

The recovery property this file pins (ISSUE acceptance criterion): for a
kill at *any* byte offset — and for a flipped byte at any record offset —
reopening the log recovers exactly the longest checksummed prefix, never
a partial record, and a UTXO index rebuilt over the recovered chain is
consistent with it.
"""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.sha256d import Sha256d
from repro.blockchain import (
    BLOCK_REWARD,
    Blockchain,
    BlockStore,
    Transaction,
    UtxoIndex,
    Wallet,
    block_id,
    decode_block,
    encode_block,
)
from repro.blockchain.block import Block
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.miner import mine_block
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.errors import ChainError, StoreError

pytestmark = pytest.mark.store

POW = Sha256d()
BITS = target_to_compact(difficulty_to_target(2.0))
SCHEDULE = RetargetSchedule(interval=10_000)

#: magic(8) + genesis_id(32) — where the first record starts.
FILE_HEADER_BYTES = 40


def wallet(tag: str) -> Wallet:
    return Wallet(hashlib.sha256(tag.encode()).digest())


def fresh_chain(store=None) -> Blockchain:
    return Blockchain(POW, schedule=SCHEDULE, genesis_bits=BITS, store=store)


def grow(chain: Blockchain, n: int, extra_txs=None) -> list[bytes]:
    """Mine ``n`` deterministic blocks on the tip; returns their ids."""
    ids = []
    for i in range(n):
        height = chain.height() + 1
        body = [f"cb-{height}".encode()]
        if extra_txs:
            body += extra_txs(height)
        template = Block.build(
            prev_hash=chain.tip_id,
            transactions=body,
            timestamp=100 + height,
            bits=chain.expected_bits(chain.tip_id),
        )
        mined = mine_block(template, POW, max_attempts=500_000, start_nonce=0)
        ids.append(chain.add_block(mined.block))
    return ids


# ----------------------------------------------------------------------
# canonical on-disk log shared by the recovery fuzz (built once)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def canonical(tmp_path_factory):
    """``(raw_bytes, extents)`` of a 12-block log.

    ``extents`` is ``[(start, end, bid), ...]`` in log order, so a fuzz
    example can compute the expected surviving prefix for any cut or
    corruption offset without re-reading the file format.
    """
    path = tmp_path_factory.mktemp("canonical") / "chain.log"
    store = BlockStore(path)
    chain = fresh_chain(store=store)
    grow(chain, 12, extra_txs=lambda h: [b"payload-%d" % h * 3, b"x" * h])
    extents = [
        (e.offset, e.offset + e.length, bid)
        for bid, e in sorted(
            ((bid, store.entry(bid)) for bid in store.ids()),
            key=lambda pair: pair[1].offset,
        )
    ]
    store.close()
    return path.read_bytes(), extents


@pytest.fixture(scope="module")
def scratch(tmp_path_factory):
    """One reusable scratch file for the fuzz examples."""
    return tmp_path_factory.mktemp("fuzz") / "mangled.log"


def reopen_and_check(path, raw_expected_prefix_ids):
    """Open ``path``, assert the recovered log is exactly the expected
    prefix, idempotent, and UTXO-consistent.  Returns the store."""
    store = BlockStore(path)
    assert store.ids() == raw_expected_prefix_ids
    # Recovery truncated in place: a second scan finds nothing to drop.
    size_after = path.stat().st_size
    store.reopen()
    assert store.recovery["dropped_bytes"] == 0
    assert path.stat().st_size == size_after
    assert store.ids() == raw_expected_prefix_ids
    # The recovered chain replays, and a fresh UTXO index catches up to
    # its tip with a conserved ledger (no parsed txs → pure subsidy).
    chain = fresh_chain(store=store)
    assert chain.height() == len(raw_expected_prefix_ids)
    index = UtxoIndex()
    index.advance(chain)
    assert index.tip_id == chain.tip_id
    assert index.height == chain.height()
    assert index.ledger.total_supply() == BLOCK_REWARD * chain.height()
    return store


class TestKillAtRandomOffset:
    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_truncation_recovers_longest_prefix(self, canonical, scratch, data):
        raw, extents = canonical
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
        scratch.write_bytes(raw[:cut])
        if cut < FILE_HEADER_BYTES:
            if cut == 0:
                # Empty file: a store opens unbound, ready to bind fresh.
                store = BlockStore(scratch)
                assert store.genesis_id is None and len(store) == 0
            else:
                # A torn *file header* is not a recoverable log.
                with pytest.raises(StoreError):
                    BlockStore(scratch)
            return
        expected = [bid for start, end, bid in extents if end <= cut]
        store = reopen_and_check(scratch, expected)
        store.close()

    @settings(max_examples=120, deadline=None)
    @given(data=st.data())
    def test_corruption_recovers_preceding_prefix(self, canonical, scratch, data):
        raw, extents = canonical
        pos = data.draw(
            st.integers(min_value=FILE_HEADER_BYTES, max_value=len(raw) - 1)
        )
        flip = data.draw(st.integers(min_value=1, max_value=255))
        mangled = bytearray(raw)
        mangled[pos] ^= flip
        scratch.write_bytes(bytes(mangled))
        # Every record at or after the flipped byte is untrusted: record
        # boundaries past a bad length/checksum cannot be relied on.
        expected = [bid for start, end, bid in extents if end <= pos]
        store = reopen_and_check(scratch, expected)
        store.close()


# ----------------------------------------------------------------------
# record codec
# ----------------------------------------------------------------------
class TestRecordCodec:
    def test_round_trip(self):
        chain = fresh_chain()
        (bid,) = grow(chain, 1, extra_txs=lambda h: [b"alpha", b"beta" * 100])
        block = chain.get(bid)
        assert decode_block(encode_block(block)) == block

    def test_trailing_bytes_rejected(self):
        chain = fresh_chain()
        (bid,) = grow(chain, 1)
        payload = encode_block(chain.get(bid))
        with pytest.raises(StoreError):
            decode_block(payload + b"\x00")

    def test_truncated_payload_rejected(self):
        chain = fresh_chain()
        (bid,) = grow(chain, 1, extra_txs=lambda h: [b"tx-body"])
        payload = encode_block(chain.get(bid))
        with pytest.raises(StoreError):
            decode_block(payload[:-3])

    @given(st.lists(st.binary(min_size=0, max_size=64), min_size=1,
                    max_size=8, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_bodies_round_trip(self, transactions):
        block = Block.build(
            prev_hash=b"\x11" * 32, transactions=transactions,
            timestamp=7, bits=BITS,
        )
        assert decode_block(encode_block(block)) == block


# ----------------------------------------------------------------------
# block store mechanics
# ----------------------------------------------------------------------
class TestBlockStore:
    def test_append_get_heights(self, tmp_path):
        store = BlockStore(tmp_path / "a.log")
        chain = fresh_chain(store=store)
        ids = grow(chain, 3)
        assert len(store) == 3
        for height, bid in enumerate(ids, start=1):
            assert store.height_of(bid) == height
            assert block_id(store.get(bid)) == bid
        assert store.ids() == ids

    def test_unbound_append_rejected(self, tmp_path):
        store = BlockStore(tmp_path / "a.log")
        chain = fresh_chain()
        (bid,) = grow(chain, 1)
        with pytest.raises(StoreError):
            store.append(chain.get(bid))

    def test_unconnected_append_rejected(self, tmp_path):
        store = BlockStore(tmp_path / "a.log")
        chain = fresh_chain(store=store)
        stranger = Block.build(
            prev_hash=b"\xab" * 32, transactions=[b"zz"], timestamp=5, bits=BITS
        )
        with pytest.raises(StoreError):
            store.append(stranger)

    def test_duplicate_append_rejected(self, tmp_path):
        store = BlockStore(tmp_path / "a.log")
        chain = fresh_chain(store=store)
        (bid,) = grow(chain, 1)
        with pytest.raises(StoreError):
            store.append(chain.get(bid))

    def test_closed_store_rejects_io(self, tmp_path):
        store = BlockStore(tmp_path / "a.log")
        chain = fresh_chain(store=store)
        (bid,) = grow(chain, 1)
        store.close()
        with pytest.raises(StoreError):
            store.get(bid)

    def test_genesis_mismatch_rejected(self, tmp_path):
        path = tmp_path / "a.log"
        store = BlockStore(path)
        chain = fresh_chain(store=store)
        grow(chain, 1)
        store.close()
        other = BlockStore(path)
        with pytest.raises(StoreError):
            # Different genesis_time → different genesis id → refuse.
            Blockchain(POW, schedule=SCHEDULE, genesis_bits=BITS,
                       genesis_time=999, store=other)

    def test_not_a_store_rejected(self, tmp_path):
        path = tmp_path / "bogus.log"
        path.write_bytes(b"definitely not a block log at all")
        with pytest.raises(StoreError):
            BlockStore(path)

    def test_corrupt_file_header_rejected(self, tmp_path, ):
        path = tmp_path / "a.log"
        store = BlockStore(path)
        chain = fresh_chain(store=store)
        grow(chain, 1)
        store.close()
        raw = bytearray(path.read_bytes())
        raw[2] ^= 0xFF  # inside the magic
        path.write_bytes(bytes(raw))
        with pytest.raises(StoreError):
            BlockStore(path)

    def test_lazy_bodies_stay_on_disk(self, tmp_path):
        store = BlockStore(tmp_path / "a.log")
        chain = fresh_chain(store=store)
        ids = grow(chain, 2, extra_txs=lambda h: [b"big" * 200])
        # In-memory entries hold headers only; bodies round-trip via disk.
        assert chain._entries[ids[0]].block is None
        assert chain.get(ids[0]).transactions[1] == b"big" * 200
        assert chain.tip().header == chain.tip_header()

    def test_replay_counts_and_tip_verification(self, tmp_path):
        path = tmp_path / "a.log"
        store = BlockStore(path)
        chain = fresh_chain(store=store)
        grow(chain, 4)
        store.close()
        reopened = Blockchain(
            POW, schedule=SCHEDULE, genesis_bits=BITS, store=BlockStore(path)
        )
        assert reopened.replayed == 4
        assert reopened.tip_id == chain.tip_id
        assert reopened.height() == 4

    def test_replay_rejects_unmined_tip(self, tmp_path):
        """A checksummed-but-unmined tip must fail ``verify='tip'``."""
        path = tmp_path / "a.log"
        store = BlockStore(path)
        chain = fresh_chain(store=store)
        grow(chain, 1)
        # Craft a child that satisfies every rule except PoW and append it
        # behind the chain's back (the store doesn't re-check consensus).
        for nonce in range(100_000):
            candidate = Block.build(
                prev_hash=chain.tip_id, transactions=[b"evil"],
                timestamp=500, bits=chain.expected_bits(chain.tip_id),
                nonce=nonce,
            )
            try:
                chain.validate_block(candidate)
            except ChainError:
                break
        else:
            pytest.skip("target too easy to find a failing nonce")
        store.append(candidate)
        store.close()
        with pytest.raises(StoreError):
            Blockchain(POW, schedule=SCHEDULE, genesis_bits=BITS,
                       store=BlockStore(path))
        # verify="none" trusts the checksums and accepts the same log.
        relaxed = Blockchain(POW, schedule=SCHEDULE, genesis_bits=BITS,
                             store=BlockStore(path), verify="none")
        assert relaxed.height() == 2

    def test_forks_persist_and_replay(self, tmp_path):
        path = tmp_path / "a.log"
        store = BlockStore(path)
        chain = fresh_chain(store=store)
        grow(chain, 2)
        # A competing branch from genesis: lighter, stored anyway.
        fork = Block.build(
            prev_hash=chain.genesis_id, transactions=[b"fork-1"],
            timestamp=300, bits=chain.expected_bits(chain.genesis_id),
        )
        mined = mine_block(fork, POW, max_attempts=500_000, start_nonce=7)
        fork_id = chain.add_block(mined.block)
        assert chain.tip_id != fork_id
        store.close()
        reopened = Blockchain(
            POW, schedule=SCHEDULE, genesis_bits=BITS, store=BlockStore(path)
        )
        assert reopened.replayed == 3
        assert fork_id in reopened
        assert reopened.tip_id == chain.tip_id

    def test_stats_shape(self, tmp_path):
        store = BlockStore(tmp_path / "a.log")
        chain = fresh_chain(store=store)
        grow(chain, 2)
        stats = store.stats()
        assert stats["blocks"] == 2
        assert stats["bytes"] == (tmp_path / "a.log").stat().st_size
        assert stats["recovery"] == {"dropped_bytes": 0, "reason": None}


# ----------------------------------------------------------------------
# UTXO index
# ----------------------------------------------------------------------
def _tx_block_chain():
    """A chain whose blocks carry real signed transactions, plus the
    wallets involved (alice funded at genesis)."""
    alice, bob = wallet("alice"), wallet("bob")
    chain = fresh_chain()
    txs = {
        1: [Transaction.create(alice, bob.address, 100, 5, 0)],
        2: [Transaction.create(alice, bob.address, 50, 3, 1)],
    }
    grow(chain, 3, extra_txs=lambda h: [t.serialize() for t in txs.get(h, [])])
    return chain, alice, bob


class TestUtxoIndex:
    def test_applies_real_transactions(self):
        chain, alice, bob = _tx_block_chain()
        index = UtxoIndex(genesis_alloc=((alice.address, 1000),))
        result = index.advance(chain)
        assert result == {"applied": 3, "undone": 0, "rebuilt": False}
        assert index.ledger.balance(alice.address) == 1000 - 158
        assert index.ledger.balance(bob.address) == 150
        assert index.ledger.nonce(alice.address) == 2
        # Supply: genesis alloc + one subsidy per block (fees recirculate).
        assert index.ledger.total_supply() == 1000 + 3 * BLOCK_REWARD

    def test_reorg_undoes_and_reapplies(self):
        store_chain = fresh_chain()
        a_ids = grow(store_chain, 2)
        index = UtxoIndex()
        index.advance(store_chain)
        assert index.tip_id == a_ids[-1]
        # Heavier branch from genesis (3 blocks > 2 at equal difficulty).
        cursor = store_chain.genesis_id
        for i in range(3):
            template = Block.build(
                prev_hash=cursor, transactions=[b"fork-%d" % i],
                timestamp=400 + i, bits=store_chain.expected_bits(cursor),
            )
            mined = mine_block(template, POW, max_attempts=500_000,
                               start_nonce=13)
            cursor = store_chain.add_block(mined.block)
        assert store_chain.tip_id == cursor
        result = index.advance(store_chain)
        assert result == {"applied": 3, "undone": 2, "rebuilt": False}
        assert index.tip_id == cursor
        assert index.ledger.total_supply() == 3 * BLOCK_REWARD
        assert index.full_rebuilds == 0

    def test_deep_fork_falls_back_to_rebuild(self):
        chain = fresh_chain()
        grow(chain, 3)
        index = UtxoIndex(max_undo=1)  # window shallower than the reorg
        index.advance(chain)
        cursor = chain.genesis_id
        for i in range(4):
            template = Block.build(
                prev_hash=cursor, transactions=[b"deep-%d" % i],
                timestamp=700 + i, bits=chain.expected_bits(cursor),
            )
            mined = mine_block(template, POW, max_attempts=500_000,
                               start_nonce=29)
            cursor = chain.add_block(mined.block)
        result = index.advance(chain)
        assert result["rebuilt"] is True
        assert index.full_rebuilds == 1
        assert index.tip_id == chain.tip_id
        assert index.ledger.total_supply() == 4 * BLOCK_REWARD

    def test_advance_is_idempotent(self):
        chain = fresh_chain()
        grow(chain, 2)
        index = UtxoIndex()
        index.advance(chain)
        assert index.advance(chain) == {
            "applied": 0, "undone": 0, "rebuilt": False
        }

    def test_undo_beyond_window_rejected(self):
        chain = fresh_chain()
        grow(chain, 1)
        index = UtxoIndex()
        index.advance(chain)
        index.undo_block()  # back to genesis... which empties the window
        with pytest.raises(StoreError):
            index.undo_block()

    def test_snapshot_round_trip(self, tmp_path):
        chain, alice, bob = _tx_block_chain()
        index = UtxoIndex(genesis_alloc=((alice.address, 1000),))
        index.advance(chain)
        snap = tmp_path / "utxo.json"
        index.save(snap)
        loaded = UtxoIndex.load(snap, genesis_alloc=((alice.address, 1000),))
        assert loaded.tip_id == index.tip_id
        assert loaded.height == index.height
        assert loaded.ledger.accounts == index.ledger.accounts
        # The restored undo window still supports incremental reorgs.
        assert loaded.advance(chain) == {
            "applied": 0, "undone": 0, "rebuilt": False
        }

    def test_torn_snapshot_rejected(self, tmp_path):
        chain = fresh_chain()
        grow(chain, 1)
        index = UtxoIndex()
        index.advance(chain)
        snap = tmp_path / "utxo.json"
        index.save(snap)
        raw = snap.read_text(encoding="utf-8")
        snap.write_text(raw[: len(raw) // 2], encoding="utf-8")
        with pytest.raises(StoreError):
            UtxoIndex.load(snap)

    def test_missing_snapshot_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            UtxoIndex.load(tmp_path / "absent.json")


# ----------------------------------------------------------------------
# golden vector: the record format must not drift between PRs
# ----------------------------------------------------------------------
#: sha256 of tests/data/store_golden.log — if the record format changes
#: ON PURPOSE, regenerate the fixture with :func:`build_golden`, update
#: these pins, and say so in the PR.
GOLDEN_SHA256 = "f80173de34c9400862b91a5510ba31bbca0e19285ee562f3b94de96b11e2ee2f"
GOLDEN_BLOCKS = 6
GOLDEN_TIP_PREFIX = "4cf7fb7201bb8502"


def build_golden(path) -> None:
    """Deterministically regenerate the golden log at ``path``."""
    store = BlockStore(path)
    chain = fresh_chain(store=store)
    grow(chain, GOLDEN_BLOCKS,
         extra_txs=lambda h: [b"golden-%d" % h, b"pad" * h])
    store.close()


class TestGoldenVector:
    def test_fixture_bytes_pinned(self, golden_path):
        digest = hashlib.sha256(golden_path.read_bytes()).hexdigest()
        assert digest == GOLDEN_SHA256

    def test_regeneration_is_byte_identical(self, tmp_path, golden_path):
        rebuilt = tmp_path / "rebuilt.log"
        build_golden(rebuilt)
        assert rebuilt.read_bytes() == golden_path.read_bytes()

    def test_reopened_index_state_pinned(self, golden_path):
        store = BlockStore(golden_path)
        try:
            assert len(store) == GOLDEN_BLOCKS
            assert store.recovery == {"dropped_bytes": 0, "reason": None}
            chain = fresh_chain(store=store)
            assert chain.height() == GOLDEN_BLOCKS
            assert chain.tip_id.hex()[:16] == GOLDEN_TIP_PREFIX
            heights = [store.height_of(bid) for bid in store.ids()]
            assert heights == list(range(1, GOLDEN_BLOCKS + 1))
        finally:
            store.close()


@pytest.fixture()
def golden_path(tmp_path):
    import pathlib
    import shutil

    source = pathlib.Path(__file__).parent / "data" / "store_golden.log"
    assert source.exists(), "golden fixture missing — run build_golden"
    # Copy: recovery truncates in place, and the fixture must stay pristine.
    target = tmp_path / "store_golden.log"
    shutil.copy(source, target)
    return target
