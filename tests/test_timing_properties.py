"""Property-based invariants of the timing model.

The analytic OoO model has hard invariants that must hold for *any*
program: cycles bounded below by dispatch width, IPC never exceeding the
width, monotonicity in latencies, and exact run-to-run determinism.
Hypothesis drives these over random straight-line programs (reusing the
differential-test strategy).
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.machine.config import MachineConfig
from repro.machine.cpu import Machine

from tests.test_differential import programs


def _run(instructions, config=None):
    program = Program(instructions=instructions + [Instruction(int(Opcode.HALT))])
    program.validate()
    machine = Machine(config or MachineConfig(memory_words=1 << 16))
    return machine.run(program, max_instructions=2000)


class TestTimingInvariants:
    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_ipc_bounded_by_width(self, instructions):
        counters = _run(instructions).counters
        width = MachineConfig().issue_width
        assert counters.ipc <= width + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_cycles_at_least_dispatch_floor(self, instructions):
        counters = _run(instructions).counters
        width = MachineConfig().issue_width
        assert counters.cycles >= counters.retired / width - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(programs)
    def test_timing_deterministic(self, instructions):
        a = _run(instructions).counters
        b = _run(instructions).counters
        assert a.cycles == b.cycles
        assert a.l1_hits == b.l1_hits
        assert a.mispredicts == b.mispredicts

    @settings(max_examples=30, deadline=None)
    @given(programs)
    def test_slower_alu_never_speeds_up(self, instructions):
        fast = _run(instructions).counters
        slow_config = dataclasses.replace(
            MachineConfig(memory_words=1 << 16),
            int_alu_latency=3,
            int_mul_latency=9,
            fp_add_latency=9,
            fp_mul_latency=15,
        )
        slow = _run(instructions, slow_config).counters
        assert slow.cycles >= fast.cycles - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(programs)
    def test_narrower_machine_never_faster(self, instructions):
        wide = _run(instructions).counters
        narrow_config = dataclasses.replace(
            MachineConfig(memory_words=1 << 16), issue_width=1
        )
        narrow = _run(instructions, narrow_config).counters
        assert narrow.cycles >= wide.cycles - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(programs)
    def test_counter_consistency(self, instructions):
        counters = _run(instructions).counters
        assert sum(counters.class_counts) == counters.retired
        assert counters.taken <= counters.branches
        assert counters.mispredicts <= counters.branches
        accesses = counters.loads + counters.stores
        assert counters.l1_hits <= accesses
        assert counters.dram_accesses <= accesses

    @settings(max_examples=30, deadline=None)
    @given(programs)
    def test_architectural_state_independent_of_timing_config(self, instructions):
        """Functional results must not depend on latencies/width/caches —
        the property HashCore's cross-hardware verifiability rests on."""
        base = _run(instructions)
        exotic = dataclasses.replace(
            MachineConfig(memory_words=1 << 16),
            issue_width=1,
            rob_size=2,
            int_div_latency=99,
            mispredict_penalty=50,
            predictor="bimodal",
        )
        other = _run(instructions, exotic)
        assert base.iregs == other.iregs
        assert base.fregs == other.fregs
