"""HashSeed (Table I) tests."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.core.seed import SEED_BYTES, HashSeed, SeedField
from repro.errors import PowError


class TestParsing:
    def test_requires_32_bytes(self):
        with pytest.raises(PowError):
            HashSeed(b"short")

    def test_field_layout_matches_table_one(self):
        # Field i is the little-endian u32 at bytes 4i..4i+4 (bits 32i..32i+31).
        fields = [10, 20, 30, 40, 50, 60, 70, 80]
        raw = struct.pack("<8I", *fields)
        seed = HashSeed(raw)
        assert seed.field(SeedField.INT_ALU) == 10
        assert seed.field(SeedField.INT_MUL) == 20
        assert seed.field(SeedField.FP_ALU) == 30
        assert seed.field(SeedField.LOADS) == 40
        assert seed.field(SeedField.STORES) == 50
        assert seed.field(SeedField.BRANCH_BEHAVIOR) == 60
        assert seed.field(SeedField.BBV_SEED) == 70
        assert seed.field(SeedField.MEMORY_SEED) == 80

    def test_fields_tuple_order(self):
        seed = HashSeed.from_fields([1, 2, 3, 4, 5, 6, 7, 8])
        assert seed.fields() == (1, 2, 3, 4, 5, 6, 7, 8)

    def test_from_fields_wrong_count(self):
        with pytest.raises(PowError):
            HashSeed.from_fields([1, 2, 3])

    def test_from_hex_round_trip(self):
        seed = HashSeed.from_fields(range(8))
        assert HashSeed.from_hex(seed.hex).raw == seed.raw

    def test_fraction_in_unit_interval(self):
        seed = HashSeed.from_fields([0, 2**31, 2**32 - 1, 0, 0, 0, 0, 0])
        assert seed.fraction(SeedField.INT_ALU) == 0.0
        assert seed.fraction(SeedField.INT_MUL) == pytest.approx(0.5)
        assert seed.fraction(SeedField.FP_ALU) < 1.0

    def test_with_field_replaces_only_one(self):
        seed = HashSeed.from_fields([1] * 8)
        modified = seed.with_field(SeedField.LOADS, 999)
        assert modified.field(SeedField.LOADS) == 999
        for field in SeedField:
            if field != SeedField.LOADS:
                assert modified.field(field) == 1

    def test_with_field_masks_to_u32(self):
        seed = HashSeed.from_fields([0] * 8).with_field(SeedField.INT_ALU, 2**40 + 5)
        assert seed.field(SeedField.INT_ALU) == 5

    @given(st.binary(min_size=SEED_BYTES, max_size=SEED_BYTES))
    def test_fields_pack_back_to_raw(self, raw):
        seed = HashSeed(raw)
        assert HashSeed.from_fields(list(seed.fields())).raw == raw
