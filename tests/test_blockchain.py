"""Block, difficulty, chain, and miner tests (SHA-256d PoW for speed)."""

import pytest

from repro.baselines.sha256d import Sha256d
from repro.blockchain.block import GENESIS_PREV_HASH, Block, BlockHeader, HEADER_BYTES
from repro.blockchain.chain import Blockchain, block_id
from repro.blockchain.difficulty import RetargetSchedule, next_compact_target
from repro.blockchain.miner import mine_block, mine_header
from repro.core.pow import (
    compact_to_target,
    difficulty_to_target,
    target_to_compact,
    target_to_difficulty,
)
from repro.errors import ChainError, PowError

EASY_BITS = target_to_compact(difficulty_to_target(64.0))
POW = Sha256d()


def make_chain(**kwargs) -> Blockchain:
    kwargs.setdefault("genesis_bits", EASY_BITS)
    return Blockchain(POW, **kwargs)


def extend(chain: Blockchain, parent_id=None, timestamp=None, txs=None):
    parent_id = parent_id or chain.tip_id
    parent = chain.get(parent_id)
    block = Block.build(
        prev_hash=parent_id,
        transactions=txs or [b"coinbase"],
        timestamp=timestamp if timestamp is not None else parent.header.timestamp + 30,
        bits=chain.expected_bits(parent_id),
    )
    mined = mine_block(block, POW, max_attempts=200_000)
    return chain.add_block(mined.block)


class TestHeader:
    def test_serialize_round_trip(self):
        header = BlockHeader(1, bytes(32), bytes(32), 1234, EASY_BITS, 99)
        assert BlockHeader.deserialize(header.serialize()) == header

    def test_serialized_size(self):
        header = BlockHeader(1, bytes(32), bytes(32), 0, EASY_BITS, 0)
        assert len(header.serialize()) == HEADER_BYTES

    def test_nonce_changes_serialization(self):
        header = BlockHeader(1, bytes(32), bytes(32), 0, EASY_BITS, 0)
        assert header.serialize() != header.with_nonce(1).serialize()

    def test_bad_hash_length_rejected(self):
        with pytest.raises(ChainError):
            BlockHeader(1, b"short", bytes(32), 0, EASY_BITS, 0)

    def test_field_ranges_enforced(self):
        with pytest.raises(ChainError):
            BlockHeader(2**32, bytes(32), bytes(32), 0, EASY_BITS, 0)

    def test_deserialize_wrong_size_rejected(self):
        with pytest.raises(ChainError):
            BlockHeader.deserialize(b"\x00" * 10)


class TestBlock:
    def test_build_commits_to_transactions(self):
        block = Block.build(bytes(32), [b"a", b"b"], 0, EASY_BITS)
        block.validate_merkle()

    def test_tampered_transactions_detected(self):
        block = Block.build(bytes(32), [b"a", b"b"], 0, EASY_BITS)
        tampered = Block(header=block.header, transactions=(b"a", b"evil"))
        with pytest.raises(ChainError):
            tampered.validate_merkle()


class TestRetarget:
    def test_slow_blocks_ease_target(self):
        schedule = RetargetSchedule(block_time=30.0, interval=16)
        bits = EASY_BITS
        slow = next_compact_target(schedule, bits, 0, int(2 * schedule.expected_span))
        assert compact_to_target(slow) > compact_to_target(bits)

    def test_fast_blocks_tighten_target(self):
        schedule = RetargetSchedule()
        fast = next_compact_target(
            schedule, EASY_BITS, 0, int(schedule.expected_span / 2)
        )
        assert compact_to_target(fast) < compact_to_target(EASY_BITS)

    def test_on_schedule_keeps_target(self):
        schedule = RetargetSchedule()
        same = next_compact_target(schedule, EASY_BITS, 0, int(schedule.expected_span))
        assert compact_to_target(same) == pytest.approx(
            compact_to_target(EASY_BITS), rel=0.01
        )

    def test_clamped_to_4x(self):
        schedule = RetargetSchedule()
        crazy_slow = next_compact_target(
            schedule, EASY_BITS, 0, int(100 * schedule.expected_span)
        )
        ratio = compact_to_target(crazy_slow) / compact_to_target(EASY_BITS)
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_negative_window_rejected(self):
        with pytest.raises(ChainError):
            next_compact_target(RetargetSchedule(), EASY_BITS, 100, 50)

    def test_bad_schedule_rejected(self):
        with pytest.raises(ChainError):
            RetargetSchedule(block_time=0)
        with pytest.raises(ChainError):
            RetargetSchedule(interval=0)
        with pytest.raises(ChainError):
            RetargetSchedule(clamp=0.5)


class TestMiner:
    def test_mined_header_meets_target(self):
        header = BlockHeader(1, bytes(32), bytes(32), 0, EASY_BITS, 0)
        solved, digest, attempts = mine_header(header, POW, max_attempts=100_000)
        from repro.core.pow import meets_target

        assert meets_target(digest, compact_to_target(EASY_BITS))
        assert attempts >= 1

    def test_attempts_roughly_match_difficulty(self):
        # Difficulty 64: expect ~64 attempts on average; across 20 headers
        # the mean should land within a generous band.
        total = 0
        for i in range(20):
            header = BlockHeader(1, bytes(32), bytes(32), i, EASY_BITS, 0)
            _, _, attempts = mine_header(header, POW, max_attempts=100_000)
            total += attempts
        assert 15 < total / 20 < 250

    def test_exhaustion_raises(self):
        hard_bits = target_to_compact(difficulty_to_target(2**40))
        header = BlockHeader(1, bytes(32), bytes(32), 0, hard_bits, 0)
        with pytest.raises(PowError):
            mine_header(header, POW, max_attempts=10)


class TestChain:
    def test_genesis_present(self):
        chain = make_chain()
        assert chain.height() == 0
        assert chain.tip().header.prev_hash == GENESIS_PREV_HASH

    def test_extend_advances_tip(self):
        chain = make_chain()
        bid = extend(chain)
        assert chain.height() == 1
        assert chain.tip_id == bid

    def test_unknown_parent_rejected(self):
        chain = make_chain()
        orphan = Block.build(bytes(b"\x11" * 32), [b"x"], 30, EASY_BITS)
        with pytest.raises(ChainError):
            chain.add_block(mine_block(orphan, POW, max_attempts=200_000).block)

    def test_insufficient_pow_rejected(self):
        chain = make_chain()
        block = Block.build(chain.tip_id, [b"x"], 30, chain.expected_bits(chain.tip_id))
        # Unmined block: astronomically unlikely to meet difficulty 64.
        with pytest.raises(ChainError):
            chain.add_block(block)

    def test_wrong_bits_rejected(self):
        chain = make_chain()
        wrong_bits = target_to_compact(difficulty_to_target(1.0))
        block = Block.build(chain.tip_id, [b"x"], 30, wrong_bits)
        mined = mine_block(block, POW, max_attempts=200_000)
        with pytest.raises(ChainError):
            chain.add_block(mined.block)

    def test_timestamp_before_parent_rejected(self):
        chain = make_chain(genesis_time=1000)
        block = Block.build(chain.tip_id, [b"x"], 500, chain.expected_bits(chain.tip_id))
        mined = mine_block(block, POW, max_attempts=200_000)
        with pytest.raises(ChainError):
            chain.add_block(mined.block)

    def test_duplicate_rejected(self):
        chain = make_chain()
        parent = chain.tip_id
        block = Block.build(parent, [b"x"], 30, chain.expected_bits(parent))
        mined = mine_block(block, POW, max_attempts=200_000)
        chain.add_block(mined.block)
        with pytest.raises(ChainError):
            chain.add_block(mined.block)

    def test_retarget_enforced_at_interval(self):
        schedule = RetargetSchedule(block_time=30.0, interval=4)
        chain = make_chain(schedule=schedule)
        # Mine 3 quick blocks (10s apart: fast -> difficulty must rise at
        # height 4).
        for i in range(3):
            extend(chain, timestamp=(i + 1) * 10)
        expected = chain.expected_bits(chain.tip_id)
        assert expected != chain.tip().header.bits
        assert compact_to_target(expected) < compact_to_target(EASY_BITS)
        # A block carrying the parent's old bits is rejected at the boundary.
        stale = Block.build(chain.tip_id, [b"x"], 40, chain.tip().header.bits)
        mined = mine_block(stale, POW, max_attempts=400_000)
        with pytest.raises(ChainError):
            chain.add_block(mined.block)

    def test_fork_choice_by_total_work(self):
        chain = make_chain()
        extend(chain)  # height 1 on branch A
        branch_point = chain.genesis_id
        # Branch B: two blocks from genesis -> more total work.
        b1 = extend(chain, parent_id=branch_point, timestamp=40)
        assert chain.height() == 1  # tie at equal work: first-seen (A) wins
        b2 = extend(chain, parent_id=b1, timestamp=70)
        assert chain.tip_id == b2
        assert chain.height() == 2

    def test_main_chain_walk(self):
        chain = make_chain()
        ids = [chain.genesis_id]
        for _ in range(3):
            ids.append(extend(chain))
        main = chain.main_chain()
        assert [block_id(b) for b in main] == ids

    def test_total_work_accumulates(self):
        chain = make_chain()
        extend(chain)
        extend(chain)
        expected = 2 * target_to_difficulty(compact_to_target(EASY_BITS))
        assert chain.total_work() == pytest.approx(expected)

    def test_get_unknown_block_raises(self):
        with pytest.raises(ChainError):
            make_chain().get(b"\x42" * 32)


class TestDuplicateTransactionRule:
    def test_duplicate_transactions_rejected(self):
        # CVE-2012-2459-style: [a,b,c] and [a,b,c,c] share a merkle root;
        # blocks carrying duplicates must not validate.
        from repro.blockchain.merkle import merkle_root

        distinct = [b"a", b"b", b"c"]
        duplicated = [b"a", b"b", b"c", b"c"]
        assert merkle_root(distinct) == merkle_root(duplicated)
        block = Block.build(bytes(32), distinct, 0, EASY_BITS)
        forged = Block(header=block.header, transactions=tuple(duplicated))
        with pytest.raises(ChainError):
            forged.validate_merkle()
        block.validate_merkle()  # the honest body still validates
