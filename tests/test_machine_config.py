"""Machine configuration and preset tests."""

import pytest

from repro.errors import ConfigError
from repro.machine.config import (
    MachineConfig,
    ivy_bridge,
    mobile_arm,
    preset,
    scalar_inorder,
)


class TestPresets:
    def test_ivy_bridge_matches_paper_platform_shape(self):
        cfg = ivy_bridge()
        assert cfg.issue_width == 4
        assert cfg.l1.size_bytes == 32 * 1024
        assert cfg.l2.size_bytes == 256 * 1024
        assert cfg.l3 is not None and cfg.l3.size_bytes >= 15 * 1024 * 1024

    def test_mobile_arm_is_narrower(self):
        arm = mobile_arm()
        assert arm.issue_width < ivy_bridge().issue_width
        assert arm.l3 is None

    def test_scalar_inorder_is_minimal(self):
        cfg = scalar_inorder()
        assert cfg.issue_width == 1
        assert cfg.rob_size == 1

    def test_preset_lookup(self):
        assert preset("ivy-bridge").name == "ivy-bridge-like"
        assert preset("mobile-arm").name == "mobile-arm-like"

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigError):
            preset("quantum")


class TestValidation:
    def test_zero_width_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(issue_width=0)

    def test_non_power_of_two_memory_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(memory_words=1000)

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(predictor="oracle")

    def test_scaled_memory(self):
        cfg = MachineConfig().scaled_memory(1 << 16)
        assert cfg.memory_words == 1 << 16
        assert cfg.issue_width == MachineConfig().issue_width


class TestModernDesktop:
    def test_preset_shape(self):
        from repro.machine.config import modern_desktop

        cfg = modern_desktop()
        assert cfg.issue_width > ivy_bridge().issue_width
        assert cfg.prefetch_next_line
        assert cfg.l3.size_bytes > ivy_bridge().l3.size_bytes

    def test_registered(self):
        assert preset("modern-desktop").name == "modern-desktop"

    def test_faster_than_ivy_bridge_on_widgets(self, generator, machine):
        from repro.machine.cpu import Machine
        from repro.machine.config import modern_desktop

        from tests.conftest import seed_of

        widget = generator.widget(seed_of("modern"))
        modern = Machine(modern_desktop())
        old = widget.execute(machine)
        new = widget.execute(modern)
        assert new.counters.cycles < old.counters.cycles
        assert new.output == old.output  # same hash, faster
