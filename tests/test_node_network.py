"""Multi-node propagation tests: forks, orphans, reorgs, convergence."""

import pytest

from repro.baselines.sha256d import Sha256d
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.node import Node, P2PNetwork
from repro.core.pow import difficulty_to_target, target_to_compact
from repro.errors import ChainError

EASY = target_to_compact(difficulty_to_target(16.0))
SCHEDULE = RetargetSchedule(interval=10_000)  # retargeting out of the way


def network(n=3, delay=1):
    return P2PNetwork.create(
        n, Sha256d(), schedule=SCHEDULE, genesis_bits=EASY, delay=delay
    )


class TestBasicGossip:
    def test_block_propagates_after_delay(self):
        net = network(3, delay=2)
        net.mine_on(0, [b"tx"], timestamp=30)
        assert net.heights() == [1, 0, 0]
        net.tick()
        assert net.heights() == [1, 0, 0]  # still in flight
        net.tick()
        assert net.heights() == [1, 1, 1]
        assert net.converged()

    def test_sequential_blocks_converge(self):
        net = network(3)
        for height in range(1, 5):
            net.mine_on(height % 3, [b"tx"], timestamp=30 * height)
            net.settle()
        assert net.converged()
        assert net.heights() == [4, 4, 4]

    def test_settle_empties_queue(self):
        net = network(2, delay=5)
        net.mine_on(0, [b"tx"], timestamp=30)
        net.settle()
        assert net.converged()


class TestForksAndReorgs:
    def test_concurrent_blocks_fork_then_resolve(self):
        net = network(2, delay=3)
        # Both nodes mine on genesis before hearing from each other.
        net.mine_on(0, [b"from-0"], timestamp=30, nonce_salt=0)
        net.mine_on(1, [b"from-1"], timestamp=31, nonce_salt=10**6)
        net.settle()
        # Equal work: each keeps its own tip (first seen) — a live fork.
        assert not net.converged()
        # Node 1 extends its branch; node 0 must reorg onto it.
        net.mine_on(1, [b"extend"], timestamp=60)
        net.settle()
        assert net.converged()
        assert net.nodes[0].reorgs >= 1
        assert net.heights() == [2, 2]

    def test_reorg_counter_counts_tip_switches(self):
        net = network(2, delay=10)  # long partition
        net.mine_on(0, [b"a1"], timestamp=30)
        net.mine_on(1, [b"b1"], timestamp=31, nonce_salt=10**6)
        net.mine_on(1, [b"b2"], timestamp=60, nonce_salt=10**6)
        net.settle()
        assert net.converged()
        # Node 0 had height 1 on branch A, then adopted branch B (height 2).
        assert net.nodes[0].reorgs == 1
        assert net.nodes[1].reorgs == 0

    def test_losing_branch_blocks_retained(self):
        net = network(2, delay=10)
        net.mine_on(0, [b"a1"], timestamp=30)
        net.mine_on(1, [b"b1"], timestamp=31, nonce_salt=10**6)
        net.mine_on(1, [b"b2"], timestamp=60, nonce_salt=10**6)
        net.settle()
        # All four blocks (genesis + a1 + b1 + b2) known to both nodes.
        assert len(net.nodes[0].chain) == 4
        assert len(net.nodes[1].chain) == 4


class TestOrphanBuffer:
    def test_out_of_order_delivery_buffers_and_drains(self):
        net = network(2, delay=1)
        node0, node1 = net.nodes
        # Mine two blocks on node0 without gossip, then deliver child first.
        first = net.mine_on(0, [b"p"], timestamp=30)
        second = net.mine_on(0, [b"c"], timestamp=60)
        fresh = Node("late", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        assert not fresh.receive(second)       # parent unknown: buffered
        assert fresh.orphan_count() == 1
        assert fresh.receive(first)            # parent arrives...
        assert fresh.orphan_count() == 0       # ...child drained
        assert fresh.chain.height() == 2

    def test_grandchild_chain_drains_recursively(self):
        net = network(1)
        blocks = [net.mine_on(0, [f"b{i}".encode()], timestamp=30 * (i + 1))
                  for i in range(3)]
        late = Node("late", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        assert not late.receive(blocks[2])
        assert not late.receive(blocks[1])
        assert late.receive(blocks[0])
        assert late.chain.height() == 3

    def test_invalid_block_rejected_quietly(self):
        node = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        from repro.blockchain.block import Block

        bogus = Block.build(node.tip_id(), [b"x"], 30, EASY)  # unmined
        assert not node.receive(bogus)
        assert node.chain.height() == 0


class TestNetworkConstruction:
    def test_zero_nodes_rejected(self):
        with pytest.raises(ChainError):
            P2PNetwork.create(0, Sha256d())

    def test_nodes_named(self):
        net = network(3)
        assert [n.name for n in net.nodes] == ["node0", "node1", "node2"]


class TestReceiveResult:
    def test_accepted_result_truthy_with_status(self):
        net = network(1)
        block = net.mine_on(0, [b"tx"], timestamp=30)
        fresh = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        result = fresh.receive(block)
        assert result
        assert result.status == "accepted"
        assert result.code is None

    def test_orphan_result_reports_unknown_parent(self):
        net = network(1)
        net.mine_on(0, [b"p"], timestamp=30)
        child = net.mine_on(0, [b"c"], timestamp=60)
        fresh = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        result = fresh.receive(child)
        assert not result
        assert (result.status, result.code) == ("orphaned", "unknown-parent")
        # Same block again: deduplicated, not double-buffered.
        again = fresh.receive(child)
        assert (again.status, again.code) == ("orphaned", "already-buffered")
        assert fresh.orphan_count() == 1

    def test_rejection_carries_validation_code(self):
        from repro.blockchain.block import Block

        node = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        bogus = Block.build(node.tip_id(), [b"x"], 30, EASY)  # unmined
        result = node.receive(bogus)
        assert (result.status, result.code) == ("rejected", "bad-pow")
        assert node.rejections["bad-pow"] == 1


class TestOrphanCap:
    def _chain_blocks(self, n):
        net = network(1)
        return [net.mine_on(0, [f"b{i}".encode()], timestamp=30 * (i + 1))
                for i in range(n)]

    def test_fifo_eviction_beyond_cap(self):
        blocks = self._chain_blocks(6)
        node = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY,
                    max_orphans=3)
        for block in blocks[1:]:  # five orphans into a three-slot buffer
            node.receive(block)
        assert node.orphan_count() == 3
        assert node.orphans_evicted == 2
        # The two oldest (blocks[1], blocks[2]) were evicted, so delivering
        # the root connects only itself — the chain is broken at the hole.
        assert node.receive(blocks[0])
        assert node.chain.height() == 1
        assert node.orphan_count() == 3
        assert node.stats()["orphans_evicted"] == 2

    def test_cap_validates(self):
        with pytest.raises(ChainError):
            Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY,
                 max_orphans=0)

    def test_missing_parents_lists_resync_targets(self):
        blocks = self._chain_blocks(3)
        node = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        node.receive(blocks[2])
        node.receive(blocks[1])
        from repro.blockchain.chain import block_id

        # Both buffered blocks wait on parents outside the chain: blocks[2]
        # on the (merely buffered) blocks[1], blocks[1] on blocks[0].
        assert set(node.missing_parents()) == {block_id(blocks[1]),
                                               block_id(blocks[0])}
        assert node.knows(block_id(blocks[1]))      # buffered counts
        assert not node.knows(block_id(blocks[0]))  # truly missing

    def test_two_thousand_block_orphan_chain_drains_iteratively(self):
        # Regression: _drain_orphans used to recurse per connected child;
        # a deep buffered chain overflowed the interpreter stack near the
        # default recursion limit (~1000).  The worklist version must chew
        # through 2000 blocks flat.
        blocks = self._chain_blocks(2000)
        node = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY,
                    max_orphans=2500)
        for block in reversed(blocks[1:]):
            node.receive(block)
        assert node.orphan_count() == 1999
        assert node.receive(blocks[0])
        assert node.chain.height() == 2000
        assert node.orphan_count() == 0
        assert node.accepted == 2000


class TestCrashRestart:
    def test_crash_drops_traffic_and_orphans(self):
        net = network(1)
        net.mine_on(0, [b"p"], timestamp=30)
        child = net.mine_on(0, [b"c"], timestamp=60)
        node = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        node.receive(child)
        assert node.orphan_count() == 1
        node.crash()
        assert not node.alive
        assert node.orphan_count() == 0  # in-memory buffer lost
        result = node.receive(child)
        assert (result.status, result.accepted) == ("offline", False)
        node.restart()
        assert node.alive
        assert node.receive(child).status == "orphaned"
        assert node.stats()["crashes"] == 1

    def test_chain_survives_crash(self):
        net = network(1)
        block = net.mine_on(0, [b"p"], timestamp=30)
        node = Node("n", Sha256d(), schedule=SCHEDULE, genesis_bits=EASY)
        node.receive(block)
        node.crash()
        node.restart()
        assert node.chain.height() == 1  # the chain is "on disk"
