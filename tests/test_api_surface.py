"""API-surface and small-path tests: reprs, caches, resets, edge paths
that the feature suites don't reach."""

import pytest

from tests.conftest import seed_of


class TestProgramCodeCache:
    def test_code_tuples_cached(self):
        from repro.isa.builder import ProgramBuilder

        b = ProgramBuilder()
        b.movi(1, 5)
        program = b.build()
        assert program.code_tuples() is program.code_tuples()

    def test_invalidate_rebuilds(self):
        from repro.isa.builder import ProgramBuilder
        from repro.isa.instructions import Instruction
        from repro.isa.opcodes import Opcode

        b = ProgramBuilder()
        b.movi(1, 5)
        program = b.build()
        first = program.code_tuples()
        program.instructions.insert(0, Instruction(int(Opcode.NOP)))
        program.invalidate_code()
        assert len(program.code_tuples()) == len(first) + 1

    def test_static_mix_counts_classes(self):
        from repro.isa.builder import ProgramBuilder
        from repro.isa.opcodes import OpClass

        b = ProgramBuilder()
        b.movi(1, 5)
        b.fadd(0, 1, 2)
        b.load(2, 1, 0)
        program = b.build()
        mix = program.static_mix()
        assert mix[OpClass.INT_ALU] == 1
        assert mix[OpClass.FP_ALU] == 1
        assert mix[OpClass.LOAD] == 1
        assert mix[OpClass.SYSTEM] == 1  # auto HALT


class TestReprsAndStrs:
    def test_hash_gate_repr(self):
        from repro.core.hash_gate import HashGate

        assert "sha256" in repr(HashGate())

    def test_seed_str_truncates(self):
        assert "…" in str(seed_of("x"))

    def test_instruction_str(self):
        from repro.isa.instructions import Instruction
        from repro.isa.opcodes import Opcode

        text = str(Instruction(int(Opcode.ADD), 1, 2, 3))
        assert "ADD" in text

    def test_execution_result_output_size(self, machine):
        from repro.isa.builder import ProgramBuilder

        b = ProgramBuilder()
        b.movi(1, 1)
        result = machine.run(b.build(), snapshot_interval=1)
        assert result.output_size == len(result.output)


class TestResets:
    def test_hierarchy_reset_clears_everything(self):
        from repro.machine.cache import CacheHierarchy
        from repro.machine.config import MachineConfig
        import dataclasses

        hierarchy = CacheHierarchy(
            dataclasses.replace(MachineConfig(), prefetch_next_line=True)
        )
        hierarchy.access(0)
        hierarchy.reset()
        assert hierarchy.dram_accesses == 0
        assert hierarchy.prefetches == 0
        assert hierarchy.l1.hits == 0

    def test_machine_initial_register_length_checked(self, machine):
        from repro.errors import ExecutionError
        from repro.isa.builder import ProgramBuilder

        b = ProgramBuilder()
        b.nop()
        with pytest.raises(ExecutionError):
            machine.run(b.build(), initial_iregs=[1, 2, 3])

    def test_initial_registers_masked(self, machine):
        from repro.isa.builder import ProgramBuilder

        b = ProgramBuilder()
        b.nop()
        result = machine.run(b.build(), initial_iregs=[1 << 70] + [0] * 15)
        assert result.iregs[0] == (1 << 70) & ((1 << 64) - 1)


class TestWorkloadImage:
    def test_instruction_budget_enforced(self, machine):
        import dataclasses

        from repro.errors import ExecutionLimitExceeded
        from repro.workloads.leela import LeelaWorkload

        image = LeelaWorkload().build()
        tight = dataclasses.replace(image) if hasattr(image, "__dataclass_fields__") else image
        tight.instruction_budget = 1000
        with pytest.raises(ExecutionLimitExceeded):
            tight.run(machine)

    def test_snapshot_interval_passthrough(self, machine):
        from repro.workloads.matrix import MatrixWorkload

        image = MatrixWorkload().build()
        result = image.run(machine, snapshot_interval=100_000)
        assert result.snapshots >= 2


class TestNodeTick:
    def test_tick_count_advances_multiple(self):
        from repro.baselines.sha256d import Sha256d
        from repro.blockchain.difficulty import RetargetSchedule
        from repro.blockchain.node import P2PNetwork
        from repro.core.pow import difficulty_to_target, target_to_compact

        net = P2PNetwork.create(
            2, Sha256d(),
            schedule=RetargetSchedule(interval=10_000),
            genesis_bits=target_to_compact(difficulty_to_target(8.0)),
            delay=5,
        )
        net.mine_on(0, [b"x"], timestamp=30)
        net.tick(5)
        assert net.converged()


class TestMempoolBounds:
    def test_select_rejects_zero(self, machine):
        from repro.blockchain.ledger import Ledger
        from repro.blockchain.mempool import Mempool
        from repro.errors import ChainError

        with pytest.raises(ChainError):
            Mempool(Ledger()).select(0)


class TestSpecMeta:
    def test_meta_records_profile_and_jitter(self, generator):
        spec = generator.spec(seed_of("meta2"))
        assert spec.meta["profile"] == "leela"
        lo, hi = generator.params.size_jitter
        assert lo <= spec.meta["size_jitter"] <= hi
