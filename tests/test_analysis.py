"""Analysis utilities tests."""

import pytest

from repro.analysis.report import render_table
from repro.analysis.stats import (
    ascii_histogram,
    gaussian_fit,
    ks_distance,
    summarize,
)
from repro.errors import ReproError
from repro.rng import Xoshiro256


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.n == 5

    def test_single_point(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.p25 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])

    def test_percentiles_ordered(self):
        rng = Xoshiro256(1)
        sample = [rng.random() for _ in range(500)]
        summary = summarize(sample)
        assert summary.minimum <= summary.p25 <= summary.median
        assert summary.median <= summary.p75 <= summary.maximum

    def test_str_renders(self):
        assert "mean=" in str(summarize([1.0, 2.0]))


class TestGaussianFit:
    def test_recovers_parameters(self):
        import math

        rng = Xoshiro256(2)
        # Box-Muller from our PRNG: N(10, 2).
        sample = []
        for _ in range(4000):
            u1 = max(rng.random(), 1e-12)
            u2 = rng.random()
            z = math.sqrt(-2 * math.log(u1)) * math.cos(2 * math.pi * u2)
            sample.append(10 + 2 * z)
        mean, std = gaussian_fit(sample)
        assert mean == pytest.approx(10, abs=0.2)
        assert std == pytest.approx(2, abs=0.2)

    def test_needs_two_points(self):
        with pytest.raises(ReproError):
            gaussian_fit([1.0])


class TestKs:
    def test_identical_samples_distance_zero(self):
        sample = [1.0, 2.0, 3.0]
        assert ks_distance(sample, sample) == 0.0

    def test_disjoint_samples_distance_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_symmetry(self):
        a = [1.0, 3.0, 5.0, 7.0]
        b = [2.0, 3.5, 6.0]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ks_distance([], [1.0])


class TestHistogram:
    def test_renders_all_bins(self):
        text = ascii_histogram([1.0, 2.0, 2.0, 3.0], bins=4)
        assert len(text.splitlines()) == 4

    def test_marker_annotated(self):
        text = ascii_histogram([1.0, 2.0, 3.0], bins=3, marker=2.0, marker_label="ref")
        assert "<- ref" in text

    def test_marker_outside_range_extends_axis(self):
        text = ascii_histogram([1.0, 2.0], bins=4, marker=10.0)
        assert "<-" in text

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            ascii_histogram([])


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            ["name", "value"], [["alpha", 1.0], ["b", 123.456]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "alpha" in text
        assert "123.5" in text  # 4 significant digits

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ReproError):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ReproError):
            render_table([], [])


class TestSvgHistogram:
    def test_well_formed_xml(self):
        import xml.etree.ElementTree as ET

        from repro.analysis.svg import histogram_svg

        svg = histogram_svg([1.0, 2.0, 2.5, 3.0], bins=4, title="t",
                            x_label="x", marker=2.0)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_bars_and_marker_present(self):
        from repro.analysis.svg import histogram_svg

        svg = histogram_svg([1.0, 1.1, 5.0], bins=4, marker=3.0,
                            marker_label="Leela")
        assert svg.count('class="bar"') == 2  # two non-empty bins
        assert 'class="marker"' in svg
        assert "Leela" in svg

    def test_title_escaped(self):
        from repro.analysis.svg import histogram_svg

        svg = histogram_svg([1.0], bins=2, title="a < b & c")
        assert "a &lt; b &amp; c" in svg

    def test_save_writes_file(self, tmp_path):
        from repro.analysis.svg import save_histogram

        path = tmp_path / "h.svg"
        save_histogram(path, [1.0, 2.0], bins=3)
        assert path.read_text().startswith("<svg")

    def test_empty_rejected(self):
        from repro.analysis.svg import histogram_svg
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            histogram_svg([])
