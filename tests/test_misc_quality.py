"""Cross-cutting quality gates: error hierarchy, protocol compliance,
widget caching, parallel mining, chi-square stat, docstring coverage."""

import inspect
import pkgutil

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if inspect.isclass(obj) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_specific_errors_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ChainError("x")


class TestPowProtocolCompliance:
    def test_hashcore_variants_satisfy_protocol(self, leela_profile, test_params):
        from repro.core.hashcore import HashCore
        from repro.core.pow import PowFunction
        from repro.core.rotation import RotatingHashCore

        assert isinstance(HashCore(profile=leela_profile, params=test_params),
                          PowFunction)
        assert isinstance(RotatingHashCore([leela_profile], params=test_params),
                          PowFunction)


class TestWidgetCache:
    def test_cache_returns_identical_widget(self, leela_profile, test_params):
        from repro.core.hashcore import HashCore

        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widget_cache_size=4)
        seed = hashcore.seed_of(b"cache-me")
        first = hashcore.widget_for(seed)
        second = hashcore.widget_for(seed)
        assert first is second  # cache hit returns the same object

    def test_cache_does_not_change_digests(self, leela_profile, test_params):
        from repro.core.hashcore import HashCore

        plain = HashCore(profile=leela_profile, params=test_params)
        cached = HashCore(profile=leela_profile, params=test_params,
                          widget_cache_size=8)
        assert plain.hash(b"same") == cached.hash(b"same")

    def test_cache_evicts_lru(self, leela_profile, test_params):
        from repro.core.hashcore import HashCore

        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widget_cache_size=2)
        seeds = [hashcore.seed_of(str(i).encode()) for i in range(3)]
        first = hashcore.widget_for(seeds[0])
        hashcore.widget_for(seeds[1])
        hashcore.widget_for(seeds[2])  # evicts seeds[0]
        again = hashcore.widget_for(seeds[0])
        assert again is not first  # regenerated, not cached

    def test_negative_cache_rejected(self, leela_profile, test_params):
        from repro.core.hashcore import HashCore

        with pytest.raises(ValueError):
            HashCore(profile=leela_profile, params=test_params,
                     widget_cache_size=-1)

    def test_cache_enabled_by_default(self, leela_profile, test_params):
        from repro.core.hashcore import HashCore

        assert HashCore.DEFAULT_WIDGET_CACHE_SIZE > 0
        hashcore = HashCore(profile=leela_profile, params=test_params)
        seed = hashcore.seed_of(b"default-cache")
        assert hashcore.widget_for(seed) is hashcore.widget_for(seed)

    def test_cache_size_zero_bypasses(self, leela_profile, test_params):
        from repro.core.hashcore import HashCore

        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widget_cache_size=0)
        seed = hashcore.seed_of(b"no-cache")
        first = hashcore.widget_for(seed)
        second = hashcore.widget_for(seed)
        assert first is not second  # regenerated every call
        assert first.fingerprint() == second.fingerprint()  # still deterministic
        assert not hashcore._widget_cache  # nothing retained

    def test_cache_refresh_changes_eviction_victim(self, leela_profile,
                                                   test_params):
        from repro.core.hashcore import HashCore

        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widget_cache_size=2)
        seeds = [hashcore.seed_of(str(i).encode()) for i in range(3)]
        first = hashcore.widget_for(seeds[0])
        second = hashcore.widget_for(seeds[1])
        # Re-touching seeds[0] makes seeds[1] the least recently used, so
        # inserting seeds[2] must evict seeds[1], not seeds[0].
        assert hashcore.widget_for(seeds[0]) is first
        hashcore.widget_for(seeds[2])
        assert hashcore.widget_for(seeds[0]) is first  # survived
        assert hashcore.widget_for(seeds[1]) is not second  # evicted


class TestParallelMiner:
    def test_parallel_matches_target(self):
        from repro.baselines.sha256d import Sha256d
        from repro.blockchain.block import BlockHeader
        from repro.blockchain.miner import mine_header_parallel
        from repro.core.pow import (
            compact_to_target,
            difficulty_to_target,
            meets_target,
            target_to_compact,
        )

        bits = target_to_compact(difficulty_to_target(200.0))
        header = BlockHeader(1, bytes(32), bytes(32), 0, bits, 0)
        solved, digest, attempts = mine_header_parallel(
            header, Sha256d, workers=2, chunk=64, max_attempts=100_000
        )
        assert meets_target(digest, compact_to_target(bits))
        assert attempts >= 1

    def test_parallel_exhaustion_raises(self):
        from repro.baselines.sha256d import Sha256d
        from repro.blockchain.block import BlockHeader
        from repro.blockchain.miner import mine_header_parallel
        from repro.core.pow import difficulty_to_target, target_to_compact
        from repro.errors import PowError

        bits = target_to_compact(difficulty_to_target(2.0**40))
        header = BlockHeader(1, bytes(32), bytes(32), 0, bits, 0)
        with pytest.raises(PowError):
            mine_header_parallel(header, Sha256d, workers=2, chunk=16,
                                 max_attempts=64)

    def test_attempts_never_exceed_max_attempts(self):
        # chunk > max_attempts: the single submitted range is a partial
        # chunk, and the attempt count must reflect its actual size rather
        # than crediting a full chunk per completed future.
        from repro.baselines.sha256d import Sha256d
        from repro.blockchain.block import BlockHeader
        from repro.blockchain.miner import mine_header_parallel
        from repro.core.pow import difficulty_to_target, target_to_compact

        bits = target_to_compact(difficulty_to_target(2.0))
        header = BlockHeader(1, bytes(32), bytes(32), 0, bits, 0)
        solved, digest, attempts = mine_header_parallel(
            header, Sha256d, workers=2, chunk=1000, max_attempts=50
        )
        assert 1 <= attempts <= 50
        assert solved.nonce < 50

    def test_bad_params_rejected(self):
        from repro.baselines.sha256d import Sha256d
        from repro.blockchain.block import BlockHeader
        from repro.blockchain.miner import mine_header_parallel
        from repro.errors import PowError

        header = BlockHeader(1, bytes(32), bytes(32), 0, 0x207FFFFF, 0)
        with pytest.raises(PowError):
            mine_header_parallel(header, Sha256d, workers=0)


class TestChiSquare:
    def test_uniform_sample_low_statistic(self):
        from repro.analysis.stats import chi_square_uniform
        from repro.rng import Xoshiro256

        rng = Xoshiro256(3)
        samples = [rng.next_u64() % 1000 for _ in range(8000)]
        stat = chi_square_uniform(samples, bins=16, upper=1000)
        assert stat < 40  # chi2(15) 99th percentile ≈ 30.6; margin for noise

    def test_biased_sample_high_statistic(self):
        from repro.analysis.stats import chi_square_uniform

        samples = [5] * 1000  # all in one bucket
        stat = chi_square_uniform(samples, bins=10, upper=100)
        assert stat > 1000

    def test_input_validation(self):
        from repro.analysis.stats import chi_square_uniform
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            chi_square_uniform([], bins=4, upper=16)
        with pytest.raises(ReproError):
            chi_square_uniform([1], bins=1, upper=16)
        with pytest.raises(ReproError):
            chi_square_uniform([99], bins=4, upper=16)


class TestDocstringCoverage:
    """Every public module, class, and function in repro must carry a
    docstring — deliverable (e) of the reproduction."""

    def _public_modules(self):
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if "._" not in info.name:
                yield __import__(info.name, fromlist=["_"])

    def test_all_modules_documented(self):
        undocumented = [
            module.__name__
            for module in self._public_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert not undocumented, undocumented

    def test_public_classes_and_functions_documented(self):
        undocumented = []
        for module in self._public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-exports documented at their home
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, undocumented
