"""Differential durability: the same chaos schedule, run in memory and
run through the on-disk block store, is *indistinguishable* — byte-equal
reports, equal tips, equal ledgers.

The store wiring must be a pure persistence layer: it consumes no RNG,
bumps no counters, and its crash/restart path (close handle → rescan →
replay) must land each node in exactly the state the in-memory fiction
("keep the chain, lose the orphans") produces.  Any divergence — an
extra message, a replay that double-counts, a recovery that drops a
block — shows up as a report diff.

After the durable run, the left-behind ``node*.log`` files are reopened
cold (fresh :class:`Blockchain` + :class:`UtxoIndex`) and must replay to
the reported tips with consistent ledgers.
"""

from __future__ import annotations

import pytest

from repro.baselines.sha256d import Sha256d
from repro.blockchain import BlockStore, Blockchain, UtxoIndex
from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.faults import Crash, LinkFaults, Partition, Scenario
from repro.blockchain.ledger import BLOCK_REWARD
from repro.blockchain.sim import ChaosRunner
from repro.core.pow import difficulty_to_target, target_to_compact

pytestmark = [pytest.mark.store, pytest.mark.chaos]

#: ~200 honest blocks (0.3/tick over 660 mining ticks), three staggered
#: crash/restart faults, one partition, lossy jittered links.
DURABILITY = Scenario(
    n_nodes=4,
    seed=20,
    ticks=760,
    link=LinkFaults(delay=1, jitter=2, drop=0.05, duplicate=0.02),
    partitions=(Partition(start=120, end=170, groups=((0, 1), (2, 3))),),
    crashes=(
        Crash(node=1, at=60, restart_at=110),
        Crash(node=3, at=300, restart_at=360),
        Crash(node=2, at=500, restart_at=560),
    ),
    mine_prob=0.3,
    convergence_ticks=100,
)


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """The scenario executed twice: volatile, then store-backed."""
    store_dir = tmp_path_factory.mktemp("durability")
    baseline = ChaosRunner(DURABILITY).run()
    durable = ChaosRunner(DURABILITY, store_dir=store_dir).run()
    return baseline, durable, store_dir


def replayed_chain(store_dir, index: int) -> Blockchain:
    """Cold-open one node's log exactly as the chaos net built it."""
    store = BlockStore(store_dir / f"node{index}.log")
    store.reopen()
    assert store.recovery == {"dropped_bytes": 0, "reason": None}
    return Blockchain(
        Sha256d(),
        RetargetSchedule(
            block_time=float(DURABILITY.block_time),
            interval=DURABILITY.retarget_interval,
        ),
        genesis_bits=target_to_compact(
            difficulty_to_target(DURABILITY.difficulty)
        ),
        store=store,
    )


class TestDifferentialDurability:
    def test_reports_are_byte_identical(self, runs):
        baseline, durable, _ = runs
        assert baseline.ok() and durable.ok()
        assert baseline.to_json() == durable.to_json()

    def test_scenario_is_substantial(self, runs):
        baseline, _, _ = runs
        # The schedule actually stresses the store: a real chain (~200
        # blocks), every scheduled crash taken, full convergence.
        assert baseline.blocks_mined >= 150
        assert [n["crashes"] for n in baseline.nodes] == [0, 1, 1, 1]
        assert baseline.converged_tick is not None

    def test_stores_replay_to_reported_tips(self, runs):
        _, durable, store_dir = runs
        for i, stats in enumerate(durable.nodes):
            chain = replayed_chain(store_dir, i)
            assert chain.tip_id.hex()[:16] == stats["tip"]
            assert chain.height() == stats["height"]
            assert chain.total_work() == stats["total_work"]

    def test_ledgers_agree_across_nodes(self, runs):
        _, durable, store_dir = runs
        snapshots = []
        for i in range(DURABILITY.n_nodes):
            chain = replayed_chain(store_dir, i)
            index = UtxoIndex()
            index.advance(chain)
            assert index.tip_id == chain.tip_id
            assert (
                index.ledger.total_supply() == BLOCK_REWARD * chain.height()
            )
            snapshots.append(index.to_dict())
        # Converged tips imply one ledger; every replica replays to it.
        assert all(s == snapshots[0] for s in snapshots[1:])
