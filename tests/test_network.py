"""Statistical mining-network simulation tests."""

import pytest

from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.network import simulate_network
from repro.errors import ChainError


class TestBasics:
    def test_deterministic_given_seed(self):
        a = simulate_network([10.0, 5.0], 100, seed=3)
        b = simulate_network([10.0, 5.0], 100, seed=3)
        assert a.block_times == b.block_times
        assert a.winners == b.winners

    def test_seed_changes_outcome(self):
        a = simulate_network([10.0, 5.0], 100, seed=3)
        b = simulate_network([10.0, 5.0], 100, seed=4)
        assert a.block_times != b.block_times

    def test_block_count(self):
        result = simulate_network([1.0], 250, seed=1)
        assert len(result.block_times) == 250
        assert len(result.winners) == 250
        assert len(result.difficulties) == 250

    def test_invalid_hashrates_rejected(self):
        with pytest.raises(ChainError):
            simulate_network([], 10)
        with pytest.raises(ChainError):
            simulate_network([0.0, 0.0], 10)
        with pytest.raises(ChainError):
            simulate_network([-1.0, 2.0], 10)

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(ChainError):
            simulate_network([1.0], 10, initial_difficulty=0.5)


class TestRevenueShares:
    def test_shares_proportional_to_hashrate(self):
        result = simulate_network([75.0, 20.0, 5.0], 3000, seed=9)
        shares = result.miner_shares(3)
        assert shares[0] == pytest.approx(0.75, abs=0.04)
        assert shares[1] == pytest.approx(0.20, abs=0.04)
        assert shares[2] == pytest.approx(0.05, abs=0.02)

    def test_equal_miners_equal_shares(self):
        # The paper's decentralisation ideal: same hardware, same revenue.
        result = simulate_network([10.0] * 5, 4000, seed=11)
        for share in result.miner_shares(5):
            assert share == pytest.approx(0.2, abs=0.03)


class TestDifficultyDynamics:
    def test_difficulty_tracks_hashrate_increase(self):
        schedule = RetargetSchedule(block_time=30.0, interval=16)

        def rates(now, height):
            return [100.0] if height <= 400 else [400.0]

        result = simulate_network(
            rates, 800, schedule, initial_difficulty=3000.0, seed=5
        )
        early = sum(result.difficulties[300:400]) / 100
        late = sum(result.difficulties[-100:]) / 100
        assert late / early == pytest.approx(4.0, rel=0.35)

    def test_block_time_converges_to_schedule(self):
        schedule = RetargetSchedule(block_time=30.0, interval=16)
        result = simulate_network(
            [100.0], 1200, schedule, initial_difficulty=300.0, seed=6
        )
        steady = result.block_times[600:]
        assert sum(steady) / len(steady) == pytest.approx(30.0, rel=0.15)

    def test_difficulty_reaches_equilibrium_from_wrong_start(self):
        # Start 100x too easy: retargeting must climb to ~hashrate*block_time.
        schedule = RetargetSchedule(block_time=30.0, interval=16)
        result = simulate_network(
            [100.0], 1500, schedule, initial_difficulty=30.0, seed=7
        )
        assert result.difficulties[-1] == pytest.approx(3000.0, rel=0.5)


class TestOrphans:
    def test_orphan_candidates_increase_with_delay(self):
        fast = simulate_network([100.0], 2000, initial_difficulty=100.0,
                                propagation_delay=0.0, seed=8)
        slow = simulate_network([100.0], 2000, initial_difficulty=100.0,
                                propagation_delay=0.5, seed=8)
        assert fast.orphan_candidates == 0
        assert slow.orphan_candidates > 0


class TestCallableHashrateEdgeCases:
    def test_zero_total_vector_mid_run_rejected(self):
        # A callable that goes all-zero at height 50 (every miner left) must
        # fail loudly, not divide by zero or spin forever.
        def rates(now, height):
            return [10.0, 5.0] if height < 50 else [0.0, 0.0]

        with pytest.raises(ChainError):
            simulate_network(rates, 100, seed=2)

    def test_negative_rate_mid_run_rejected(self):
        def rates(now, height):
            return [10.0] if height < 10 else [-1.0]

        with pytest.raises(ChainError):
            simulate_network(rates, 100, seed=2)

    def test_empty_vector_mid_run_rejected(self):
        def rates(now, height):
            return [10.0] if height < 10 else []

        with pytest.raises(ChainError):
            simulate_network(rates, 100, seed=2)

    def test_failure_is_lazy(self):
        # Heights before the bad vector simulate fine.
        def rates(now, height):
            return [10.0] if height <= 20 else [0.0]

        assert len(simulate_network(rates, 20, seed=2).winners) == 20


class TestOrphanAccounting:
    def test_orphan_count_matches_interarrival_censoring(self):
        # orphan_candidates is exactly the number of inter-arrival gaps
        # shorter than the propagation delay — pinned by recomputation.
        delay = 0.4
        result = simulate_network([100.0], 1500, initial_difficulty=100.0,
                                  propagation_delay=delay, seed=13)
        expected = sum(1 for dt in result.block_times if dt < delay)
        assert result.orphan_candidates == expected
        assert 0 < result.orphan_candidates < 1500

    def test_zero_delay_never_counts(self):
        result = simulate_network([100.0], 500, initial_difficulty=100.0,
                                  propagation_delay=0.0, seed=13)
        assert result.orphan_candidates == 0


class TestRetargetBoundaries:
    def test_difficulty_plateaus_between_retarget_heights(self):
        # Difficulty may only change crossing a height % interval == 0
        # boundary; inside a window it is constant.
        interval = 8
        schedule = RetargetSchedule(block_time=30.0, interval=interval)
        result = simulate_network([100.0], 120, schedule,
                                  initial_difficulty=500.0, seed=17)
        for k in range(1, len(result.difficulties)):
            if k % interval != 0:
                assert result.difficulties[k] == result.difficulties[k - 1]

    def test_window_start_drifts_between_windows(self):
        # Each retarget measures elapsed time since the *previous* retarget
        # (window_start drift), so successive windows see different actual
        # durations and successive retargets land on different difficulties.
        schedule = RetargetSchedule(block_time=30.0, interval=8)
        result = simulate_network([100.0], 200, schedule,
                                  initial_difficulty=5000.0, seed=19)
        plateaus = [result.difficulties[k]
                    for k in range(0, len(result.difficulties), 8)]
        assert len(set(plateaus)) > 2

    def test_exact_multiple_of_interval_run_length(self):
        # n_blocks landing exactly on a retarget boundary retargets on the
        # final block without error.
        schedule = RetargetSchedule(block_time=30.0, interval=10)
        result = simulate_network([50.0], 30, schedule,
                                  initial_difficulty=100.0, seed=23)
        assert len(result.difficulties) == 30
