"""Statistical mining-network simulation tests."""

import pytest

from repro.blockchain.difficulty import RetargetSchedule
from repro.blockchain.network import simulate_network
from repro.errors import ChainError


class TestBasics:
    def test_deterministic_given_seed(self):
        a = simulate_network([10.0, 5.0], 100, seed=3)
        b = simulate_network([10.0, 5.0], 100, seed=3)
        assert a.block_times == b.block_times
        assert a.winners == b.winners

    def test_seed_changes_outcome(self):
        a = simulate_network([10.0, 5.0], 100, seed=3)
        b = simulate_network([10.0, 5.0], 100, seed=4)
        assert a.block_times != b.block_times

    def test_block_count(self):
        result = simulate_network([1.0], 250, seed=1)
        assert len(result.block_times) == 250
        assert len(result.winners) == 250
        assert len(result.difficulties) == 250

    def test_invalid_hashrates_rejected(self):
        with pytest.raises(ChainError):
            simulate_network([], 10)
        with pytest.raises(ChainError):
            simulate_network([0.0, 0.0], 10)
        with pytest.raises(ChainError):
            simulate_network([-1.0, 2.0], 10)

    def test_invalid_difficulty_rejected(self):
        with pytest.raises(ChainError):
            simulate_network([1.0], 10, initial_difficulty=0.5)


class TestRevenueShares:
    def test_shares_proportional_to_hashrate(self):
        result = simulate_network([75.0, 20.0, 5.0], 3000, seed=9)
        shares = result.miner_shares(3)
        assert shares[0] == pytest.approx(0.75, abs=0.04)
        assert shares[1] == pytest.approx(0.20, abs=0.04)
        assert shares[2] == pytest.approx(0.05, abs=0.02)

    def test_equal_miners_equal_shares(self):
        # The paper's decentralisation ideal: same hardware, same revenue.
        result = simulate_network([10.0] * 5, 4000, seed=11)
        for share in result.miner_shares(5):
            assert share == pytest.approx(0.2, abs=0.03)


class TestDifficultyDynamics:
    def test_difficulty_tracks_hashrate_increase(self):
        schedule = RetargetSchedule(block_time=30.0, interval=16)

        def rates(now, height):
            return [100.0] if height <= 400 else [400.0]

        result = simulate_network(
            rates, 800, schedule, initial_difficulty=3000.0, seed=5
        )
        early = sum(result.difficulties[300:400]) / 100
        late = sum(result.difficulties[-100:]) / 100
        assert late / early == pytest.approx(4.0, rel=0.35)

    def test_block_time_converges_to_schedule(self):
        schedule = RetargetSchedule(block_time=30.0, interval=16)
        result = simulate_network(
            [100.0], 1200, schedule, initial_difficulty=300.0, seed=6
        )
        steady = result.block_times[600:]
        assert sum(steady) / len(steady) == pytest.approx(30.0, rel=0.15)

    def test_difficulty_reaches_equilibrium_from_wrong_start(self):
        # Start 100x too easy: retargeting must climb to ~hashrate*block_time.
        schedule = RetargetSchedule(block_time=30.0, interval=16)
        result = simulate_network(
            [100.0], 1500, schedule, initial_difficulty=30.0, seed=7
        )
        assert result.difficulties[-1] == pytest.approx(3000.0, rel=0.5)


class TestOrphans:
    def test_orphan_candidates_increase_with_delay(self):
        fast = simulate_network([100.0], 2000, initial_difficulty=100.0,
                                propagation_delay=0.0, seed=8)
        slow = simulate_network([100.0], 2000, initial_difficulty=100.0,
                                propagation_delay=0.5, seed=8)
        assert fast.orphan_candidates == 0
        assert slow.orphan_candidates > 0
