"""Hypothesis round-trip properties for PoW target arithmetic.

The pool grades every share through ``difficulty_to_target`` and headers
carry targets in compact 'nBits' form, so the conversion lattice —

    difficulty <-> target <-> compact

— must round-trip within its documented precision and reject every
boundary/overflow encoding instead of wrapping silently.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pow import (
    MAX_TARGET,
    compact_to_target,
    difficulty_to_target,
    target_to_compact,
    target_to_difficulty,
)
from repro.errors import PowError

#: Difficulties where integer target truncation stays far below the float
#: tolerance (target >= 2**40 keeps the truncation error under 2**-40).
_difficulties = st.floats(
    min_value=1.0, max_value=2.0**200, allow_nan=False, allow_infinity=False
)

_targets = st.integers(min_value=1, max_value=MAX_TARGET)


class TestDifficultyRoundTrip:
    @given(_difficulties)
    @settings(max_examples=200)
    def test_difficulty_target_round_trip(self, difficulty):
        target = difficulty_to_target(difficulty)
        assert 1 <= target <= MAX_TARGET
        recovered = target_to_difficulty(target)
        # Truncating MAX_TARGET / difficulty to an integer loses at most
        # one ulp of the target, so the recovered difficulty can only be
        # equal or (fractionally) above, bounded by 1/target.
        assert recovered >= difficulty * (1 - 1e-12)
        assert recovered - difficulty <= recovered / target + 1e-9 * difficulty

    @given(_targets)
    @settings(max_examples=200)
    def test_target_difficulty_monotone_inverse(self, target):
        difficulty = target_to_difficulty(target)
        assert difficulty >= 1.0
        # Feeding the difficulty back yields a target no larger than the
        # original (floor division) but within one part in 2**52.
        back = difficulty_to_target(difficulty)
        assert back <= MAX_TARGET
        assert abs(back - target) <= max(1, target >> 40)


class TestCompactRoundTrip:
    @given(_targets)
    @settings(max_examples=300)
    def test_compact_is_idempotent_fixed_point(self, target):
        """target -> compact -> target' is lossy once, then stable."""
        compact = target_to_compact(target)
        recovered = compact_to_target(compact)
        assert 1 <= recovered <= MAX_TARGET
        # The mantissa keeps the top 3 significant bytes: the recovered
        # target never exceeds the original, and the truncation error is
        # bounded by one unit of the compact exponent's byte scale.
        assert recovered <= target
        assert target - recovered < 1 << (8 * max(0, (compact >> 24) - 3))
        assert target_to_compact(recovered) == compact
        assert compact_to_target(target_to_compact(recovered)) == recovered

    @given(st.integers(min_value=1, max_value=0x7FFFFF),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=300)
    def test_compact_decode_encode_round_trip(self, mantissa, size):
        """Every valid compact decodes, and re-encoding is stable."""
        compact = (size << 24) | mantissa
        try:
            target = compact_to_target(compact)
        except PowError:
            # Legal failures only: a sub-3-byte size shifting the whole
            # mantissa away (zero target), or a 2^256 overflow.
            if size <= 3:
                assert mantissa >> (8 * (3 - size)) == 0
            else:
                assert mantissa << (8 * (size - 3)) > MAX_TARGET
            return
        assert 1 <= target <= MAX_TARGET
        # Decode -> encode -> decode is the identity on decoded targets.
        assert compact_to_target(target_to_compact(target)) == target

    def test_boundary_compacts(self):
        # Largest encodable target: size 32, full 3-byte mantissa.
        top = compact_to_target((32 << 24) | 0x7FFFFF)
        assert top <= MAX_TARGET
        assert target_to_compact(top) == (32 << 24) | 0x7FFFFF
        # Smallest: one mantissa bit at size 1.
        assert compact_to_target((1 << 24) | 0x010000) == 1

    def test_overflow_compact_rejected(self):
        # size 33 shifts any mantissa past 2^256.
        with pytest.raises(PowError):
            compact_to_target((33 << 24) | 0x010000)

    def test_negative_sign_bit_rejected(self):
        with pytest.raises(PowError):
            compact_to_target((4 << 24) | 0x800000)

    def test_zero_mantissa_rejected(self):
        with pytest.raises(PowError):
            compact_to_target(4 << 24)

    def test_underflow_compact_rejected(self):
        # Size 1 keeps only the mantissa's top byte: 0x0000ff vanishes.
        with pytest.raises(PowError):
            compact_to_target((1 << 24) | 0x0000FF)

    @given(_targets)
    @settings(max_examples=200)
    def test_encode_never_sets_sign_bit(self, target):
        compact = target_to_compact(target)
        assert not compact & 0x00800000
        assert 1 <= compact >> 24 <= 33  # 0x7FFFFF at size 32 may carry
