"""Shared fixtures.

Expensive artifacts (the reference machine, the measured Leela profile, a
small widget population) are session-scoped so the suite stays fast while
many tests share them.
"""

from __future__ import annotations

import hashlib
import signal

import pytest

from repro.core.default_profile import default_profile
from repro.core.seed import HashSeed
from repro.machine.cpu import Machine
from repro.widgetgen.generator import WidgetGenerator
from repro.widgetgen.params import GeneratorParams


def seed_of(tag: str | int) -> HashSeed:
    """Deterministic test seed derived from a tag."""
    return HashSeed(hashlib.sha256(str(tag).encode()).digest())


#: Default per-test wall-clock guard for the ``faults`` suite: these tests
#: deliberately kill and stall worker processes, so a supervision bug shows
#: up as a hang — the guard turns that into a failure instead of a stuck CI
#: job.  Override per test with ``@pytest.mark.faults(timeout=N)``.
FAULTS_TIMEOUT_SECONDS = 120


def pytest_addoption(parser):
    parser.addoption(
        "--soak", action="store_true", default=False,
        help="run soak-marked high-concurrency pool load tests",
    )


def pytest_collection_modifyitems(config, items):
    """Soak tests opt in via ``--soak``; everything else always runs."""
    if config.getoption("--soak"):
        return
    skip_soak = pytest.mark.skip(reason="soak test: pass --soak to run")
    for item in items:
        if "soak" in item.keywords:
            item.add_marker(skip_soak)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Arm a SIGALRM watchdog around every ``faults``-marked test."""
    marker = item.get_closest_marker("faults")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    timeout = int(marker.kwargs.get("timeout", FAULTS_TIMEOUT_SECONDS))

    def _expired(signum, frame):
        pytest.fail(
            f"faults test exceeded its {timeout}s watchdog guard "
            "(supervision path hung)", pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(timeout)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def machine() -> Machine:
    """The Ivy-Bridge-like reference machine."""
    return Machine()


@pytest.fixture(scope="session")
def leela_profile():
    """The baked consensus profile (identical to a fresh Leela measurement;
    ``test_default_profile_matches_measurement`` enforces that)."""
    return default_profile()


@pytest.fixture(scope="session")
def test_params() -> GeneratorParams:
    """Small, fast widget parameters for unit tests."""
    return GeneratorParams.test_scale()


@pytest.fixture(scope="session")
def generator(leela_profile, test_params) -> WidgetGenerator:
    """Widget generator at test scale against the Leela profile."""
    return WidgetGenerator(leela_profile, test_params)


@pytest.fixture(scope="session")
def widget_population(generator, machine):
    """Twelve executed test-scale widgets: [(widget, result), ...]."""
    population = []
    for i in range(12):
        widget = generator.widget(seed_of(i))
        population.append((widget, widget.execute(machine)))
    return population
