"""Differential testing of the CPU's architectural semantics.

An independent reference evaluator re-implements the ISA's *functional*
semantics directly from the opcode documentation (no timing, no caches,
dict-based memory).  Hypothesis generates random straight-line programs;
the simulator and the reference must agree bit-for-bit on all registers
and touched memory.  Divergence here means the optimised dispatch loop in
``repro.machine.cpu`` drifted from the specification.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble, disassemble
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.machine.cpu import Machine
from repro.machine.memory import Memory

MASK64 = (1 << 64) - 1
MASK53 = (1 << 53) - 1
TWO52 = 1 << 52
FP_SCALE = 67108864.0


def _clamp(value: float) -> float:
    return value if -1e300 < value < 1e300 else 1.0


class ReferenceEvaluator:
    """Spec-level functional evaluator (independent of repro.machine.cpu)."""

    def __init__(self, mem_mask: int) -> None:
        self.iregs = [0] * 16
        self.fregs = [0.0] * 16
        self.vregs = [[0.0] * 4 for _ in range(8)]
        self.memory: dict[int, int] = {}
        self.mem_mask = mem_mask

    def _load_word(self, addr: int) -> int:
        return self.memory.get(addr & self.mem_mask, 0)

    def _store_word(self, addr: int, value: int) -> None:
        self.memory[addr & self.mem_mask] = value & MASK64

    def run(self, instructions: list[Instruction]) -> None:
        R, F, V = self.iregs, self.fregs, self.vregs
        for ins in instructions:
            op, a, b, c, imm = ins.op, ins.a, ins.b, ins.c, ins.imm
            name = Opcode(op).name
            if name == "ADD":
                R[a] = (R[b] + R[c]) & MASK64
            elif name == "SUB":
                R[a] = (R[b] - R[c]) & MASK64
            elif name == "AND":
                R[a] = R[b] & R[c]
            elif name == "OR":
                R[a] = R[b] | R[c]
            elif name == "XOR":
                R[a] = R[b] ^ R[c]
            elif name == "SHL":
                R[a] = (R[b] << (R[c] % 64)) & MASK64
            elif name == "SHR":
                R[a] = R[b] >> (R[c] % 64)
            elif name == "ADDI":
                R[a] = (R[b] + imm) & MASK64
            elif name == "ANDI":
                R[a] = R[b] & (imm & MASK64)
            elif name == "ORI":
                R[a] = R[b] | (imm & MASK64)
            elif name == "XORI":
                R[a] = R[b] ^ (imm & MASK64)
            elif name == "SHLI":
                R[a] = (R[b] << (imm % 64)) & MASK64
            elif name == "SHRI":
                R[a] = R[b] >> (imm % 64)
            elif name == "MOV":
                R[a] = R[b]
            elif name == "MOVI":
                R[a] = imm & MASK64
            elif name == "NOT":
                R[a] = (~R[b]) & MASK64
            elif name == "CMPLT":
                R[a] = int(R[b] < R[c])
            elif name == "CMPEQ":
                R[a] = int(R[b] == R[c])
            elif name == "MIN":
                R[a] = min(R[b], R[c])
            elif name == "MAX":
                R[a] = max(R[b], R[c])
            elif name == "MUL":
                R[a] = (R[b] * R[c]) & MASK64
            elif name == "MULHI":
                R[a] = (R[b] * R[c]) >> 64
            elif name == "DIV":
                R[a] = MASK64 if R[c] == 0 else R[b] // R[c]
            elif name == "MOD":
                R[a] = 0 if R[c] == 0 else R[b] % R[c]
            elif name == "FADD":
                F[a] = _clamp(F[b] + F[c])
            elif name == "FSUB":
                F[a] = _clamp(F[b] - F[c])
            elif name == "FMUL":
                F[a] = _clamp(F[b] * F[c])
            elif name == "FDIV":
                F[a] = _clamp(F[b] / F[c] if (F[c] > 1e-300 or F[c] < -1e-300) else 1.0)
            elif name == "FMIN":
                F[a] = _clamp(F[b] if F[b] < F[c] else F[c])
            elif name == "FMAX":
                F[a] = _clamp(F[b] if F[b] > F[c] else F[c])
            elif name == "FABS":
                F[a] = _clamp(F[b] if F[b] >= 0.0 else -F[b])
            elif name == "FNEG":
                F[a] = _clamp(-F[b])
            elif name == "FMA":
                F[a] = _clamp(F[a] + F[b] * F[c])
            elif name == "CVTIF":
                F[a] = float(R[b] & MASK53)
            elif name == "CVTFI":
                R[a] = int(F[b]) & MASK64
            elif name == "LOAD":
                R[a] = self._load_word(R[b] + imm)
            elif name == "FLOAD":
                w = self._load_word(R[b] + imm)
                F[a] = ((w & MASK53) - TWO52) / FP_SCALE
            elif name == "STORE":
                self._store_word(R[b] + imm, R[a])
            elif name == "FSTORE":
                self._store_word(R[b] + imm, int(F[a] * FP_SCALE) + TWO52)
            elif name == "VADD":
                V[a] = [_clamp(x + y) for x, y in zip(V[b], V[c])]
            elif name == "VMUL":
                V[a] = [_clamp(x * y) for x, y in zip(V[b], V[c])]
            elif name == "VFMA":
                V[a] = [_clamp(x + y * z) for x, y, z in zip(V[a], V[b], V[c])]
            elif name == "VLOAD":
                base = R[b] + imm
                V[a] = [
                    ((self._load_word(base + lane) & MASK53) - TWO52) / FP_SCALE
                    for lane in range(4)
                ]
            elif name == "VSTORE":
                base = R[b] + imm
                for lane in range(4):
                    self._store_word(base + lane, int(V[a][lane] * FP_SCALE) + TWO52)
            elif name == "VBROADCAST":
                V[a] = [F[b]] * 4
            elif name == "VREDUCE":
                F[a] = _clamp(sum(V[b]))
            elif name in ("NOP", "HALT"):
                pass
            else:  # pragma: no cover - strategy only emits the ops above
                raise AssertionError(f"unhandled {name}")


# ---------------------------------------------------------------------------
# program strategy: straight-line code over small registers/immediates
# ---------------------------------------------------------------------------
_RRR_OPS = [
    Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL,
    Opcode.SHR, Opcode.CMPLT, Opcode.CMPEQ, Opcode.MIN, Opcode.MAX,
    Opcode.MUL, Opcode.MULHI, Opcode.DIV, Opcode.MOD,
]
_RRI_OPS = [Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SHLI, Opcode.SHRI]
_FP_RRR = [Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FMIN,
           Opcode.FMAX, Opcode.FMA]
_VEC_RRR = [Opcode.VADD, Opcode.VMUL, Opcode.VFMA]

_reg = st.integers(0, 15)
_vreg = st.integers(0, 7)
_imm = st.integers(-(2**40), 2**40)
_addr_imm = st.integers(0, 4000)


def _instr() -> st.SearchStrategy[Instruction]:
    return st.one_of(
        st.builds(lambda op, a, b, c: Instruction(int(op), a, b, c),
                  st.sampled_from(_RRR_OPS), _reg, _reg, _reg),
        st.builds(lambda op, a, b, i: Instruction(int(op), a, b, 0, i),
                  st.sampled_from(_RRI_OPS), _reg, _reg, _imm),
        st.builds(lambda a, i: Instruction(int(Opcode.MOVI), a, 0, 0, i),
                  _reg, _imm),
        st.builds(lambda a, b: Instruction(int(Opcode.MOV), a, b), _reg, _reg),
        st.builds(lambda a, b: Instruction(int(Opcode.NOT), a, b), _reg, _reg),
        st.builds(lambda op, a, b, c: Instruction(int(op), a, b, c),
                  st.sampled_from(_FP_RRR), _reg, _reg, _reg),
        st.builds(lambda a, b: Instruction(int(Opcode.FABS), a, b), _reg, _reg),
        st.builds(lambda a, b: Instruction(int(Opcode.FNEG), a, b), _reg, _reg),
        st.builds(lambda a, b: Instruction(int(Opcode.CVTIF), a, b), _reg, _reg),
        st.builds(lambda a, b: Instruction(int(Opcode.CVTFI), a, b), _reg, _reg),
        st.builds(lambda a, b, i: Instruction(int(Opcode.LOAD), a, b, 0, i),
                  _reg, _reg, _addr_imm),
        st.builds(lambda a, b, i: Instruction(int(Opcode.STORE), a, b, 0, i),
                  _reg, _reg, _addr_imm),
        st.builds(lambda a, b, i: Instruction(int(Opcode.FLOAD), a, b, 0, i),
                  _reg, _reg, _addr_imm),
        st.builds(lambda a, b, i: Instruction(int(Opcode.FSTORE), a, b, 0, i),
                  _reg, _reg, _addr_imm),
        st.builds(lambda op, a, b, c: Instruction(int(op), a, b, c),
                  st.sampled_from(_VEC_RRR), _vreg, _vreg, _vreg),
        st.builds(lambda a, b, i: Instruction(int(Opcode.VLOAD), a, b, 0, i),
                  _vreg, _reg, _addr_imm),
        st.builds(lambda a, b, i: Instruction(int(Opcode.VSTORE), a, b, 0, i),
                  _vreg, _reg, _addr_imm),
        st.builds(lambda a, b: Instruction(int(Opcode.VBROADCAST), a, b), _vreg, _reg),
        st.builds(lambda a, b: Instruction(int(Opcode.VREDUCE), a, b), _reg, _vreg),
    )


programs = st.lists(_instr(), min_size=1, max_size=60)


class TestDifferential:
    @settings(max_examples=150, deadline=None)
    @given(programs)
    def test_simulator_matches_reference(self, instructions):
        program = Program(instructions=instructions + [Instruction(int(Opcode.HALT))])
        program.validate()

        memory = Memory(1 << 16)
        machine = Machine(Machine().config.scaled_memory(1 << 16))
        result = machine.run(program, memory, max_instructions=1000)

        reference = ReferenceEvaluator(mem_mask=(1 << 16) - 1)
        reference.run(instructions)

        assert result.iregs == reference.iregs
        assert result.fregs == reference.fregs
        for addr, value in reference.memory.items():
            assert memory.words[addr] == value, f"memory[{addr}]"

    @settings(max_examples=60, deadline=None)
    @given(programs)
    def test_disassembly_round_trips_random_programs(self, instructions):
        program = Program(instructions=instructions + [Instruction(int(Opcode.HALT))])
        program.validate()
        again = assemble(disassemble(program))
        assert again.instructions == program.instructions
