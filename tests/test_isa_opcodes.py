"""Unit tests for opcode metadata."""

import pytest

from repro.isa.opcodes import (
    BRANCH_OPCODES,
    CONDITIONAL_BRANCHES,
    MEMORY_READ_OPCODES,
    MEMORY_WRITE_OPCODES,
    OpClass,
    Opcode,
    opcode_class,
    opcode_name,
)


class TestOpcodeClasses:
    def test_every_opcode_has_a_class(self):
        for op in Opcode:
            assert isinstance(opcode_class(op), OpClass)

    def test_unknown_opcode_raises(self):
        with pytest.raises(ValueError):
            opcode_class(255)

    @pytest.mark.parametrize(
        "op,expected",
        [
            (Opcode.ADD, OpClass.INT_ALU),
            (Opcode.MOVI, OpClass.INT_ALU),
            (Opcode.MAX, OpClass.INT_ALU),
            (Opcode.MUL, OpClass.INT_MUL),
            (Opcode.MOD, OpClass.INT_MUL),
            (Opcode.FADD, OpClass.FP_ALU),
            (Opcode.CVTFI, OpClass.FP_ALU),
            (Opcode.LOAD, OpClass.LOAD),
            (Opcode.FLOAD, OpClass.LOAD),
            (Opcode.STORE, OpClass.STORE),
            (Opcode.FSTORE, OpClass.STORE),
            (Opcode.BEQ, OpClass.BRANCH),
            (Opcode.JMP, OpClass.BRANCH),
            (Opcode.LOOPNZ, OpClass.BRANCH),
            (Opcode.VADD, OpClass.VECTOR),
            (Opcode.VREDUCE, OpClass.VECTOR),
            (Opcode.NOP, OpClass.SYSTEM),
            (Opcode.HALT, OpClass.SYSTEM),
        ],
    )
    def test_class_mapping(self, op, expected):
        assert opcode_class(op) == expected

    def test_table_one_classes_all_present(self):
        # Table I perturbs exactly these resource classes; the ISA must
        # provide each of them.
        classes = {opcode_class(op) for op in Opcode}
        for needed in (
            OpClass.INT_ALU,
            OpClass.INT_MUL,
            OpClass.FP_ALU,
            OpClass.LOAD,
            OpClass.STORE,
            OpClass.BRANCH,
        ):
            assert needed in classes


class TestOpcodeSets:
    def test_conditional_branches_subset_of_branches(self):
        assert CONDITIONAL_BRANCHES < BRANCH_OPCODES

    def test_jmp_not_conditional(self):
        assert int(Opcode.JMP) not in CONDITIONAL_BRANCHES
        assert int(Opcode.JMP) in BRANCH_OPCODES

    def test_memory_sets_disjoint(self):
        assert not (MEMORY_READ_OPCODES & MEMORY_WRITE_OPCODES)

    def test_opcode_names_round_trip(self):
        for op in Opcode:
            assert Opcode[opcode_name(op)] == op

    def test_opcode_values_unique(self):
        values = [int(op) for op in Opcode]
        assert len(values) == len(set(values))
