"""Hashrate-estimation tests, validated against simulator ground truth."""

import pytest

from repro.analysis.hashrate import (
    HashrateEstimate,
    estimate_hashrate,
    rolling_hashrate,
    _erfinv,
)
from repro.blockchain.network import simulate_network
from repro.errors import ReproError


class TestEstimator:
    def test_recovers_simulated_hashrate(self):
        true_rate = 150.0
        result = simulate_network([true_rate], 2000, initial_difficulty=3000.0,
                                  seed=31)
        estimate = estimate_hashrate(result.difficulties, result.block_times)
        assert estimate.rate == pytest.approx(true_rate, rel=0.08)

    def test_confidence_interval_contains_truth(self):
        true_rate = 80.0
        hits = 0
        for seed in range(10):
            result = simulate_network([true_rate], 400,
                                      initial_difficulty=2000.0, seed=seed)
            estimate = estimate_hashrate(result.difficulties, result.block_times)
            hits += estimate.contains(true_rate)
        assert hits >= 8  # 95% interval over 10 trials

    def test_interval_tightens_with_more_blocks(self):
        result = simulate_network([100.0], 2000, initial_difficulty=2000.0, seed=3)
        short = estimate_hashrate(result.difficulties[:100], result.block_times[:100])
        long = estimate_hashrate(result.difficulties, result.block_times)
        assert (long.hi - long.lo) / long.rate < (short.hi - short.lo) / short.rate

    def test_rejects_mismatched_inputs(self):
        with pytest.raises(ReproError):
            estimate_hashrate([1.0], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ReproError):
            estimate_hashrate([], [])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ReproError):
            estimate_hashrate([1.0], [1.0], confidence=0.3)


class TestRolling:
    def test_tracks_hashrate_step(self):
        def rates(now, height):
            return [100.0] if height <= 500 else [400.0]

        result = simulate_network(rates, 1000, initial_difficulty=3000.0, seed=9)
        series = rolling_hashrate(result.difficulties, result.block_times,
                                  window=64)
        early = series[300]
        late = series[-1]
        assert late / early == pytest.approx(4.0, rel=0.5)

    def test_series_length(self):
        series = rolling_hashrate([10.0] * 100, [1.0] * 100, window=20)
        assert len(series) == 81

    def test_bad_window_rejected(self):
        with pytest.raises(ReproError):
            rolling_hashrate([1.0], [1.0], window=0)


class TestErfinv:
    def test_round_trip_with_erf(self):
        import math

        for p in (-0.9, -0.5, 0.0, 0.5, 0.9, 0.99):
            assert math.erf(_erfinv(p)) == pytest.approx(p, abs=2e-3)

    def test_domain_enforced(self):
        with pytest.raises(ReproError):
            _erfinv(1.0)

    def test_estimate_dataclass(self):
        estimate = HashrateEstimate(rate=10.0, lo=8.0, hi=12.0, blocks=100)
        assert estimate.contains(9.0)
        assert not estimate.contains(13.0)
