"""ProgramBuilder structured-construction tests."""

import pytest

from repro.errors import AssemblyError
from repro.isa.builder import ProgramBuilder
from repro.isa.opcodes import Opcode
from repro.machine.cpu import Machine


def run(program, **kwargs):
    return Machine().run(program, **kwargs)


class TestLabels:
    def test_forward_label_patched(self):
        b = ProgramBuilder()
        b.jmp("skip")
        b.movi(1, 99)  # skipped
        b.label("skip")
        b.movi(2, 7)
        program = b.build()
        result = run(program)
        assert result.iregs[1] == 0
        assert result.iregs[2] == 7

    def test_unresolved_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(AssemblyError):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblyError):
            b.label("x")

    def test_auto_label_names_unique(self):
        b = ProgramBuilder()
        assert b.label() != b.label()

    def test_trailing_label_gets_halt_to_land_on(self):
        b = ProgramBuilder()
        b.jmp("end")
        b.label("end")
        program = b.build()
        assert program.instructions[-1].op == int(Opcode.HALT)
        assert run(program).halted


class TestLoop:
    def test_counted_loop_runs_count_times(self):
        b = ProgramBuilder()
        b.movi(2, 0)
        with b.loop(1, 10):
            b.addi(2, 2, 1)
        result = run(b.build())
        assert result.iregs[2] == 10

    def test_nested_loops(self):
        b = ProgramBuilder()
        b.movi(3, 0)
        with b.loop(1, 5):
            with b.loop(2, 4):
                b.addi(3, 3, 1)
        assert run(b.build()).iregs[3] == 20

    def test_preinitialised_counter(self):
        b = ProgramBuilder()
        b.movi(1, 3)
        b.movi(2, 0)
        with b.loop(1, None):
            b.addi(2, 2, 1)
        assert run(b.build()).iregs[2] == 3

    def test_zero_count_raises(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblyError):
            with b.loop(1, 0):
                pass


class TestConditionals:
    @pytest.mark.parametrize(
        "helper,a,b,executes",
        [
            ("if_eq", 5, 5, True),
            ("if_eq", 5, 6, False),
            ("if_ne", 5, 6, True),
            ("if_ne", 5, 5, False),
            ("if_lt", 3, 9, True),
            ("if_lt", 9, 3, False),
            ("if_ge", 9, 3, True),
            ("if_ge", 3, 9, False),
        ],
    )
    def test_condition_semantics(self, helper, a, b, executes):
        builder = ProgramBuilder()
        builder.movi(1, a)
        builder.movi(2, b)
        builder.movi(3, 0)
        with getattr(builder, helper)(1, 2):
            builder.movi(3, 1)
        result = run(builder.build())
        assert bool(result.iregs[3]) == executes

    def test_if_ge_equal_values_executes(self):
        builder = ProgramBuilder()
        builder.movi(1, 4)
        builder.movi(2, 4)
        with builder.if_ge(1, 2):
            builder.movi(3, 1)
        assert run(builder.build()).iregs[3] == 1


class TestBuild:
    def test_auto_halt_appended(self):
        b = ProgramBuilder()
        b.nop()
        assert b.build().instructions[-1].op == int(Opcode.HALT)

    def test_no_double_halt(self):
        b = ProgramBuilder()
        b.nop()
        b.halt()
        program = b.build()
        assert [i.op for i in program.instructions].count(int(Opcode.HALT)) == 1

    def test_build_validates(self):
        b = ProgramBuilder()
        b.emit(Opcode.VADD, 7, 0, 0)  # v7 is within range... use v bounds
        # NUM_VEC_REGS is 8, so 7 valid; use invalid register instead:
        b2 = ProgramBuilder()
        b2.emit(Opcode.VADD, 9, 0, 0)
        from repro.errors import EncodingError

        with pytest.raises(EncodingError):
            b2.build()

    def test_every_emit_helper_produces_valid_program(self):
        b = ProgramBuilder()
        b.add(1, 2, 3); b.sub(1, 2, 3); b.and_(1, 2, 3); b.or_(1, 2, 3)
        b.xor(1, 2, 3); b.shl(1, 2, 3); b.shr(1, 2, 3)
        b.addi(1, 2, 5); b.andi(1, 2, 5); b.ori(1, 2, 5); b.xori(1, 2, 5)
        b.shli(1, 2, 5); b.shri(1, 2, 5); b.mov(1, 2); b.movi(1, 5)
        b.not_(1, 2); b.cmplt(1, 2, 3); b.cmpeq(1, 2, 3)
        b.min_(1, 2, 3); b.max_(1, 2, 3)
        b.mul(1, 2, 3); b.mulhi(1, 2, 3); b.div(1, 2, 3); b.mod(1, 2, 3)
        b.fadd(0, 1, 2); b.fsub(0, 1, 2); b.fmul(0, 1, 2); b.fdiv(0, 1, 2)
        b.fmin(0, 1, 2); b.fmax(0, 1, 2); b.fabs(0, 1); b.fneg(0, 1)
        b.fma(0, 1, 2); b.cvtif(0, 1); b.cvtfi(1, 0)
        b.load(1, 2, 4); b.fload(0, 2, 4); b.store(1, 2, 4); b.fstore(0, 2, 4)
        b.vadd(0, 1, 2); b.vmul(0, 1, 2); b.vfma(0, 1, 2)
        b.vload(0, 2, 4); b.vstore(0, 2, 4); b.vbroadcast(0, 1); b.vreduce(1, 0)
        b.nop()
        program = b.build()
        program.validate()
        assert run(program).halted
