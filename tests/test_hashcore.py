"""HashCore end-to-end tests: determinism, structure, avalanche,
irreducibility — the §IV/§V properties."""

import hashlib

import pytest

from repro.core.hash_gate import HashGate, hash_gate
from repro.core.hashcore import HashCore
from repro.core.seed import HashSeed
from repro.machine.cpu import Machine
from repro.widgetgen.params import GeneratorParams

from tests.conftest import seed_of


@pytest.fixture(scope="module")
def hashcore(leela_profile, test_params):
    return HashCore(profile=leela_profile, params=test_params)


class TestHashGate:
    def test_default_is_sha256(self):
        assert hash_gate(b"abc") == hashlib.sha256(b"abc").digest()

    def test_gate_wrapper_checks_size(self):
        bad = HashGate(fn=lambda data: b"short", digest_size=32, name="bad")
        with pytest.raises(ValueError):
            bad(b"x")

    def test_custom_gate(self):
        gate = HashGate(fn=lambda d: hashlib.sha256(d).digest()[:16], digest_size=16)
        assert len(gate(b"x")) == 16


class TestComposition:
    """H(x) = G(s || W(s)) with s = G(x) — the Figure 1 dataflow."""

    def test_seed_is_first_gate_output(self, hashcore):
        assert hashcore.seed_of(b"input").raw == hash_gate(b"input")

    def test_digest_is_second_gate_over_seed_and_output(self, hashcore):
        trace = hashcore.hash_with_trace(b"input")
        expected = hash_gate(trace.seed.raw + trace.result.output)
        assert trace.digest == expected

    def test_digest_is_32_bytes(self, hashcore):
        assert len(hashcore.hash(b"abc")) == 32

    def test_widget_determined_by_seed(self, hashcore):
        seed = hashcore.seed_of(b"payload")
        w1 = hashcore.widget_for(seed)
        w2 = hashcore.widget_for(seed)
        assert w1.fingerprint() == w2.fingerprint()


class TestDeterminismAndVerification:
    def test_hash_is_deterministic(self, hashcore):
        assert hashcore.hash(b"block") == hashcore.hash(b"block")

    def test_verify_accepts_correct_digest(self, hashcore):
        digest = hashcore.hash(b"block")
        assert hashcore.verify(b"block", digest)

    def test_verify_rejects_wrong_digest(self, hashcore):
        digest = bytearray(hashcore.hash(b"block"))
        digest[0] ^= 1
        assert not hashcore.verify(b"block", bytes(digest))

    def test_independent_instances_agree(self, leela_profile, test_params):
        # Two "miners" with the same consensus parameters.
        a = HashCore(profile=leela_profile, params=test_params)
        b = HashCore(profile=leela_profile, params=test_params)
        assert a.hash(b"consensus") == b.hash(b"consensus")

    def test_different_params_change_hash(self, leela_profile, test_params):
        a = HashCore(profile=leela_profile, params=test_params)
        other = GeneratorParams(
            target_instructions=test_params.target_instructions * 2,
            snapshot_interval=test_params.snapshot_interval,
        )
        b = HashCore(profile=leela_profile, params=other)
        assert a.hash(b"x") != b.hash(b"x")


class TestAvalanche:
    def test_input_bit_flip_decorrelates_output(self, hashcore):
        base = hashcore.hash(b"avalanche-test")
        flipped = hashcore.hash(b"avalanche-tesu")  # one bit differs
        distance = bin(
            int.from_bytes(base, "big") ^ int.from_bytes(flipped, "big")
        ).count("1")
        assert 80 <= distance <= 176  # ~128 expected for 256-bit output

    def test_distinct_inputs_distinct_digests(self, hashcore):
        digests = {hashcore.hash(str(i).encode()) for i in range(8)}
        assert len(digests) == 8


class TestIrreducibility:
    """§IV-A: the output must depend on *complete* widget execution."""

    def test_truncated_execution_changes_output(self, hashcore):
        trace = hashcore.hash_with_trace(b"irreducible")
        widget = trace.widget
        # Re-run the same widget but stop the outer loop one trip early by
        # regenerating with fewer trips — the cheapest imaginable shortcut.
        spec = widget.spec
        spec_short = type(spec)(
            name=spec.name,
            seed_hex=spec.seed_hex,
            blocks=spec.blocks,
            loops=spec.loops,
            outer_trips=spec.outer_trips - 1,
            plan=spec.plan,
            snapshot_interval=spec.snapshot_interval,
            meta=dict(spec.meta),
        )
        from repro.core.widget import Widget
        from repro.widgetgen.codegen import compile_spec

        short = Widget(spec=spec_short, program=compile_spec(spec_short))
        machine = Machine()
        assert short.execute(machine).output != trace.result.output

    def test_output_covers_register_state_evolution(self, hashcore):
        trace = hashcore.hash_with_trace(b"snapshots")
        result = trace.result
        assert result.snapshots >= 2
        size = 256  # 16 int + 16 fp registers, 8 bytes each
        first = result.output[:size]
        last = result.output[-size:]
        assert first != last  # state evolves between snapshots

    def test_output_size_in_paper_band_at_full_ratio(self, leela_profile):
        # At default (60k-instruction) scale the output lands in the
        # paper's 20-38 KB band; test scale shrinks proportionally.
        hc = HashCore(profile=leela_profile)  # default params
        trace = hc.hash_with_trace(b"size-check")
        assert 15_000 <= trace.result.output_size <= 45_000


class TestWidgetAccessors:
    def test_code_bytes_positive(self, hashcore):
        widget = hashcore.widget_for(seed_of("w"))
        assert widget.code_bytes() > 100

    def test_widget_name_carries_seed(self, hashcore):
        seed = seed_of("w")
        widget = hashcore.widget_for(seed)
        assert seed.hex[:12] in widget.name


class TestIrreducibilityPerBlock:
    """§IV-A: "certain code segments cannot be skipped and the output
    cannot be predicted without full execution" — dropping any single
    always-executed block's body must change the widget output."""

    def test_skipping_any_unguarded_block_changes_output(self, hashcore):
        from repro.core.widget import Widget
        from repro.widgetgen.codegen import compile_spec
        from repro.widgetgen.ir import BlockSpec, WidgetSpec

        trace = hashcore.hash_with_trace(b"block-skip")
        spec = trace.widget.spec
        machine = hashcore.machine
        baseline = trace.result.output

        checked = 0
        for index, block in enumerate(spec.blocks):
            if block.guard is not None or not block.body:
                continue  # guarded bodies may legitimately not execute
            mutated_blocks = list(spec.blocks)
            mutated_blocks[index] = BlockSpec(
                pre=list(block.pre), guard=None, body=[]
            )
            mutated = WidgetSpec(
                name=spec.name,
                seed_hex=spec.seed_hex,
                blocks=mutated_blocks,
                loops=spec.loops,
                outer_trips=spec.outer_trips,
                plan=spec.plan,
                snapshot_interval=spec.snapshot_interval,
                meta=dict(spec.meta),
            )
            widget = Widget(spec=mutated, program=compile_spec(mutated))
            assert widget.execute(machine).output != baseline, f"block {index}"
            checked += 1
        assert checked >= 1
