"""Unit tests for the deterministic PRNGs."""

import pytest
from hypothesis import given, strategies as st

from repro.rng import MASK64, Xoshiro256, splitmix64


class TestSplitmix64:
    def test_known_vector(self):
        # Reference values from the SplitMix64 stream seeded at 0: the
        # first output is splitmix64 applied to state 0.
        assert splitmix64(0) == 0xE220A8397B1DCDAF

    def test_known_vector_second(self):
        # Second stream element: state advances by the golden gamma.
        assert splitmix64(0x9E3779B97F4A7C15) == 0x6E789E6AA1B965F4

    def test_output_is_64_bit(self):
        for x in (0, 1, MASK64, 123456789):
            assert 0 <= splitmix64(x) <= MASK64

    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)

    def test_distinct_inputs_distinct_outputs(self):
        outputs = {splitmix64(i) for i in range(1000)}
        assert len(outputs) == 1000


class TestXoshiro256:
    def test_deterministic_stream(self):
        a = Xoshiro256(7)
        b = Xoshiro256(7)
        assert [a.next_u64() for _ in range(20)] == [b.next_u64() for _ in range(20)]

    def test_different_seeds_differ(self):
        a = [Xoshiro256(1).next_u64() for _ in range(4)]
        b = [Xoshiro256(2).next_u64() for _ in range(4)]
        assert a != b

    def test_seed_zero_is_not_degenerate(self):
        # SplitMix64 seeding guarantees a non-zero state even for seed 0.
        rng = Xoshiro256(0)
        outputs = {rng.next_u64() for _ in range(100)}
        assert len(outputs) == 100
        assert any(rng_state != 0 for rng_state in Xoshiro256(0).getstate())

    def test_random_in_unit_interval(self):
        rng = Xoshiro256(3)
        for _ in range(1000):
            assert 0.0 <= rng.random() < 1.0

    def test_random_mean_near_half(self):
        rng = Xoshiro256(5)
        sample = [rng.random() for _ in range(5000)]
        assert abs(sum(sample) / len(sample) - 0.5) < 0.02

    def test_randint_bounds(self):
        rng = Xoshiro256(11)
        values = [rng.randint(3, 9) for _ in range(500)]
        assert min(values) == 3
        assert max(values) == 9

    def test_randint_single_point(self):
        assert Xoshiro256(1).randint(5, 5) == 5

    def test_randint_empty_range_raises(self):
        with pytest.raises(ValueError):
            Xoshiro256(1).randint(5, 4)

    def test_choice_covers_all_elements(self):
        rng = Xoshiro256(13)
        seen = {rng.choice("abcd") for _ in range(200)}
        assert seen == set("abcd")

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            Xoshiro256(1).choice([])

    def test_shuffle_is_permutation(self):
        rng = Xoshiro256(17)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # astronomically unlikely to be identity

    def test_sample_weighted_respects_zero_weight(self):
        rng = Xoshiro256(19)
        draws = {rng.sample_weighted([0.0, 1.0, 0.0]) for _ in range(100)}
        assert draws == {1}

    def test_sample_weighted_proportions(self):
        rng = Xoshiro256(23)
        counts = [0, 0]
        for _ in range(4000):
            counts[rng.sample_weighted([3.0, 1.0])] += 1
        assert 0.70 < counts[0] / 4000 < 0.80

    def test_sample_weighted_rejects_non_positive_total(self):
        with pytest.raises(ValueError):
            Xoshiro256(1).sample_weighted([0.0, 0.0])

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_outputs_stay_64_bit(self, seed):
        rng = Xoshiro256(seed)
        for _ in range(8):
            assert 0 <= rng.next_u64() <= MASK64
