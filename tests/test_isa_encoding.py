"""Instruction/program encoding tests, including hypothesis round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import (
    INSTRUCTION_SIZE,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)
from repro.isa.instructions import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program

# Strategy: structurally valid instructions (registers in range, branch
# targets handled separately because they need a program length).
_NON_BRANCH_OPS = [
    op for op in Opcode if op not in
    (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.JMP, Opcode.LOOPNZ)
]


def _valid_instruction(op: Opcode) -> st.SearchStrategy:
    from repro.isa.opcodes import FP_DEST_OPCODES, NUM_VEC_REGS, OpClass, opcode_class

    cls = opcode_class(op)
    if cls == OpClass.VECTOR:
        a = st.integers(0, NUM_VEC_REGS - 1)
    else:
        a = st.integers(0, 15)
    return st.builds(
        Instruction,
        op=st.just(int(op)),
        a=a,
        b=st.integers(0, 15),
        c=st.integers(0, 15),
        imm=st.integers(-(2**63), 2**63 - 1),
    )


instruction_strategy = st.sampled_from(_NON_BRANCH_OPS).flatmap(_valid_instruction)


class TestInstructionEncoding:
    def test_fixed_size(self):
        data = encode_instruction(Instruction(int(Opcode.ADD), 1, 2, 3))
        assert len(data) == INSTRUCTION_SIZE

    def test_round_trip_simple(self):
        instr = Instruction(int(Opcode.ADDI), 4, 5, 0, -12345)
        assert decode_instruction(encode_instruction(instr)) == instr

    def test_round_trip_negative_imm_extremes(self):
        for imm in (-(2**63), 2**63 - 1, -1, 0):
            instr = Instruction(int(Opcode.MOVI), 3, 0, 0, imm)
            assert decode_instruction(encode_instruction(instr)).imm == imm

    def test_decode_wrong_length_raises(self):
        with pytest.raises(EncodingError):
            decode_instruction(b"\x00" * (INSTRUCTION_SIZE - 1))

    def test_decode_bad_opcode_raises(self):
        raw = bytearray(encode_instruction(Instruction(int(Opcode.ADD), 1, 2, 3)))
        raw[0] = 250  # not a valid opcode
        with pytest.raises(EncodingError):
            decode_instruction(bytes(raw))

    @given(instruction_strategy)
    def test_round_trip_property(self, instr):
        assert decode_instruction(encode_instruction(instr)) == instr


class TestProgramEncoding:
    def _program(self) -> Program:
        program = Program(
            instructions=[
                Instruction(int(Opcode.MOVI), 1, 0, 0, 10),
                Instruction(int(Opcode.ADD), 2, 2, 1),
                Instruction(int(Opcode.LOOPNZ), 1, 0, 0, 1),
                Instruction(int(Opcode.HALT)),
            ],
            name="t",
        )
        program.validate()
        return program

    def test_round_trip(self):
        program = self._program()
        decoded = decode_program(encode_program(program))
        assert decoded.instructions == program.instructions

    def test_fingerprint_stable_across_round_trip(self):
        program = self._program()
        assert decode_program(encode_program(program)).fingerprint() == program.fingerprint()

    def test_name_and_labels_do_not_affect_encoding(self):
        program = self._program()
        renamed = Program(instructions=list(program.instructions), name="other",
                          labels={"x": 0})
        assert encode_program(renamed) == encode_program(program)

    def test_truncated_raises(self):
        data = encode_program(self._program())
        with pytest.raises(EncodingError):
            decode_program(data[:-1])

    def test_bad_magic_raises(self):
        data = bytearray(encode_program(self._program()))
        data[0] = ord("X")
        with pytest.raises(EncodingError):
            decode_program(bytes(data))

    def test_decoded_program_is_validated(self):
        # Corrupt a branch target beyond the program end.
        program = self._program()
        data = bytearray(encode_program(program))
        # LOOPNZ imm starts at header(10) + 2*12 + 4 bytes into instruction.
        offset = 10 + 2 * INSTRUCTION_SIZE + 4
        data[offset] = 200
        with pytest.raises(EncodingError):
            decode_program(bytes(data))

    @given(st.lists(instruction_strategy, min_size=1, max_size=40))
    def test_program_round_trip_property(self, instructions):
        program = Program(instructions=instructions + [Instruction(int(Opcode.HALT))])
        program.validate()
        assert decode_program(encode_program(program)).instructions == program.instructions
