"""Simulated memory unit tests."""

import pytest

from repro.errors import ConfigError
from repro.machine.memory import Memory, _splitmix64_block, _splitmix64_block_np
from repro.rng import MASK64


class TestBasics:
    def test_read_write(self):
        memory = Memory(1024)
        memory.write(10, 42)
        assert memory.read(10) == 42

    def test_write_masks_to_64_bits(self):
        memory = Memory(1024)
        memory.write(0, 1 << 70)
        assert memory.read(0) == (1 << 70) & MASK64

    def test_addresses_wrap(self):
        memory = Memory(1024)
        memory.write(1024 + 5, 7)
        assert memory.read(5) == 7

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            Memory(1000)

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigError):
            Memory(0)


class TestFillRandom:
    def test_deterministic(self):
        a = Memory(4096)
        b = Memory(4096)
        a.fill_random(99, 10, 500)
        b.fill_random(99, 10, 500)
        assert a.words == b.words

    def test_seed_changes_contents(self):
        a = Memory(1024)
        b = Memory(1024)
        a.fill_random(1, 0, 100)
        b.fill_random(2, 0, 100)
        assert a.words[:100] != b.words[:100]

    def test_numpy_and_scalar_paths_agree(self):
        # The numpy fast path must be bit-identical to the reference.
        assert _splitmix64_block(12345, 2000) == _splitmix64_block_np(12345, 2000).tolist()

    def test_fill_outside_range_untouched(self):
        memory = Memory(1024)
        memory.fill_random(7, 100, 50)
        assert all(w == 0 for w in memory.words[:100])
        assert all(w != 0 for w in memory.words[100:150])

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigError):
            Memory(64).fill_random(1, 0, -1)


class TestPointerRing:
    def test_forms_single_cycle(self):
        memory = Memory(1024)
        count = 64
        memory.fill_pointer_ring(5, 100, count)
        visited = set()
        addr = 100
        for _ in range(count):
            assert addr not in visited
            visited.add(addr)
            addr = memory.read(addr)
        assert addr == 100  # back to start after exactly `count` hops
        assert visited == {100 + i for i in range(count)}

    def test_deterministic(self):
        a = Memory(512)
        b = Memory(512)
        a.fill_pointer_ring(3, 0, 128)
        b.fill_pointer_ring(3, 0, 128)
        assert a.words == b.words

    def test_too_small_ring_rejected(self):
        with pytest.raises(ConfigError):
            Memory(64).fill_pointer_ring(1, 0, 1)


class TestFillValue:
    def test_constant_fill(self):
        memory = Memory(256)
        memory.fill_value(9, 10, 20)
        assert list(memory.words[10:30]) == [9] * 20
        assert memory.words[9] == 0
