"""PerfCounters derived-metric tests."""

from repro.isa.opcodes import OpClass
from repro.machine.perf_counters import (
    DEP_BUCKETS,
    STRIDE_BUCKETS,
    PerfCounters,
    bucket_index,
)


class TestBucketIndex:
    def test_values_map_to_expected_buckets(self):
        assert bucket_index(1, DEP_BUCKETS) == 0
        assert bucket_index(2, DEP_BUCKETS) == 1
        assert bucket_index(3, DEP_BUCKETS) == 2
        assert bucket_index(64, DEP_BUCKETS) == len(DEP_BUCKETS) - 1

    def test_overflow_bucket(self):
        assert bucket_index(10_000, DEP_BUCKETS) == len(DEP_BUCKETS)
        assert bucket_index(10_000, STRIDE_BUCKETS) == len(STRIDE_BUCKETS)

    def test_zero_stride_bucket(self):
        assert bucket_index(0, STRIDE_BUCKETS) == 0


class TestDerivedMetrics:
    def test_ipc(self):
        counters = PerfCounters(retired=100, cycles=50.0)
        assert counters.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert PerfCounters().ipc == 0.0

    def test_branch_accuracy(self):
        counters = PerfCounters(branches=100, mispredicts=8)
        assert counters.branch_accuracy == 0.92

    def test_branch_accuracy_no_branches_is_perfect(self):
        assert PerfCounters().branch_accuracy == 1.0

    def test_mpki(self):
        counters = PerfCounters(retired=10_000, mispredicts=25)
        assert counters.branch_mpki == 2.5

    def test_taken_rate(self):
        counters = PerfCounters(branches=10, taken=7)
        assert counters.taken_rate == 0.7

    def test_l1_hit_rate(self):
        counters = PerfCounters(loads=60, stores=40, l1_hits=90)
        assert counters.l1_hit_rate == 0.9

    def test_mix_fractions_sum_to_one(self):
        counters = PerfCounters(retired=10)
        counters.class_counts[OpClass.INT_ALU] = 6
        counters.class_counts[OpClass.LOAD] = 4
        mix = counters.mix_fractions()
        assert abs(sum(mix.values()) - 1.0) < 1e-12
        assert mix["int_alu"] == 0.6

    def test_working_set_bytes(self):
        counters = PerfCounters()
        counters.touched_lines.update({1, 2, 3})
        assert counters.working_set_bytes == 192

    def test_biased_branch_fraction(self):
        counters = PerfCounters()
        counters.branch_bias = {
            1: [99, 100],   # heavily taken -> biased
            2: [1, 100],    # heavily not-taken -> biased
            3: [50, 100],   # 50/50 -> unbiased
            4: [80, 100],   # 80% -> unbiased at 0.9 threshold
        }
        assert counters.biased_branch_fraction(0.9) == 0.5

    def test_biased_branch_fraction_empty(self):
        assert PerfCounters().biased_branch_fraction() == 0.0

    def test_summary_keys(self):
        summary = PerfCounters(retired=10, cycles=5.0).summary()
        for key in ("retired", "cycles", "ipc", "branch_accuracy", "l1_hit_rate"):
            assert key in summary
