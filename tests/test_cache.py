"""Cache and hierarchy unit tests."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.machine.cache import Cache, CacheHierarchy
from repro.machine.config import CacheConfig, MachineConfig


def tiny_cache(sets=2, ways=2):
    return Cache(CacheConfig(size_bytes=sets * ways * 64, ways=ways, line_bytes=64, latency=4))


class TestCache:
    def test_first_access_misses_second_hits(self):
        cache = tiny_cache()
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = tiny_cache(sets=1, ways=2)
        cache.access(0)
        cache.access(1)
        cache.access(0)      # refresh 0; 1 becomes LRU
        cache.access(2)      # evicts 1
        assert cache.contains(0)
        assert not cache.contains(1)
        assert cache.contains(2)

    def test_set_isolation(self):
        cache = tiny_cache(sets=2, ways=1)
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.contains(0)
        assert cache.contains(1)
        cache.access(2)  # set 0: evicts line 0 only
        assert not cache.contains(0)
        assert cache.contains(1)

    def test_capacity_never_exceeded(self):
        cache = tiny_cache(sets=2, ways=2)
        for line in range(100):
            cache.access(line)
        total = sum(len(s) for s in cache._sets)
        assert total <= 4

    def test_reset(self):
        cache = tiny_cache()
        cache.access(1)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert not cache.contains(1)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = tiny_cache(sets=4, ways=2)
        for line in lines:
            cache.access(line)
        assert cache.hits + cache.misses == len(lines)


class TestCacheConfig:
    def test_power_of_two_sets_required(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=3 * 64, ways=1, line_bytes=64, latency=1)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=3, line_bytes=64, latency=1)

    def test_num_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, ways=8, line_bytes=64, latency=4)
        assert config.num_sets == 64


class TestHierarchy:
    def test_latency_increases_down_the_hierarchy(self):
        hierarchy = CacheHierarchy(MachineConfig())
        cfg = MachineConfig()
        first = hierarchy.access(0)          # cold: DRAM
        assert first == cfg.memory_latency
        again = hierarchy.access(0)          # now L1
        assert again == cfg.l1.latency

    def test_l2_hit_after_l1_eviction(self):
        cfg = MachineConfig()
        hierarchy = CacheHierarchy(cfg)
        hierarchy.access(0)
        # Evict line 0 from L1 by filling its set (L1: 64 sets, 8 ways).
        sets = cfg.l1.num_sets
        for way in range(1, 9):
            hierarchy.access(way * sets * 8)  # same L1 set, 8 words/line
        latency = hierarchy.access(0)
        assert latency == cfg.l2.latency

    def test_words_in_same_line_share_one_miss(self):
        hierarchy = CacheHierarchy(MachineConfig())
        hierarchy.access(0)
        for word in range(1, 8):
            assert hierarchy.access(word) == MachineConfig().l1.latency

    def test_dram_access_counter(self):
        hierarchy = CacheHierarchy(MachineConfig())
        for line in range(10):
            hierarchy.access(line * 8)
        assert hierarchy.dram_accesses == 10

    def test_no_l3_config_goes_straight_to_memory(self):
        from repro.machine.config import mobile_arm

        cfg = mobile_arm()
        hierarchy = CacheHierarchy(cfg)
        assert hierarchy.l3 is None
        assert hierarchy.access(0) == cfg.memory_latency

    def test_line_of(self):
        hierarchy = CacheHierarchy(MachineConfig())
        assert hierarchy.line_of(0) == hierarchy.line_of(7)
        assert hierarchy.line_of(8) == hierarchy.line_of(7) + 1

    def test_mismatched_line_sizes_rejected(self):
        import dataclasses

        cfg = dataclasses.replace(
            MachineConfig(), l2=CacheConfig(256 * 1024, 8, 128, 12)
        )
        with pytest.raises(ValueError):
            CacheHierarchy(cfg)


class TestPrefetcher:
    def _hierarchy(self, prefetch):
        import dataclasses

        cfg = dataclasses.replace(MachineConfig(), prefetch_next_line=prefetch)
        return CacheHierarchy(cfg)

    def test_next_line_filled_on_miss(self):
        hierarchy = self._hierarchy(True)
        hierarchy.access(0)             # miss on line 0 -> prefetch line 1
        assert hierarchy.l1.contains(1)
        assert hierarchy.prefetches == 1

    def test_prefetched_line_hits_without_stats_pollution(self):
        hierarchy = self._hierarchy(True)
        hierarchy.access(0)             # demand miss + prefetch of line 1
        latency = hierarchy.access(8)   # word 8 = line 1: prefetched
        assert latency == MachineConfig().l1.latency
        # One miss (demand) and one hit (prefetched) only.
        assert hierarchy.l1.misses == 1
        assert hierarchy.l1.hits == 1

    def test_disabled_by_default(self):
        hierarchy = self._hierarchy(False)
        hierarchy.access(0)
        assert not hierarchy.l1.contains(1)
        assert hierarchy.prefetches == 0

    def test_streaming_ipc_improves(self):
        """The ablation the feature exists for: streaming code speeds up."""
        import dataclasses

        from repro.isa.builder import ProgramBuilder
        from repro.machine.cpu import Machine

        # ILP-friendly stream (no accumulator chain): the win shows up in
        # dispatch/ROB pressure, which a serial chain would mask.
        b = ProgramBuilder("stream")
        b.movi(2, 0)
        with b.loop(1, 4000):
            b.load(3, 2, 0)
            b.load(4, 2, 1)
            b.addi(2, 2, 2)
        program = b.build()
        base = Machine().run(program).counters
        pf_config = dataclasses.replace(MachineConfig(), prefetch_next_line=True)
        prefetched = Machine(pf_config).run(program).counters
        assert prefetched.dram_accesses < base.dram_accesses
        assert prefetched.cycles < base.cycles
        assert prefetched.ipc > base.ipc

    def test_architectural_state_unaffected(self):
        import dataclasses

        from repro.isa.builder import ProgramBuilder
        from repro.machine.cpu import Machine

        b = ProgramBuilder("arch")
        with b.loop(1, 200):
            b.load(3, 1, 100)
            b.xor(4, 4, 3)
            b.store(4, 1, 300)
        program = b.build()
        base = Machine().run(program)
        pf_config = dataclasses.replace(MachineConfig(), prefetch_next_line=True)
        prefetched = Machine(pf_config).run(program)
        assert base.iregs == prefetched.iregs
