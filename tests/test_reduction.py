"""Machine-checked Theorem 1: the appendix's algorithm B really converts
H-collisions into G-collisions, in both proof cases.

The reduction is exercised with deliberately *weak* gates (truncated
hashes) where collisions can be found by brute-force search — exactly the
situation the proof quantifies over ("given a full description of the
function").
"""

import hashlib
import itertools

import pytest

from repro.analysis.reduction import (
    CollisionReduction,
    find_gate_collision_from_h_collision,
)
from repro.errors import ReproError


def weak_gate_bits(bits: int):
    """A gate whose output keeps only ``bits`` bits — collisions abound."""
    def gate(data: bytes) -> bytes:
        digest = hashlib.sha256(data).digest()
        value = int.from_bytes(digest, "big") >> (256 - bits)
        return value.to_bytes((bits + 7) // 8, "big")
    return gate


def toy_widget(seed: bytes) -> bytes:
    """A stand-in W: any deterministic function works (Theorem 1 holds
    regardless of W)."""
    return hashlib.sha256(b"widget" + seed).digest()[:8]


def h_of(gate, widget):
    def h(x: bytes) -> bytes:
        s = gate(x)
        return gate(s + widget(s))
    return h


def find_h_collision(gate, widget, max_tries=200_000):
    h = h_of(gate, widget)
    seen = {}
    for i in itertools.count():
        if i >= max_tries:
            raise AssertionError("no collision found (weaken the gate)")
        x = str(i).encode()
        digest = h(x)
        if digest in seen and seen[digest] != x:
            return seen[digest], x
        seen[digest] = x


class TestReductionCases:
    def test_case_2_collision_on_second_gate(self):
        # A 16-bit gate: H-collisions appear after ~2^8 queries; almost all
        # have distinct seeds (case 2).
        gate = weak_gate_bits(16)
        x0, x1 = find_h_collision(gate, toy_widget)
        reduction = find_gate_collision_from_h_collision(gate, toy_widget, x0, x1)
        assert reduction.check(gate)
        assert reduction.case == 2
        # Case-2 collisions are seed||output concatenations.
        assert reduction.x0.startswith(gate(x0))

    def test_case_1_collision_on_first_gate(self):
        # Force case 1: find two inputs with equal *seeds* directly.
        gate = weak_gate_bits(16)
        seen = {}
        pair = None
        for i in range(200_000):
            x = b"c1-" + str(i).encode()
            s = gate(x)
            if s in seen:
                pair = (seen[s], x)
                break
            seen[s] = x
        assert pair is not None
        reduction = find_gate_collision_from_h_collision(gate, toy_widget, *pair)
        assert reduction.case == 1
        assert reduction.check(gate)
        assert reduction.x0 == pair[0] and reduction.x1 == pair[1]

    def test_reduction_holds_for_any_widget_function(self):
        # Theorem 1 is agnostic to W: try several widget functions,
        # including degenerate ones.
        gate = weak_gate_bits(12)
        for widget in (
            toy_widget,
            lambda s: b"",                       # empty output
            lambda s: s,                          # identity
            lambda s: s * 17,                     # long output
            lambda s: bytes([s[0]]),              # 1 byte
        ):
            x0, x1 = find_h_collision(gate, widget)
            reduction = find_gate_collision_from_h_collision(gate, widget, x0, x1)
            assert reduction.check(gate)


class TestReductionGuards:
    def test_rejects_equal_inputs(self):
        gate = weak_gate_bits(16)
        with pytest.raises(ReproError):
            find_gate_collision_from_h_collision(gate, toy_widget, b"a", b"a")

    def test_rejects_non_collision(self):
        gate = hashlib.sha256(b"").digest  # unused; use the real gate below
        real_gate = lambda d: hashlib.sha256(d).digest()
        with pytest.raises(ReproError):
            find_gate_collision_from_h_collision(real_gate, toy_widget, b"a", b"b")

    def test_check_rejects_fake_collision(self):
        real_gate = lambda d: hashlib.sha256(d).digest()
        fake = CollisionReduction(case=1, x0=b"a", x1=b"b")
        assert not fake.check(real_gate)


class TestHashCoreGateAssumption:
    def test_hashcore_with_weak_gate_inherits_weakness(self, leela_profile, test_params):
        """The converse sanity check: H is only as strong as G — with a
        1-byte gate, H collides trivially, and B extracts the G-collision
        from real HashCore machinery (real widgets, not toys)."""
        from repro.core.hash_gate import HashGate
        from repro.core.hashcore import HashCore
        from repro.core.seed import HashSeed

        def tiny(data: bytes) -> bytes:
            # 32-byte output (HashSeed requires it) with 8 bits of entropy.
            return hashlib.sha256(data).digest()[:1] * 32

        hc = HashCore(
            profile=leela_profile,
            params=test_params,
            gate=HashGate(fn=tiny, digest_size=32, name="tiny"),
        )
        seen = {}
        pair = None
        for i in range(2000):
            x = str(i).encode()
            digest = hc.hash(x)
            if digest in seen:
                pair = (seen[digest], x)
                break
            seen[digest] = x
        assert pair is not None, "1-byte gate must collide quickly"

        def widget_fn(seed_bytes: bytes) -> bytes:
            widget = hc.widget_for(HashSeed(seed_bytes))
            return widget.execute(hc.machine).output

        reduction = find_gate_collision_from_h_collision(tiny, widget_fn, *pair)
        assert reduction.check(tiny)
