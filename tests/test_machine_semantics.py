"""Functional (architectural) semantics of every instruction."""

import struct

import pytest

from repro.isa.builder import ProgramBuilder
from repro.machine.cpu import Machine
from repro.machine.memory import Memory
from repro.rng import MASK64


def run_prog(build_fn, memory=None, iregs=None, fregs=None):
    b = ProgramBuilder()
    build_fn(b)
    machine = Machine()
    return machine.run(
        b.build(),
        memory,
        initial_iregs=iregs,
        initial_fregs=fregs,
    )


def ir(n, **regs):
    values = [0] * 16
    for name, value in regs.items():
        values[int(name[1:])] = value
    return values


class TestIntegerAlu:
    @pytest.mark.parametrize(
        "emit,a,b,expected",
        [
            ("add", 7, 5, 12),
            ("sub", 7, 5, 2),
            ("sub", 5, 7, (5 - 7) & MASK64),
            ("and_", 0b1100, 0b1010, 0b1000),
            ("or_", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("min_", 7, 5, 5),
            ("max_", 7, 5, 7),
        ],
    )
    def test_three_reg_ops(self, emit, a, b, expected):
        result = run_prog(
            lambda bb: getattr(bb, emit)(3, 1, 2),
            iregs=ir(16, r1=a, r2=b),
        )
        assert result.iregs[3] == expected

    def test_add_wraps_64_bits(self):
        result = run_prog(lambda b: b.add(3, 1, 2), iregs=ir(16, r1=MASK64, r2=1))
        assert result.iregs[3] == 0

    def test_shl_shift_amount_masked_to_6_bits(self):
        result = run_prog(lambda b: b.shl(3, 1, 2), iregs=ir(16, r1=1, r2=65))
        assert result.iregs[3] == 2  # 65 & 63 == 1

    def test_shr_logical(self):
        result = run_prog(lambda b: b.shr(3, 1, 2), iregs=ir(16, r1=1 << 63, r2=63))
        assert result.iregs[3] == 1

    def test_shli_shri(self):
        def body(b):
            b.shli(3, 1, 4)
            b.shri(4, 3, 2)
        result = run_prog(body, iregs=ir(16, r1=3))
        assert result.iregs[3] == 48
        assert result.iregs[4] == 12

    def test_addi_negative(self):
        result = run_prog(lambda b: b.addi(3, 1, -10), iregs=ir(16, r1=7))
        assert result.iregs[3] == (7 - 10) & MASK64

    def test_immediate_logic_masks_to_64(self):
        result = run_prog(lambda b: b.andi(3, 1, -1), iregs=ir(16, r1=0xDEAD))
        assert result.iregs[3] == 0xDEAD

    def test_mov_movi_not(self):
        def body(b):
            b.movi(1, 41)
            b.mov(2, 1)
            b.not_(3, 2)
        result = run_prog(body)
        assert result.iregs[2] == 41
        assert result.iregs[3] == 41 ^ MASK64

    def test_movi_negative_sign_extends_to_u64(self):
        result = run_prog(lambda b: b.movi(1, -1))
        assert result.iregs[1] == MASK64

    def test_cmplt_cmpeq_unsigned(self):
        def body(b):
            b.cmplt(3, 1, 2)
            b.cmpeq(4, 1, 1)
            b.cmplt(5, 2, 1)
        result = run_prog(body, iregs=ir(16, r1=5, r2=MASK64))
        assert result.iregs[3] == 1  # 5 < 2^64-1 (unsigned)
        assert result.iregs[4] == 1
        assert result.iregs[5] == 0


class TestIntegerMul:
    def test_mul_wraps(self):
        result = run_prog(lambda b: b.mul(3, 1, 2), iregs=ir(16, r1=1 << 40, r2=1 << 40))
        assert result.iregs[3] == (1 << 80) & MASK64

    def test_mulhi(self):
        result = run_prog(lambda b: b.mulhi(3, 1, 2), iregs=ir(16, r1=1 << 40, r2=1 << 40))
        assert result.iregs[3] == (1 << 80) >> 64

    def test_div(self):
        result = run_prog(lambda b: b.div(3, 1, 2), iregs=ir(16, r1=100, r2=7))
        assert result.iregs[3] == 14

    def test_div_by_zero_defined(self):
        result = run_prog(lambda b: b.div(3, 1, 2), iregs=ir(16, r1=100))
        assert result.iregs[3] == MASK64

    def test_mod(self):
        result = run_prog(lambda b: b.mod(3, 1, 2), iregs=ir(16, r1=100, r2=7))
        assert result.iregs[3] == 2

    def test_mod_by_zero_defined(self):
        result = run_prog(lambda b: b.mod(3, 1, 2), iregs=ir(16, r1=100))
        assert result.iregs[3] == 0


class TestFloatingPoint:
    def test_basic_arithmetic(self):
        def body(b):
            b.fadd(2, 0, 1)
            b.fsub(3, 0, 1)
            b.fmul(4, 0, 1)
            b.fdiv(5, 0, 1)
        result = run_prog(body, fregs=[6.0, 2.0] + [0.0] * 14)
        assert result.fregs[2] == 8.0
        assert result.fregs[3] == 4.0
        assert result.fregs[4] == 12.0
        assert result.fregs[5] == 3.0

    def test_fdiv_by_zero_clamps_to_one(self):
        result = run_prog(lambda b: b.fdiv(2, 0, 1), fregs=[5.0, 0.0] + [0.0] * 14)
        assert result.fregs[2] == 1.0

    def test_fma_accumulates_into_dst(self):
        result = run_prog(lambda b: b.fma(0, 1, 2), fregs=[10.0, 3.0, 4.0] + [0.0] * 13)
        assert result.fregs[0] == 22.0

    def test_fmin_fmax_fabs_fneg(self):
        def body(b):
            b.fmin(2, 0, 1)
            b.fmax(3, 0, 1)
            b.fneg(4, 0)
            b.fabs(5, 4)
        result = run_prog(body, fregs=[6.0, 2.0] + [0.0] * 14)
        assert result.fregs[2] == 2.0
        assert result.fregs[3] == 6.0
        assert result.fregs[4] == -6.0
        assert result.fregs[5] == 6.0

    def test_overflow_clamps_to_one(self):
        def body(b):
            for _ in range(8):
                b.fmul(0, 0, 0)  # 1e200 squared overflows quickly
        result = run_prog(body, fregs=[1e200] + [0.0] * 15)
        assert result.fregs[0] == 1.0

    def test_cvtif_cvtfi_round_trip(self):
        def body(b):
            b.cvtif(0, 1)
            b.cvtfi(2, 0)
        result = run_prog(body, iregs=ir(16, r1=123456))
        assert result.fregs[0] == 123456.0
        assert result.iregs[2] == 123456

    def test_cvtif_masks_to_53_bits(self):
        result = run_prog(lambda b: b.cvtif(0, 1), iregs=ir(16, r1=MASK64))
        assert result.fregs[0] == float((1 << 53) - 1)


class TestMemory:
    def test_store_load_round_trip(self):
        def body(b):
            b.movi(1, 0xDEADBEEF)
            b.movi(2, 100)
            b.store(1, 2, 5)
            b.load(3, 2, 5)
        result = run_prog(body)
        assert result.iregs[3] == 0xDEADBEEF

    def test_addresses_wrap_modulo_memory(self):
        machine = Machine()
        size = machine.config.memory_words

        def body(b):
            b.movi(1, 77)
            b.movi(2, size - 1)
            b.store(1, 2, 3)  # wraps to address 2
            b.movi(4, 2)
            b.load(5, 4, 0)
        result = run_prog(body)
        assert result.iregs[5] == 77

    def test_fstore_fload_fixed_point_round_trip(self):
        def body(b):
            b.movi(1, 1000)
            b.cvtif(0, 1)       # f0 = 1000.0
            b.fstore(0, 2, 10)
            b.fload(1, 2, 10)
        result = run_prog(body)
        assert result.fregs[1] == pytest.approx(1000.0, abs=1e-6)

    def test_load_from_prepared_memory(self):
        memory = Memory(1 << 21)
        memory.write(500, 424242)
        def body(b):
            b.movi(1, 500)
            b.load(2, 1, 0)
        result = run_prog(body, memory=memory)
        assert result.iregs[2] == 424242


class TestVector:
    def test_vbroadcast_vadd_vreduce(self):
        def body(b):
            b.movi(1, 3)
            b.cvtif(0, 1)
            b.vbroadcast(0, 0)   # v0 = [3,3,3,3]
            b.vadd(1, 0, 0)      # v1 = [6,6,6,6]
            b.vreduce(2, 1)      # f2 = 24
        result = run_prog(body)
        assert result.fregs[2] == 24.0

    def test_vmul_vfma(self):
        def body(b):
            b.movi(1, 2)
            b.cvtif(0, 1)
            b.vbroadcast(0, 0)   # [2]*4
            b.vmul(1, 0, 0)      # [4]*4
            b.vfma(1, 0, 0)      # [8]*4
            b.vreduce(2, 1)
        result = run_prog(body)
        assert result.fregs[2] == 32.0

    def test_vstore_vload_round_trip(self):
        def body(b):
            b.movi(1, 5)
            b.cvtif(0, 1)
            b.vbroadcast(0, 0)
            b.movi(2, 64)
            b.vstore(0, 2, 0)
            b.vload(1, 2, 0)
            b.vreduce(2, 1)
        result = run_prog(body)
        assert result.fregs[2] == pytest.approx(20.0, abs=1e-5)


class TestControlFlow:
    def test_beq_taken_and_not_taken(self):
        def body(b):
            b.movi(1, 5)
            b.movi(2, 5)
            b.beq(1, 2, "eq")
            b.movi(3, 1)  # skipped
            b.label("eq")
            b.bne(1, 2, "ne")
            b.movi(4, 1)  # executed
            b.label("ne")
        result = run_prog(body)
        assert result.iregs[3] == 0
        assert result.iregs[4] == 1

    def test_blt_bge_unsigned(self):
        def body(b):
            b.movi(1, -1)   # = 2^64-1 unsigned
            b.movi(2, 5)
            b.blt(2, 1, "lt")    # 5 < 2^64-1 -> taken
            b.movi(3, 99)
            b.label("lt")
            b.bge(1, 2, "ge")    # taken
            b.movi(4, 99)
            b.label("ge")
        result = run_prog(body)
        assert result.iregs[3] == 0
        assert result.iregs[4] == 0

    def test_loopnz_decrements_register(self):
        def body(b):
            with b.loop(1, 7):
                b.nop()
        result = run_prog(body)
        assert result.iregs[1] == 0

    def test_jmp(self):
        def body(b):
            b.jmp("over")
            b.movi(1, 1)
            b.label("over")
        assert run_prog(body).iregs[1] == 0

    def test_fall_off_end_is_halt(self):
        b = ProgramBuilder()
        b.movi(1, 2)
        program = b.build(auto_halt=False)
        result = Machine().run(program)
        assert result.halted


class TestSnapshots:
    def test_snapshot_format_and_count(self):
        def body(b):
            with b.loop(1, 10):
                b.addi(2, 2, 1)
        b = ProgramBuilder()
        body(b)
        result = Machine().run(b.build(), snapshot_interval=7)
        # 21 retired +1 halt; snapshots at 7,14,21 plus the final one.
        assert result.snapshots == 4
        assert len(result.output) == result.snapshots * (16 * 8 + 16 * 8)

    def test_final_snapshot_reflects_final_state(self):
        b = ProgramBuilder()
        b.movi(1, 0x1234)
        result = Machine().run(b.build(), snapshot_interval=1000)
        final_ints = struct.unpack("<16Q", result.output[-256:-128])
        assert final_ints[1] == 0x1234

    def test_no_snapshots_without_interval(self):
        b = ProgramBuilder()
        b.movi(1, 1)
        result = Machine().run(b.build())
        assert result.output == b""
        assert result.snapshots == 0


class TestFuse:
    def test_infinite_loop_trips_fuse(self):
        from repro.errors import ExecutionLimitExceeded

        b = ProgramBuilder()
        b.label("spin")
        b.jmp("spin")
        with pytest.raises(ExecutionLimitExceeded):
            Machine().run(b.build(), max_instructions=1000)

    def test_nonpositive_fuse_rejected(self):
        from repro.errors import ExecutionError

        b = ProgramBuilder()
        b.nop()
        with pytest.raises(ExecutionError):
            Machine().run(b.build(), max_instructions=0)


class TestDeterminism:
    def test_same_program_same_everything(self):
        def body(b):
            b.movi(1, 0x5EED)
            with b.loop(2, 200):
                b.shli(3, 1, 13)
                b.xor(1, 1, 3)
                b.mul(4, 1, 1)
                b.store(4, 1, 0)
                b.load(5, 1, 0)
                b.fadd(0, 0, 1)
        b1 = ProgramBuilder(); body(b1)
        b2 = ProgramBuilder(); body(b2)
        r1 = Machine().run(b1.build(), snapshot_interval=100)
        r2 = Machine().run(b2.build(), snapshot_interval=100)
        assert r1.output == r2.output
        assert r1.iregs == r2.iregs
        assert r1.counters.cycles == r2.counters.cycles
