"""Cross-module integration tests: the complete HashCore system."""

import pytest

from repro import (
    Block,
    Blockchain,
    HashCore,
    Machine,
    Sha256d,
    WidgetGenerator,
    difficulty_to_target,
    get_workload,
    mine_block,
    profile_workload,
)
from repro.blockchain.difficulty import RetargetSchedule
from repro.core.pow import target_to_compact


class TestFullPipeline:
    """profile → generate → compile → execute → hash, from live parts."""

    def test_live_profile_to_hash(self, machine, test_params):
        profile = profile_workload(get_workload("leela"), machine)
        hashcore = HashCore(profile=profile, machine=machine, params=test_params)
        digest = hashcore.hash(b"pipeline")
        assert hashcore.verify(b"pipeline", digest)

    def test_widgets_from_other_workload_profiles(self, machine, test_params):
        """§VI-B modularity: any profile plugs into the same generator."""
        for name in ("compress", "matrix"):
            profile = profile_workload(get_workload(name), machine)
            generator = WidgetGenerator(profile, test_params)
            widget = generator.widget(
                HashCore(profile=profile, params=test_params).seed_of(b"x")
            )
            result = widget.execute(machine)
            assert result.counters.retired > 1000

    def test_fp_heavy_profile_yields_fp_heavy_widgets(self, machine, test_params):
        profile = profile_workload(get_workload("matrix"), machine)
        generator = WidgetGenerator(profile, test_params)
        seed = HashCore(profile=profile, params=test_params).seed_of(b"fp")
        counters = generator.widget(seed).execute(machine).counters
        mix = counters.mix_fractions()
        assert mix["fp_alu"] + mix["vector"] > 0.25


class TestHashCoreMining:
    """HashCore as the PoW of an actual chain (tiny difficulty)."""

    @pytest.fixture(scope="class")
    def hashcore(self, leela_profile):
        from repro.widgetgen.params import GeneratorParams

        # Very small widgets so a difficulty-4 mining loop stays fast.
        params = GeneratorParams(target_instructions=3000, snapshot_interval=200)
        return HashCore(profile=leela_profile, params=params)

    def test_mine_and_validate_block(self, hashcore):
        bits = target_to_compact(difficulty_to_target(4.0))
        chain = Blockchain(hashcore, genesis_bits=bits)
        block = Block.build(
            prev_hash=chain.tip_id,
            transactions=[b"cb", b"tx"],
            timestamp=30,
            bits=chain.expected_bits(chain.tip_id),
        )
        mined = mine_block(block, hashcore, max_attempts=200)
        chain.add_block(mined.block)
        assert chain.height() == 1

    def test_other_miners_verify(self, hashcore, leela_profile):
        """A block mined by one HashCore instance validates on a chain
        whose PoW is an independently constructed instance."""
        from repro.widgetgen.params import GeneratorParams

        params = GeneratorParams(target_instructions=3000, snapshot_interval=200)
        verifier = HashCore(profile=leela_profile, params=params)
        bits = target_to_compact(difficulty_to_target(4.0))
        miner_chain = Blockchain(hashcore, genesis_bits=bits)
        verifier_chain = Blockchain(verifier, genesis_bits=bits)
        block = Block.build(
            prev_hash=miner_chain.tip_id,
            transactions=[b"cb"],
            timestamp=30,
            bits=miner_chain.expected_bits(miner_chain.tip_id),
        )
        mined = mine_block(block, hashcore, max_attempts=200)
        verifier_chain.add_block(mined.block)
        assert verifier_chain.height() == 1


class TestAlternativeGpp:
    """§VI-B: targeting an ARM-like machine instead of x86."""

    def test_arm_machine_runs_widgets(self, leela_profile, test_params):
        from repro.machine.config import mobile_arm

        arm = Machine(mobile_arm())
        hashcore = HashCore(profile=leela_profile, machine=arm, params=test_params)
        digest = hashcore.hash(b"arm")
        assert hashcore.verify(b"arm", digest)

    def test_hash_is_microarchitecture_independent(self, leela_profile, test_params):
        """The widget output is *architectural* (register snapshots at
        retired-instruction counts), so machines with different pipelines,
        caches and predictors compute the identical hash — they differ only
        in how fast they compute it.  This is what makes a heterogeneous
        mining network (x86 desktops, ARM phones, §VI-B) possible."""
        from repro.machine.config import mobile_arm

        x86 = HashCore(profile=leela_profile, params=test_params)
        arm = HashCore(
            profile=leela_profile, machine=Machine(mobile_arm()), params=test_params
        )
        assert x86.hash(b"n") == arm.hash(b"n")


class TestBaselineChains:
    def test_chain_over_each_baseline(self):
        from repro.baselines import EquihashLike, RandomXLike, ScryptLike

        for pow_fn, difficulty in (
            (Sha256d(), 32.0),
            (ScryptLike(n=32), 3.0),
            (EquihashLike(n=32, k=3), 2.0),
            (RandomXLike(program_size=24, loop_trips=2), 2.0),
        ):
            bits = target_to_compact(difficulty_to_target(difficulty))
            chain = Blockchain(pow_fn, genesis_bits=bits,
                               schedule=RetargetSchedule(interval=1000))
            block = Block.build(chain.tip_id, [b"tx"], 30,
                                chain.expected_bits(chain.tip_id))
            mined = mine_block(block, pow_fn, max_attempts=3000)
            chain.add_block(mined.block)
            assert chain.height() == 1, pow_fn.name
