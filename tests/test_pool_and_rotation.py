"""Tests for the §VI-A selection pool, §IV multi-widget sequences, and the
profile-rotating variant."""

import pytest

from repro.core.hashcore import HashCore
from repro.core.rotation import RotatingHashCore
from repro.errors import ConfigError, GenerationError
from repro.widgetgen.pool import SelectionHashCore, WidgetPool

from tests.conftest import seed_of


@pytest.fixture(scope="module")
def pool(leela_profile, test_params):
    return WidgetPool(leela_profile, test_params, pool_size=10)


class TestWidgetPool:
    def test_pool_is_deterministic(self, leela_profile, test_params, pool):
        other = WidgetPool(leela_profile, test_params, pool_size=10)
        assert other.fingerprint() == pool.fingerprint()

    def test_pool_tag_changes_members(self, leela_profile, test_params, pool):
        other = WidgetPool(leela_profile, test_params, pool_size=10, pool_tag=b"v2")
        assert other.fingerprint() != pool.fingerprint()

    def test_members_distinct(self, pool):
        fingerprints = {widget.fingerprint() for widget in pool.widgets}
        assert len(fingerprints) == len(pool)

    def test_storage_accounting(self, pool):
        assert pool.storage_bytes() == sum(w.code_bytes() for w in pool.widgets)

    def test_selection_deterministic(self, pool):
        seed = seed_of("select")
        a = [w.fingerprint() for w in pool.select(seed, 3)]
        b = [w.fingerprint() for w in pool.select(seed, 3)]
        assert a == b

    def test_selection_order_matters(self, pool):
        a = pool.select(seed_of("o1"), 4)
        b = pool.select(seed_of("o2"), 4)
        assert [w.name for w in a] != [w.name for w in b]

    def test_selection_without_replacement(self, pool):
        chosen = pool.select(seed_of("nr"), len(pool))
        assert len({w.fingerprint() for w in chosen}) == len(pool)

    def test_all_members_reachable(self, pool):
        seen = set()
        for tag in range(40):
            for widget in pool.select(seed_of(tag), 2):
                seen.add(widget.fingerprint())
        assert len(seen) == len(pool)

    def test_bad_count_rejected(self, pool):
        with pytest.raises(GenerationError):
            pool.select(seed_of("x"), 0)
        with pytest.raises(GenerationError):
            pool.select(seed_of("x"), len(pool) + 1)

    def test_tiny_pool_rejected(self, leela_profile, test_params):
        with pytest.raises(GenerationError):
            WidgetPool(leela_profile, test_params, pool_size=1)


class TestSelectionHashCore:
    def test_deterministic_and_verifiable(self, pool, machine):
        fn = SelectionHashCore(pool, machine=machine, widgets_per_hash=2)
        digest = fn.hash(b"select-me")
        assert len(digest) == 32
        assert fn.verify(b"select-me", digest)
        assert not fn.verify(b"select-me!", digest)

    def test_input_sensitivity(self, pool, machine):
        fn = SelectionHashCore(pool, machine=machine)
        assert fn.hash(b"a") != fn.hash(b"b")

    def test_pow_protocol(self, pool):
        from repro.core.pow import PowFunction

        assert isinstance(SelectionHashCore(pool), PowFunction)

    def test_agrees_across_instances(self, pool, leela_profile, test_params, machine):
        # A second node builds the pool independently and verifies.
        other_pool = WidgetPool(leela_profile, test_params, pool_size=10)
        a = SelectionHashCore(pool, machine=machine)
        b = SelectionHashCore(other_pool, machine=machine)
        assert a.hash(b"consensus") == b.hash(b"consensus")


class TestMultiWidget:
    def test_sequence_length(self, leela_profile, test_params):
        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widgets_per_hash=3)
        trace = hashcore.hash_with_trace(b"seq")
        assert len(trace.widgets) == 3
        assert len(trace.results) == 3

    def test_subwidgets_differ(self, leela_profile, test_params):
        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widgets_per_hash=3)
        trace = hashcore.hash_with_trace(b"seq")
        fingerprints = {w.fingerprint() for w in trace.widgets}
        assert len(fingerprints) == 3

    def test_digest_depends_on_count(self, leela_profile, test_params):
        one = HashCore(profile=leela_profile, params=test_params, widgets_per_hash=1)
        two = HashCore(profile=leela_profile, params=test_params, widgets_per_hash=2)
        assert one.hash(b"k") != two.hash(b"k")

    def test_verifiable(self, leela_profile, test_params):
        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widgets_per_hash=2)
        digest = hashcore.hash(b"v")
        assert hashcore.verify(b"v", digest)

    def test_invalid_count_rejected(self, leela_profile, test_params):
        with pytest.raises(ValueError):
            HashCore(profile=leela_profile, params=test_params, widgets_per_hash=0)

    def test_trace_compat_fields(self, leela_profile, test_params):
        hashcore = HashCore(profile=leela_profile, params=test_params,
                            widgets_per_hash=2)
        trace = hashcore.hash_with_trace(b"compat")
        assert trace.widget is trace.widgets[0]
        assert trace.result is trace.results[0]


class TestRotatingHashCore:
    @pytest.fixture(scope="class")
    def profiles(self, machine):
        from repro.profiling.profiler import profile_workload
        from repro.workloads import get_workload

        return [
            profile_workload(get_workload("leela"), machine),
            profile_workload(get_workload("matrix"), machine),
        ]

    def test_deterministic(self, profiles, test_params, machine):
        a = RotatingHashCore(profiles, machine=machine, params=test_params)
        b = RotatingHashCore(profiles, machine=machine, params=test_params)
        assert a.hash(b"rot") == b.hash(b"rot")

    def test_profiles_actually_rotate(self, profiles, test_params, machine):
        fn = RotatingHashCore(profiles, machine=machine, params=test_params)
        indices = {fn.profile_index(fn.seed_of(str(i).encode())) for i in range(32)}
        assert indices == {0, 1}

    def test_rotation_changes_widget_character(self, profiles, test_params, machine):
        fn = RotatingHashCore(profiles, machine=machine, params=test_params)
        # Find one input per profile and compare the widgets' FP share.
        mixes = {}
        for i in range(32):
            data = f"char-{i}".encode()
            index = fn.profile_index(fn.seed_of(data))
            if index in mixes:
                continue
            trace = fn.hash_with_trace(data)
            mix = trace.result.counters.mix_fractions()
            mixes[index] = mix["fp_alu"] + mix["vector"]
            if len(mixes) == 2:
                break
        assert mixes[1] > mixes[0] + 0.2  # matrix-profile widgets are FP-heavy

    def test_profile_order_is_consensus(self, profiles, test_params, machine):
        forward = RotatingHashCore(profiles, machine=machine, params=test_params)
        backward = RotatingHashCore(list(reversed(profiles)), machine=machine,
                                    params=test_params)
        digests_differ = any(
            forward.hash(str(i).encode()) != backward.hash(str(i).encode())
            for i in range(4)
        )
        assert digests_differ

    def test_empty_profiles_rejected(self, test_params):
        with pytest.raises(ConfigError):
            RotatingHashCore([], params=test_params)

    def test_verify(self, profiles, test_params, machine):
        fn = RotatingHashCore(profiles, machine=machine, params=test_params)
        digest = fn.hash(b"check")
        assert fn.verify(b"check", digest)


class TestBakedSuiteProfiles:
    def test_baked_suite_matches_measurement(self):
        """Suite constants must equal fresh measurements (consensus
        anti-drift check, mirroring the Leela default-profile test)."""
        from repro.core.suite_profiles import (
            SUITE_PROFILE_DICTS,
            measure_suite_profiles,
        )

        assert measure_suite_profiles() == SUITE_PROFILE_DICTS

    def test_suite_profiles_cached_and_ordered(self):
        from repro.core.suite_profiles import suite_profiles

        profiles = suite_profiles()
        assert profiles is suite_profiles()
        assert [p.name for p in profiles] == sorted(p.name for p in profiles)

    def test_rotating_over_baked_suite(self, test_params, machine):
        from repro.core.rotation import RotatingHashCore
        from repro.core.suite_profiles import suite_profiles

        fn = RotatingHashCore(suite_profiles(), machine=machine,
                              params=test_params)
        digest = fn.hash(b"baked")
        assert fn.verify(b"baked", digest)
